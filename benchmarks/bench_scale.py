"""E-SCALE — substrate throughput (true timing benchmarks).

These are the only benchmarks here meant primarily as *performance* tests:
the engine, the flow solver, and the vectorized profiler at growing sizes.
They keep the simulation substrate honest — the theorem experiments assume
the harness can afford exact arithmetic at laptop scale.
"""

import time

import pytest

from repro.analysis.profile import approx_lower_bound
from repro.analysis.report import print_table
from repro.generators import uniform_random_instance
from repro.model import Instance
from repro.offline.optimum import migratory_optimum
from repro.online.edf import EDF
from repro.online.engine import simulate
from repro.online.nonmigratory import FirstFitEDF


@pytest.mark.parametrize("n", [300, 1000, 3000])
def test_engine_throughput_first_fit(benchmark, n):
    inst = uniform_random_instance(n, horizon=max(100, n), seed=n)

    def run():
        return simulate(FirstFitEDF(), inst, machines=12)

    engine = benchmark(run)
    assert not engine.missed_jobs


@pytest.mark.parametrize("n", [300, 1000])
def test_engine_throughput_edf(benchmark, n):
    inst = uniform_random_instance(n, horizon=max(100, n), seed=n)

    def run():
        return simulate(EDF(), inst, machines=12)

    engine = benchmark(run)
    assert not engine.missed_jobs


@pytest.mark.parametrize("backend", ["dinic", "networkx"])
@pytest.mark.parametrize("n", [50, 150, 400])
def test_flow_optimum_scaling(benchmark, n, backend):
    """Both feasibility backends, cold cache per round (fresh instance)."""
    jobs = list(uniform_random_instance(n, horizon=2 * n, seed=n))
    m = benchmark(lambda: migratory_optimum(Instance(jobs), backend=backend))
    assert m >= 1


def test_flow_optimum_warm_cache(benchmark):
    """Repeat calls on one instance: answered from the verdict memo."""
    inst = uniform_random_instance(400, horizon=800, seed=400)
    first = migratory_optimum(inst)  # populate the per-instance cache
    m = benchmark(lambda: migratory_optimum(inst))
    assert m == first


def test_flow_optimum_speedup_n1000(benchmark):
    """Acceptance gate: dinic ≥ 5× faster than networkx at n = 1000.

    Timed with cold caches on both sides (fresh Instance per run).  The
    incremental dinic path is additionally benchmarked through the fixture;
    the networkx baseline is timed once (it is ~minutes-scale).
    """
    jobs = list(uniform_random_instance(1000, horizon=2000, seed=1000))

    t0 = time.perf_counter()
    m_nx = migratory_optimum(Instance(jobs), backend="networkx")
    t_nx = time.perf_counter() - t0

    t0 = time.perf_counter()
    m_dinic = migratory_optimum(Instance(jobs), backend="dinic")
    t_dinic = time.perf_counter() - t0
    benchmark.pedantic(
        lambda: migratory_optimum(Instance(jobs), backend="dinic"),
        rounds=1,
        iterations=1,
    )

    speedup = t_nx / t_dinic
    print_table(
        "E-SCALE migratory_optimum backends (n=1000)",
        ["backend", "opt", "seconds", "speedup"],
        [
            ("networkx", m_nx, round(t_nx, 3), 1.0),
            ("dinic", m_dinic, round(t_dinic, 3), round(speedup, 1)),
        ],
    )
    assert m_dinic == m_nx
    assert speedup >= 5


@pytest.mark.parametrize("backend", ["dinic", "dinic_np", "dinic_c"])
def test_flow_optimum_kernels_n1000(benchmark, backend):
    """All three Dinic kernels on the flat-buffer solver, cold cache.

    The numpy BFS (``dinic_np``) and the compiled kernel (``dinic_c``)
    produce bit-identical flows (differential-tested in
    ``tests/test_sparsify.py`` and ``tests/test_kernel.py``); this
    benchmark is the cross-kernel trajectory — it tracks whether the
    vectorized level build pays for its buffer-view overhead and how much
    the native BFS+DFS buys at n = 1000 (the ISSUE 9 acceptance gate:
    ``dinic_c`` ≤ 10 ms here).
    """
    if backend == "dinic_np":
        pytest.importorskip("numpy")
    if backend == "dinic_c":
        from repro.offline import kernel

        if not kernel.available():
            pytest.skip("no C compiler and no cached kernel build")
    jobs = list(uniform_random_instance(1000, horizon=2000, seed=1000))
    # One warmup round keeps one-time process effects (dlopen + ctypes
    # binding on the first compiled call, allocator first-touch) out of the
    # committed trajectory; every measured round still builds its network
    # cold (fresh Instance → fresh cache).
    m = benchmark.pedantic(
        lambda: migratory_optimum(Instance(jobs), backend=backend),
        rounds=5,
        iterations=1,
        warmup_rounds=1,
    )
    assert m == 5


@pytest.mark.parametrize("n", [2000, 10000])
def test_vectorized_profile_scaling(benchmark, n):
    inst = uniform_random_instance(n, horizon=n, seed=n)
    bound = benchmark(lambda: approx_lower_bound(inst))
    assert bound >= 1


@pytest.mark.parametrize("k", [9, 10, 11])
def test_adversary_scaling(benchmark, k):
    """The Lemma 2 adversary at depth k: n = 2^k − 1 jobs, exact arithmetic
    with denominators growing geometrically — the stress test for the
    Fraction-based engine."""
    from repro.core.adversary.migration_gap import MigrationGapAdversary
    from repro.online.nonmigratory import FirstFitEDF

    def run():
        adv = MigrationGapAdversary(FirstFitEDF(), machines=k + 3)
        return adv.run(k)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    assert res.machines_forced == k
