"""E-BL — the EDF Ω(Δ) vs LLF O(log Δ) separation (related work, Section 1).

Series: machine need of EDF and LLF on the trap family as Δ grows, plus the
class-based non-preemptive baseline (Saha-style, O(log Δ) machine classes).
"""

import pytest

from repro.analysis.report import print_table
from repro.core.adversary.nonpreemptive import ClassBasedNonPreemptive
from repro.generators import edf_trap_instance, uniform_random_instance
from repro.offline.optimum import migratory_optimum
from repro.online.edf import EDF
from repro.online.engine import min_machines
from repro.online.llf import LLF

from conftest import run_once

DELTAS = [4, 8, 16, 32]


def _delta_sweep():
    rows = []
    for delta in DELTAS:
        inst = edf_trap_instance(delta)
        m = migratory_optimum(inst)
        edf = min_machines(lambda k: EDF(), inst)
        llf = min_machines(lambda k: LLF(), inst)
        rows.append((delta, m, edf, llf, edf / m, llf / m))
    return rows


def test_edf_vs_llf_separation(benchmark):
    rows = run_once(benchmark, _delta_sweep)
    print_table(
        "E-BL: EDF vs LLF on the trap family "
        "(paper/related work: EDF = Ω(Δ), LLF = O(log Δ); here LLF is optimal)",
        ["Delta", "OPT m", "EDF machines", "LLF machines", "EDF/m", "LLF/m"],
        rows,
    )
    for delta, m, edf, llf, _, _ in rows:
        assert edf == delta  # linear in Δ
        assert llf == m == 2  # flat

    edf_ratios = [r[4] for r in rows]
    assert edf_ratios[-1] > edf_ratios[0]  # the gap grows with Δ


def _random_comparison():
    rows = []
    for seed in (1, 2, 3):
        inst = uniform_random_instance(40, seed=seed)
        m = migratory_optimum(inst)
        edf = min_machines(lambda k: EDF(), inst)
        llf = min_machines(lambda k: LLF(), inst)
        nonpre = ClassBasedNonPreemptive().machines_needed(inst)
        rows.append((seed, len(inst), m, edf, llf, nonpre,
                     ClassBasedNonPreemptive.class_count(inst)))
    return rows


def test_baselines_on_random_instances(benchmark):
    rows = run_once(benchmark, _random_comparison)
    print_table(
        "E-BL: baselines on random instances "
        "(non-preemptive pays the O(log Δ) class factor)",
        ["seed", "n", "OPT m", "EDF", "LLF", "class-based non-preemptive",
         "p-classes (≈log Δ)"],
        rows,
    )
    for _, _, m, edf, llf, nonpre, _ in rows:
        assert m <= min(edf, llf) <= nonpre * 2 + 8
