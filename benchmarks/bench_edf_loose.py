"""E-T13 — EDF on α-loose instances (Theorem 13 / Corollary 1).

Series: minimal EDF machine count over the migratory optimum across α,
against the paper's ``m/(1−α)²`` bound, plus the non-preemptiveness of EDF
on agreeable inputs (Corollary 1).
"""

from fractions import Fraction

import pytest

from repro.analysis.metrics import theorem13_bound
from repro.analysis.report import print_table
from repro.generators import agreeable_instance, loose_instance
from repro.offline.optimum import migratory_optimum
from repro.online.edf import EDF
from repro.online.engine import min_machines, simulate

from conftest import run_once

ALPHAS = [Fraction(1, 5), Fraction(2, 5), Fraction(3, 5), Fraction(4, 5)]


def _alpha_sweep():
    rows = []
    for alpha in ALPHAS:
        inst = loose_instance(50, alpha, seed=13)
        m = migratory_optimum(inst)
        k = min_machines(lambda k: EDF(), inst)
        bound = float(theorem13_bound(m, alpha))
        rows.append((float(alpha), len(inst), m, k, round(bound, 1), k <= bound))
    return rows


def test_theorem13_edf_bound(benchmark):
    rows = run_once(benchmark, _alpha_sweep)
    print_table(
        "E-T13: EDF machine need on α-loose instances "
        "(paper: feasible on m/(1−α)² machines)",
        ["alpha", "n", "OPT m", "EDF machines", "m/(1−α)²", "within bound"],
        rows,
    )
    assert all(r[-1] for r in rows)


def _corollary1():
    rows = []
    for seed in (1, 2, 3):
        inst = agreeable_instance(50, max_slack=25, seed=seed)
        k = min_machines(lambda k: EDF(), inst)
        eng = simulate(EDF(), inst, machines=k)
        rep = eng.schedule().verify(inst)
        rows.append((seed, len(inst), k, rep.preemptions, rep.migrations,
                     rep.feasible))
    return rows


def test_corollary1_nonpreemptive_on_agreeable(benchmark):
    rows = run_once(benchmark, _corollary1)
    print_table(
        "E-T13/Cor-1: EDF on agreeable instances never preempts a started job",
        ["seed", "n", "EDF machines", "preemptions", "migrations", "feasible"],
        rows,
    )
    for _, _, _, preemptions, migrations, feasible in rows:
        assert feasible and preemptions == 0 and migrations == 0
