"""E-OPEN — the paper's conclusion: open questions, explored empirically.

1. *"Our lower bound leaves open if for m = 2 there is an online
   non-migratory algorithm using O(1) machines."*  The Lemma 2 adversary
   needs a 3-machine witness; we measure what OPT actually is at each
   recursion depth and how many machines the adversary extracts per unit of
   OPT — data, not an answer (the question is open!).

2. Unit processing times (related work [1,5]): the optimal online algorithm
   is exactly e ≈ 2.72-competitive.  We measure the machines/OPT ratio of
   our policies on unit-job workloads against that landmark.
"""

import math

import pytest

from repro.analysis.report import print_table
from repro.core.adversary.migration_gap import MigrationGapAdversary
from repro.generators import unit_jobs_instance
from repro.offline.optimum import migratory_optimum
from repro.online.edf import EDF, NonPreemptiveEDF
from repro.online.engine import min_machines
from repro.online.llf import LLF
from repro.online.nonmigratory import FirstFitEDF

from conftest import run_once

E_CONSTANT = math.e


def _m_profile():
    rows = []
    for k in (2, 3, 4, 5):
        adv = MigrationGapAdversary(FirstFitEDF(), machines=k + 3)
        res = adv.run(k)
        opt = migratory_optimum(res.instance)
        rows.append((k, res.n_jobs, opt, res.machines_forced,
                     round(res.machines_forced / opt, 2)))
    return rows


def test_open_question_m_equals_2(benchmark):
    rows = run_once(benchmark, _m_profile)
    print_table(
        "E-OPEN: what m does the Lemma 2 adversary actually need? "
        "(conclusion: the m = 2 case is open — our instances have OPT = 2, "
        "so the gap per OPT-machine is already unbounded at m = 2 "
        "for the *tested* policies)",
        ["k", "n", "flow OPT of I_k", "machines forced", "forced/OPT"],
        rows,
    )
    for _, _, opt, forced, _ in rows:
        assert opt <= 3
    # the per-OPT gap grows: no f(m) bound even at these tiny optima
    assert rows[-1][4] > rows[0][4]


def _unit_jobs():
    rows = []
    for seed in (1, 2, 3):
        inst = unit_jobs_instance(60, horizon=40, window=3, seed=seed)
        m = migratory_optimum(inst)
        for name, factory in [
            ("EDF", lambda k: EDF()),
            ("LLF", lambda k: LLF()),
            ("NP-EDF", lambda k: NonPreemptiveEDF()),
            ("FirstFit", lambda k: FirstFitEDF()),
        ]:
            k = min_machines(factory, inst)
            rows.append((seed, name, m, k, round(k / m, 2),
                         k / m <= E_CONSTANT + 0.01))
    return rows


def test_unit_jobs_vs_e(benchmark):
    rows = run_once(benchmark, _unit_jobs)
    print_table(
        "E-OPEN: unit processing times — machines/OPT vs the optimal "
        f"competitive ratio e ≈ {E_CONSTANT:.3f} (related work [1,5])",
        ["seed", "policy", "OPT m", "machines", "ratio", "≤ e"],
        rows,
    )
    # on random (non-adversarial) unit workloads everything sits below e
    assert all(r[-1] for r in rows)


def _m2_search():
    """Random search for instances with OPT = 2 where a non-migratory
    policy needs many machines (the conclusion's m = 2 open question)."""
    from repro.analysis.search import find_bad_instance
    from repro.generators import uniform_random_instance
    from repro.online.nonmigratory import FirstFitEDF

    report = find_bad_instance(
        lambda: FirstFitEDF(),
        lambda seed: uniform_random_instance(14, horizon=18, max_slack=4,
                                             seed=seed),
        ratio_target=3.0,
        max_trials=40,
        opt_filter=lambda m: m == 2,
    )
    return report


def test_open_question_m2_random_search(benchmark):
    report = run_once(benchmark, _m2_search)
    print(f"\nE-OPEN: random m = 2 search — {report.trials} OPT-2 instances "
          f"probed; worst FirstFit ratio {report.worst_ratio:.2f} "
          f"(seed {report.worst_seed}); counterexample above 3.0 found: "
          f"{report.found is not None}")
    # random search should not beat the adversarial construction: on random
    # OPT-2 instances the gap stays small — the Ω(log n) requires adaptivity
    assert report.worst_ratio <= 3.0
