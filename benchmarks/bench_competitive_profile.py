"""E-PROF — capstone cross-table: every policy on every instance family.

Lemma 1 relates machine blow-up over the migratory optimum to competitive
ratios; this table profiles the empirical ``machines/m`` distribution of all
policies across the paper's instance classes.  The expected shape:

* migratory LLF dominates everywhere (it may migrate; the others may not),
* the non-migratory policies pay a visible but constant premium on the
  structured families (the paper's positive results),
* nothing here is adversarial — the Ω(log n) blow-up of Theorem 3 appears
  only under the Lemma 2 adversary (E-T3), not on random workloads.
"""

from fractions import Fraction

import pytest

from repro.analysis.competitive import profile_matrix
from repro.analysis.report import print_table
from repro.generators import (
    agreeable_instance,
    laminar_random,
    loose_instance,
    uniform_random_instance,
)
from repro.online.edf import EDF, NonPreemptiveEDF
from repro.online.llf import LLF
from repro.online.nonmigratory import BestFitEDF, EmptiestFitEDF, FirstFitEDF

from conftest import run_once

POLICIES = {
    "LLF (mig)": lambda: LLF(),
    "EDF (mig)": lambda: EDF(),
    "FirstFit": lambda: FirstFitEDF(),
    "BestFit": lambda: BestFitEDF(),
    "EmptiestFit": lambda: EmptiestFitEDF(),
    "NP-EDF": lambda: NonPreemptiveEDF(),
}

FAMILIES = {
    "uniform": lambda seed: uniform_random_instance(30, seed=seed),
    "loose α=1/3": lambda seed: loose_instance(30, Fraction(1, 3), seed=seed),
    "agreeable": lambda seed: agreeable_instance(30, seed=seed),
    "laminar": lambda seed: laminar_random(30, seed=seed),
}

SEEDS = range(5)


def _matrix():
    return [p.row() for p in profile_matrix(POLICIES, FAMILIES, SEEDS)]


def test_competitive_profile(benchmark):
    rows = run_once(benchmark, _matrix)
    print_table(
        "E-PROF: machines/m across policies × families "
        "(worst / mean / median over seeds)",
        ["policy", "family", "samples", "worst", "mean", "median"],
        rows,
    )
    by_key = {(r[0], r[1]): r for r in rows}
    # migratory LLF never loses to the non-migratory policies per family
    for family in FAMILIES:
        llf_worst = by_key[("LLF (mig)", family)][3]
        for policy in ("FirstFit", "BestFit", "EmptiestFit", "NP-EDF"):
            assert llf_worst <= by_key[(policy, family)][3] + 1e-9
    # random (non-adversarial) workloads show only constant premiums
    assert max(r[3] for r in rows) <= 4.0
