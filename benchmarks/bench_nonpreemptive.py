"""E-NP — the non-preemptive regime (related work, Saha [11]).

The paper's Section 1: the non-preemptive variant is "hopeless in terms of
competitiveness" — no ``f(m)`` bound exists and ``Θ(log Δ)`` is the answer.
The nesting-trap adversary certifies the gap with *exact* non-preemptive
optima (subset DP + branch and bound), and the class-based baseline shows
the matching ``O(log Δ)`` upper-bound shape.
"""

import math

import pytest

from repro.analysis.report import print_table
from repro.core.adversary.np_trap import NonPreemptiveTrapAdversary
from repro.core.adversary.nonpreemptive import ClassBasedNonPreemptive
from repro.generators import heavy_tailed_instance
from repro.offline.nonpreemptive import exact_np_optimum, np_first_fit
from repro.online.edf import NonPreemptiveEDF

from conftest import run_once


def _trap_sweep():
    rows = []
    for k in (2, 3, 4, 5, 6, 7):
        adv = NonPreemptiveTrapAdversary(NonPreemptiveEDF(), machines=k + 2)
        res = adv.run(k)
        opt = exact_np_optimum(res.instance)
        rows.append((k, res.delta, res.levels, res.machines_forced, opt,
                     round(math.log2(max(res.delta, 2)), 1)))
    return rows


def test_np_trap_lower_bound(benchmark):
    rows = run_once(benchmark, _trap_sweep)
    print_table(
        "E-NP: nesting trap vs NP-EDF — forced machines grow as log Δ while "
        "the exact non-preemptive OPT stays ≤ 3 (Saha's Ω(log Δ))",
        ["k", "Delta", "levels", "machines forced", "exact NP-OPT", "log2 Δ"],
        rows,
    )
    for k, _, levels, forced, opt, _ in rows:
        assert forced == levels == k
        assert opt <= 3
    # the gap grows without bound relative to OPT
    assert rows[-1][3] / rows[-1][4] > rows[0][3] / rows[0][4]


def _class_baseline():
    rows = []
    for delta_cap in (8, 32, 128):
        inst = heavy_tailed_instance(
            40, max_processing=delta_cap, horizon=160, slack=60, seed=21
        )
        machines, sched = np_first_fit(inst)
        class_machines = ClassBasedNonPreemptive().machines_needed(inst)
        classes = ClassBasedNonPreemptive.class_count(inst)
        rows.append((delta_cap, float(inst.delta_ratio), machines,
                     class_machines, classes))
    return rows


def test_np_class_baseline(benchmark):
    rows = run_once(benchmark, _class_baseline)
    print_table(
        "E-NP: non-preemptive upper-bound shapes on heavy-tailed workloads "
        "(class-based pays ≈ #p-classes ≈ log Δ)",
        ["Δ cap", "Δ actual", "NP first-fit machines",
         "class-based machines", "p-classes"],
        rows,
    )
    for _, _, ff, cls, classes in rows:
        assert cls >= classes  # at least one machine per non-empty class
