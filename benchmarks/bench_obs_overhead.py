"""E-OBS — the no-op cost of the observability layer.

The obs contract (ISSUE 3): with no sink attached, the instrumentation
baked into the hot paths must cost < 5% on ``bench_scale``-class work.
This file *proves* it rather than asserting it on faith:

* ``test_no_sink_overhead_vs_uninstrumented`` — A/B of the real hot loop:
  ``migratory_optimum`` at n = 1000 with the instrumented
  :meth:`Dinic.max_flow` versus a verbatim pre-instrumentation copy of the
  same method (kept below), interleaved best-of-R timing on identical
  cold-cache runs.  This is a true no-obs baseline for the hottest code in
  the repository.
* ``test_guard_cost_nanoseconds`` — the absolute per-call price of the
  disabled-path primitives (``incr`` / ``span`` / ``observe`` with no
  sink), so future instrumentation can be budgeted: call-site count ×
  ns/call.
* ``test_observe_allocation_light`` — with a registry attached, the obs
  v2 histogram path (``observe`` → ``Hist.observe``) must stay
  allocation-light: dict arithmetic on ``__slots__`` state, no per-call
  object graph.

The n = 1000 A/B re-gates obs v2 as well: ``Dinic.max_flow`` now feeds
``dinic.max_flow_ns`` / ``dinic.phases_per_call`` / ``dinic.flow_per_call``
histograms, and the baseline copy below predates all instrumentation, so
the measured delta includes the histogram call sites.

These tests do not use the ``benchmark`` fixture on purpose: the benchmark
conftest attaches a registry to every benchmarked test, which would defeat
the point of measuring the *no-sink* path.
"""

import time
from typing import List, Optional

from repro import obs
from repro.analysis.report import print_table
from repro.generators import uniform_random_instance
from repro.model import Instance
from repro.offline.dinic import KERNELS, Dinic
from repro.offline.optimum import migratory_optimum

#: Accepted no-sink overhead on the end-to-end hot path (ISSUE 3: < 5%).
MAX_OVERHEAD = 0.05


def _baseline_max_flow(self, s: int, t: int, kernel: str = "py",
                       limit: Optional[int] = None) -> int:
    """Verbatim copy of the current ``Dinic.max_flow``, minus every obs call.

    Binding this in place of the instrumented method yields a true no-obs
    build of the hot loop — the flat-buffer CSR kernel of PR 6, without
    the PR-3 counters or the obs v2 histogram observations.  Must be kept
    in sync with :meth:`repro.offline.dinic.Dinic.max_flow` whenever the
    kernel itself (not its instrumentation) changes.
    """
    self.finalize()
    if kernel not in KERNELS:
        raise ValueError(f"unknown kernel {kernel!r}; expected one of {KERNELS}")
    if limit is not None and limit <= 0:
        return 0
    bfs = self._bfs_np if kernel == "np" else self._bfs_py
    to, cap, head, elist = self.to, self.cap, self._head, self._elist
    it = self._it
    added = 0
    while True:
        level = bfs(s, t)
        if level[t] < 0:
            return added
        it[:] = head[: self.n]
        path: List[int] = []
        u = s
        while True:
            if u == t:
                aug = min(cap[e] for e in path)
                added += aug
                for e in path:
                    cap[e] -= aug
                    cap[e ^ 1] += aug
                if limit is not None and added >= limit:
                    return added
                cut = next(i for i, e in enumerate(path) if not cap[e])
                del path[cut + 1 :]
                e = path.pop()
                u = to[e ^ 1]
                it[u] += 1
                continue
            i = it[u]
            end = head[u + 1]
            lu = level[u] + 1
            e = -1
            while i < end:
                e = elist[i]
                v = to[e]
                if cap[e] and level[v] == lu:
                    break
                i += 1
            it[u] = i
            if i < end:
                path.append(e)
                u = v
            elif path:
                level[u] = -1
                e = path.pop()
                u = to[e ^ 1]
                it[u] += 1
            else:
                break


def _time_optimum(jobs, rounds: int, use_baseline: bool) -> float:
    """Best-of-``rounds`` seconds for a cold-cache optimum computation."""
    instrumented = Dinic.max_flow
    best = float("inf")
    try:
        if use_baseline:
            Dinic.max_flow = _baseline_max_flow
        for _ in range(rounds):
            inst = Instance(jobs)  # fresh instance: cold cache each round
            t0 = time.perf_counter()
            migratory_optimum(inst, backend="dinic")
            best = min(best, time.perf_counter() - t0)
    finally:
        Dinic.max_flow = instrumented
    return best


def test_no_sink_overhead_vs_uninstrumented():
    assert not obs.enabled(), "no sink may be attached for this measurement"
    jobs = list(uniform_random_instance(1000, horizon=2000, seed=1000))
    # Warm both code paths once, then alternate single timed rounds so
    # machine-wide drift hits both sides equally; best-of filters the rest.
    _time_optimum(jobs, 1, use_baseline=False)
    _time_optimum(jobs, 1, use_baseline=True)
    pairs = 8
    t_instr = t_base = float("inf")
    for _ in range(pairs):
        t_instr = min(t_instr, _time_optimum(jobs, 1, use_baseline=False))
        t_base = min(t_base, _time_optimum(jobs, 1, use_baseline=True))
    overhead = t_instr / t_base - 1
    print_table(
        "E-OBS no-sink overhead (migratory_optimum, n=1000, best-of-8)",
        ["variant", "seconds", "overhead"],
        [
            ("uninstrumented max_flow", round(t_base, 4), "baseline"),
            ("instrumented, no sink", round(t_instr, 4), f"{overhead:+.2%}"),
        ],
    )
    assert overhead < MAX_OVERHEAD, (
        f"no-sink obs overhead {overhead:.2%} exceeds {MAX_OVERHEAD:.0%} "
        f"({t_instr:.4f}s vs {t_base:.4f}s baseline)"
    )


def test_guard_cost_nanoseconds():
    """Absolute price of the disabled primitives (documentation, not a gate)."""
    assert not obs.enabled()
    n = 1_000_000
    t0 = time.perf_counter()
    for _ in range(n):
        obs.incr("bench.counter")
    incr_ns = (time.perf_counter() - t0) / n * 1e9
    t0 = time.perf_counter()
    for _ in range(n):
        with obs.span("bench.span"):
            pass
    span_ns = (time.perf_counter() - t0) / n * 1e9
    t0 = time.perf_counter()
    for _ in range(n):
        obs.observe("bench.hist", 42)
    observe_ns = (time.perf_counter() - t0) / n * 1e9
    print_table(
        "E-OBS disabled-primitive cost",
        ["primitive", "ns/call"],
        [
            ("incr (no sink)", round(incr_ns, 1)),
            ("span (no sink)", round(span_ns, 1)),
            ("observe (no sink)", round(observe_ns, 1)),
        ],
    )
    # Generous sanity ceiling: a no-op guard must stay well under 1 µs.
    assert incr_ns < 1000 and span_ns < 2000 and observe_ns < 1000


def test_observe_allocation_light():
    """`observe` into a live registry must not build a per-call object graph.

    Warm the histogram so every bucket already exists, then trace 10k
    observations with ``tracemalloc``: steady-state growth is a few ints
    (count/sum bookkeeping), far below one small object per call.
    """
    import tracemalloc

    assert not obs.enabled()
    n = 10_000
    with obs.capture() as registry:
        for v in range(1, 1025):  # pre-grow every bucket the loop will hit
            obs.observe("bench.hist", v)
        tracemalloc.start()
        for v in range(n):
            obs.observe("bench.hist", v % 1024 + 1)
        current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    hist = registry.hists["bench.hist"]
    assert hist.count == 1024 + n
    print_table(
        "E-OBS observe() allocation (10k samples, warm buckets)",
        ["metric", "bytes"],
        [("retained", current), ("peak", peak)],
    )
    # One small PyObject is ~56 bytes; n of them would be ~560 KB.  The
    # observed steady state is a handful of ints and tracemalloc's own
    # bookkeeping — gate with plenty of slack.
    assert peak < 64 * 1024, f"observe() allocated {peak} bytes peak over {n} calls"


def test_sink_attached_still_reasonable():
    """With a registry attached the same run must stay within 2× (info gate)."""
    jobs = list(uniform_random_instance(400, horizon=800, seed=400))
    t_off = _time_optimum(jobs, 3, use_baseline=False)
    best_on = float("inf")
    for _ in range(3):
        inst = Instance(jobs)
        with obs.capture():
            t0 = time.perf_counter()
            migratory_optimum(inst, backend="dinic")
            best_on = min(best_on, time.perf_counter() - t0)
    print_table(
        "E-OBS registry-attached overhead (n=400)",
        ["mode", "seconds"],
        [("no sink", round(t_off, 4)), ("registry attached", round(best_on, 4))],
    )
    assert best_on < 2 * t_off + 0.01
