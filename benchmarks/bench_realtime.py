"""E-RT — capacity planning for real-time task sets (the intro's domain).

The paper's motivation is scheduling recurring hard-deadline work in
real-time systems.  This experiment runs periodic/sporadic task sets
through the library end-to-end: expansion → classification → algorithm →
verified schedule, comparing the recommendation against the utilization
bound and the exact optimum.
"""

from fractions import Fraction

import pytest

from repro.analysis.report import print_table
from repro.online.llf import LLF
from repro.realtime import (
    TaskSet,
    PeriodicTask,
    harmonic_taskset,
    machines_for_taskset,
    online_machines_for_taskset,
    provisioning_report,
    random_taskset,
)

from conftest import run_once


def _harmonic_sweep():
    rows = []
    for levels in (2, 3, 4, 5):
        ts = harmonic_taskset(levels, base_period=4,
                              utilization_per_task=Fraction(2, 5))
        rep = provisioning_report(ts)
        rows.append((levels, rep.n_jobs, round(rep.utilization, 2),
                     rep.utilization_bound, rep.migratory_opt,
                     rep.recommended_machines, rep.instance_class))
    return rows


def test_harmonic_provisioning(benchmark):
    rows = run_once(benchmark, _harmonic_sweep)
    print_table(
        "E-RT: harmonic task sets through the dispatcher "
        "(utilization ⌈U⌉ vs exact OPT vs recommendation)",
        ["levels", "jobs", "U", "ceil(U)", "OPT m", "recommended",
         "class"],
        rows,
    )
    for _, _, _, ceil_u, opt, recommended, _ in rows:
        assert ceil_u <= opt + 1  # utilization is (almost) a lower bound
        assert recommended >= opt


def _random_sweep():
    rows = []
    for seed in range(4):
        ts = random_taskset(5, Fraction(2), seed=seed)
        rep = provisioning_report(ts, horizon=48)
        rows.append((seed, rep.n_jobs, round(rep.utilization, 2),
                     rep.migratory_opt, rep.recommended_machines,
                     round(rep.overhead, 2), rep.algorithm))
    return rows


def test_random_taskset_provisioning(benchmark):
    rows = run_once(benchmark, _random_sweep)
    print_table(
        "E-RT: random UUniFast task sets (U = 2.0, horizon 48)",
        ["seed", "jobs", "U", "OPT m", "recommended", "overhead", "algorithm"],
        rows,
    )
    for _, _, _, opt, recommended, overhead, _ in rows:
        assert recommended >= opt
        assert overhead <= 4.0


def _sporadic_vs_periodic():
    rows = []
    ts = TaskSet()
    for i, (c, p) in enumerate([(1, 4), (2, 6), (1, 8), (2, 12)]):
        ts.add(PeriodicTask(c, p, name=f"t{i}"))
    periodic = ts.periodic_instance(horizon=48)
    m_periodic = machines_for_taskset(ts, horizon=48)
    for delay in (0, 2, 6):
        sporadic = ts.sporadic_instance(horizon=48, max_extra_delay=delay, seed=7)
        from repro.offline.optimum import migratory_optimum

        rows.append((delay, len(sporadic), migratory_optimum(sporadic),
                     m_periodic))
    return rows


def test_sporadic_slack_helps(benchmark):
    rows = run_once(benchmark, _sporadic_vs_periodic)
    print_table(
        "E-RT: sporadic release jitter vs the periodic baseline "
        "(later releases = fewer jobs in the horizon = never harder)",
        ["max extra delay", "jobs", "OPT (sporadic)", "OPT (periodic)"],
        rows,
    )
    for _, _, opt_sporadic, opt_periodic in rows:
        assert opt_sporadic <= opt_periodic


def test_online_policy_on_tasksets(benchmark):
    def run():
        rows = []
        for levels in (3, 4):
            ts = harmonic_taskset(levels, utilization_per_task=Fraction(2, 5))
            opt = machines_for_taskset(ts)
            llf = online_machines_for_taskset(ts, lambda: LLF())
            rows.append((levels, opt, llf))
        return rows

    rows = run_once(benchmark, run)
    print_table(
        "E-RT: LLF online vs exact OPT on harmonic task sets",
        ["levels", "OPT m", "LLF machines"],
        rows,
    )
    for _, opt, llf in rows:
        assert llf <= 2 * opt + 1
