"""E-T3 / E-T4 — the strong lower bound (Theorem 3, Lemma 2, Theorem 4).

Series: for k = 2..K and each non-migratory policy, the adversary forces k
machines with n = O(2^k) jobs while the constructed instance has a verified
3-machine migratory witness.  Theorem 4's statement column reports the
non-migratory offline bound 6·3−5 = 13 (the instance is feasible offline
non-migratorily on ≤ 13 machines by Theorem 2), against which the forced
machine count is unbounded.
"""

import math

import pytest

from repro.analysis.metrics import theorem2_bound
from repro.analysis.report import print_table
from repro.core.adversary.migration_gap import MigrationGapAdversary
from repro.offline.optimum import migratory_optimum
from repro.online.nonmigratory import BestFitEDF, EmptiestFitEDF, FirstFitEDF

from conftest import run_once

POLICIES = [FirstFitEDF, BestFitEDF, EmptiestFitEDF]
K_RANGE = range(2, 9)


def _run_policy(policy_cls):
    rows = []
    for k in K_RANGE:
        adv = MigrationGapAdversary(policy_cls(), machines=k + 3)
        res = adv.run(k)
        witness = res.offline_witness()
        rep = witness.verify(res.instance)
        rows.append(
            (
                k,
                res.n_jobs,
                res.machines_forced,
                round(math.log2(res.n_jobs), 2),
                rep.feasible and rep.machines_used <= 3,
                theorem2_bound(3),
            )
        )
    return rows


@pytest.mark.parametrize("policy_cls", POLICIES)
def test_migration_gap_lower_bound(benchmark, policy_cls):
    rows = run_once(benchmark, lambda: _run_policy(policy_cls))
    print_table(
        f"E-T3/E-T4: Lemma 2 adversary vs {policy_cls.__name__} "
        "(paper: forced = k = Ω(log n), migratory OPT ≤ 3, OPT_nonmig ≤ 13)",
        ["k", "n jobs", "machines forced", "log2(n)", "3-machine witness ok",
         "Thm-2 bound on OPT_nonmig"],
        rows,
    )
    for k, n, forced, log_n, witness_ok, _ in rows:
        assert forced == k
        assert witness_ok
        assert forced >= log_n - 1  # Ω(log n)


def test_migration_gap_flow_cross_check(benchmark):
    """Exact flow OPT of the adversarial instance (small k: flow is costly)."""

    def run():
        rows = []
        for k in (2, 3, 4, 5):
            adv = MigrationGapAdversary(FirstFitEDF(), machines=k + 3)
            res = adv.run(k)
            rows.append((k, res.n_jobs, res.machines_forced,
                         migratory_optimum(res.instance)))
        return rows

    rows = run_once(benchmark, run)
    print_table(
        "E-T3 cross-check: exact migratory OPT of I_k via max-flow (paper: ≤ 3)",
        ["k", "n jobs", "machines forced", "flow OPT"],
        rows,
    )
    for _, _, forced, opt in rows:
        assert opt <= 3


def _parameter_sweep():
    """Lemma 2 across (α, β) pairs satisfying Equation (1)."""
    from fractions import Fraction

    pairs = [
        (Fraction(3, 4), Fraction(1, 4)),   # the paper's example values
        (Fraction(4, 5), Fraction(1, 5)),
        (Fraction(3, 4), Fraction(1, 8)),   # finer short jobs
        (Fraction(9, 10), Fraction(2, 5)),  # Equation (1) needs α > 1/√2
    ]
    rows = []
    for alpha, beta in pairs:
        adv = MigrationGapAdversary(
            FirstFitEDF(), machines=9, alpha=alpha, beta=beta
        )
        res = adv.run(6)
        witness_ok = res.offline_witness().verify(res.instance).feasible
        rows.append((float(alpha), float(beta), res.n_jobs,
                     res.machines_forced, witness_ok))
    return rows


def test_construction_parameter_sweep(benchmark):
    """The construction works for every (α, β) satisfying Equation (1),
    not just the paper's example α = 3/4, β = 1/4."""
    rows = run_once(benchmark, _parameter_sweep)
    print_table(
        "E-T3 parameters: Lemma 2 across valid (α, β) pairs "
        "(Equation (1): ⌊(2α−1)/β⌋·αβ > 1−α)",
        ["alpha", "beta", "n jobs", "machines forced", "witness ok"],
        rows,
    )
    for _, _, _, forced, witness_ok in rows:
        assert forced == 6 and witness_ok
