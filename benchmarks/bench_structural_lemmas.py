"""E-L3 / E-L4 — the structural transformation lemmas of Section 4.

* Lemma 3: ``m(J^γ), m(J^0) ≤ m(J)/(1−γ) + 1`` (laxity trims),
* Lemma 4: ``m(J^s) = O(m(J))`` for α-loose ``J`` with ``α < 1/s``
  (processing-time inflation).

Both are measured with the exact flow optimum on random instances.
"""

from fractions import Fraction

import pytest

from repro.analysis.report import print_table
from repro.generators import loose_instance, uniform_random_instance
from repro.offline.optimum import migratory_optimum

from conftest import run_once

GAMMAS = [Fraction(1, 10), Fraction(1, 4), Fraction(1, 2), Fraction(3, 4)]
SPEEDS = [Fraction(3, 2), Fraction(2), Fraction(5, 2)]


def _lemma3():
    inst = uniform_random_instance(40, seed=23)
    m = migratory_optimum(inst)
    rows = []
    for gamma in GAMMAS:
        bound = m / (1 - gamma) + 1
        m_left = migratory_optimum(inst.trim_left(gamma))
        m_right = migratory_optimum(inst.trim_right(gamma))
        rows.append((float(gamma), m, m_left, m_right, float(bound),
                     m_left <= bound and m_right <= bound))
    return rows


def test_lemma3_trim_bounds(benchmark):
    rows = run_once(benchmark, _lemma3)
    print_table(
        "E-L3: Lemma 3 — m(J^γ), m(J^0) vs bound m/(1−γ)+1",
        ["gamma", "m(J)", "m(J^γ) left-trim", "m(J^0) right-trim",
         "paper bound", "bound holds"],
        rows,
    )
    assert all(r[-1] for r in rows)


def _lemma4():
    rows = []
    for speed in SPEEDS:
        # α must satisfy α < 1/s; pick α = 1/(2s) on the safe side
        alpha = 1 / (2 * speed)
        inst = loose_instance(40, alpha, seed=31)
        m = migratory_optimum(inst)
        m_inflated = migratory_optimum(inst.inflated(speed))
        rows.append((float(speed), float(alpha), m, m_inflated,
                     Fraction(m_inflated, m)))
    return rows


def test_lemma4_inflation_bound(benchmark):
    rows = run_once(benchmark, _lemma4)
    print_table(
        "E-L4: Lemma 4 — m(J^s) = O(m(J)) for α-loose J, α < 1/s",
        ["speed s", "alpha", "m(J)", "m(J^s)", "m(J^s)/m(J)"],
        rows,
    )
    for _, _, _, _, ratio in rows:
        assert ratio <= 10  # O(1) with a generous concrete constant
