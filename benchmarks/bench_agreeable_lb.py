"""E-T15 — the agreeable lower bound (Theorem 15 / Lemma 9).

Series: capacity ratio sweep around the paper's threshold 6 − 2√6 ≈ 1.1010
for EDF and LLF on m = 40.  Below the threshold the Lemma 9 adversary forces
a deadline miss within a few rounds (and the per-round debt grows by δ > 0);
above it the tested algorithms survive.  The constructed instance is
agreeable with identical processing times and verified migratory OPT = m.
"""

from fractions import Fraction

import pytest

from repro.analysis.report import print_table
from repro.core.adversary.agreeable_lb import (
    THEOREM15_THRESHOLD,
    AgreeableAdversary,
)
from repro.offline.optimum import migratory_optimum
from repro.online.edf import EDF
from repro.online.llf import LLF

from conftest import run_once

RATIOS = [Fraction(1), Fraction(21, 20), Fraction(11, 10), Fraction(23, 20),
          Fraction(13, 10), Fraction(3, 2)]
M = 40


def _sweep(policy_cls):
    rows = []
    for ratio in RATIOS:
        machines = int(ratio * M)
        adv = AgreeableAdversary(policy_cls(), m=M, machines=machines)
        res = adv.run(max_rounds=15)
        debt_delta = (
            float(res.debts[2] - res.debts[1]) if len(res.debts) >= 3 else None
        )
        rows.append((float(ratio), machines, res.missed, res.rounds_played,
                     debt_delta if debt_delta is not None else "-"))
    return rows


@pytest.mark.parametrize("policy_cls", [EDF, LLF])
def test_theorem15_capacity_sweep(benchmark, policy_cls):
    rows = run_once(benchmark, lambda: _sweep(policy_cls))
    print_table(
        f"E-T15: Lemma 9 adversary vs {policy_cls.__name__} at m = {M} "
        f"(paper threshold: (6−2√6)·m ≈ {THEOREM15_THRESHOLD:.4f}·m)",
        ["capacity c", "machines", "missed deadline", "rounds", "round-debt δ"],
        rows,
    )
    by_ratio = {r[0]: r[2] for r in rows}
    assert by_ratio[1.0]  # at c = 1.0 every algorithm dies
    assert not by_ratio[1.5]  # well above the threshold they survive
    # the empirical crossover sits near the paper's 1.10
    assert by_ratio[1.05]


def test_theorem15_instance_validity(benchmark):
    def run():
        adv = AgreeableAdversary(EDF(), m=M, machines=M)
        res = adv.run(max_rounds=6)
        return res, migratory_optimum(res.instance)

    res, opt = run_once(benchmark, run)
    print(f"\nE-T15 validity: n = {len(res.instance)}, agreeable = "
          f"{res.instance.is_agreeable()}, identical p = "
          f"{len({j.processing for j in res.instance}) == 1}, "
          f"flow OPT = {opt} (m = {M})")
    assert res.instance.is_agreeable()
    assert opt == M


def _debt_growth():
    adv = AgreeableAdversary(EDF(), m=M, machines=43)  # c = 1.075 < threshold
    res = adv.run(max_rounds=15)
    return [(r.index, float(r.debt_at_start), float(r.type1_leftover),
             float(r.type2_leftover), r.released_tights) for r in res.rounds]


def test_theorem15_debt_growth(benchmark):
    rows = run_once(benchmark, _debt_growth)
    print_table(
        "E-T15: Lemma 9 debt trajectory at c = 1.075 "
        "(paper: behind-by-w grows by δ > 0 per round until a miss is forced)",
        ["round", "debt w", "type-1 left @t+1", "type-2 left @t+1",
         "tights released"],
        rows,
    )
    debts = [r[1] for r in rows]
    assert len(debts) >= 2 and debts[1] > debts[0]
