"""E-T12 / E-L8 — the 32.70·m non-preemptive agreeable algorithm.

Series: total machines (and the EDF/MediumFit breakdown) against the
Theorem 12 bound, plus Lemma 8's 16m/α bound for the MediumFit part and the
anchoring ablation the paper calls out (running jobs at the start or the end
of their window instead of the middle does *not* give O(m)).
"""

from fractions import Fraction

import pytest

from repro.analysis.report import print_table
from repro.core.agreeable import AgreeableAlgorithm, combined_bound, optimal_alpha
from repro.core.medium_fit import MediumFit, lemma8_bound
from repro.generators import agreeable_instance, agreeable_tight_instance
from repro.model import Instance, Job
from repro.offline.optimum import migratory_optimum

from conftest import run_once


def _theorem12():
    algo = AgreeableAlgorithm()
    rows = []
    for seed in (1, 2, 3, 4):
        inst = agreeable_instance(60, seed=seed)
        result = algo.run(inst)
        result.schedule.verify(inst).require_feasible()
        m = migratory_optimum(inst)
        bound = float(algo.theorem12_bound(m))
        rows.append((seed, len(inst), m, result.loose_machines,
                     result.tight_machines, result.machines, round(bound, 1),
                     result.machines <= bound))
    return rows


def test_theorem12_agreeable(benchmark):
    rows = run_once(benchmark, _theorem12)
    print_table(
        "E-T12: Theorem 12 algorithm on agreeable instances "
        "(paper bound: 32.70·m, non-preemptive)",
        ["seed", "n", "OPT m", "EDF pool", "MediumFit pool", "total",
         "32.70·m", "within bound"],
        rows,
    )
    assert all(r[-1] for r in rows)


def test_optimal_alpha_constant(benchmark):
    alpha, bound = run_once(benchmark, lambda: optimal_alpha(20_000))
    print(f"\nE-T12: optimizer α* = {float(alpha):.4f}, "
          f"bound = {float(bound):.4f} (paper: α ≈ 0.63, 32.70)")
    assert abs(float(bound) - 32.7007) < 1e-3


def _lemma8():
    alpha = Fraction(63, 100)
    rows = []
    for seed in (1, 2, 3):
        inst = agreeable_tight_instance(60, alpha, seed=seed)
        m = migratory_optimum(inst)
        used = MediumFit().machines_needed(inst)
        bound = float(lemma8_bound(m, alpha))
        rows.append((seed, len(inst), m, used, round(bound, 1), used <= bound))
    return rows


def test_lemma8_medium_fit(benchmark):
    rows = run_once(benchmark, _lemma8)
    print_table(
        "E-L8: MediumFit on α-tight agreeable instances (paper: ≤ 16m/α)",
        ["seed", "n", "OPT m", "MediumFit machines", "16m/α", "within bound"],
        rows,
    )
    assert all(r[-1] for r in rows)


def _anchor_ablation():
    """The paper: running j in [r, d−ℓ) or [r+ℓ, d) does not give O(m).

    Geometric staircase: job i has window [0, 2^{i+2}) and processing just
    above half the window.  Left anchoring stacks all n jobs at time 0
    (n machines) while the ℓ/2-centering spreads the slots across scales so
    only O(1) of them overlap anywhere — and the optimum here is O(1).
    """
    rows = []
    for n in (6, 9, 12):
        horizon = 2 ** (n + 2)
        release_aligned = Instance(
            [Job(0, 2 ** (i + 2) // 2 + 1, 2 ** (i + 2), id=i) for i in range(n)]
        )
        deadline_aligned = Instance(
            [
                Job(horizon - 2 ** (i + 2), 2 ** (i + 2) // 2 + 1, horizon, id=i)
                for i in range(n)
            ]
        )
        m = max(
            migratory_optimum(release_aligned), migratory_optimum(deadline_aligned)
        )
        rows.append(
            (
                n,
                m,
                MediumFit("middle").machines_needed(release_aligned),
                MediumFit("middle").machines_needed(deadline_aligned),
                MediumFit("left").machines_needed(release_aligned),
                MediumFit("right").machines_needed(deadline_aligned),
            )
        )
    return rows


def test_anchor_ablation(benchmark):
    rows = run_once(benchmark, _anchor_ablation)
    print_table(
        "E-L8 ablation: anchoring matters — the ℓ/2-centering is load-bearing "
        "(paper: [r, d−ℓ) / [r+ℓ, d) slots do not give O(m))",
        ["n", "OPT m", "middle (rel-aligned)", "middle (dl-aligned)",
         "left anchor (rel-aligned)", "right anchor (dl-aligned)"],
        rows,
    )
    for n, m, mid_rel, mid_dl, left, right in rows:
        # the naive anchors collapse to n machines; MediumFit stays O(m)
        assert left == n and right == n
        assert mid_rel <= 4 * m and mid_dl <= 4 * m
