"""E-T5 — the O(1)-competitive algorithm for α-loose jobs (Theorems 5/8).

Series: machines used by the Theorem 6 pipeline over the migratory optimum,
across α and instance size.  The paper promises a ratio bounded by a
constant independent of m and n (the constant depends on α through the
Theorem 7 budget ⌈(1+1/ε)²⌉).
"""

from fractions import Fraction

import pytest

from repro.analysis.report import print_table
from repro.core.loose import LooseAlgorithm
from repro.generators import loose_instance
from repro.offline.optimum import migratory_optimum

from conftest import run_once

ALPHAS = [Fraction(1, 10), Fraction(1, 4), Fraction(2, 5), Fraction(3, 5)]


def _sweep_alpha():
    rows = []
    for alpha in ALPHAS:
        inst = loose_instance(60, alpha, seed=17)
        algo = LooseAlgorithm(alpha)
        result = algo.run(inst)
        m = migratory_optimum(inst)
        result.schedule.verify(inst).require_feasible()
        rows.append(
            (
                float(alpha),
                len(inst),
                m,
                result.machines,
                Fraction(result.machines, m),
                float(result.speed),
                algo.theorem7_budget(m),
            )
        )
    return rows


def test_loose_alpha_sweep(benchmark):
    rows = run_once(benchmark, _sweep_alpha)
    print_table(
        "E-T5: Theorem 5 pipeline on α-loose instances "
        "(paper: machines = O(m), constant depends only on α)",
        ["alpha", "n", "OPT m", "machines", "machines/m", "speed s",
         "Thm-7 budget for m"],
        rows,
    )
    for _, _, m, machines, ratio, _, _ in rows:
        assert ratio <= 8  # O(1): generous concrete constant


def _sweep_size():
    alpha = Fraction(1, 3)
    rows = []
    for n in (20, 40, 80, 160):
        inst = loose_instance(n, alpha, seed=n)
        result = LooseAlgorithm(alpha).run(inst)
        m = migratory_optimum(inst)
        rows.append((n, m, result.machines, Fraction(result.machines, m)))
    return rows


def test_loose_size_sweep(benchmark):
    rows = run_once(benchmark, _sweep_size)
    print_table(
        "E-T5: ratio vs instance size at α = 1/3 "
        "(paper: flat in n — competitiveness independent of n)",
        ["n", "OPT m", "machines", "machines/m"],
        rows,
    )
    ratios = [float(r[3]) for r in rows]
    assert max(ratios) <= 8
    # the ratio must not grow systematically with n
    assert ratios[-1] <= ratios[0] * 2 + 1
