"""E-DBL — guessing the optimum m online (Section 2's standing assumption).

The paper assumes the online algorithm knows m, citing [4] for the fact
that a guess-and-double wrapper loses only a constant factor.  Series:
machines opened by the doubling wrapper vs the known-m requirement, for the
general first-fit assigner and the laminar budget assigner.
"""

import pytest

from repro.analysis.report import print_table
from repro.core.laminar import LaminarAlgorithm
from repro.generators import laminar_random, uniform_random_instance
from repro.online.doubling import LaminarAssigner, run_doubling
from repro.online.engine import min_machines
from repro.online.nonmigratory import FirstFitEDF

from conftest import run_once


def _first_fit_rows():
    rows = []
    for seed in (1, 2, 3, 4):
        inst = uniform_random_instance(40, seed=seed)
        known = min_machines(lambda k: FirstFitEDF(), inst)
        engine, policy = run_doubling(inst)
        assert not engine.missed_jobs
        rows.append((seed, len(inst), known, policy.total_machines_opened,
                     len(policy.phases), policy.current_guess,
                     round(policy.total_machines_opened / known, 2)))
    return rows


def test_doubling_first_fit(benchmark):
    rows = run_once(benchmark, _first_fit_rows)
    print_table(
        "E-DBL: guess-and-double vs known-m first fit "
        "(paper/[4]: unknown m costs a constant factor)",
        ["seed", "n", "known-m machines", "doubling machines", "phases",
         "final guess", "overhead"],
        rows,
    )
    for _, _, known, opened, _, _, _ in rows:
        assert opened <= 4 * known + 2


def _laminar_rows():
    rows = []
    for seed in (1, 2, 3):
        inst = laminar_random(30, density_range=(0.6, 0.9), seed=seed)
        known = LaminarAlgorithm().min_tight_machines(inst)
        engine, policy = run_doubling(
            inst, assigner_factory=lambda mu: LaminarAssigner()
        )
        assert not engine.missed_jobs
        rows.append((seed, len(inst), known, policy.total_machines_opened,
                     len(policy.phases),
                     round(policy.total_machines_opened / known, 2)))
    return rows


def test_doubling_laminar(benchmark):
    rows = run_once(benchmark, _laminar_rows)
    print_table(
        "E-DBL: guess-and-double with the Section 5 budget assigner",
        ["seed", "n", "known-m' machines", "doubling machines", "phases",
         "overhead"],
        rows,
    )
    for _, _, known, opened, _, _ in rows:
        assert opened <= 4 * known + 4
