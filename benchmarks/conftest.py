"""Benchmark harness conventions.

Every benchmark regenerates one experiment row/series from EXPERIMENTS.md and
prints it through ``repro.analysis.report.print_table`` (run with ``-s`` to
see the tables; pytest-benchmark reports the timings either way).  Heavy
experiments use ``benchmark.pedantic`` with a single round so the reported
series comes from exactly one run.

Every test that uses the ``benchmark`` fixture additionally runs with an
observability registry attached (:mod:`repro.obs`): its counter/gauge/span
snapshot is stored in ``benchmark.extra_info["obs"]``, so the
``--benchmark-json`` artifact carries per-phase breakdowns (augmenting
paths, cache probes, engine decisions, …) alongside the wall-clock numbers.
Tests that must measure the *no-sink* fast path (``bench_obs_overhead``)
simply avoid the ``benchmark`` fixture.
"""

import pytest

from repro import obs


def run_once(benchmark, fn):
    """Benchmark ``fn`` with one warm round and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture(autouse=True)
def obs_snapshot(request):
    """Attach a registry per benchmark; snapshot into the JSON artifact."""
    if "benchmark" not in request.fixturenames:
        yield
        return
    # Resolve the benchmark fixture *now*: it must outlive this fixture's
    # teardown (resolving it there breaks on pytest >= 9).
    bench = request.getfixturevalue("benchmark")
    with obs.capture() as registry:
        yield
    snapshot = registry.snapshot()
    if any(snapshot.values()):
        bench.extra_info["obs"] = snapshot
