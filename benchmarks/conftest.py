"""Benchmark harness conventions.

Every benchmark regenerates one experiment row/series from EXPERIMENTS.md and
prints it through ``repro.analysis.report.print_table`` (run with ``-s`` to
see the tables; pytest-benchmark reports the timings either way).  Heavy
experiments use ``benchmark.pedantic`` with a single round so the reported
series comes from exactly one run.
"""

import pytest


def run_once(benchmark, fn):
    """Benchmark ``fn`` with one warm round and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
