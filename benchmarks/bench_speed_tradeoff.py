"""E-SPD — speed vs machine augmentation (related work, Section 1).

The paper contrasts its machine-augmentation results with the
speed-augmentation line: Chan–Lam–To [3] schedule non-migratorily with
speed 5.828 on the migratory optimum's m machines, and trade
``⌈(1+1/ε)²⌉·m`` machines against speed ``(1+ε)²``.  Series:

* the empirical minimum speed of the non-migratory first-fit black box at
  m, m+1, … machines (the trade-off curve: more machines → less speed),
* the empirical speed requirement at exactly m machines vs the 5.828
  worst-case constant.
"""

from fractions import Fraction

import pytest

from repro.analysis.report import print_table
from repro.analysis.speed import min_speed, speed_machines_tradeoff
from repro.generators import uniform_random_instance
from repro.offline.optimum import migratory_optimum
from repro.online.nonmigratory import FirstFitEDF

from conftest import run_once

CLT_CONSTANT = 5.828


def _tradeoff_curve():
    inst = uniform_random_instance(30, seed=11)
    m = migratory_optimum(inst)
    curve = speed_machines_tradeoff(
        lambda: FirstFitEDF(), inst, range(m, m + 5), precision=Fraction(1, 16)
    )
    return m, [(k, float(s) if s else None) for k, s in curve]


def test_speed_machines_tradeoff(benchmark):
    m, curve = run_once(benchmark, _tradeoff_curve)
    print_table(
        f"E-SPD: machines vs required speed (non-migratory first fit, m = {m}) "
        "— the related-work trade-off axis",
        ["machines", "min speed"],
        curve,
    )
    speeds = [s for _, s in curve if s is not None]
    assert speeds == sorted(speeds, reverse=True)  # more machines, less speed
    assert speeds[-1] == 1.0  # enough machines need no speed-up


def _speed_at_m():
    rows = []
    for seed in range(6):
        inst = uniform_random_instance(24, seed=seed)
        m = migratory_optimum(inst)
        s = min_speed(lambda: FirstFitEDF(), inst, m, precision=Fraction(1, 16))
        rows.append((seed, len(inst), m, float(s), s is not None and float(s) <= CLT_CONSTANT))
    return rows


def test_speed_requirement_at_m(benchmark):
    rows = run_once(benchmark, _speed_at_m)
    print_table(
        "E-SPD: empirical non-migratory speed requirement on exactly m "
        f"machines (CLT [3] worst case: {CLT_CONSTANT})",
        ["seed", "n", "OPT m", "min speed", "≤ 5.828"],
        rows,
    )
    assert all(r[-1] for r in rows)
