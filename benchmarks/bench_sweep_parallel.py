"""E-PAR — parallel sweep runner: speedup and bit-identity (ISSUE 4).

A 200-instance competitive sweep (FirstFitEDF over seeded uniform
instances) is the acceptance workload: 4 workers must beat the serial path
by ≥3× wall-clock while returning bit-identical results — same order, same
values, same merged counter totals.  The identity assertions run on every
machine; the speedup gate needs real parallel hardware and is skipped below
4 cores (CI runners have them).  Durability and sharding ride the same
workload: journaling must cost < 10% wall-clock, and folding 3 shard
journals back into the canonical report (``merge_journals``) must cost
< 10% of the unsharded sweep.
"""

import os
import time

import pytest

from conftest import run_once
from repro.analysis.report import print_table
from repro.runner import SweepPlan, run_sweep

N_INSTANCES = 200
CHUNKSIZE = 10


def sweep_plan(n_instances: int = N_INSTANCES) -> SweepPlan:
    return SweepPlan.competitive(
        ["firstfit"], ["uniform"], n=24, seeds=n_instances, root_seed=4
    )


def _fingerprint(report):
    """Everything the determinism contract pins (span times are wall time)."""
    snapshot = report.registry.snapshot()
    return (
        [(r.index, r.status, r.value) for r in report.results],
        snapshot["counters"],
        snapshot.get("events", {}),
    )


def test_sweep_serial_baseline(benchmark):
    plan = sweep_plan()
    report = run_once(benchmark, lambda: run_sweep(plan, n_jobs=1, chunksize=CHUNKSIZE))
    assert report.ok and len(report.results) == N_INSTANCES


def test_sweep_parallel_workers(benchmark):
    workers = min(4, os.cpu_count() or 1)
    plan = sweep_plan()
    report = run_once(
        benchmark, lambda: run_sweep(plan, n_jobs=workers, chunksize=CHUNKSIZE)
    )
    assert report.ok and len(report.results) == N_INSTANCES
    benchmark.extra_info["workers"] = workers


def test_parallel_bit_identical_to_serial():
    """The identity half of the acceptance gate — runs on any machine."""
    # two policies per instance: each group's items share a warm cache
    plan = SweepPlan.competitive(
        ["firstfit", "edf"], ["uniform"], n=24, seeds=30, root_seed=4
    )
    serial = run_sweep(plan, n_jobs=1, chunksize=CHUNKSIZE)
    for n_jobs in (2, 4):
        parallel = run_sweep(plan, n_jobs=n_jobs, chunksize=CHUNKSIZE)
        assert _fingerprint(parallel) == _fingerprint(serial), n_jobs
    # grouped chunks share warm feasibility caches inside the workers
    counters = serial.registry.snapshot()["counters"]
    assert counters["cache.verdict_hits"] > 0


def test_sweep_journal_overhead(tmp_path):
    """Journaling the fault-free 200-instance sweep costs < 10% wall-clock.

    The durability layer (ISSUE 5) appends one checksummed JSONL record per
    completed item; on a sweep whose items do real solver work that must be
    noise.  Both runs happen back-to-back in this process, so machine load
    cancels out; a small absolute slack absorbs timer jitter on the
    sub-second serial path.
    """
    from repro.runner import canonical_report_view, read_journal

    plan = sweep_plan()
    run_sweep(plan, n_jobs=1, chunksize=CHUNKSIZE)  # warm imports/caches
    t0 = time.perf_counter()
    plain = run_sweep(plan, n_jobs=1, chunksize=CHUNKSIZE)
    t_plain = time.perf_counter() - t0
    journal_path = str(tmp_path / "sweep-journal.jsonl")
    t0 = time.perf_counter()
    journaled = run_sweep(
        plan, n_jobs=1, chunksize=CHUNKSIZE, journal=journal_path
    )
    t_journaled = time.perf_counter() - t0
    # durability must not change a single comparable byte of the report
    assert canonical_report_view(journaled.snapshot()) == canonical_report_view(
        plain.snapshot()
    )
    _, records, dropped = read_journal(journal_path)
    assert len(records) == N_INSTANCES and dropped == 0
    overhead = t_journaled / t_plain - 1.0
    print_table(
        f"E-PAR · journal overhead on {N_INSTANCES} items",
        ["variant", "seconds", "overhead"],
        [
            ("plain", round(t_plain, 3), "-"),
            ("journaled", round(t_journaled, 3), f"{overhead:+.1%}"),
        ],
    )
    assert t_journaled <= t_plain * 1.10 + 0.05, (
        f"journaling overhead {overhead:+.1%} exceeds the 10% budget"
    )


def test_sweep_shard_merge_overhead(tmp_path):
    """Merging 3 shard journals costs < 10% of the sweep itself (ISSUE 7).

    The multi-host story only pays off if reassembly is cheap: the 200-
    instance sweep runs as 3 journaled shards, and ``merge_journals`` must
    fold them into the canonical report — byte-identical to the unsharded
    run — in under 10% of the unsharded serial wall-clock.  A small
    absolute slack absorbs timer jitter, as in the journal-overhead gate.
    """
    from repro.runner import canonical_report_view, merge_journals

    plan = sweep_plan()
    run_sweep(plan, n_jobs=1, chunksize=CHUNKSIZE)  # warm imports/caches
    t0 = time.perf_counter()
    clean = run_sweep(plan, n_jobs=1, chunksize=CHUNKSIZE)
    t_sweep = time.perf_counter() - t0
    journals = []
    for k in range(3):
        path = str(tmp_path / f"shard{k}.jsonl")
        report = run_sweep(
            plan.shard(k, 3), n_jobs=1, chunksize=CHUNKSIZE, journal=path
        )
        assert report.ok
        journals.append(path)
    t0 = time.perf_counter()
    merged = merge_journals(journals, plan=plan)
    t_merge = time.perf_counter() - t0
    assert canonical_report_view(merged) == canonical_report_view(
        clean.snapshot()
    )
    ratio = t_merge / t_sweep
    print_table(
        f"E-PAR · 3-shard merge of {N_INSTANCES} items",
        ["step", "seconds", "vs sweep"],
        [
            ("unsharded sweep", round(t_sweep, 3), "1.000"),
            ("merge_journals", round(t_merge, 3), f"{ratio:.3f}"),
        ],
    )
    assert t_merge <= 0.10 * t_sweep + 0.05, (
        f"merge took {ratio:.1%} of the sweep; the budget is 10%"
    )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4, reason="speedup gate needs >= 4 cores"
)
def test_speedup_at_4_workers():
    """The wall-clock half of the acceptance gate: >= 3x at 4 workers."""
    plan = sweep_plan()
    t0 = time.perf_counter()
    serial = run_sweep(plan, n_jobs=1, chunksize=CHUNKSIZE)
    t_serial = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = run_sweep(plan, n_jobs=4, chunksize=CHUNKSIZE)
    t_parallel = time.perf_counter() - t0
    assert _fingerprint(parallel) == _fingerprint(serial)
    speedup = t_serial / t_parallel
    print_table(
        f"E-PAR · {N_INSTANCES}-instance competitive sweep",
        ["n_jobs", "seconds", "speedup"],
        [(1, round(t_serial, 2), 1.0), (4, round(t_parallel, 2), round(speedup, 2))],
    )
    assert speedup >= 3.0, f"only {speedup:.2f}x at 4 workers"
