"""E-COST — when does banning migration win?  (the paper's motivation)

Section 1: *"non-migratory schedules are highly favored because migration
may cause a significant overhead in communication and synchronization."*
This experiment prices that overhead: each resumption on a new machine adds
δ extra work.  Non-migratory policies are immune by construction; migratory
LLF degrades as δ grows.  The series locates the crossover at which the
paper's preferred model (non-migratory) needs no more machines than the
migratory baseline.
"""

from fractions import Fraction

import pytest

from repro.analysis.report import print_table
from repro.generators import uniform_random_instance
from repro.model import Instance
from repro.offline.optimum import migratory_optimum
from repro.online.engine import OnlineEngine
from repro.online.llf import LLF
from repro.online.nonmigratory import FirstFitEDF

from conftest import run_once

COSTS = [Fraction(0), Fraction(1, 4), Fraction(1, 2), Fraction(1), Fraction(2)]


def _machines_with_cost(policy_factory, instance: Instance, cost, start: int) -> int:
    k = max(1, start)
    while True:
        engine = OnlineEngine(policy_factory(), machines=k, migration_cost=cost)
        engine.release(instance)
        engine.run_to_completion()
        if not engine.missed_jobs:
            return k
        k += 1
        if k > 4 * len(instance):
            raise RuntimeError("policy cannot cope at any machine count")


def _sweep():
    rows = []
    for seed in (1, 2, 3):
        inst = uniform_random_instance(30, seed=seed)
        m = migratory_optimum(inst)
        firstfit = _machines_with_cost(lambda: FirstFitEDF(), inst, Fraction(0), m)
        for cost in COSTS:
            llf = _machines_with_cost(lambda: LLF(), inst, cost, m)
            # migration statistics of the LLF run at its minimal count
            engine = OnlineEngine(LLF(), machines=llf, migration_cost=cost)
            engine.release(inst)
            engine.run_to_completion()
            migrations = sum(s.migration_count for s in engine.jobs.values())
            rows.append((seed, float(cost), m, llf, migrations, firstfit,
                         "non-migratory" if firstfit <= llf else "migratory"))
    return rows


def test_migration_cost_crossover(benchmark):
    rows = run_once(benchmark, _sweep)
    print_table(
        "E-COST: machines needed vs per-migration overhead δ "
        "(LLF pays; FirstFit is immune — the paper's practical motivation)",
        ["seed", "δ", "OPT m (δ=0)", "LLF machines", "LLF migrations",
         "FirstFit machines", "winner"],
        rows,
    )
    by_key = {(r[0], r[1]): r for r in rows}
    for seed in (1, 2, 3):
        zero = by_key[(seed, 0.0)]
        heavy = by_key[(seed, 2.0)]
        assert zero[3] <= heavy[3]  # cost never helps the migratory policy
        # at heavy cost the non-migratory policy is at least competitive
        assert heavy[5] <= heavy[3] + 1


def _opt_migration_usage():
    """How much migration do exact optimal schedules actually use?"""
    from repro.offline.optimum import optimal_migratory_schedule

    rows = []
    for n in (20, 40, 80):
        inst = uniform_random_instance(n, horizon=n, seed=n)
        m, sched = optimal_migratory_schedule(inst)
        rep = sched.verify(inst)
        rows.append((n, m, rep.migrations, rep.preemptions,
                     round(rep.migrations / n, 2)))
    return rows


def test_opt_migration_usage(benchmark):
    """E-COST context: the flow-extracted optimum migrates a constant
    fraction of jobs — the overhead the paper's model charges is not
    hypothetical even at the optimum."""
    rows = run_once(benchmark, _opt_migration_usage)
    print_table(
        "E-COST: migration/preemption usage of the exact migratory optimum "
        "(McNaughton extraction)",
        ["n", "OPT m", "migratory jobs", "preemptions", "migratory fraction"],
        rows,
    )
    for _, _, migrations, _, _ in rows:
        assert migrations >= 0  # informational series; shape reported above
