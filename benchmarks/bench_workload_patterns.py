"""E-WKLD — policies under realistic arrival patterns.

Deployment-shaped workloads (Poisson arrivals, heavy-tailed processing
times, diurnal load) complement the structured families: heavy tails are
where the Δ-sensitivity of deadline-driven policies shows up outside the
synthetic trap family, and diurnal bursts stress commitment policies.
Ratios are reported with bootstrap confidence intervals.
"""

import pytest

from repro.analysis.report import print_table
from repro.analysis.stats import mean_ci
from repro.generators import (
    diurnal_instance,
    heavy_tailed_instance,
    poisson_instance,
)
from repro.offline.optimum import migratory_optimum
from repro.online.edf import EDF
from repro.online.engine import min_machines
from repro.online.llf import LLF
from repro.online.nonmigratory import FirstFitEDF

from conftest import run_once

PATTERNS = {
    "poisson": lambda seed: poisson_instance(35, seed=seed),
    "heavy-tailed": lambda seed: heavy_tailed_instance(35, horizon=120, seed=seed),
    "diurnal": lambda seed: diurnal_instance(40, seed=seed),
}

POLICIES = {
    "EDF": lambda: EDF(),
    "LLF": lambda: LLF(),
    "FirstFit": lambda: FirstFitEDF(),
}

SEEDS = range(4)


def _sweep():
    rows = []
    for pattern, maker in PATTERNS.items():
        for policy, factory in POLICIES.items():
            ratios = []
            for seed in SEEDS:
                inst = maker(seed)
                m = migratory_optimum(inst)
                if m == 0:
                    continue
                k = min_machines(lambda n: factory(), inst)
                ratios.append(k / m)
            point, lo, hi = mean_ci(ratios, seed=13)
            rows.append((pattern, policy, len(ratios), round(max(ratios), 2),
                         f"{point:.2f} [{lo:.2f}, {hi:.2f}]"))
    return rows


def test_workload_patterns(benchmark):
    rows = run_once(benchmark, _sweep)
    print_table(
        "E-WKLD: machines/m under realistic arrival patterns "
        "(mean with 95% bootstrap CI)",
        ["pattern", "policy", "samples", "worst", "mean [95% CI]"],
        rows,
    )
    worst = {(r[0], r[1]): r[3] for r in rows}
    # LLF stays modest even on heavy tails; EDF's weakness to large Δ is a
    # worst-case property (the trap family), not a typical-case one
    assert worst[("heavy-tailed", "LLF")] <= 2.5
    for key, value in worst.items():
        assert value <= 4.0
