"""E-T1 / E-T2 — the optimum characterizations the paper builds on.

* Theorem 1: the workload bound ``max_I ceil(C(S,I)/|I|)`` characterizes the
  migratory optimum.  We measure how often the single-interval and the
  greedy-union certificates reach the exact flow optimum.
* Theorem 2 [7]: non-migratory OPT ≤ 6m − 5, validated with the exact
  branch-and-bound non-migratory optimum on small random instances.
"""

import pytest

from repro.analysis.metrics import theorem2_bound
from repro.analysis.report import print_table
from repro.generators import uniform_random_instance
from repro.model import Instance
from repro.offline.nonmigratory import exact_nonmigratory_optimum
from repro.offline.optimum import migratory_optimum
from repro.offline.workload import greedy_union_lower_bound, single_interval_lower_bound

from conftest import run_once


def _theorem1():
    rows = []
    tight_single = tight_union = 0
    trials = 20
    for seed in range(trials):
        inst = uniform_random_instance(12, horizon=30, seed=seed)
        opt = migratory_optimum(inst)
        single = single_interval_lower_bound(inst)
        union, _ = greedy_union_lower_bound(inst)
        tight_single += single == opt
        tight_union += union == opt
        if seed < 8:
            rows.append((seed, len(inst), opt, single, union))
    return rows, tight_single, tight_union, trials


def test_theorem1_characterization(benchmark):
    rows, tight_single, tight_union, trials = run_once(benchmark, _theorem1)
    print_table(
        "E-T1: Theorem 1 workload bound vs exact flow OPT "
        f"(single interval tight on {tight_single}/{trials}, "
        f"greedy union tight on {tight_union}/{trials})",
        ["seed", "n", "flow OPT", "best single interval", "greedy union"],
        rows,
    )
    for _, _, opt, single, union in rows:
        assert single <= union <= opt  # always valid lower bounds
    assert tight_union >= trials * 3 // 4  # the certificate is usually exact


def _theorem2():
    rows = []
    worst = 0.0
    for seed in range(12):
        inst = uniform_random_instance(10, horizon=12, max_slack=4, seed=seed)
        m = migratory_optimum(inst)
        nonmig = exact_nonmigratory_optimum(inst)
        bound = theorem2_bound(m)
        worst = max(worst, nonmig / m)
        rows.append((seed, len(inst), m, nonmig, bound, nonmig <= bound))
    return rows, worst


def test_theorem2_statement(benchmark):
    rows, worst = run_once(benchmark, _theorem2)
    print_table(
        "E-T2: exact non-migratory OPT vs Theorem 2 bound 6m−5 "
        f"(worst observed OPT_nonmig/m = {worst:.2f})",
        ["seed", "n", "migratory m", "exact OPT_nonmig", "6m−5", "within bound"],
        rows,
    )
    assert all(r[-1] for r in rows)


def _converter():
    from repro.offline.migration_elimination import theorem2_blowup
    from repro.offline.optimum import optimal_migratory_schedule

    rows = []
    for seed in range(8):
        inst = uniform_random_instance(20, horizon=25, seed=seed)
        m, migratory = optimal_migratory_schedule(inst)
        m_in, m_out, ratio = theorem2_blowup(inst, migratory)
        rows.append((seed, len(inst), m_in, m_out, float(ratio),
                     theorem2_bound(m_in), m_out <= theorem2_bound(m_in)))
    return rows


def test_theorem2_constructive_converter(benchmark):
    """E-T2b: the constructive migration-elimination converter vs 6m−5.

    Theorem 2 is existential; our converter (DESIGN.md §5) realizes the
    direction constructively and lands far inside the bound in practice.
    """
    rows = run_once(benchmark, _converter)
    print_table(
        "E-T2b: migration-elimination converter (anchor→repair→first-fit) "
        "vs the Theorem 2 bound 6m−5",
        ["seed", "n", "m (migratory)", "machines out", "blow-up", "6m−5",
         "within bound"],
        rows,
    )
    assert all(r[-1] for r in rows)
