"""E-T9 — the O(m log m) laminar algorithm (Theorems 9/11).

Series: minimal machine pool m' at which the budget scheme succeeds on
α-tight laminar families of growing depth, against m·(log₂ m + 1).
"""

import math
from fractions import Fraction

import pytest

from repro.analysis.report import print_table
from repro.core.laminar import (
    GreedyLaminarPolicy,
    LaminarAlgorithm,
    LaminarBudgetPolicy,
)
from repro.generators import laminar_chain, laminar_instance, laminar_random
from repro.offline.optimum import migratory_optimum
from repro.online.engine import min_machines

from conftest import run_once


def _depth_sweep():
    algo = LaminarAlgorithm()
    rows = []
    for depth in (2, 3, 4):
        inst = laminar_instance(depth=depth, fanout=2, jobs_per_node=2,
                                density=Fraction(3, 4), seed=5)
        m = migratory_optimum(inst)
        m_prime = algo.min_tight_machines(inst)
        bound = m * (math.log2(max(m, 2)) + 1)
        rows.append((depth, len(inst), m, m_prime, round(bound, 1),
                     round(m_prime / bound, 2)))
    return rows


def test_laminar_depth_sweep(benchmark):
    rows = run_once(benchmark, _depth_sweep)
    print_table(
        "E-T9: laminar budget scheme vs depth "
        "(paper: m' = O(m log m); column m'/(m(log m +1)) must stay bounded)",
        ["depth", "n", "OPT m", "min m'", "m(log2 m+1)", "m'/bound"],
        rows,
    )
    for _, _, _, _, _, ratio in rows:
        assert ratio <= 8


def _chain_sweep():
    algo = LaminarAlgorithm()
    rows = []
    for length in (4, 8, 12, 16):
        inst = laminar_chain(length, density=Fraction(2, 3))
        m = migratory_optimum(inst)
        m_prime = algo.min_tight_machines(inst)
        rows.append((length, m, m_prime))
    return rows


def test_laminar_chain_sweep(benchmark):
    rows = run_once(benchmark, _chain_sweep)
    print_table(
        "E-T9: nested chains — machine pool vs nesting depth "
        "(paper: bounded by O(m log m), not by the chain length)",
        ["chain length", "OPT m", "min m'"],
        rows,
    )
    # doubling the chain must not double the pool (it is not Ω(depth))
    assert rows[-1][2] <= rows[0][2] + 6


def _full_pipeline():
    rows = []
    for seed in (1, 2, 3):
        inst = laminar_random(40, seed=seed)
        result = LaminarAlgorithm().run(inst)
        result.schedule.verify(inst).require_feasible()
        m = migratory_optimum(inst)
        rows.append((seed, len(inst), m, result.tight_machines,
                     result.loose_machines, result.machines))
    return rows


def test_laminar_full_pipeline(benchmark):
    rows = run_once(benchmark, _full_pipeline)
    print_table(
        "E-T9: full Theorem 9 pipeline on random laminar instances",
        ["seed", "n", "OPT m", "tight pool", "loose pool", "total machines"],
        rows,
    )
    for _, _, m, _, _, total in rows:
        assert total <= 10 * m * (math.log2(max(m, 2)) + 1)


def _greedy_ablation():
    rows = []
    cases = [
        ("tree d3 f3", laminar_instance(depth=3, fanout=3, jobs_per_node=2,
                                        density=Fraction(4, 5), seed=1)),
        ("tree d4 f2", laminar_instance(depth=4, fanout=2, jobs_per_node=3,
                                        density=Fraction(17, 20), seed=2)),
        ("chain 12", laminar_chain(12, density=Fraction(9, 10))),
        ("random 40", laminar_random(40, density_range=(0.7, 0.95), seed=3)),
    ]
    for name, inst in cases:
        greedy = min_machines(lambda k: GreedyLaminarPolicy(), inst)
        budget = min_machines(lambda k: LaminarBudgetPolicy(), inst)
        rows.append((name, len(inst), migratory_optimum(inst), greedy, budget))
    return rows


def test_greedy_vs_budget_ablation(benchmark):
    """Section 5.1's warning, measured.

    The paper states greedy ≺-minimal candidate selection *fails* (no
    O(m log m) guarantee), citing the difficult laminar family of
    [10, Theorem 2.13], which is not part of the supplied text.  On generic
    families the greedy variant is empirically comparable (the sub-budget
    split is deliberately more conservative — that conservatism is what the
    Lemma 7 witness-set argument needs); this ablation records the
    comparison and pins both variants to feasibility.
    """
    rows = run_once(benchmark, _greedy_ablation)
    print_table(
        "E-T9 ablation: greedy total-budget vs per-index sub-budgets "
        "(paper: greedy has no worst-case guarantee; generic families do "
        "not separate them)",
        ["family", "n", "OPT m", "greedy machines", "budget machines"],
        rows,
    )
    for _, _, m, greedy, budget in rows:
        assert greedy >= m and budget >= m
