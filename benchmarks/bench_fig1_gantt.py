"""E-F1 — regenerate Figure 1: the 3-machine offline witness schedule.

The paper's only figure illustrates the Lemma 2 case-2 schedule: the
conflict job ``j*`` runs on machine 3 up to the new critical time, then
migrates to machine 1 as late as possible; machines 1–2 keep an idle window
after the critical time and machine 3 idles from it onward.
"""

import pytest

from repro.analysis.gantt import render_witness
from repro.core.adversary.migration_gap import MigrationGapAdversary
from repro.online.nonmigratory import FirstFitEDF

from conftest import run_once


def _build(k):
    adv = MigrationGapAdversary(FirstFitEDF(), machines=k + 3)
    return adv.run(k)


@pytest.mark.parametrize("k", [3, 4, 5])
def test_figure1_witness_gantt(benchmark, k):
    res = run_once(benchmark, lambda: _build(k))
    art = render_witness(res.node, width=100)
    print(f"\n== E-F1: Figure 1 — offline 3-machine witness for I_{k} "
          f"(L = long, s = short, * = conflict job j*) ==")
    print(art)
    rep = res.offline_witness().verify(res.instance)
    assert rep.feasible and rep.machines_used <= 3


def test_figure1_shows_migration(benchmark):
    """The witness migrates the conflict job — the heart of the figure."""
    res = run_once(benchmark, lambda: _build(5))
    witness = res.offline_witness()
    migratory = witness.verify(res.instance).migratory_jobs
    conflict_ids = {j.id for j in res.instance if j.label == "conflict"}
    if conflict_ids:  # case 2 occurred (first-fit always triggers it)
        assert set(migratory) & conflict_ids
