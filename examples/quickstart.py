"""Quickstart: model an instance, compute optima, run online algorithms.

Demonstrates the core objects of the library on the smallest interesting
example — McNaughton's wrap-around instance, where migration provably saves
a machine:

* 3 jobs with processing time 2, all in the window [0, 3);
* a migratory schedule fits on 2 machines (one job is split across both);
* every non-migratory schedule needs 3 machines.

Run:  python examples/quickstart.py
"""

from repro import (
    EDF,
    LLF,
    FirstFitEDF,
    Instance,
    Job,
    min_machines,
    optimal_migratory_schedule,
    simulate,
)
from repro.analysis import render_gantt
from repro.offline import exact_nonmigratory_optimum


def main() -> None:
    # --- build an instance (exact rational data; ints are fine) ----------
    instance = Instance([Job(0, 2, 3, id=i) for i in range(3)])
    print(f"instance: {len(instance)} jobs, total work {instance.total_work}, "
          f"span {instance.span}")

    # --- exact offline optima --------------------------------------------
    m, schedule = optimal_migratory_schedule(instance)
    report = schedule.verify(instance).require_feasible()
    print(f"\nmigratory optimum: {m} machines "
          f"(jobs that migrate: {list(report.migratory_jobs)})")
    print(render_gantt(schedule, width=60))

    nonmig = exact_nonmigratory_optimum(instance)
    print(f"\nnon-migratory optimum: {nonmig} machines "
          "(the McNaughton trick needs migration)")

    # --- online algorithms ------------------------------------------------
    for name, factory in [
        ("EDF (migratory)", lambda k: EDF()),
        ("LLF (migratory)", lambda k: LLF()),
        ("FirstFit-EDF (non-migratory)", lambda k: FirstFitEDF()),
    ]:
        k = min_machines(factory, instance)
        print(f"{name:32s} needs {k} machines online")

    # --- inspect one online run -------------------------------------------
    engine = simulate(LLF(), instance, machines=2)
    print(f"\nLLF on 2 machines: misses = {engine.missed_jobs}")
    print(render_gantt(engine.schedule(), width=60))


if __name__ == "__main__":
    main()
