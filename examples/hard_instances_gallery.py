"""A gallery of the instances that separate scheduling models.

Each exhibit shows a small instance where two models/algorithms genuinely
differ, with Gantt charts for both sides:

1. **McNaughton's wrap-around** — migration saves a machine (2 vs 3).
2. **The EDF trap** — earliest-deadline ignores laxity and pays Ω(Δ);
   least-laxity is optimal.
3. **The geometric staircase** — MediumFit's ℓ/2-centering vs naive
   left-anchoring (O(m) vs n machines).
4. **The adversarial I_4** — four machines forced out of a non-migratory
   scheduler while three suffice offline (the paper's Figure 1).

Run:  python examples/hard_instances_gallery.py
"""

from fractions import Fraction

from repro import (
    EDF,
    LLF,
    Instance,
    Job,
    MigrationGapAdversary,
    min_machines,
    optimal_migratory_schedule,
    simulate,
)
from repro.analysis import render_gantt, render_witness
from repro.core.medium_fit import MediumFit
from repro.generators import edf_trap_instance
from repro.offline import eliminate_migration, exact_nonmigratory_optimum
from repro.online import FirstFitEDF

WIDTH = 72


def exhibit_mcnaughton() -> None:
    print("\n### 1. McNaughton's wrap-around: migration saves a machine\n")
    inst = Instance([Job(0, 2, 3, id=i) for i in range(3)])
    m, migratory = optimal_migratory_schedule(inst)
    print(f"migratory optimum: {m} machines "
          f"(job {migratory.verify(inst).migratory_jobs[0]} migrates)")
    print(render_gantt(migratory, width=WIDTH))
    nonmig = exact_nonmigratory_optimum(inst)
    print(f"\nnon-migratory optimum: {nonmig} machines — the wrap is impossible"
          " without migration")
    machines, repaired = eliminate_migration(inst, migratory)
    print(render_gantt(repaired, width=WIDTH))


def exhibit_edf_trap() -> None:
    print("\n### 2. The EDF trap: deadlines are not urgency\n")
    inst = edf_trap_instance(6)
    edf_need = min_machines(lambda k: EDF(), inst)
    llf_need = min_machines(lambda k: LLF(), inst)
    print(f"Δ = 6: EDF needs {edf_need} machines, LLF needs {llf_need} (= OPT)")
    engine = simulate(LLF(), inst, machines=llf_need)
    labels = {j.id: ("A" if j.laxity == 0 else "b") for j in inst}
    print("LLF on 2 machines (A = zero-laxity anchor, b = loose baits):")
    print(render_gantt(engine.schedule(), width=WIDTH, labels=labels))


def exhibit_staircase() -> None:
    print("\n### 3. MediumFit's centering vs naive anchoring\n")
    jobs = [Job(0, 2 ** (i + 2) // 2 + 1, 2 ** (i + 2), id=i) for i in range(6)]
    inst = Instance(jobs)
    middle = MediumFit("middle")
    left = MediumFit("left")
    print(f"geometric staircase, n = 6: centered slots use "
          f"{middle.machines_needed(inst)} machines, left-anchored "
          f"{left.machines_needed(inst)} (every job piles onto time 0)")
    print("centered (MediumFit):")
    print(render_gantt(middle.schedule(inst), width=WIDTH))
    print("left-anchored:")
    print(render_gantt(left.schedule(inst), width=WIDTH))


def exhibit_adversary() -> None:
    print("\n### 4. The Lemma 2 adversary: Ω(log n) vs 3 machines\n")
    adversary = MigrationGapAdversary(FirstFitEDF(), machines=7)
    result = adversary.run(4)
    print(f"the adversary forced {result.machines_forced} machines out of "
          f"FirstFitEDF with {result.n_jobs} jobs; the offline witness uses "
          f"{result.offline_witness().verify(result.instance).machines_used}:")
    print(render_witness(result.node, width=WIDTH))


def main() -> None:
    exhibit_mcnaughton()
    exhibit_edf_trap()
    exhibit_staircase()
    exhibit_adversary()


if __name__ == "__main__":
    main()
