"""The paper's headline result, live: migration is unboundedly powerful.

Runs the Lemma 2 adversary against a non-migratory online scheduler of your
choice and shows

* the number of machines the adversary forces (= k = Ω(log n)),
* the exact migratory optimum of the released instance (≤ 3),
* the constructive 3-machine offline witness (the paper's Figure 1),
  rendered as an ASCII Gantt chart.

Run:  python examples/migration_gap_demo.py [k] [first|best|emptiest]
"""

import math
import sys

from repro import MigrationGapAdversary
from repro.analysis import print_table, render_witness
from repro.offline import migratory_optimum
from repro.online import BestFitEDF, EmptiestFitEDF, FirstFitEDF

POLICIES = {
    "first": FirstFitEDF,
    "best": BestFitEDF,
    "emptiest": EmptiestFitEDF,
}


def main() -> None:
    k_max = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    policy_name = sys.argv[2] if len(sys.argv) > 2 else "first"
    policy_cls = POLICIES[policy_name]

    rows = []
    last = None
    for k in range(2, k_max + 1):
        adversary = MigrationGapAdversary(policy_cls(), machines=k + 3)
        result = adversary.run(k)
        witness = result.offline_witness()
        report = witness.verify(result.instance).require_feasible()
        rows.append((k, result.n_jobs, result.machines_forced,
                     round(math.log2(result.n_jobs), 2),
                     report.machines_used))
        last = result

    print_table(
        f"Lemma 2 adversary vs {policy_cls.__name__}: the online algorithm "
        "is forced to Ω(log n) machines while OPT stays ≤ 3",
        ["k", "n jobs", "machines forced", "log2(n)", "witness machines"],
        rows,
    )

    print(f"\nexact flow optimum of I_{k_max}: "
          f"{migratory_optimum(last.instance)} machines (migratory)")

    print("\nThe offline witness (the paper's Figure 1; '*' = conflict job "
          "j*, which migrates):")
    print(render_witness(last.node, width=100))


if __name__ == "__main__":
    main()
