"""Where does an online scheduler break?  The (6−2√6)·m threshold, live.

Theorem 15: even with migration, no online algorithm can handle every
agreeable instance with identical processing times on fewer than
(6−2√6)·m ≈ 1.1010·m machines.  This example runs the Lemma 9 adversary
against EDF and LLF across a capacity grid and plots (in ASCII) the
survival boundary together with the per-round debt trajectories.

Run:  python examples/agreeable_threshold.py
"""

from fractions import Fraction

from repro import AgreeableAdversary, migratory_optimum
from repro.analysis import print_table
from repro.core.adversary.agreeable_lb import THEOREM15_THRESHOLD
from repro.online import EDF, LLF

M = 40
RATIOS = [Fraction(100 + 5 * i, 100) for i in range(9)]  # 1.00 … 1.40


def main() -> None:
    print(f"paper threshold: (6 − 2√6) = {THEOREM15_THRESHOLD:.4f}")

    rows = []
    for policy_cls in (EDF, LLF):
        for ratio in RATIOS:
            machines = int(ratio * M)
            adversary = AgreeableAdversary(policy_cls(), m=M, machines=machines)
            result = adversary.run(max_rounds=15)
            bar = "█" * min(result.rounds_played, 20)
            rows.append(
                (
                    policy_cls.__name__,
                    float(ratio),
                    machines,
                    "DIED" if result.missed else "survived",
                    result.rounds_played,
                    bar,
                )
            )

    print_table(
        f"Lemma 9 adversary, m = {M}: survival by machine capacity "
        "(rounds survived shown as bars)",
        ["policy", "capacity c", "machines", "outcome", "rounds", ""],
        rows,
    )

    # show one debt trajectory in detail
    adversary = AgreeableAdversary(EDF(), m=M, machines=43)
    result = adversary.run(max_rounds=15)
    print("\nEDF at c = 1.075 — the behind-by-w debt per round (Lemma 9):")
    for record in result.rounds:
        width = int(float(record.debt_at_start) * 4)
        print(f"  round {record.index}: w = {float(record.debt_at_start):6.2f} "
              f"|{'▒' * width}")
    print(f"  → terminal zero-laxity batch released: "
          f"{any(r.released_tights for r in result.rounds)}; "
          f"missed: {result.missed}")

    opt = migratory_optimum(result.instance)
    print(f"\nsanity: the released instance is agreeable = "
          f"{result.instance.is_agreeable()}, all p_j = 1, "
          f"flow OPT = {opt} (= m = {M})")


if __name__ == "__main__":
    main()
