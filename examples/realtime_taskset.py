"""Provisioning a real-time system: how many cores does a task set need?

The paper's motivation is operating real-time systems: jobs with hard
deadlines arrive online, migration is expensive in practice (cache misses,
synchronization), so non-migratory schedules are preferred — at the price
the paper quantifies.

This example simulates a mixed real-time workload (periodic sensor tasks =
agreeable; sporadic bursty requests = loose; a watchdog hierarchy = laminar),
classifies each component, routes it through the paper's matching algorithm
via the dispatcher, and compares the non-migratory provisioning against the
exact migratory optimum.

Run:  python examples/realtime_taskset.py
"""

from fractions import Fraction

from repro import classify, dispatch, migratory_optimum
from repro.analysis import print_table
from repro.generators import (
    agreeable_instance,
    bursty_instance,
    laminar_instance,
    loose_instance,
)


def main() -> None:
    workloads = {
        "periodic sensors (agreeable)": agreeable_instance(
            50, horizon=120, max_processing=6, max_slack=8, seed=42
        ),
        "sporadic requests (loose)": loose_instance(
            60, Fraction(1, 3), horizon=120, seed=42
        ),
        "watchdog hierarchy (laminar)": laminar_instance(
            depth=3, fanout=2, jobs_per_node=1, density=Fraction(2, 3), seed=42
        ),
        "synchronized bursts": bursty_instance(
            bursts=4, jobs_per_burst=6, burst_gap=25, seed=42
        ),
    }

    rows = []
    for name, instance in workloads.items():
        kind = classify(instance)
        result = dispatch(instance)
        result.schedule.verify(instance).require_feasible()
        m = migratory_optimum(instance)
        rows.append(
            (
                name,
                len(instance),
                kind,
                result.algorithm,
                m,
                result.machines,
                Fraction(result.machines, m),
            )
        )

    print_table(
        "Core provisioning per workload: non-migratory online algorithm vs "
        "exact migratory optimum",
        ["workload", "n", "class", "algorithm", "migratory OPT",
         "cores provisioned", "overhead factor"],
        rows,
    )

    print(
        "\nInterpretation: structured workloads (agreeable/laminar/loose) pay"
        "\nonly a small constant for banning migration — the paper's positive"
        "\nresults.  For adversarial general workloads no bound exists at all"
        "\n(Theorem 3); see examples/migration_gap_demo.py."
    )


def taskset_api_demo() -> None:
    """The same exercise through the first-class task-set API."""
    from repro.realtime import PeriodicTask, TaskSet, provisioning_report

    ts = TaskSet()
    ts.add(PeriodicTask(wcet=1, period=4, name="imu"))
    ts.add(PeriodicTask(wcet=2, period=8, deadline=6, name="vision"))
    ts.add(PeriodicTask(wcet=1, period=16, name="logger"))
    ts.add(PeriodicTask(wcet=3, period=8, name="control"))

    report = provisioning_report(ts)
    print("\nPeriodic task set (one hyperperiod):")
    print(f"  tasks = {report.n_tasks}, jobs = {report.n_jobs}, "
          f"U = {report.utilization:.3f} (⌈U⌉ = {report.utilization_bound})")
    print(f"  exact migratory optimum = {report.migratory_opt} machines")
    print(f"  recommendation: {report.recommended_machines} machines via "
          f"{report.algorithm} ({report.instance_class} class, "
          f"{report.overhead:.2f}× the optimum)")


if __name__ == "__main__":
    main()
    taskset_api_demo()
