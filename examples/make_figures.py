"""Regenerate the paper-style figures as standalone SVG files.

Writes into ``figures/``:

* ``fig1_witness.svg``       — the Lemma 2 offline 3-machine witness
  (the paper's Figure 1, with the critical time marked),
* ``lower_bound_series.svg`` — machines forced vs log₂ n per policy (E-T3),
* ``threshold_series.svg``   — Lemma 9 survival rounds vs capacity (E-T15),
* ``tradeoff_series.svg``    — machines vs speed trade-off curve (E-SPD),
* ``mcnaughton.svg``         — the migratory wrap-around schedule.

Run:  python examples/make_figures.py [output_dir]
"""

import math
import os
import sys
from fractions import Fraction

from repro import Instance, Job, MigrationGapAdversary, optimal_migratory_schedule
from repro.analysis.speed import speed_machines_tradeoff
from repro.analysis.svg import render_series_svg, render_svg, witness_svg
from repro.core.adversary.agreeable_lb import AgreeableAdversary
from repro.generators import uniform_random_instance
from repro.offline.optimum import migratory_optimum
from repro.online import EDF, LLF, BestFitEDF, EmptiestFitEDF, FirstFitEDF


def _write(path: str, content: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(content)
    print(f"wrote {path}")


def fig1(outdir: str) -> None:
    adversary = MigrationGapAdversary(FirstFitEDF(), machines=8)
    result = adversary.run(5)
    _write(os.path.join(outdir, "fig1_witness.svg"), witness_svg(result.node))


def lower_bound_series(outdir: str) -> None:
    series = {}
    for policy_cls in (FirstFitEDF, BestFitEDF, EmptiestFitEDF):
        points = []
        for k in range(2, 9):
            adv = MigrationGapAdversary(policy_cls(), machines=k + 3)
            res = adv.run(k)
            points.append((math.log2(res.n_jobs), res.machines_forced))
        series[policy_cls.__name__] = points
    series["log2(n) reference"] = [(x, x) for x in range(1, 9)]
    _write(
        os.path.join(outdir, "lower_bound_series.svg"),
        render_series_svg(
            series,
            title="Lemma 2: machines forced vs log2(n)  (offline OPT ≤ 3)",
            x_label="log2(n)",
            y_label="machines",
        ),
    )


def threshold_series(outdir: str) -> None:
    series = {}
    for policy_cls in (EDF, LLF):
        points = []
        for c_num in range(100, 150, 5):
            machines = int(Fraction(c_num, 100) * 40)
            adv = AgreeableAdversary(policy_cls(), m=40, machines=machines)
            res = adv.run(max_rounds=12)
            points.append((c_num / 100, res.rounds_played if res.missed else 12))
        series[policy_cls.__name__ + " rounds survived"] = points
    _write(
        os.path.join(outdir, "threshold_series.svg"),
        render_series_svg(
            series,
            title="Lemma 9: rounds survived vs capacity c (threshold ≈ 1.101)",
            x_label="capacity c (machines / m)",
            y_label="rounds",
        ),
    )


def tradeoff_series(outdir: str) -> None:
    inst = uniform_random_instance(30, seed=11)
    m = migratory_optimum(inst)
    curve = speed_machines_tradeoff(
        lambda: FirstFitEDF(), inst, range(m, m + 5), precision=Fraction(1, 16)
    )
    series = {
        "min speed": [(k, float(s)) for k, s in curve if s is not None]
    }
    _write(
        os.path.join(outdir, "tradeoff_series.svg"),
        render_series_svg(
            series,
            title="Speed vs machine augmentation (non-migratory first fit)",
            x_label="machines",
            y_label="speed",
        ),
    )


def mcnaughton(outdir: str) -> None:
    inst = Instance([Job(0, 2, 3, id=i) for i in range(3)])
    _, schedule = optimal_migratory_schedule(inst)
    _write(
        os.path.join(outdir, "mcnaughton.svg"),
        render_svg(schedule, width=700,
                   title="McNaughton wrap-around: 2 machines with migration"),
    )


def main() -> None:
    outdir = sys.argv[1] if len(sys.argv) > 1 else "figures"
    os.makedirs(outdir, exist_ok=True)
    fig1(outdir)
    lower_bound_series(outdir)
    threshold_series(outdir)
    tradeoff_series(outdir)
    mcnaughton(outdir)
    print("all figures written")


if __name__ == "__main__":
    main()
