"""Zero-dependency tracing & metrics for the solver, cache, engine, and verifier.

Instrumentation is always compiled in but costs a single truthiness check
while no sink is attached, so production call sites pay effectively nothing
(see ``benchmarks/bench_obs_overhead.py`` for the proof).  Consumption is
explicit and scoped::

    from repro import obs

    with obs.capture() as reg:                 # in-memory aggregation
        migratory_optimum(instance)
    print(reg.summary())                       # counters + span table

    with obs.capture(obs.JsonlSink("t.jsonl")) as reg:   # + event stream
        certified_optimum(instance)

The CLI exposes the same machinery as ``repro stats INSTANCE.json`` (one-shot
report) and a global ``--trace out.jsonl`` flag on every subcommand.

Obs v2 adds distributions and their consumers: deterministic log-bucketed
streaming histograms (:mod:`repro.obs.hist`, fed by ``observe()`` and by
every span duration), Prometheus text exposition of any registry snapshot
(:mod:`repro.obs.prom`, ``repro stats --prom``), and offline trace
analytics — hotspot tables, folded stacks, trace diffs — over the JSONL
stream (:mod:`repro.obs.trace`, ``repro trace``).

Span taxonomy and the JSONL event schema are documented in
``docs/ARCHITECTURE.md`` ("Observability").
"""

from .core import (
    attach,
    capture,
    detach,
    enabled,
    event,
    gauge,
    hist_snapshot,
    incr,
    observe,
    span,
    span_path,
)
from .hist import SUBBUCKETS, Hist, bucket_bounds, bucket_index
from .prom import render_prometheus
from .sinks import JsonlSink, Registry, Sink, SpanStat, StderrSummary, jsonable
from .trace import (
    TraceSummary,
    diff_traces,
    folded_stacks,
    hotspots,
    load_trace,
    render_diff,
    render_hotspots,
)

__all__ = [
    "attach",
    "capture",
    "detach",
    "enabled",
    "event",
    "gauge",
    "hist_snapshot",
    "incr",
    "observe",
    "span",
    "span_path",
    "Hist",
    "SUBBUCKETS",
    "bucket_bounds",
    "bucket_index",
    "render_prometheus",
    "JsonlSink",
    "Registry",
    "Sink",
    "SpanStat",
    "StderrSummary",
    "jsonable",
    "TraceSummary",
    "diff_traces",
    "folded_stacks",
    "hotspots",
    "load_trace",
    "render_diff",
    "render_hotspots",
]
