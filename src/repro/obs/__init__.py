"""Zero-dependency tracing & metrics for the solver, cache, engine, and verifier.

Instrumentation is always compiled in but costs a single truthiness check
while no sink is attached, so production call sites pay effectively nothing
(see ``benchmarks/bench_obs_overhead.py`` for the proof).  Consumption is
explicit and scoped::

    from repro import obs

    with obs.capture() as reg:                 # in-memory aggregation
        migratory_optimum(instance)
    print(reg.summary())                       # counters + span table

    with obs.capture(obs.JsonlSink("t.jsonl")) as reg:   # + event stream
        certified_optimum(instance)

The CLI exposes the same machinery as ``repro stats INSTANCE.json`` (one-shot
report) and a global ``--trace out.jsonl`` flag on every subcommand.

Span taxonomy and the JSONL event schema are documented in
``docs/ARCHITECTURE.md`` ("Observability").
"""

from .core import (
    attach,
    capture,
    detach,
    enabled,
    event,
    gauge,
    incr,
    span,
    span_path,
)
from .sinks import JsonlSink, Registry, Sink, SpanStat, StderrSummary, jsonable

__all__ = [
    "attach",
    "capture",
    "detach",
    "enabled",
    "event",
    "gauge",
    "incr",
    "span",
    "span_path",
    "JsonlSink",
    "Registry",
    "Sink",
    "SpanStat",
    "StderrSummary",
    "jsonable",
]
