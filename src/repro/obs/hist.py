"""Deterministic log-bucketed streaming histograms.

The distribution primitive of obs v2.  Design constraints, in order:

* **Order-independent, bit-identical merges.**  Sweep chunks and shard
  journals carry per-item histogram snapshots that the runner folds back
  together; the merged distribution must not depend on worker count,
  chunking, or merge order.  Bucket boundaries are therefore *fixed* (a
  pure function of the value, never adapted to the data), and every
  aggregate is exact: counts are ints, ``sum`` is an int or an exact
  :class:`~fractions.Fraction` (float observations convert exactly via
  binary expansion), ``min``/``max`` compare exactly.  Integer/rational
  addition is associative and commutative, so
  ``merge(a, merge(b, c)) == merge(merge(a, b), c)`` holds bit-for-bit —
  a hypothesis property in ``tests/test_hist.py`` pins it.
* **Log-bucketed with sub-buckets.**  A positive value lands in the
  bucket ``index = e * SUBBUCKETS + sub`` where ``e = floor(log2(v))``
  and ``sub = floor((v / 2**e - 1) * SUBBUCKETS)``: base-2 octaves split
  into :data:`SUBBUCKETS` geometric sub-buckets, i.e. a relative
  quantile error of at most ``1/SUBBUCKETS`` per octave.  Integer values
  are bucketed by exact shift arithmetic (no float round-trip), floats
  via ``math.frexp``; both agree wherever they overlap.
* **Allocation-light observation.**  ``observe`` is dict arithmetic on
  ``__slots__`` state — no per-call object graph — so hot call sites can
  afford one observation per solver call (the local-accumulator flush
  pattern from the PR-3 instrumentation still applies to inner loops).

Non-positive values are counted in a dedicated ``zeros`` bucket (upper
bound 0) rather than log-bucketed; they still contribute to ``count``,
``sum``, ``min``, and ``max``.

Naming convention (consumed by ``canonical_report_view`` and the trace
tools): histogram names ending in ``_ns`` hold wall-clock durations in
nanoseconds — genuine timing whose *values* legitimately differ between
equivalent runs (their counts are still deterministic).  Every other
histogram holds deterministic algorithmic values and must be
byte-identical across worker counts and shard splits.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Any, Dict, Iterable, Optional, Tuple, Union

__all__ = [
    "SUBBUCKETS",
    "Hist",
    "bucket_bounds",
    "bucket_index",
]

#: Geometric sub-buckets per base-2 octave (power of two; 8 ≈ 12.5%
#: worst-case relative bucket width, plenty for latency work).
SUBBUCKETS = 8

_SUB_BITS = SUBBUCKETS.bit_length() - 1

Number = Union[int, float, Fraction]


def bucket_index(value: Number) -> int:
    """The fixed bucket index of a positive value (pure, data-independent).

    ``index = e * SUBBUCKETS + sub`` with ``e = floor(log2(value))`` and
    ``sub = floor((value / 2**e - 1) * SUBBUCKETS)``; negative indices
    are valid (values below 1).  Raises :class:`ValueError` for
    ``value <= 0`` — the caller routes those to the ``zeros`` bucket.
    """
    if value <= 0:
        raise ValueError(f"bucket_index requires a positive value, got {value!r}")
    if isinstance(value, int):
        e = value.bit_length() - 1
        # floor(value * SUB / 2**e) - SUB, exactly, without floats.
        sub = ((value << _SUB_BITS) >> e) - SUBBUCKETS
        return e * SUBBUCKETS + sub
    if isinstance(value, Fraction):
        if value.denominator == 1:
            return bucket_index(value.numerator)
        # floor(log2(p/q)) via integer bit lengths, exact for any ratio.
        p, q = value.numerator, value.denominator
        e = p.bit_length() - q.bit_length()
        if (p >> e if e >= 0 else p << -e) < q:  # 2**e > value: step down
            e -= 1
        # sub = floor((value / 2**e - 1) * SUB), still in exact integers.
        scaled = p << _SUB_BITS
        if e >= 0:
            shifted_q = q << e
        else:
            shifted_q = q
            scaled <<= -e
        sub = scaled // shifted_q - SUBBUCKETS
        return e * SUBBUCKETS + sub
    m, ex = math.frexp(value)  # value = m * 2**ex, 0.5 <= m < 1
    e = ex - 1
    # Every step is exact: 2.0*m scales the exponent, the subtraction is
    # exact by Sterbenz (2.0*m in [1, 2)), and *SUBBUCKETS is a power-of-two
    # scale — so sub lands in [0, SUBBUCKETS) with no rounding-edge clamp.
    sub = int((2.0 * m - 1.0) * SUBBUCKETS)
    return e * SUBBUCKETS + sub


def bucket_bounds(index: int) -> Tuple[Fraction, Fraction]:
    """Exact ``[lo, hi)`` boundaries of a bucket index.

    ``lo = 2**e * (1 + sub/SUBBUCKETS)`` — the inverse of
    :func:`bucket_index`: every positive value ``v`` satisfies
    ``bucket_bounds(bucket_index(v))[0] <= v < bucket_bounds(...)[1]``.
    """
    e, sub = divmod(index, SUBBUCKETS)
    scale = Fraction(2) ** e
    lo = scale * (SUBBUCKETS + sub) / SUBBUCKETS
    hi = scale * (SUBBUCKETS + sub + 1) / SUBBUCKETS
    return lo, hi


def _exact(value: Number) -> Union[int, Fraction]:
    """Exact rational twin of a numeric value (floats expand exactly)."""
    if isinstance(value, (int, Fraction)):
        return value
    return Fraction(value)


def _jsonable_number(value: Any) -> Any:
    """Ints and floats pass through; Fractions serialize as ``"p/q"``."""
    if isinstance(value, Fraction):
        return str(value)
    return value


def _parse_number(value: Any) -> Any:
    if isinstance(value, str):
        return Fraction(value)
    return value


class Hist:
    """One streaming histogram: fixed log buckets + exact aggregates."""

    __slots__ = ("count", "zeros", "sum", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count: int = 0
        self.zeros: int = 0  # observations with value <= 0
        self.sum: Union[int, Fraction] = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None
        self.buckets: Dict[int, int] = {}

    # -- recording -----------------------------------------------------------

    def observe(self, value: Number) -> None:
        """Record one value (any real number; ``<= 0`` lands in ``zeros``)."""
        self.count += 1
        self.sum += _exact(value)
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value <= 0:
            self.zeros += 1
            return
        index = bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def merge(self, other: "Hist") -> "Hist":
        """Fold ``other`` into this histogram (exact; order-independent)."""
        self.count += other.count
        self.zeros += other.zeros
        self.sum += other.sum
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n
        return self

    # -- reading -------------------------------------------------------------

    def quantile(self, p: float) -> Optional[float]:
        """The p-quantile (0 <= p <= 1) as a float, exact to bucket width.

        Uses the nearest-rank method over the cumulative bucket counts and
        returns the containing bucket's upper bound, clamped into
        ``[min, max]`` — so ``quantile(0) == float(min)`` and
        ``quantile(1) <= float(max)`` always hold, and the relative error
        against the true sample quantile is at most one sub-bucket width.
        """
        if self.count == 0:
            return None
        if not 0 <= p <= 1:
            raise ValueError(f"quantile order must lie in [0, 1], got {p!r}")
        if p == 0:
            return float(self.min)
        rank = max(1, math.ceil(p * self.count))
        seen = self.zeros
        if seen >= rank:
            upper = 0.0
        else:
            upper = float(self.max)
            for index in sorted(self.buckets):
                seen += self.buckets[index]
                if seen >= rank:
                    upper = float(bucket_bounds(index)[1])
                    break
        upper = min(upper, float(self.max))
        return max(upper, float(self.min))

    def quantile_row(self) -> Dict[str, Optional[float]]:
        """The standard ``repro stats`` latency columns for this histogram."""
        return {
            "p50": self.quantile(0.5),
            "p90": self.quantile(0.9),
            "p99": self.quantile(0.99),
            "max": None if self.max is None else float(self.max),
        }

    def cumulative(self) -> Iterable[Tuple[Fraction, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ascending (Prometheus).

        The ``zeros`` bucket surfaces as an upper bound of 0; the final
        ``+Inf`` bucket is the consumer's job (its count is ``count``).
        """
        running = 0
        if self.zeros:
            running += self.zeros
            yield Fraction(0), running
        for index in sorted(self.buckets):
            running += self.buckets[index]
            yield bucket_bounds(index)[1], running

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe dump; bucket keys become strings, exact sums survive."""
        return {
            "count": self.count,
            "zeros": self.zeros,
            "sum": _jsonable_number(self.sum),
            "min": _jsonable_number(self.min),
            "max": _jsonable_number(self.max),
            "buckets": {str(k): self.buckets[k] for k in sorted(self.buckets)},
        }

    @classmethod
    def from_snapshot(cls, snap: Dict[str, Any]) -> "Hist":
        """Rebuild a histogram from :meth:`snapshot` output (JSON round-trip)."""
        hist = cls()
        hist.count = int(snap.get("count", 0))
        hist.zeros = int(snap.get("zeros", 0))
        hist.sum = _parse_number(snap.get("sum", 0))
        hist.min = _parse_number(snap.get("min"))
        hist.max = _parse_number(snap.get("max"))
        hist.buckets = {int(k): int(v) for k, v in snap.get("buckets", {}).items()}
        return hist

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hist):
            return NotImplemented
        return (
            self.count == other.count
            and self.zeros == other.zeros
            and self.sum == other.sum
            and self.min == other.min
            and self.max == other.max
            and self.buckets == other.buckets
        )

    def __repr__(self) -> str:
        return (
            f"Hist(count={self.count}, sum={self.sum}, min={self.min}, "
            f"max={self.max}, buckets={len(self.buckets)})"
        )
