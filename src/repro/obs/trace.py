"""Post-hoc analysis of JSONL trace files (``--trace out.jsonl``).

A trace is the raw obs stream — one JSON object per line, types ``span``,
``counter``, ``gauge``, ``event``, ``observe``, ``hist`` — written by
:class:`~repro.obs.sinks.JsonlSink`.  This module turns a trace back into
answers:

* **Span-tree aggregation**: span records carry their full hierarchical
  path (``optimum.search/optimum.probe/dinic.solve``), so the tree is
  reconstructed from path prefixes alone.  *Cumulative* time is the span's
  own total; *self* time subtracts the totals of its direct children —
  the number that tells you where the clock actually went.
* **Hotspot table**: top-N paths by self time, with call counts and the
  share of the trace's total self time (``render_hotspots``).
* **Folded stacks**: ``a;b;c <self_ns>`` lines, the input format of
  flamegraph.pl and speedscope (``folded_stacks``).
* **Diffing**: ``diff_traces(a, b)`` aligns two traces by span path and
  reports self/cumulative/count deltas — the before/after view for perf
  work (``repro trace diff a.jsonl b.jsonl``).

Everything is a pure function of the parsed trace, with deterministic
ordering (self time descending, then path), so the outputs are
snapshot-testable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, IO, Iterable, List, Optional, Tuple, Union

__all__ = [
    "TraceSummary",
    "diff_traces",
    "folded_stacks",
    "hotspots",
    "load_trace",
    "render_diff",
    "render_hotspots",
]


@dataclass
class _SpanAgg:
    count: int = 0
    total_ns: int = 0
    max_ns: int = 0
    errors: int = 0


@dataclass
class TraceSummary:
    """Aggregated view of one JSONL trace file."""

    spans: Dict[str, _SpanAgg] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    events: Dict[str, int] = field(default_factory=dict)
    records: int = 0
    skipped: int = 0  # unparseable lines (torn tails are tolerated)

    def total_span_ns(self) -> int:
        """Total self time across all paths (== sum of root cumulative)."""
        return sum(row["self_ns"] for row in hotspots(self, top=None))


def load_trace(source: Union[str, IO[str]]) -> TraceSummary:
    """Parse a JSONL trace file (path or open stream) into a summary.

    Unknown record types are counted but otherwise ignored, so traces from
    newer obs versions degrade gracefully; malformed lines (e.g. a torn
    tail from a killed run) are skipped and counted in ``skipped``.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as fh:
            return load_trace(fh)
    summary = TraceSummary()
    for line in source:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            kind = record["type"]
        except (ValueError, KeyError, TypeError):
            summary.skipped += 1
            continue
        summary.records += 1
        if kind == "span":
            path = str(record.get("path", ""))
            agg = summary.spans.get(path)
            if agg is None:
                agg = summary.spans[path] = _SpanAgg()
            ns = int(record.get("ns", 0))
            agg.count += 1
            agg.total_ns += ns
            agg.max_ns = max(agg.max_ns, ns)
            if record.get("error"):
                agg.errors += 1
        elif kind == "span_agg":
            # Pre-aggregated worker span totals, replayed by the runner
            # after a sweep (individual span records stay worker-local).
            path = str(record.get("path", ""))
            agg = summary.spans.get(path)
            if agg is None:
                agg = summary.spans[path] = _SpanAgg()
            agg.count += int(record.get("count", 0))
            agg.total_ns += int(record.get("total_ns", 0))
            agg.max_ns = max(agg.max_ns, int(record.get("max_ns", 0)))
            agg.errors += int(record.get("errors", 0))
        elif kind == "counter":
            name = str(record.get("name", ""))
            summary.counters[name] = (
                summary.counters.get(name, 0) + int(record.get("value", 0))
            )
        elif kind == "event":
            name = str(record.get("name", ""))
            summary.events[name] = summary.events.get(name, 0) + 1
    return summary


def _direct_children(paths: Iterable[str]) -> Dict[str, List[str]]:
    children: Dict[str, List[str]] = {}
    for path in paths:
        if "/" in path:
            parent = path.rsplit("/", 1)[0]
            children.setdefault(parent, []).append(path)
    return children


def hotspots(
    summary: TraceSummary, top: Optional[int] = 20
) -> List[Dict[str, Any]]:
    """Top-N span paths by self time (``top=None`` returns all).

    Each row carries ``path``, ``count``, ``errors``, ``cum_ns``
    (the path's own total) and ``self_ns`` (total minus the totals of its
    direct children; clamped at 0 against clock skew in torn traces).
    Ordering: self time descending, then path ascending — deterministic
    for golden tests.
    """
    children = _direct_children(summary.spans)
    rows = []
    for path, agg in summary.spans.items():
        child_ns = sum(
            summary.spans[c].total_ns for c in children.get(path, ())
        )
        rows.append({
            "path": path,
            "count": agg.count,
            "errors": agg.errors,
            "cum_ns": agg.total_ns,
            "self_ns": max(0, agg.total_ns - child_ns),
        })
    rows.sort(key=lambda r: (-r["self_ns"], r["path"]))
    return rows if top is None else rows[:top]


def render_hotspots(summary: TraceSummary, top: Optional[int] = 20) -> str:
    """The ``repro trace`` hotspot table (self/cumulative ms, share)."""
    rows = hotspots(summary, top=top)
    if not rows:
        return "(no spans in trace)"
    total_self = sum(r["self_ns"] for r in rows) or 1
    width = max(len(r["path"]) for r in rows)
    width = max(width, len("span path"))
    lines = [
        f"{'span path':<{width}}   count      self_ms       cum_ms   self%",
    ]
    for r in rows:
        lines.append(
            f"{r['path']:<{width}}  {r['count']:>6}"
            f"  {r['self_ns'] / 1e6:>11.3f}"
            f"  {r['cum_ns'] / 1e6:>11.3f}"
            f"  {100.0 * r['self_ns'] / total_self:>5.1f}%"
            + (f"  ({r['errors']} errors)" if r["errors"] else "")
        )
    return "\n".join(lines)


def folded_stacks(summary: TraceSummary) -> str:
    """Folded-stack lines (``a;b;c <self_ns>``) for flamegraph.pl/speedscope.

    One line per span path with nonzero self time, path components joined
    by semicolons, weighted by self nanoseconds; sorted by path so the
    output is byte-stable for a given trace.
    """
    lines = []
    for row in sorted(hotspots(summary, top=None), key=lambda r: r["path"]):
        if row["self_ns"] > 0:
            lines.append(f"{row['path'].replace('/', ';')} {row['self_ns']}")
    return "\n".join(lines)


def diff_traces(
    before: TraceSummary, after: TraceSummary, top: Optional[int] = 20
) -> List[Dict[str, Any]]:
    """Per-path self/cum/count deltas between two traces (after − before).

    Paths present in either trace are aligned; ordering is by absolute
    self-time delta descending, then path — the biggest regressions and
    wins surface first.
    """
    rows_a = {r["path"]: r for r in hotspots(before, top=None)}
    rows_b = {r["path"]: r for r in hotspots(after, top=None)}
    merged = []
    for path in sorted(set(rows_a) | set(rows_b)):
        a = rows_a.get(path, {"count": 0, "self_ns": 0, "cum_ns": 0})
        b = rows_b.get(path, {"count": 0, "self_ns": 0, "cum_ns": 0})
        merged.append({
            "path": path,
            "count_before": a["count"],
            "count_after": b["count"],
            "self_ns_delta": b["self_ns"] - a["self_ns"],
            "cum_ns_delta": b["cum_ns"] - a["cum_ns"],
        })
    merged.sort(key=lambda r: (-abs(r["self_ns_delta"]), r["path"]))
    return merged if top is None else merged[:top]


def render_diff(
    before: TraceSummary, after: TraceSummary, top: Optional[int] = 20
) -> str:
    """Human-readable table for ``repro trace diff``."""
    rows = diff_traces(before, after, top=top)
    if not rows:
        return "(no spans in either trace)"
    width = max(len(r["path"]) for r in rows)
    width = max(width, len("span path"))
    lines = [
        f"{'span path':<{width}}    calls     Δself_ms      Δcum_ms",
    ]
    for r in rows:
        calls = f"{r['count_before']}→{r['count_after']}"
        lines.append(
            f"{r['path']:<{width}}  {calls:>7}"
            f"  {r['self_ns_delta'] / 1e6:>+11.3f}"
            f"  {r['cum_ns_delta'] / 1e6:>+11.3f}"
        )
    return "\n".join(lines)
