"""Sinks for the observability stream.

A sink is any object with the callbacks below; :mod:`repro.obs.core`
fans every span/counter/gauge/event/observation out to all attached sinks:

* :class:`Registry` — thread-safe in-memory aggregation (counters sum,
  gauges keep the last value, spans keep count/total/max nanoseconds,
  histograms stream into fixed log buckets — see :mod:`repro.obs.hist`).
  Every span duration additionally feeds the histogram ``<path>_ns``, so
  latency quantiles per span path come for free wherever spans already
  exist.  The workhorse for tests, ``repro stats``, and the benchmark
  harness.
* :class:`JsonlSink` — one JSON object per line, timestamps relative to
  sink creation, for offline analysis and CI artifacts.
* :class:`StderrSummary` — aggregates like a registry and renders a
  human-readable table on :meth:`close` (or on demand).

All values pass through :func:`jsonable`, so exact :class:`~fractions.Fraction`
attributes survive as strings instead of crashing ``json.dump``.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Dict, IO, Optional, Union

from .hist import Hist

__all__ = ["Sink", "Registry", "JsonlSink", "StderrSummary", "jsonable"]


def jsonable(value: Any) -> Any:
    """Recursively convert ``value`` into something ``json.dump`` accepts."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Fraction):
        return str(value)
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonable(v) for v in value]
    return str(value)


def _fmt_hist_value(name: str, value: Any) -> str:
    """One histogram table cell; ``*_ns`` histograms render as milliseconds."""
    if value is None:
        return "-"
    if name.endswith("_ns"):
        return f"{value / 1e6:.3f}ms"
    return f"{float(value):g}"


class Sink:
    """Base sink: ignores everything.  Subclasses override what they need."""

    def on_span(self, path: str, duration_ns: int,
                attrs: Dict[str, Any], error: Optional[str]) -> None:
        pass

    def on_span_agg(self, path: str, stat: Dict[str, int]) -> None:
        pass

    def on_counter(self, name: str, value: int, attrs: Dict[str, Any]) -> None:
        pass

    def on_gauge(self, name: str, value: Any, attrs: Dict[str, Any]) -> None:
        pass

    def on_event(self, name: str, attrs: Dict[str, Any], span_path: str) -> None:
        pass

    def on_observe(self, name: str, value: Any, attrs: Dict[str, Any]) -> None:
        pass

    def on_hist(self, name: str, snapshot: Dict[str, Any]) -> None:
        pass

    def close(self) -> None:
        pass


@dataclass
class SpanStat:
    """Aggregated timing of one span path."""

    count: int = 0
    total_ns: int = 0
    max_ns: int = 0
    errors: int = 0

    def add(self, duration_ns: int, error: Optional[str]) -> None:
        self.count += 1
        self.total_ns += duration_ns
        if duration_ns > self.max_ns:
            self.max_ns = duration_ns
        if error is not None:
            self.errors += 1


class Registry(Sink):
    """Thread-safe in-memory aggregation of the observability stream."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, Any] = {}
        self.spans: Dict[str, SpanStat] = {}
        self.events: Dict[str, int] = {}
        self.hists: Dict[str, Hist] = {}
        self._lock = threading.Lock()

    def on_span(self, path, duration_ns, attrs, error) -> None:
        with self._lock:
            stat = self.spans.get(path)
            if stat is None:
                stat = self.spans[path] = SpanStat()
            stat.add(duration_ns, error)
            # Every span path doubles as a latency histogram, so quantiles
            # per hierarchical path need no extra instrumentation.
            hist = self.hists.get(path + "_ns")
            if hist is None:
                hist = self.hists[path + "_ns"] = Hist()
            hist.observe(duration_ns)

    def on_span_agg(self, path, stat) -> None:
        # Fold pre-aggregated worker span totals.  The matching ``<path>_ns``
        # histogram is NOT fed here: the workers' registries already fed it
        # span by span, and those histograms replay separately via
        # ``on_hist`` — feeding it again would double-count.
        with self._lock:
            agg = self.spans.get(path)
            if agg is None:
                agg = self.spans[path] = SpanStat()
            agg.count += int(stat["count"])
            agg.total_ns += int(stat["total_ns"])
            agg.max_ns = max(agg.max_ns, int(stat["max_ns"]))
            agg.errors += int(stat.get("errors", 0))

    def on_observe(self, name, value, attrs) -> None:
        with self._lock:
            hist = self.hists.get(name)
            if hist is None:
                hist = self.hists[name] = Hist()
            hist.observe(value)

    def on_hist(self, name, snapshot) -> None:
        with self._lock:
            hist = self.hists.get(name)
            if hist is None:
                hist = self.hists[name] = Hist()
            hist.merge(Hist.from_snapshot(snapshot))

    def on_counter(self, name, value, attrs) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def on_gauge(self, name, value, attrs) -> None:
        with self._lock:
            self.gauges[name] = value

    def on_event(self, name, attrs, span_path) -> None:
        with self._lock:
            self.events[name] = self.events.get(name, 0) + 1

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe dict of everything aggregated so far."""
        with self._lock:
            return {
                "counters": dict(sorted(self.counters.items())),
                "gauges": {k: jsonable(v) for k, v in sorted(self.gauges.items())},
                "spans": {
                    path: {
                        "count": s.count,
                        "total_ns": s.total_ns,
                        "max_ns": s.max_ns,
                        "errors": s.errors,
                    }
                    for path, s in sorted(self.spans.items())
                },
                "events": dict(sorted(self.events.items())),
                "hists": {
                    name: h.snapshot() for name, h in sorted(self.hists.items())
                },
            }

    def summary(self) -> str:
        """Human-readable counter + span table (used by ``repro stats``)."""
        snap = self.snapshot()
        lines = []
        if snap["counters"]:
            width = max(map(len, snap["counters"]))
            lines.append("counters:")
            lines.extend(
                f"  {name:<{width}}  {value}"
                for name, value in snap["counters"].items()
            )
        if snap["gauges"]:
            width = max(map(len, snap["gauges"]))
            lines.append("gauges:")
            lines.extend(
                f"  {name:<{width}}  {value}"
                for name, value in snap["gauges"].items()
            )
        if snap["events"]:
            width = max(map(len, snap["events"]))
            lines.append("events:")
            lines.extend(
                f"  {name:<{width}}  {count}"
                for name, count in snap["events"].items()
            )
        if snap["spans"]:
            width = max(map(len, snap["spans"]))
            lines.append("spans:" + " " * max(0, width - 4)
                         + "   count     total_ms       max_ms")
            for path, s in snap["spans"].items():
                lines.append(
                    f"  {path:<{width}}  {s['count']:>6}  {s['total_ns'] / 1e6:>11.3f}"
                    f"  {s['max_ns'] / 1e6:>11.3f}"
                    + (f"  ({s['errors']} errors)" if s["errors"] else "")
                )
        hist_rows = self.hist_quantiles()
        if hist_rows:
            width = max(map(len, hist_rows))
            lines.append("histograms:" + " " * max(0, width - 9)
                         + "   count          p50          p90          p99          max")
            for name, row in hist_rows.items():
                cells = "".join(
                    f"  {_fmt_hist_value(name, row[col]):>11}"
                    for col in ("p50", "p90", "p99", "max")
                )
                lines.append(f"  {name:<{width}}  {row['count']:>6}{cells}")
        return "\n".join(lines) if lines else "(no observability data)"

    def hist_quantiles(self) -> Dict[str, Dict[str, Any]]:
        """Per-histogram ``{count, p50, p90, p99, max}`` rows (sorted)."""
        with self._lock:
            return {
                name: {"count": h.count, **h.quantile_row()}
                for name, h in sorted(self.hists.items())
            }


class JsonlSink(Sink):
    """Streams every span/counter/gauge/event as one JSON line.

    ``t`` is nanoseconds since the sink was created, so a trace is
    self-contained and replayable without wall-clock context.  Accepts a
    path (opened and owned) or an existing text stream (borrowed).
    """

    def __init__(self, target: Union[str, IO[str]]) -> None:
        if isinstance(target, str):
            self._fh: IO[str] = open(target, "w", encoding="utf-8")
            self._owns = True
        else:
            self._fh = target
            self._owns = False
        self._t0 = time.perf_counter_ns()
        self._lock = threading.Lock()

    def _write(self, record: Dict[str, Any]) -> None:
        record["t"] = time.perf_counter_ns() - self._t0
        line = json.dumps(record, separators=(",", ":"))
        with self._lock:
            self._fh.write(line + "\n")

    def on_span(self, path, duration_ns, attrs, error) -> None:
        self._write({
            "type": "span",
            "path": path,
            "ns": duration_ns,
            "attrs": jsonable(attrs),
            **({"error": error} if error else {}),
        })

    def on_counter(self, name, value, attrs) -> None:
        self._write({
            "type": "counter",
            "name": name,
            "value": value,
            **({"attrs": jsonable(attrs)} if attrs else {}),
        })

    def on_gauge(self, name, value, attrs) -> None:
        self._write({
            "type": "gauge",
            "name": name,
            "value": jsonable(value),
            **({"attrs": jsonable(attrs)} if attrs else {}),
        })

    def on_event(self, name, attrs, span_path) -> None:
        self._write({
            "type": "event",
            "name": name,
            "attrs": jsonable(attrs),
            **({"span": span_path} if span_path else {}),
        })

    def on_observe(self, name, value, attrs) -> None:
        self._write({
            "type": "observe",
            "name": name,
            "value": jsonable(value),
            **({"attrs": jsonable(attrs)} if attrs else {}),
        })

    def on_hist(self, name, snapshot) -> None:
        self._write({"type": "hist", "name": name, "hist": jsonable(snapshot)})

    def on_span_agg(self, path, stat) -> None:
        self._write({
            "type": "span_agg",
            "path": path,
            "count": int(stat["count"]),
            "total_ns": int(stat["total_ns"]),
            "max_ns": int(stat["max_ns"]),
            "errors": int(stat.get("errors", 0)),
        })

    def close(self) -> None:
        self._fh.flush()
        if self._owns:
            self._fh.close()


class StderrSummary(Registry):
    """A registry that prints its summary table when closed."""

    def __init__(self, stream: Optional[IO[str]] = None) -> None:
        super().__init__()
        self._stream = stream

    def close(self) -> None:
        stream = self._stream if self._stream is not None else sys.stderr
        print(self.summary(), file=stream)
