"""Tracing and metrics primitives (stdlib only).

The observability layer has one hard constraint: when nothing is listening
it must cost *nothing measurable* on the hot path.  Every primitive
therefore bottoms out in the same guard — a truthiness check on the
module-level sink list plus an open-capture counter (the ContextVar that
scopes captures per context is only consulted when a capture exists):

* :func:`enabled` — ``True`` iff at least one sink is attached; hot call
  sites (the Dinic inner loop, the engine step) accumulate plain local
  integers and flush them behind one ``enabled()`` check,
* :func:`span` — hierarchical timing context manager.  Nesting is tracked
  through a :class:`contextvars.ContextVar`, so spans compose correctly
  across threads and async contexts; with no sink attached ``span()``
  returns a shared no-op singleton (no allocation, no clock read),
* :func:`incr` / :func:`gauge` / :func:`event` — monotonic counters,
  last-value gauges, and point events,
* :func:`observe` — one sample into a named streaming histogram (see
  :mod:`repro.obs.hist`); :func:`hist_snapshot` replays a whole merged
  histogram at once (how the runner forwards worker distributions).

Sinks receive the raw stream (see :mod:`repro.obs.sinks`): the in-memory
:class:`~repro.obs.sinks.Registry` aggregates for tests and one-shot
reports, :class:`~repro.obs.sinks.JsonlSink` streams events for offline
analysis, :class:`~repro.obs.sinks.StderrSummary` renders a table.

Attachment is explicit and scoped: ``with capture() as reg: …`` attaches a
fresh registry for the duration of a block, which is how the CLI, the
benchmark harness, and the test suite all consume the layer.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "attach",
    "capture",
    "detach",
    "enabled",
    "event",
    "gauge",
    "hist_snapshot",
    "incr",
    "observe",
    "span",
    "span_agg",
    "span_path",
]

#: Globally attached sinks.  Empty list == no ambient observability (the
#: default).  Global sinks see emissions from *every* thread — this is what
#: ``--trace`` and the serve daemon's service registry use.
_sinks: List[Any] = []

#: Context-local sinks (what :func:`capture` attaches).  A capture is only
#: visible to the context (thread / task) that opened it, so concurrent
#: captures — e.g. the serve daemon handling requests while a sweep runs in
#: its executor thread — cannot contaminate each other's registries.
_local_sinks: ContextVar[Tuple[Any, ...]] = ContextVar(
    "repro_obs_local_sinks", default=()
)

#: Count of open captures across all contexts.  The hot-path guard stays a
#: pair of plain truthiness checks (``_sinks or _n_local``) — the ContextVar
#: is only consulted when at least one capture exists somewhere, keeping the
#: nothing-attached cost unmeasurable (the <5% overhead gate in
#: ``benchmarks/bench_obs_overhead.py`` leans on this).
_n_local = 0
_local_lock = threading.Lock()

#: Current span path, e.g. ``("optimum.search", "optimum.probe")``.
_span_path: ContextVar[Tuple[str, ...]] = ContextVar(
    "repro_obs_span_path", default=()
)

_perf_ns = time.perf_counter_ns


def enabled() -> bool:
    """True iff the calling context has a sink listening (the hot-path guard)."""
    return bool(_sinks) or bool(_n_local and _local_sinks.get())


def _active_sinks() -> List[Any]:
    """The sinks visible to the calling context: global + its captures."""
    if _n_local:
        local = _local_sinks.get()
        if local:
            return [*_sinks, *local]
    return list(_sinks)


def attach(sink) -> Any:
    """Attach a sink to the global stream; returns it for chaining."""
    _sinks.append(sink)
    return sink


def detach(sink) -> None:
    """Detach a previously attached sink (closing it is the caller's job)."""
    _sinks.remove(sink)


def span_path() -> Tuple[str, ...]:
    """The stack of span names enclosing the caller (empty at top level)."""
    return _span_path.get()


class _NoopSpan:
    """Shared do-nothing span returned while no sink is attached."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


class _Span:
    """A live timing span; records wall time and its position in the tree."""

    __slots__ = ("name", "attrs", "path", "_token", "_t0")

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        self.path = _span_path.get() + (self.name,)
        self._token = _span_path.set(self.path)
        self._t0 = _perf_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration_ns = _perf_ns() - self._t0
        _span_path.reset(self._token)
        error = exc_type.__name__ if exc_type is not None else None
        path = "/".join(self.path)
        for sink in _active_sinks():
            sink.on_span(path, duration_ns, self.attrs, error)
        return False  # exceptions always propagate


def span(name: str, **attrs: Any):
    """Timing context manager: ``with span("dinic.solve", m=m): …``.

    The span's full path is the ``/``-joined chain of enclosing span names,
    so nested calls show up as ``optimum.search/optimum.probe/dinic.solve``.
    Exceptions propagate; the span is still closed and reported with the
    exception's class name attached.
    """
    if not (_sinks or _n_local):
        return _NOOP_SPAN
    return _Span(name, attrs)


def incr(name: str, value: int = 1, **attrs: Any) -> None:
    """Add ``value`` to the monotonic counter ``name``."""
    if not (_sinks or _n_local):
        return
    for sink in _active_sinks():
        sink.on_counter(name, value, attrs)


def gauge(name: str, value: Any, **attrs: Any) -> None:
    """Record the current value of ``name`` (last write wins)."""
    if not (_sinks or _n_local):
        return
    for sink in _active_sinks():
        sink.on_gauge(name, value, attrs)


def observe(name: str, value: Any, **attrs: Any) -> None:
    """Record one sample into the streaming histogram ``name``.

    Histograms whose names end in ``_ns`` hold nanosecond durations;
    everything else holds deterministic algorithmic values (see
    :mod:`repro.obs.hist` for the convention and its consequences).
    """
    if not (_sinks or _n_local):
        return
    for sink in _active_sinks():
        sink.on_observe(name, value, attrs)


def hist_snapshot(name: str, snapshot: Dict[str, Any]) -> None:
    """Replay a whole histogram snapshot into the attached sinks.

    Used by the runner's ambient replay: a merged worker distribution is
    forwarded in one call instead of one :func:`observe` per sample.
    """
    if not (_sinks or _n_local):
        return
    for sink in _active_sinks():
        sink.on_hist(name, snapshot)


def span_agg(path: str, stat: Dict[str, int]) -> None:
    """Replay an aggregated span statistic into the attached sinks.

    ``stat`` carries ``count``/``total_ns``/``max_ns``/``errors`` for one
    span path — the shape of a :class:`~repro.obs.sinks.Registry` snapshot
    entry.  Used by the runner's ambient replay so trace files and ambient
    registries see worker span totals even though the individual span
    records stayed worker-local.
    """
    if not (_sinks or _n_local):
        return
    for sink in _active_sinks():
        sink.on_span_agg(path, stat)


def event(name: str, **attrs: Any) -> None:
    """Record a point event (e.g. one online-engine decision point)."""
    if not (_sinks or _n_local):
        return
    path = "/".join(_span_path.get())
    for sink in _active_sinks():
        sink.on_event(name, attrs, path)


@contextmanager
def capture(*extra_sinks) -> Iterator[Any]:
    """Attach a fresh :class:`~repro.obs.sinks.Registry` for a block.

    Any ``extra_sinks`` (e.g. a :class:`~repro.obs.sinks.JsonlSink`) are
    attached alongside it and detached with it.  Yields the registry::

        with capture() as reg:
            migratory_optimum(instance)
        reg.counters["dinic.aug_paths"]

    The capture is **context-local**: only emissions from the context
    (thread / async task) that opened it land in the registry.  Globally
    attached sinks (:func:`attach`) keep seeing everything.  This is what
    lets the serve daemon run concurrent request captures and a sweep
    executor in one process without cross-contaminating their registries —
    a prerequisite for the byte-identical kill-resume conformance the
    chaos suite pins.
    """
    from .sinks import Registry

    global _n_local
    registry = Registry()
    token = _local_sinks.set(_local_sinks.get() + (registry, *extra_sinks))
    with _local_lock:
        _n_local += 1
    try:
        yield registry
    finally:
        with _local_lock:
            _n_local -= 1
        _local_sinks.reset(token)
