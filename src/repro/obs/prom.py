"""Prometheus text exposition of a :class:`~repro.obs.sinks.Registry` snapshot.

This is the exact payload a future ``repro serve`` ``/metrics`` route will
return; today it is surfaced as ``repro stats --prom`` and as a CI artifact
of the smoke sweep.  The renderer is a pure function of the snapshot dict
(the JSON-safe output of ``Registry.snapshot()`` or a ``SweepReport``
snapshot), so it works identically on live registries, sweep snapshots
loaded from disk, and journal merges.

Mapping (text exposition format, version 0.0.4):

* counters → ``repro_<name>_total`` counter samples,
* numeric gauges → ``repro_<name>`` gauge samples (non-numeric gauges are
  skipped; exact ``Fraction`` strings like ``"4/3"`` are converted),
* histograms → ``repro_<name>`` histogram families: cumulative
  ``_bucket{le="..."}`` samples over the fixed log-bucket upper bounds
  (see :mod:`repro.obs.hist`), the mandatory ``le="+Inf"`` bucket,
  ``_sum``, and ``_count``,
* span statistics → three labelled counter families
  (``repro_span_calls_total``, ``repro_span_errors_total``,
  ``repro_span_ns_total``) with the hierarchical path as a ``path`` label,
  so arbitrary span trees don't explode the metric-name namespace.

Metric names are sanitized to ``[a-zA-Z_:][a-zA-Z0-9_:]*`` and prefixed
with the ``repro_`` namespace; output ordering is deterministic (sorted
within each section) so the exposition is diffable and snapshot-testable.
"""

from __future__ import annotations

import re
from fractions import Fraction
from typing import Any, Dict, List, Optional

from .hist import Hist

__all__ = ["render_prometheus"]

_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(raw: str, namespace: str) -> str:
    name = _NAME_BAD.sub("_", raw)
    if name and name[0].isdigit():
        name = "_" + name
    return f"{namespace}_{name}"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\"", "\\\"").replace("\n", "\\n")


def _number(value: Any) -> Optional[float]:
    """A finite float for a sample value, or None if it isn't numeric."""
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, Fraction):
        return float(value)
    if isinstance(value, str):
        try:
            return float(Fraction(value))
        except (ValueError, ZeroDivisionError):
            return None
    return None


def _format(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(snapshot: Any, namespace: str = "repro") -> str:
    """Render a registry/report snapshot in Prometheus text exposition format.

    ``snapshot`` may be the dict from ``Registry.snapshot()`` (or any
    superset, e.g. a ``SweepReport.snapshot()``) or an object exposing
    ``snapshot()``.  Returns the full exposition text, terminated by a
    newline, with deterministic ordering.
    """
    if hasattr(snapshot, "snapshot"):
        snapshot = snapshot.snapshot()
    lines: List[str] = []
    seen: set = set()

    for raw, value in sorted(snapshot.get("counters", {}).items()):
        sample = _number(value)
        if sample is None:
            continue
        name = _metric_name(raw, namespace)
        if not name.endswith("_total"):
            name += "_total"
        if name in seen:
            continue
        seen.add(name)
        lines.append(f"# HELP {name} Counter {raw}")
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_format(sample)}")

    for raw, value in sorted(snapshot.get("gauges", {}).items()):
        sample = _number(value)
        if sample is None:
            continue
        name = _metric_name(raw, namespace)
        if name in seen:
            continue
        seen.add(name)
        lines.append(f"# HELP {name} Gauge {raw}")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_format(sample)}")

    for raw, snap in sorted(snapshot.get("hists", {}).items()):
        hist = Hist.from_snapshot(snap)
        name = _metric_name(raw, namespace)
        if name in seen:
            continue
        seen.add(name)
        lines.append(f"# HELP {name} Histogram {raw}")
        lines.append(f"# TYPE {name} histogram")
        for upper, cumulative in hist.cumulative():
            lines.append(
                f'{name}_bucket{{le="{_format(float(upper))}"}} {cumulative}'
            )
        lines.append(f'{name}_bucket{{le="+Inf"}} {hist.count}')
        total = _number(hist.sum)
        lines.append(f"{name}_sum {_format(total if total is not None else 0.0)}")
        lines.append(f"{name}_count {hist.count}")

    spans = snapshot.get("spans", {})
    if spans:
        families = (
            ("span_calls_total", "counter", "count", "Span call count"),
            ("span_errors_total", "counter", "errors", "Span error count"),
            ("span_ns_total", "counter", "total_ns", "Span wall time (ns)"),
        )
        for suffix, kind, key, help_text in families:
            name = f"{namespace}_{suffix}"
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for path, stat in sorted(spans.items()):
                lines.append(
                    f'{name}{{path="{_escape_label(path)}"}} '
                    f"{_format(float(stat[key]))}"
                )

    return "\n".join(lines) + "\n" if lines else ""
