"""Measurement helpers shared by the experiments.

These wrap the substrate primitives into the quantities the paper reasons
about: machine counts relative to the migratory optimum (the paper's primary
yardstick), competitive ratios against the non-migratory optimum (Lemma 1's
second yardstick), and migration/preemption statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Optional

from ..model.instance import Instance
from ..model.schedule import Schedule
from ..offline.nonmigratory import nonmigratory_optimum_bounds
from ..offline.optimum import migratory_optimum


@dataclass
class ScheduleStats:
    """All per-run quantities reported by the experiments."""

    instance_size: int
    machines_used: int
    migratory_opt: int
    migrations: int
    preemptions: int
    feasible: bool
    nonmigratory_opt_lower: Optional[int] = None
    nonmigratory_opt_upper: Optional[int] = None

    @property
    def machines_over_opt(self) -> Fraction:
        """``machines / m`` — the power-of-migration ratio of the run."""
        if self.migratory_opt == 0:
            return Fraction(0)
        return Fraction(self.machines_used, self.migratory_opt)

    @property
    def competitive_ratio_upper(self) -> Optional[Fraction]:
        """``machines / OPT_nonmig-lower`` — upper estimate of the ratio."""
        if not self.nonmigratory_opt_lower:
            return None
        return Fraction(self.machines_used, self.nonmigratory_opt_lower)


def evaluate_schedule(
    instance: Instance,
    schedule: Schedule,
    with_nonmigratory_opt: bool = False,
    speed: int = 1,
) -> ScheduleStats:
    """Verify a schedule and collect every reported metric."""
    report = schedule.verify(instance, speed=speed)
    opt = migratory_optimum(instance) if len(instance) else 0
    lower = upper = None
    if with_nonmigratory_opt and len(instance):
        lower, upper = nonmigratory_optimum_bounds(instance)
    return ScheduleStats(
        instance_size=len(instance),
        machines_used=report.machines_used,
        migratory_opt=opt,
        migrations=report.migrations,
        preemptions=report.preemptions,
        feasible=report.feasible,
        nonmigratory_opt_lower=lower,
        nonmigratory_opt_upper=upper,
    )


def theorem2_bound(m: int) -> int:
    """Theorem 2's offline non-migratory bound: ``6m − 5``."""
    if m <= 0:
        return 0
    return 6 * m - 5


def theorem13_bound(m: int, alpha) -> Fraction:
    """Theorem 13's EDF bound for α-loose instances: ``m/(1−α)²``."""
    alpha = Fraction(alpha) if not isinstance(alpha, Fraction) else alpha
    return m / (1 - alpha) ** 2
