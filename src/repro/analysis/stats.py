"""Bootstrap statistics for experiment series.

Competitive-ratio profiles are sample maxima/means over seeded families;
these helpers attach bootstrap confidence intervals so EXPERIMENTS.md rows
can be reported with uncertainty, per standard empirical-algorithmics
practice.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

import numpy as np


def bootstrap_ci(
    values: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> Tuple[float, float, float]:
    """``(point, lo, hi)`` percentile-bootstrap CI of ``statistic``."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ValueError("no samples")
    rng = np.random.default_rng(seed)
    point = float(statistic(data))
    if data.size == 1:
        return point, point, point
    idx = rng.integers(0, data.size, size=(n_resamples, data.size))
    stats = np.array([statistic(data[row]) for row in idx])
    alpha = (1 - confidence) / 2
    lo, hi = np.quantile(stats, [alpha, 1 - alpha])
    return point, float(lo), float(hi)


def mean_ci(values: Sequence[float], **kwargs) -> Tuple[float, float, float]:
    return bootstrap_ci(values, np.mean, **kwargs)


def max_ci(values: Sequence[float], **kwargs) -> Tuple[float, float, float]:
    return bootstrap_ci(values, np.max, **kwargs)
