"""Dependency-free SVG rendering of schedules.

The ASCII renderer (:mod:`repro.analysis.gantt`) regenerates Figure 1 in a
terminal; this module writes the same picture as a standalone SVG file for
reports.  Pure string templating — no plotting library required.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Optional

from ..model.schedule import Schedule

# a categorical palette (okabe-ito, colorblind-safe)
_PALETTE = [
    "#0072B2", "#E69F00", "#009E73", "#CC79A7",
    "#56B4E9", "#D55E00", "#F0E442", "#999999",
]

_ROW_HEIGHT = 28
_ROW_GAP = 8
_MARGIN_LEFT = 60
_MARGIN_TOP = 30
_MARGIN_BOTTOM = 40


def render_svg(
    schedule: Schedule,
    width: int = 800,
    title: str = "",
    colors: Optional[Dict[int, str]] = None,
    markers: Optional[Dict[str, Fraction]] = None,
) -> str:
    """Render a schedule as an SVG document string.

    * one row per machine, one rectangle per segment,
    * ``colors`` maps job ids to CSS colors (defaults to a cycling palette),
    * ``markers`` draws labelled vertical lines (e.g. the critical time
      ``t0`` of the Lemma 2 witness).
    """
    if len(schedule) == 0:
        return (
            '<svg xmlns="http://www.w3.org/2000/svg" width="200" height="40">'
            '<text x="10" y="25">(empty schedule)</text></svg>'
        )
    t0 = min(s.start for s in schedule)
    t1 = max(s.end for s in schedule)
    span = float(t1 - t0) or 1.0
    machines = schedule.machines()
    height = (
        _MARGIN_TOP
        + len(machines) * (_ROW_HEIGHT + _ROW_GAP)
        + _MARGIN_BOTTOM
    )
    plot_width = width - _MARGIN_LEFT - 20

    def x_of(t) -> float:
        return _MARGIN_LEFT + (float(t) - float(t0)) / span * plot_width

    job_color: Dict[int, str] = {}
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="12">'
    ]
    if title:
        parts.append(
            f'<text x="{_MARGIN_LEFT}" y="18" font-weight="bold">{title}</text>'
        )
    for row, machine in enumerate(machines):
        y = _MARGIN_TOP + row * (_ROW_HEIGHT + _ROW_GAP)
        parts.append(
            f'<text x="8" y="{y + _ROW_HEIGHT // 2 + 4}">M{machine}</text>'
        )
        parts.append(
            f'<rect x="{_MARGIN_LEFT}" y="{y}" width="{plot_width}" '
            f'height="{_ROW_HEIGHT}" fill="#f4f4f4"/>'
        )
        for seg in schedule.machine_segments(machine):
            if seg.job_id not in job_color:
                if colors and seg.job_id in colors:
                    job_color[seg.job_id] = colors[seg.job_id]
                else:
                    job_color[seg.job_id] = _PALETTE[len(job_color) % len(_PALETTE)]
            x = x_of(seg.start)
            w = max(x_of(seg.end) - x, 1.0)
            parts.append(
                f'<rect x="{x:.2f}" y="{y + 2}" width="{w:.2f}" '
                f'height="{_ROW_HEIGHT - 4}" fill="{job_color[seg.job_id]}" '
                f'stroke="white" stroke-width="0.5">'
                f"<title>job {seg.job_id}: [{seg.start}, {seg.end})</title></rect>"
            )
            if w > 18:
                parts.append(
                    f'<text x="{x + 3:.2f}" y="{y + _ROW_HEIGHT // 2 + 4}" '
                    f'fill="white">j{seg.job_id}</text>'
                )
    baseline = _MARGIN_TOP + len(machines) * (_ROW_HEIGHT + _ROW_GAP) + 4
    parts.append(
        f'<text x="{_MARGIN_LEFT}" y="{baseline + 14}">t = {float(t0):g}</text>'
    )
    parts.append(
        f'<text x="{width - 80}" y="{baseline + 14}">t = {float(t1):g}</text>'
    )
    if markers:
        for label, t in markers.items():
            x = x_of(t)
            parts.append(
                f'<line x1="{x:.2f}" y1="{_MARGIN_TOP - 6}" x2="{x:.2f}" '
                f'y2="{baseline}" stroke="#d00" stroke-dasharray="4 3"/>'
            )
            parts.append(
                f'<text x="{x + 3:.2f}" y="{_MARGIN_TOP - 8}" '
                f'fill="#d00">{label}</text>'
            )
    parts.append("</svg>")
    return "".join(parts)


def save_svg(schedule: Schedule, path: str, **kwargs) -> None:
    """Write :func:`render_svg` output to a file."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_svg(schedule, **kwargs))


def render_series_svg(
    series: Dict[str, list],
    width: int = 640,
    height: int = 360,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """A minimal multi-series line chart as SVG.

    ``series`` maps a legend label to a list of ``(x, y)`` pairs.  Used by
    ``examples/make_figures.py`` to plot experiment series (machines vs k,
    debt trajectories, trade-off curves) without a plotting dependency.
    """
    pad_l, pad_r, pad_t, pad_b = 60, 20, 36, 46
    plot_w, plot_h = width - pad_l - pad_r, height - pad_t - pad_b
    points = [(float(x), float(y)) for pts in series.values() for x, y in pts]
    if not points:
        return ('<svg xmlns="http://www.w3.org/2000/svg" width="200" '
                'height="40"><text x="10" y="25">(no data)</text></svg>')
    xs, ys = zip(*points)
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(0.0, min(ys)), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1
    if y_hi == y_lo:
        y_hi = y_lo + 1

    def px(x: float) -> float:
        return pad_l + (x - x_lo) / (x_hi - x_lo) * plot_w

    def py(y: float) -> float:
        return pad_t + plot_h - (y - y_lo) / (y_hi - y_lo) * plot_h

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="12">'
    ]
    if title:
        parts.append(f'<text x="{pad_l}" y="20" font-weight="bold">{title}</text>')
    # axes
    parts.append(
        f'<line x1="{pad_l}" y1="{pad_t}" x2="{pad_l}" y2="{pad_t + plot_h}" '
        'stroke="#333"/>'
    )
    parts.append(
        f'<line x1="{pad_l}" y1="{pad_t + plot_h}" x2="{pad_l + plot_w}" '
        f'y2="{pad_t + plot_h}" stroke="#333"/>'
    )
    for frac in (0.0, 0.5, 1.0):
        xv = x_lo + frac * (x_hi - x_lo)
        yv = y_lo + frac * (y_hi - y_lo)
        parts.append(
            f'<text x="{px(xv):.1f}" y="{pad_t + plot_h + 16}" '
            f'text-anchor="middle">{xv:g}</text>'
        )
        parts.append(
            f'<text x="{pad_l - 6}" y="{py(yv) + 4:.1f}" '
            f'text-anchor="end">{yv:g}</text>'
        )
    if x_label:
        parts.append(
            f'<text x="{pad_l + plot_w / 2}" y="{height - 8}" '
            f'text-anchor="middle">{x_label}</text>'
        )
    if y_label:
        parts.append(
            f'<text x="14" y="{pad_t - 8}" text-anchor="start">{y_label}</text>'
        )
    for idx, (label, pts) in enumerate(series.items()):
        color = _PALETTE[idx % len(_PALETTE)]
        path = " ".join(
            f"{'M' if i == 0 else 'L'} {px(float(x)):.1f} {py(float(y)):.1f}"
            for i, (x, y) in enumerate(pts)
        )
        parts.append(
            f'<path d="{path}" fill="none" stroke="{color}" stroke-width="2"/>'
        )
        for x, y in pts:
            parts.append(
                f'<circle cx="{px(float(x)):.1f}" cy="{py(float(y)):.1f}" '
                f'r="3" fill="{color}"/>'
            )
        parts.append(
            f'<text x="{pad_l + plot_w - 4}" y="{pad_t + 14 + 16 * idx}" '
            f'text-anchor="end" fill="{color}">{label}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def witness_svg(node, width: int = 900) -> str:
    """The Figure 1 witness as SVG, with the critical time marked."""
    from ..core.adversary.migration_gap import offline_witness

    schedule = offline_witness(node)
    return render_svg(
        schedule,
        width=width,
        title=f"Lemma 2 offline witness (k = {node.k})",
        markers={"t0": node.critical_time},
    )
