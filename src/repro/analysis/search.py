"""Randomized counterexample search (conjecture probing).

The paper's open questions (Section 7) invite experimentation: *is there an
O(1)-machine non-migratory algorithm for m = 2?  Is O(m log m) needed for
laminar instances?*  This module provides a seeded random-search driver
that hunts for instances on which a policy's machines/OPT ratio exceeds a
target — a cheap falsification tool for such conjectures.

A returned :class:`BadInstance` is a *certificate*: it carries the
instance, the exact optimum, and the policy's measured machine requirement,
all re-checkable.  ``None`` means the search failed, which is evidence (not
proof) in the conjecture's favour; the driver reports the worst ratio seen
either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Optional, Tuple

from ..model.instance import Instance
from ..offline.optimum import migratory_optimum
from ..online.base import Policy
from ..online.engine import min_machines


@dataclass(frozen=True)
class BadInstance:
    """A found counterexample with its certificate numbers."""

    instance: Instance
    optimum: int
    policy_machines: int
    seed: int

    @property
    def ratio(self) -> Fraction:
        return Fraction(self.policy_machines, self.optimum)


@dataclass(frozen=True)
class SearchReport:
    """Outcome of a counterexample hunt."""

    found: Optional[BadInstance]
    trials: int
    worst_ratio: float
    worst_seed: int


def find_bad_instance(
    policy_factory: Callable[[], Policy],
    instance_maker: Callable[[int], Instance],
    ratio_target: float,
    max_trials: int = 100,
    opt_filter: Optional[Callable[[int], bool]] = None,
    start_seed: int = 0,
) -> SearchReport:
    """Search seeds for an instance with ``machines/OPT > ratio_target``.

    ``opt_filter`` restricts which optima count (e.g. ``lambda m: m == 2``
    to probe the paper's m = 2 open question).  Deterministic given
    ``start_seed``.
    """
    worst = 0.0
    worst_seed = start_seed
    trials = 0
    for seed in range(start_seed, start_seed + max_trials):
        instance = instance_maker(seed)
        if len(instance) == 0:
            continue
        m = migratory_optimum(instance)
        if m == 0 or (opt_filter is not None and not opt_filter(m)):
            continue
        trials += 1
        k = min_machines(lambda n: policy_factory(), instance)
        ratio = k / m
        if ratio > worst:
            worst = ratio
            worst_seed = seed
        if ratio > ratio_target:
            return SearchReport(
                found=BadInstance(instance, m, k, seed),
                trials=trials,
                worst_ratio=ratio,
                worst_seed=seed,
            )
    return SearchReport(found=None, trials=trials, worst_ratio=worst,
                        worst_seed=worst_seed)
