"""Metrics, Gantt rendering, and experiment reporting."""

from .competitive import RatioProfile, profile_matrix, ratio_profile
from .gantt import render_gantt, render_witness
from .profile import approx_lower_bound, grid_winner, load_profile, window_density_grid
from .metrics import ScheduleStats, evaluate_schedule, theorem2_bound, theorem13_bound
from .report import format_table, print_table
from .search import BadInstance, SearchReport, find_bad_instance
from .speed import min_speed, speed_machines_tradeoff
from .stats import bootstrap_ci, max_ci, mean_ci
from .svg import render_svg, save_svg, witness_svg

__all__ = [
    "RatioProfile",
    "profile_matrix",
    "ratio_profile",
    "approx_lower_bound",
    "grid_winner",
    "load_profile",
    "window_density_grid",
    "render_gantt",
    "render_witness",
    "ScheduleStats",
    "evaluate_schedule",
    "theorem2_bound",
    "theorem13_bound",
    "format_table",
    "print_table",
    "BadInstance",
    "SearchReport",
    "find_bad_instance",
    "min_speed",
    "speed_machines_tradeoff",
    "bootstrap_ci",
    "max_ci",
    "mean_ci",
    "render_svg",
    "save_svg",
    "witness_svg",
]
