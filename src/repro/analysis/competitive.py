"""Systematic competitive-ratio profiling across policies and families.

Lemma 1 of the paper ties the power-of-migration ratio to the competitive
ratio; these helpers measure the empirical ratio ``machines / m`` of any
policy over seeded workload families, powering the capstone cross-table in
``benchmarks/bench_competitive_profile.py`` ("who wins where, by how much").

Sampling is embarrassingly parallel, so every entry point takes ``n_jobs``:
with ``n_jobs=1`` (the default) the historical in-process loop runs
unchanged; with ``n_jobs != 1`` the samples fan out through
:mod:`repro.runner` — which requires the policy to be named by its registry
key (``"edf"``, ``"llf"``, ``"firstfit"``, …) rather than an unpicklable
factory closure.  Both paths produce bit-identical profiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean, median
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..model.instance import Instance
from ..offline.optimum import migratory_optimum
from ..online.base import Policy
from ..online.engine import min_machines

#: A policy argument: a zero-arg factory, or a :mod:`repro.runner` registry name.
PolicyArg = Union[str, Callable[[], Policy]]


@dataclass(frozen=True)
class RatioProfile:
    """Distribution summary of ``machines / m`` over a family sample."""

    policy: str
    family: str
    samples: int
    worst: float
    average: float
    med: float

    def row(self) -> Tuple[str, str, int, float, float, float]:
        return (
            self.policy,
            self.family,
            self.samples,
            round(self.worst, 3),
            round(self.average, 3),
            round(self.med, 3),
        )


def _profile_from_ratios(
    policy: str, family: str, ratios: List[float]
) -> RatioProfile:
    if not ratios:
        raise ValueError("no non-trivial samples")
    return RatioProfile(
        policy=policy,
        family=family,
        samples=len(ratios),
        worst=max(ratios),
        average=mean(ratios),
        med=median(ratios),
    )


def _resolve_factory(policy: PolicyArg) -> Callable[[], Policy]:
    if isinstance(policy, str):
        from ..runner.tasks import resolve_policy

        cls = resolve_policy(policy)
        return lambda: cls()
    return policy


def ratio_profile(
    policy_name: str,
    policy_factory: PolicyArg,
    family_name: str,
    instance_maker: Callable[[int], Instance],
    seeds: Sequence[int],
    n_jobs: int = 1,
    chunksize: int = 4,
) -> RatioProfile:
    """Sample ``machines/m`` for one policy over one instance family."""
    if n_jobs != 1:
        return _parallel_profiles(
            [(policy_name, policy_factory)],
            [(family_name, instance_maker)],
            seeds,
            n_jobs,
            chunksize,
        )[0]
    factory = _resolve_factory(policy_factory)
    ratios: List[float] = []
    for seed in seeds:
        instance = instance_maker(seed)
        if len(instance) == 0:
            continue
        m = migratory_optimum(instance)
        if m == 0:
            continue
        k = min_machines(lambda n: factory(), instance)
        ratios.append(k / m)
    return _profile_from_ratios(policy_name, family_name, ratios)


def profile_matrix(
    policies: Dict[str, PolicyArg],
    families: Dict[str, Callable[[int], Instance]],
    seeds: Sequence[int],
    n_jobs: int = 1,
    chunksize: int = 4,
) -> List[RatioProfile]:
    """Full cross product of policies × families."""
    if n_jobs != 1:
        return _parallel_profiles(
            list(policies.items()), list(families.items()), seeds, n_jobs, chunksize
        )
    out: List[RatioProfile] = []
    for family_name, maker in families.items():
        for policy_name, factory in policies.items():
            out.append(
                ratio_profile(policy_name, factory, family_name, maker, seeds)
            )
    return out


def _parallel_profiles(
    policies: List[Tuple[str, PolicyArg]],
    families: List[Tuple[str, Callable[[int], Instance]]],
    seeds: Sequence[int],
    n_jobs: int,
    chunksize: int,
) -> List[RatioProfile]:
    """Fan the sample grid out through the runner; aggregate per cell.

    Instances are generated in the parent (the makers may be closures) and
    shipped inline; each instance's samples share one chunk group, so every
    policy probing it reuses the warm feasibility cache, exactly like the
    serial loop.  Policies must be runner-registry names.
    """
    from ..runner import SweepPlan, run_sweep

    for display, policy in policies:
        if not isinstance(policy, str):
            raise ValueError(
                f"n_jobs != 1 requires registry policy names, got a "
                f"{type(policy).__name__} for {display!r}; see repro.runner.POLICIES"
            )
    entries = []
    cells: List[Tuple[str, str]] = []
    for family_name, maker in families:
        for seed in seeds:
            instance = maker(seed)
            if len(instance) == 0:
                continue
            for display, policy in policies:
                entries.append(
                    ("ratio_sample", instance, {"policy": policy, "family": family_name})
                )
    for family_name, _ in families:
        for display, _ in policies:
            cells.append((display, family_name))
    plan = SweepPlan.build(entries)
    report = run_sweep(plan, n_jobs=n_jobs, chunksize=chunksize)
    failed = report.errors + report.crashes + report.cancelled
    if failed:
        first = failed[0]
        raise RuntimeError(
            f"ratio sweep failed on item {first.index}: {first.error}"
        )
    ratios: Dict[Tuple[str, str], List[float]] = {cell: [] for cell in cells}
    by_name = {policy: display for display, policy in policies}
    for result in report.results:
        sample = result.value
        if sample["ratio"] is None:
            continue
        key = (by_name[sample["policy"]], sample["family"])
        # float(Fraction) rounds exactly like the serial loop's int division.
        ratios[key].append(float(sample["ratio"]))
    return [
        _profile_from_ratios(display, family, ratios[(display, family)])
        for display, family in cells
    ]


def profiles_from_samples(samples: Iterable[Optional[dict]]) -> List[RatioProfile]:
    """Aggregate raw ``ratio_sample`` task outputs into profiles.

    Used by ``repro sweep ratio`` to turn a :class:`~repro.runner.SweepReport`
    into the familiar cross-table; cells appear in first-seen order.
    """
    ratios: Dict[Tuple[str, str], List[float]] = {}
    for sample in samples:
        if sample is None:
            continue
        key = (sample["policy"], sample["family"])
        ratios.setdefault(key, [])
        if sample["ratio"] is not None:
            ratios[key].append(float(sample["ratio"]))
    return [
        _profile_from_ratios(policy, family, values)
        for (policy, family), values in ratios.items()
    ]
