"""Systematic competitive-ratio profiling across policies and families.

Lemma 1 of the paper ties the power-of-migration ratio to the competitive
ratio; these helpers measure the empirical ratio ``machines / m`` of any
policy over seeded workload families, powering the capstone cross-table in
``benchmarks/bench_competitive_profile.py`` ("who wins where, by how much").
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from statistics import mean, median
from typing import Callable, Dict, List, Sequence, Tuple

from ..model.instance import Instance
from ..offline.optimum import migratory_optimum
from ..online.base import Policy
from ..online.engine import min_machines


@dataclass(frozen=True)
class RatioProfile:
    """Distribution summary of ``machines / m`` over a family sample."""

    policy: str
    family: str
    samples: int
    worst: float
    average: float
    med: float

    def row(self) -> Tuple[str, str, int, float, float, float]:
        return (
            self.policy,
            self.family,
            self.samples,
            round(self.worst, 3),
            round(self.average, 3),
            round(self.med, 3),
        )


def ratio_profile(
    policy_name: str,
    policy_factory: Callable[[], Policy],
    family_name: str,
    instance_maker: Callable[[int], Instance],
    seeds: Sequence[int],
) -> RatioProfile:
    """Sample ``machines/m`` for one policy over one instance family."""
    ratios: List[float] = []
    for seed in seeds:
        instance = instance_maker(seed)
        if len(instance) == 0:
            continue
        m = migratory_optimum(instance)
        if m == 0:
            continue
        k = min_machines(lambda n: policy_factory(), instance)
        ratios.append(k / m)
    if not ratios:
        raise ValueError("no non-trivial samples")
    return RatioProfile(
        policy=policy_name,
        family=family_name,
        samples=len(ratios),
        worst=max(ratios),
        average=mean(ratios),
        med=median(ratios),
    )


def profile_matrix(
    policies: Dict[str, Callable[[], Policy]],
    families: Dict[str, Callable[[int], Instance]],
    seeds: Sequence[int],
) -> List[RatioProfile]:
    """Full cross product of policies × families."""
    out: List[RatioProfile] = []
    for family_name, maker in families.items():
        for policy_name, factory in policies.items():
            out.append(
                ratio_profile(policy_name, factory, family_name, maker, seeds)
            )
    return out
