"""Plain-text experiment tables (the benchmark harness's output format).

Every benchmark prints its series through :func:`print_table` so the rows in
EXPERIMENTS.md and the rows produced by ``pytest benchmarks/`` come from the
same code path.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, List, Sequence


def _fmt(value) -> str:
    if isinstance(value, Fraction):
        return f"{float(value):.3f}"
    if isinstance(value, float):
        return f"{value:.3f}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)


def format_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render an aligned text table with a title rule."""
    str_rows: List[List[str]] = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [f"== {title} ==",
             " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
             sep]
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    print()
    print(format_table(title, headers, rows))


def format_csv(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """The same series as RFC-4180-ish CSV (for downstream plotting)."""
    import csv
    import io

    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(headers)
    for row in rows:
        writer.writerow([_fmt(v) for v in row])
    return buf.getvalue()


def save_csv(path: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    with open(path, "w", encoding="utf-8", newline="") as fh:
        fh.write(format_csv(headers, rows))
