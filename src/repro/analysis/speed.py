"""Speed-augmentation measurements (related work, Section 1).

The paper contrasts its machine-augmentation model with the
speed-augmentation literature: Chan–Lam–To [3] give a non-migratory online
algorithm with speed 5.828 on the *same* number of machines as the
migratory optimum, and trade-offs ``⌈(1+1/ε)²⌉·m`` machines at speed
``(1+ε)²``.  These helpers measure the empirical speed requirement of any
policy so the benchmarks can chart machines-vs-speed trade-off curves.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Optional

from ..model.instance import Instance
from ..model.intervals import Numeric, to_fraction
from ..online.base import Policy
from ..online.engine import succeeds


def min_speed(
    policy_factory: Callable[[], Policy],
    instance: Instance,
    machines: int,
    hi: Numeric = 16,
    precision: Numeric = Fraction(1, 32),
) -> Optional[Fraction]:
    """Least speed (on a ``precision`` grid) at which the policy succeeds.

    Binary search over ``{1, 1+precision, 1+2·precision, …, hi}``; assumes
    success is monotone in speed (true for every policy in this repo).
    Returns ``None`` if even ``hi`` does not suffice.
    """
    hi = to_fraction(hi)
    precision = to_fraction(precision)
    if len(instance) == 0:
        return Fraction(1)
    steps = int((hi - 1) / precision)
    lo_idx, hi_idx = 0, steps
    if not succeeds(policy_factory(), instance, machines, speed=1 + hi_idx * precision):
        return None
    if succeeds(policy_factory(), instance, machines, speed=1):
        return Fraction(1)
    while lo_idx < hi_idx:
        mid = (lo_idx + hi_idx) // 2
        if succeeds(policy_factory(), instance, machines, speed=1 + mid * precision):
            hi_idx = mid
        else:
            lo_idx = mid + 1
    return 1 + hi_idx * precision


def speed_machines_tradeoff(
    policy_factory: Callable[[], Policy],
    instance: Instance,
    machine_range,
    hi: Numeric = 16,
    precision: Numeric = Fraction(1, 32),
):
    """``[(machines, min_speed)]`` across a machine-count range."""
    return [
        (k, min_speed(policy_factory, instance, k, hi=hi, precision=precision))
        for k in machine_range
    ]
