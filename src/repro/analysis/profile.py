"""Vectorized workload profiling for large instances.

The exact Theorem 1 machinery in :mod:`repro.offline.workload` enumerates
candidate interval pairs — ``O(P²·n)`` with exact rationals, fine for the
experiment sizes but not for profiling thousands of jobs.  This module
provides numpy float versions:

* :func:`load_profile` — instantaneous *mandatory density* samples (a valid
  lower-bound sampler for the machine count),
* :func:`window_density_grid` — ``C(S,[a,b))/(b−a)`` on an (a, width) grid,
* :func:`approx_lower_bound` — ``ceil`` of the grid maximum (with a safety
  margin against float round-off: the result is cross-checked against the
  exact contribution of the winning window before being returned).

These are analysis conveniences; every theorem experiment uses the exact
solvers.
"""

from __future__ import annotations

from fractions import Fraction
from math import ceil
from typing import Any, Dict, Tuple

import numpy as np

from ..model.instance import Instance
from ..model.intervals import IntervalUnion
from ..offline.workload import machines_bound


def _arrays(instance: Instance) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    r = np.array([float(j.release) for j in instance])
    d = np.array([float(j.deadline) for j in instance])
    lax = np.array([float(j.laxity) for j in instance])
    return r, d, lax


def load_profile(instance: Instance, samples: int = 512) -> Tuple[np.ndarray, np.ndarray]:
    """``(times, density)`` of the sliding mandatory load.

    For each sample time ``t`` with window ``w`` = span/samples, the value is
    ``C(S, [t, t+w)) / w`` — the minimum average machine usage any feasible
    schedule shows in that window.
    """
    if len(instance) == 0:
        return np.zeros(0), np.zeros(0)
    r, d, lax = _arrays(instance)
    lo, hi = r.min(), d.max()
    width = (hi - lo) / samples
    starts = lo + width * np.arange(samples)
    # overlap of [a, a+w) with each [r_j, d_j): broadcast to (samples, n)
    a = starts[:, None]
    overlap = np.minimum(a + width, d[None, :]) - np.maximum(a, r[None, :])
    contrib = np.clip(overlap - lax[None, :], 0.0, None)
    contrib[overlap <= 0] = 0.0
    return starts, contrib.sum(axis=1) / width


def window_density_grid(
    instance: Instance, starts: int = 64, widths: int = 32
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(start_grid, width_grid, density)`` over an (a, w) grid.

    ``density[i, k] = C(S, [a_i, a_i + w_k)) / w_k``.
    """
    if len(instance) == 0:
        return np.zeros(0), np.zeros(0), np.zeros((0, 0))
    r, d, lax = _arrays(instance)
    lo, hi = r.min(), d.max()
    span = hi - lo
    start_grid = lo + span * np.arange(starts) / starts
    width_grid = span * (1 + np.arange(widths)) / widths
    a = start_grid[:, None, None]
    w = width_grid[None, :, None]
    overlap = np.minimum(a + w, d[None, None, :]) - np.maximum(a, r[None, None, :])
    contrib = np.clip(overlap - lax[None, None, :], 0.0, None)
    contrib[overlap <= 0] = 0.0
    density = contrib.sum(axis=2) / width_grid[None, :]
    return start_grid, width_grid, density


def grid_winner(instance: Instance, starts: int = 64, widths: int = 32) -> Dict[str, Any]:
    """The densest grid window with its exact certified bound.

    Returns a dict with keys ``bound`` (the exact ``ceil(C/|I|)`` of the
    winning window), ``window`` (``(a, b)`` as :class:`~fractions.Fraction`
    pair, or ``None`` for the empty instance), ``grid_density`` (the float
    grid estimate at the winner), and ``grid`` (the grid resolution) — the
    joinable record emitted by ``repro profile --json`` so trace files and
    profiles can be correlated offline.
    """
    if len(instance) == 0:
        return {
            "bound": 0,
            "window": None,
            "grid_density": 0.0,
            "grid": {"starts": starts, "widths": widths},
        }
    start_grid, width_grid, density = window_density_grid(instance, starts, widths)
    i, k = np.unravel_index(np.argmax(density), density.shape)
    a = Fraction(start_grid[i]).limit_denominator(10**9)
    b = a + Fraction(width_grid[k]).limit_denominator(10**9)
    return {
        "bound": machines_bound(instance, IntervalUnion.single(a, b)),
        "window": (a, b),
        "grid_density": float(density[i, k]),
        "grid": {"starts": starts, "widths": widths},
    }


def approx_lower_bound(instance: Instance, starts: int = 64, widths: int = 32) -> int:
    """A fast, *certified* lower bound on the migratory optimum.

    The float grid locates the densest window; the bound returned is the
    exact ``ceil(C/|I|)`` of that window (re-evaluated with rationals), so
    float round-off can cost tightness but never soundness.
    """
    return grid_winner(instance, starts, widths)["bound"]
