"""ASCII Gantt rendering (regenerates the paper's Figure 1).

Figure 1 of the paper illustrates the 3-machine offline witness schedule of
Lemma 2: machine 3 runs the conflict job ``j*`` until the critical time and
machine 1 finishes it as late as possible, leaving the idle pattern the
induction needs.  :func:`render_gantt` draws any :class:`Schedule` on a
character grid; :func:`render_witness` labels the witness's job roles.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Optional

from ..model.instance import Instance
from ..model.schedule import Schedule

_PALETTE = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"


def render_gantt(
    schedule: Schedule,
    width: int = 100,
    labels: Optional[Dict[int, str]] = None,
    span: Optional[tuple] = None,
) -> str:
    """Draw the schedule as one text row per machine.

    Each column is a time cell; a cell shows the symbol of the job occupying
    the majority of it (``.`` = idle).  ``labels`` overrides the per-job
    symbol (first character is used).
    """
    if len(schedule) == 0:
        return "(empty schedule)"
    if span is None:
        t0 = min(s.start for s in schedule)
        t1 = max(s.end for s in schedule)
    else:
        t0, t1 = Fraction(span[0]), Fraction(span[1])
    if t1 <= t0:
        return "(degenerate span)"
    cell = (t1 - t0) / width
    machines = schedule.machines()
    symbol: Dict[int, str] = {}
    for seg in schedule:
        if seg.job_id not in symbol:
            if labels and seg.job_id in labels:
                symbol[seg.job_id] = labels[seg.job_id][0]
            else:
                symbol[seg.job_id] = _PALETTE[len(symbol) % len(_PALETTE)]
    rows = []
    for machine in machines:
        cells = ["."] * width
        for seg in schedule.machine_segments(machine):
            lo = int((seg.start - t0) / cell)
            hi = int(-(-(seg.end - t0) // cell))  # ceil
            for c in range(max(lo, 0), min(hi, width)):
                cells[c] = symbol[seg.job_id]
        rows.append(f"M{machine:<2d} |" + "".join(cells) + "|")
    header = f"t ∈ [{float(t0):.4g}, {float(t1):.4g})  ·  one column ≈ {float(cell):.4g}"
    legend = "  ".join(
        f"{sym}=j{job_id}" for job_id, sym in sorted(symbol.items())[:20]
    )
    return "\n".join([header] + rows + [legend])


def render_witness(node, width: int = 100) -> str:
    """Render the Lemma 2 offline witness with role-based symbols.

    ``node`` is a :class:`~repro.core.adversary.migration_gap.ConstructionNode`;
    long jobs show as ``L``, short jobs as ``s``, conflict jobs as ``*``.
    """
    from ..core.adversary.migration_gap import offline_witness

    labels: Dict[int, str] = {}
    for job in node.all_jobs():
        if job.label == "long":
            labels[job.id] = "L"
        elif job.label == "short":
            labels[job.id] = "s"
        elif job.label == "conflict":
            labels[job.id] = "*"
    schedule = offline_witness(node)
    marker = (
        f"critical time t0 = {float(node.critical_time):.6g}, "
        f"idle ε = {float(node.idle_eps):.3g} "
        f"(machines 0–1 idle in [t0, t0+ε], machine 2 idle from t0)"
    )
    return render_gantt(schedule, width=width, labels=labels) + "\n" + marker
