"""Instances (job sets) with the classifications used throughout the paper.

The paper's positive results apply to three structured instance classes:

* **α-loose instances** — every job satisfies ``p_j ≤ α (d_j − r_j)``
  (Section 4),
* **laminar instances** — intersecting windows are nested (Section 5),
* **agreeable instances** — ``r_j < r_{j'}`` implies ``d_j ≤ d_{j'}``
  (Section 6).

An :class:`Instance` is an immutable, canonically ordered sequence of jobs.
Jobs are ordered by the paper's index convention: release date ascending,
and for equal release dates deadline *descending* (so a job never dominates
a lower-indexed job; see Section 5).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .intervals import Interval, IntervalUnion, Numeric, to_fraction
from .job import Job


def paper_order_key(job: Job) -> Tuple[Fraction, Fraction, int]:
    """Sort key for the paper's index order (Section 5)."""
    return (job.release, -job.deadline, job.id)


def dominates(j: Job, jprime: Job) -> bool:
    """True iff ``j ▷ j'``: ``I(j') ⊆ I(j)`` and ``j`` precedes ``j'``.

    The paper defines domination relative to index order; with the canonical
    key, containment plus strictly earlier order is exactly this test.
    """
    return (
        j.release <= jprime.release
        and jprime.deadline <= j.deadline
        and paper_order_key(j) < paper_order_key(jprime)
    )


class Instance:
    """An immutable set of jobs in canonical (paper) order.

    Immutability is load-bearing: derived structure (the feasibility core's
    elementary intervals, scales, and flow verdicts) is memoized on the
    instance itself in the ``_feas_cache`` slot and can never go stale.
    """

    __slots__ = ("jobs", "_by_id", "_feas_cache")

    jobs: Tuple[Job, ...]

    def __init__(self, jobs: Iterable[Job]) -> None:
        ordered = tuple(sorted(jobs, key=paper_order_key))
        by_id: Dict[int, Job] = {}
        for job in ordered:
            if job.id in by_id:
                raise ValueError(f"duplicate job id {job.id}")
            by_id[job.id] = job
        object.__setattr__(self, "jobs", ordered)
        object.__setattr__(self, "_by_id", by_id)
        object.__setattr__(self, "_feas_cache", None)

    def __setattr__(self, name: str, value: object) -> None:  # pragma: no cover
        raise AttributeError("Instance is immutable")

    def __reduce__(self):
        # Reconstruct from the job tuple: the immutability guard breaks the
        # default slot-state protocol, and the feasibility cache (worker- or
        # process-local solver state) must not travel across processes.
        return (Instance, (self.jobs,))

    # -- container protocol --------------------------------------------------

    def __iter__(self) -> Iterator[Job]:
        return iter(self.jobs)

    def __len__(self) -> int:
        return len(self.jobs)

    def __getitem__(self, idx: int) -> Job:
        return self.jobs[idx]

    def job(self, job_id: int) -> Job:
        return self._by_id[job_id]

    def __contains__(self, job_id: int) -> bool:
        return job_id in self._by_id

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        return self.jobs == other.jobs

    def __hash__(self) -> int:
        return hash(self.jobs)

    def __repr__(self) -> str:
        return f"Instance(n={len(self.jobs)})"

    # -- global measurements ---------------------------------------------------

    @property
    def total_work(self) -> Fraction:
        return sum((j.processing for j in self.jobs), Fraction(0))

    @property
    def span(self) -> Interval:
        """Smallest interval containing all windows (empty instance → [0,0))."""
        if not self.jobs:
            return Interval(0, 0)
        lo = min(j.release for j in self.jobs)
        hi = max(j.deadline for j in self.jobs)
        return Interval(lo, hi)

    @property
    def max_deadline(self) -> Fraction:
        if not self.jobs:
            raise ValueError("empty instance")
        return max(j.deadline for j in self.jobs)

    @property
    def delta_ratio(self) -> Fraction:
        """``Δ``: the max/min processing-time ratio (1 for empty instances)."""
        if not self.jobs:
            return Fraction(1)
        ps = [j.processing for j in self.jobs]
        return max(ps) / min(ps)

    def covering(self, t: Numeric) -> List[Job]:
        """All jobs whose window covers time ``t``."""
        return [j for j in self.jobs if j.covers(t)]

    def intervals(self) -> IntervalUnion:
        """``I(S) = ∪_j I(j)``."""
        return IntervalUnion(j.interval for j in self.jobs)

    # -- classification --------------------------------------------------------

    def is_agreeable(self) -> bool:
        """True iff ``r_j < r_{j'}`` implies ``d_j ≤ d_{j'}`` for all pairs.

        Equivalently, in canonical order with equal-release ties checked
        explicitly: deadlines must be monotone in release dates.
        """
        by_release = sorted(self.jobs, key=lambda j: (j.release, j.deadline))
        for prev, nxt in zip(by_release, by_release[1:]):
            if prev.release < nxt.release and prev.deadline > nxt.deadline:
                return False
        return True

    def is_laminar(self) -> bool:
        """True iff any two intersecting windows are nested."""
        jobs = sorted(self.jobs, key=lambda j: (j.release, -j.deadline))
        stack: List[Job] = []
        for j in jobs:
            while stack and stack[-1].deadline <= j.release:
                stack.pop()
            if stack and j.deadline > stack[-1].deadline:
                return False  # proper overlap with the enclosing candidate
            stack.append(j)
        return True

    def is_loose(self, alpha: Numeric) -> bool:
        """True iff every job is α-loose."""
        return all(j.is_loose(alpha) for j in self.jobs)

    @property
    def max_density(self) -> Fraction:
        """Smallest α for which the instance is α-loose."""
        if not self.jobs:
            return Fraction(0)
        return max(j.density for j in self.jobs)

    def split_by_looseness(self, alpha: Numeric) -> Tuple["Instance", "Instance"]:
        """Partition into (α-loose jobs, α-tight jobs)."""
        loose = [j for j in self.jobs if j.is_loose(alpha)]
        tight = [j for j in self.jobs if not j.is_loose(alpha)]
        return Instance(loose), Instance(tight)

    # -- transforms (Sections 3 and 4) ------------------------------------------

    def inflated(self, s: Numeric) -> "Instance":
        """``J^s``: every processing time multiplied by ``s`` (Lemma 4)."""
        return Instance(j.inflated(s) for j in self.jobs)

    def trim_left(self, gamma: Numeric) -> "Instance":
        """``J^γ``: remove a γ-fraction of laxity from the left (Lemma 3)."""
        return Instance(j.trim_left(gamma) for j in self.jobs)

    def trim_right(self, gamma: Numeric) -> "Instance":
        """``J^0``: remove a γ-fraction of laxity from the right (Lemma 3)."""
        return Instance(j.trim_right(gamma) for j in self.jobs)

    def scaled(self, scale: Numeric, shift: Numeric, id_offset: int = 0) -> "Instance":
        """Affine time transform of every job, optionally re-numbering ids."""
        return Instance(
            j.scaled(scale, shift).with_id(j.id + id_offset) for j in self.jobs
        )

    def renumbered(self, start: int = 0) -> "Instance":
        """Re-assign contiguous ids in canonical order."""
        return Instance(j.with_id(start + i) for i, j in enumerate(self.jobs))

    def merged(self, other: "Instance") -> "Instance":
        return Instance(list(self.jobs) + list(other.jobs))

    # -- simple lower bounds ------------------------------------------------------

    def zero_laxity_concurrency(self) -> int:
        """Max overlap of windows of *zero-laxity* jobs.

        A zero-laxity job must run during its entire window, so the maximum
        overlap of such windows is a valid (if weak) lower bound on the
        optimal machine count.  (Note: a positive-laxity job has no pointwise
        mandatory part — its laxity may be idled inside any sub-interval —
        so only ``ℓ_j = 0`` jobs can be counted this way; the sharp bound is
        the workload characterization of Theorem 1.)
        """
        events: List[Tuple[Fraction, int]] = []
        for j in self.jobs:
            if j.laxity == 0:
                events.append((j.release, 1))
                events.append((j.deadline, -1))
        events.sort()
        best = cur = 0
        for _, delta in events:
            cur += delta
            best = max(best, cur)
        return best
