"""Schedule representation and exact feasibility verification.

A :class:`Schedule` is a set of segments ``(job, machine, [start, end))``.
Feasibility (Section 2 of the paper) requires that

1. every segment lies inside its job's window ``[r_j, d_j)``,
2. each machine processes at most one job at any time,
3. no job runs on two machines simultaneously,
4. every job receives exactly ``p_j`` units of processing
   (``p_j / speed`` units of machine time on speed-``s`` machines).

The checker also reports *migrations* (a job processed on more than one
machine — the paper's central dichotomy), *preemptions*, and the number of
machines actually used, so a single verified artifact backs all experiment
measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .intervals import Interval, Numeric, to_fraction
from .instance import Instance
from .job import Job


@dataclass(frozen=True)
class Segment:
    """Processing of ``job_id`` on ``machine`` during ``[start, end)``."""

    job_id: int
    machine: int
    start: Fraction
    end: Fraction

    def __post_init__(self) -> None:
        object.__setattr__(self, "start", to_fraction(self.start))
        object.__setattr__(self, "end", to_fraction(self.end))
        if self.end <= self.start:
            raise ValueError(f"segment for job {self.job_id} has non-positive length")
        if self.machine < 0:
            raise ValueError("machine index must be non-negative")

    @property
    def length(self) -> Fraction:
        return self.end - self.start

    @property
    def interval(self) -> Interval:
        return Interval(self.start, self.end)


@dataclass(frozen=True)
class FeasibilityReport:
    """Outcome of verifying a schedule against an instance."""

    feasible: bool
    violations: Tuple[str, ...]
    machines_used: int
    migratory_jobs: Tuple[int, ...]
    preemptions: int
    #: job_id -> shortfall p_j − (work received); zero entries omitted
    unfinished: Dict[int, Fraction] = field(default_factory=dict)

    @property
    def migrations(self) -> int:
        return len(self.migratory_jobs)

    @property
    def is_non_migratory(self) -> bool:
        return not self.migratory_jobs

    def require_feasible(self) -> "FeasibilityReport":
        if not self.feasible:
            raise AssertionError("infeasible schedule: " + "; ".join(self.violations[:5]))
        return self


class Schedule:
    """An immutable collection of segments with normalization.

    Adjacent segments of the same job on the same machine are merged so that
    preemption counts are not inflated by representation artifacts.
    """

    __slots__ = ("segments",)

    segments: Tuple[Segment, ...]

    def __init__(self, segments: Iterable[Segment]) -> None:
        object.__setattr__(self, "segments", _merge_adjacent(segments))

    def __setattr__(self, name: str, value: object) -> None:  # pragma: no cover
        raise AttributeError("Schedule is immutable")

    def __iter__(self):
        return iter(self.segments)

    def __len__(self) -> int:
        return len(self.segments)

    # -- accessors ----------------------------------------------------------

    def machines(self) -> Tuple[int, ...]:
        return tuple(sorted({s.machine for s in self.segments}))

    @property
    def machines_used(self) -> int:
        return len({s.machine for s in self.segments})

    def job_segments(self, job_id: int) -> List[Segment]:
        return [s for s in self.segments if s.job_id == job_id]

    def machine_segments(self, machine: int) -> List[Segment]:
        return sorted(
            (s for s in self.segments if s.machine == machine),
            key=lambda s: s.start,
        )

    def work_of(self, job_id: int, speed: Numeric = 1) -> Fraction:
        speed = to_fraction(speed)
        return sum((s.length * speed for s in self.segments if s.job_id == job_id), Fraction(0))

    def makespan(self) -> Fraction:
        if not self.segments:
            return Fraction(0)
        return max(s.end for s in self.segments)

    def busy_time(self, machine: Optional[int] = None) -> Fraction:
        """Total processing time (of one machine, or all machines)."""
        return sum(
            (s.length for s in self.segments
             if machine is None or s.machine == machine),
            Fraction(0),
        )

    def machine_utilization(self) -> Dict[int, Fraction]:
        """Per-machine busy fraction over the schedule's overall span."""
        if not self.segments:
            return {}
        t0 = min(s.start for s in self.segments)
        t1 = max(s.end for s in self.segments)
        span = t1 - t0
        if span == 0:
            return {m: Fraction(0) for m in self.machines()}
        return {m: self.busy_time(m) / span for m in self.machines()}

    # -- transforms ----------------------------------------------------------

    def shifted_machines(self, offset: int) -> "Schedule":
        return Schedule(
            Segment(s.job_id, s.machine + offset, s.start, s.end) for s in self.segments
        )

    def merged(self, other: "Schedule") -> "Schedule":
        return Schedule(list(self.segments) + list(other.segments))

    def restricted_to_jobs(self, job_ids: Iterable[int]) -> "Schedule":
        keep = set(job_ids)
        return Schedule(s for s in self.segments if s.job_id in keep)

    # -- verification --------------------------------------------------------

    def verify(
        self,
        instance: Instance,
        speed: Numeric = 1,
        machines: Optional[int] = None,
    ) -> FeasibilityReport:
        """Check the schedule against ``instance`` on speed-``speed`` machines.

        When ``machines`` is given the schedule must also fit on that many
        machines — the extra condition that turns a verified schedule into a
        *feasibility certificate at* ``m`` (see :mod:`repro.verify`).
        """
        speed = to_fraction(speed)
        violations: List[str] = []

        if machines is not None and self.machines_used > machines:
            violations.append(
                f"schedule uses {self.machines_used} machines > allowed {machines}"
            )

        known = {j.id for j in instance}
        for seg in self.segments:
            if seg.job_id not in known:
                violations.append(f"segment references unknown job {seg.job_id}")

        # (1) window containment
        for seg in self.segments:
            if seg.job_id not in known:
                continue
            job = instance.job(seg.job_id)
            if seg.start < job.release or seg.end > job.deadline:
                violations.append(
                    f"job {seg.job_id} runs [{seg.start},{seg.end}) outside "
                    f"window [{job.release},{job.deadline})"
                )

        # (2) machine exclusivity
        by_machine: Dict[int, List[Segment]] = {}
        for seg in self.segments:
            by_machine.setdefault(seg.machine, []).append(seg)
        for machine, segs in by_machine.items():
            segs.sort(key=lambda s: s.start)
            for a, b in zip(segs, segs[1:]):
                if b.start < a.end:
                    violations.append(
                        f"machine {machine} overlap: job {a.job_id} "
                        f"[{a.start},{a.end}) vs job {b.job_id} [{b.start},{b.end})"
                    )

        # (3) no intra-job parallelism, plus migration/preemption counting
        migratory: List[int] = []
        preemptions = 0
        by_job: Dict[int, List[Segment]] = {}
        for seg in self.segments:
            by_job.setdefault(seg.job_id, []).append(seg)
        for job_id, segs in by_job.items():
            segs.sort(key=lambda s: (s.start, s.end))
            for a, b in zip(segs, segs[1:]):
                if b.start < a.end:
                    violations.append(
                        f"job {job_id} runs on machines {a.machine} and "
                        f"{b.machine} simultaneously at {b.start}"
                    )
                elif b.start > a.end or b.machine != a.machine:
                    preemptions += 1
            if len({s.machine for s in segs}) > 1:
                migratory.append(job_id)

        # (4) work completion
        unfinished: Dict[int, Fraction] = {}
        for job in instance:
            got = self.work_of(job.id, speed)
            if got != job.processing:
                if got < job.processing:
                    unfinished[job.id] = job.processing - got
                    violations.append(
                        f"job {job.id} received {got} < p_j = {job.processing}"
                    )
                else:
                    violations.append(
                        f"job {job.id} received {got} > p_j = {job.processing}"
                    )

        return FeasibilityReport(
            feasible=not violations,
            violations=tuple(violations),
            machines_used=self.machines_used,
            migratory_jobs=tuple(sorted(migratory)),
            preemptions=preemptions,
            unfinished=unfinished,
        )


def _merge_adjacent(segments: Iterable[Segment]) -> Tuple[Segment, ...]:
    """Merge back-to-back segments of the same job on the same machine."""
    segs = sorted(segments, key=lambda s: (s.machine, s.job_id, s.start))
    merged: List[Segment] = []
    for seg in segs:
        prev = merged[-1] if merged else None
        if (
            prev is not None
            and prev.machine == seg.machine
            and prev.job_id == seg.job_id
            and prev.end == seg.start
        ):
            merged[-1] = Segment(seg.job_id, seg.machine, prev.start, seg.end)
        else:
            merged.append(seg)
    return tuple(sorted(merged, key=lambda s: (s.start, s.machine, s.job_id)))
