"""JSON (de)serialization for instances and schedules.

Exact rationals are stored as ``"num/den"`` strings so round-trips are
lossless — a requirement for archiving adversarial instances, whose data
has denominators that no float can represent (see DESIGN.md §4).
"""

from __future__ import annotations

import json
from fractions import Fraction
from typing import Any, Dict, List, Union

from .instance import Instance
from .job import Job
from .schedule import Schedule, Segment

FORMAT_VERSION = 1


def _enc(x: Fraction) -> Union[int, str]:
    if x.denominator == 1:
        return int(x)
    return f"{x.numerator}/{x.denominator}"


def _dec(x: Union[int, str]) -> Fraction:
    return Fraction(x)


def instance_to_dict(instance: Instance) -> Dict[str, Any]:
    """Lossless dictionary form of an instance."""
    return {
        "format": FORMAT_VERSION,
        "kind": "instance",
        "jobs": [
            {
                "id": j.id,
                "release": _enc(j.release),
                "processing": _enc(j.processing),
                "deadline": _enc(j.deadline),
                **({"label": j.label} if j.label else {}),
            }
            for j in instance
        ],
    }


def instance_from_dict(data: Dict[str, Any]) -> Instance:
    if data.get("kind") != "instance":
        raise ValueError(f"not an instance payload: kind={data.get('kind')!r}")
    jobs = [
        Job(
            _dec(item["release"]),
            _dec(item["processing"]),
            _dec(item["deadline"]),
            id=item["id"],
            label=item.get("label", ""),
        )
        for item in data["jobs"]
    ]
    return Instance(jobs)


def schedule_to_dict(schedule: Schedule) -> Dict[str, Any]:
    """Lossless dictionary form of a schedule."""
    return {
        "format": FORMAT_VERSION,
        "kind": "schedule",
        "segments": [
            {
                "job": s.job_id,
                "machine": s.machine,
                "start": _enc(s.start),
                "end": _enc(s.end),
            }
            for s in schedule
        ],
    }


def schedule_from_dict(data: Dict[str, Any]) -> Schedule:
    if data.get("kind") != "schedule":
        raise ValueError(f"not a schedule payload: kind={data.get('kind')!r}")
    return Schedule(
        Segment(item["job"], item["machine"], _dec(item["start"]), _dec(item["end"]))
        for item in data["segments"]
    )


def dumps(obj: Union[Instance, Schedule], indent: int = None) -> str:
    """Serialize an instance or schedule to a JSON string."""
    if isinstance(obj, Instance):
        return json.dumps(instance_to_dict(obj), indent=indent)
    if isinstance(obj, Schedule):
        return json.dumps(schedule_to_dict(obj), indent=indent)
    raise TypeError(f"cannot serialize {type(obj).__name__}")


def loads(text: str) -> Union[Instance, Schedule]:
    """Deserialize a JSON string produced by :func:`dumps`."""
    data = json.loads(text)
    kind = data.get("kind")
    if kind == "instance":
        return instance_from_dict(data)
    if kind == "schedule":
        return schedule_from_dict(data)
    raise ValueError(f"unknown payload kind {kind!r}")


def save(obj: Union[Instance, Schedule], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dumps(obj, indent=2))


def load(path: str) -> Union[Instance, Schedule]:
    with open(path, "r", encoding="utf-8") as fh:
        return loads(fh.read())
