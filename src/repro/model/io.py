"""JSON (de)serialization for instances and schedules.

Exact rationals are stored as ``"num/den"`` strings so round-trips are
lossless — a requirement for archiving adversarial instances, whose data
has denominators that no float can represent (see DESIGN.md §4).

Malformed input never escapes as a bare ``KeyError``/``TypeError``: every
structural problem — invalid JSON, wrong/missing ``kind``, a missing or
unparsable field — raises :class:`InstanceFormatError` carrying the source
(file path when known) and the offending location (``jobs[3]: missing
field 'deadline'``).  Corpus files and user-supplied instances are exactly
the inputs one fat-fingers; the error must say *where*, not just *that*.
"""

from __future__ import annotations

import json
from fractions import Fraction
from typing import Any, Dict, List, Optional, Union

from .instance import Instance
from .job import Job
from .schedule import Schedule, Segment

FORMAT_VERSION = 1


class InstanceFormatError(ValueError):
    """A payload is structurally invalid; the message pins file and field."""

    def __init__(self, message: str, source: Optional[str] = None) -> None:
        self.source = source
        super().__init__(f"{source}: {message}" if source else message)


def _enc(x: Fraction) -> Union[int, str]:
    if x.denominator == 1:
        return int(x)
    return f"{x.numerator}/{x.denominator}"


def _dec(x: Union[int, str]) -> Fraction:
    return Fraction(x)


def _field(item: Dict[str, Any], name: str, where: str, source: Optional[str]):
    """``item[name]`` or an :class:`InstanceFormatError` naming the spot."""
    if not isinstance(item, dict):
        raise InstanceFormatError(
            f"{where}: expected an object, got {type(item).__name__}", source
        )
    try:
        return item[name]
    except KeyError:
        raise InstanceFormatError(
            f"{where}: missing field {name!r}", source
        ) from None


def _dec_field(
    item: Dict[str, Any], name: str, where: str, source: Optional[str]
) -> Fraction:
    value = _field(item, name, where, source)
    try:
        return _dec(value)
    except (ValueError, TypeError, ZeroDivisionError) as exc:
        raise InstanceFormatError(
            f"{where}: field {name!r} is not a valid rational "
            f"({value!r}): {exc}",
            source,
        ) from None


def instance_to_dict(instance: Instance) -> Dict[str, Any]:
    """Lossless dictionary form of an instance."""
    return {
        "format": FORMAT_VERSION,
        "kind": "instance",
        "jobs": [
            {
                "id": j.id,
                "release": _enc(j.release),
                "processing": _enc(j.processing),
                "deadline": _enc(j.deadline),
                **({"label": j.label} if j.label else {}),
            }
            for j in instance
        ],
    }


def instance_from_dict(
    data: Dict[str, Any], source: Optional[str] = None
) -> Instance:
    if not isinstance(data, dict):
        raise InstanceFormatError(
            f"expected a JSON object, got {type(data).__name__}", source
        )
    if data.get("kind") != "instance":
        raise InstanceFormatError(
            f"not an instance payload: kind={data.get('kind')!r}", source
        )
    raw_jobs = data.get("jobs")
    if not isinstance(raw_jobs, list):
        raise InstanceFormatError(
            "missing field 'jobs' (expected a list)"
            if raw_jobs is None
            else f"field 'jobs' must be a list, got {type(raw_jobs).__name__}",
            source,
        )
    jobs: List[Job] = []
    for i, item in enumerate(raw_jobs):
        where = f"jobs[{i}]"
        try:
            job = Job(
                _dec_field(item, "release", where, source),
                _dec_field(item, "processing", where, source),
                _dec_field(item, "deadline", where, source),
                id=_field(item, "id", where, source),
                label=item.get("label", ""),
            )
        except InstanceFormatError:
            raise
        except (ValueError, TypeError) as exc:
            # Job's own validation (deadline < release + processing, ...)
            raise InstanceFormatError(f"{where}: {exc}", source) from None
        jobs.append(job)
    return Instance(jobs)


def schedule_to_dict(schedule: Schedule) -> Dict[str, Any]:
    """Lossless dictionary form of a schedule."""
    return {
        "format": FORMAT_VERSION,
        "kind": "schedule",
        "segments": [
            {
                "job": s.job_id,
                "machine": s.machine,
                "start": _enc(s.start),
                "end": _enc(s.end),
            }
            for s in schedule
        ],
    }


def schedule_from_dict(
    data: Dict[str, Any], source: Optional[str] = None
) -> Schedule:
    if not isinstance(data, dict):
        raise InstanceFormatError(
            f"expected a JSON object, got {type(data).__name__}", source
        )
    if data.get("kind") != "schedule":
        raise InstanceFormatError(
            f"not a schedule payload: kind={data.get('kind')!r}", source
        )
    raw_segments = data.get("segments")
    if not isinstance(raw_segments, list):
        raise InstanceFormatError(
            "missing field 'segments' (expected a list)"
            if raw_segments is None
            else "field 'segments' must be a list, got "
            + type(raw_segments).__name__,
            source,
        )
    segments: List[Segment] = []
    for i, item in enumerate(raw_segments):
        where = f"segments[{i}]"
        try:
            segment = Segment(
                _field(item, "job", where, source),
                _field(item, "machine", where, source),
                _dec_field(item, "start", where, source),
                _dec_field(item, "end", where, source),
            )
        except InstanceFormatError:
            raise
        except (ValueError, TypeError) as exc:
            raise InstanceFormatError(f"{where}: {exc}", source) from None
        segments.append(segment)
    return Schedule(segments)


def dumps(obj: Union[Instance, Schedule], indent: int = None) -> str:
    """Serialize an instance or schedule to a JSON string."""
    if isinstance(obj, Instance):
        return json.dumps(instance_to_dict(obj), indent=indent)
    if isinstance(obj, Schedule):
        return json.dumps(schedule_to_dict(obj), indent=indent)
    raise TypeError(f"cannot serialize {type(obj).__name__}")


def loads(text: str, source: Optional[str] = None) -> Union[Instance, Schedule]:
    """Deserialize a JSON string produced by :func:`dumps`.

    All malformed input — bad JSON, wrong kind, missing or unparsable
    fields — raises :class:`InstanceFormatError` (a ``ValueError``) whose
    message names ``source`` and the offending field.
    """
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise InstanceFormatError(f"invalid JSON: {exc}", source) from None
    if not isinstance(data, dict):
        raise InstanceFormatError(
            f"expected a JSON object, got {type(data).__name__}", source
        )
    kind = data.get("kind")
    if kind == "instance":
        return instance_from_dict(data, source)
    if kind == "schedule":
        return schedule_from_dict(data, source)
    raise InstanceFormatError(f"unknown payload kind {kind!r}", source)


def save(obj: Union[Instance, Schedule], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dumps(obj, indent=2))


def load(path: str) -> Union[Instance, Schedule]:
    with open(path, "r", encoding="utf-8") as fh:
        return loads(fh.read(), source=path)
