"""The job model: release date, deadline, processing time, and derived data.

Notation follows Section 2 of the paper:

* ``I(j) = [r_j, d_j)`` is the job's (processing) interval,
* ``ℓ_j = d_j − r_j − p_j`` is the *laxity*,
* a job is *α-loose* if ``p_j ≤ α (d_j − r_j)`` and *α-tight* otherwise,
* ``a_j = r_j + ℓ_j`` is the latest time the job must start processing
  (equivalently, be committed to a machine) in any feasible schedule,
* ``f_j = d_j − ℓ_j`` is the earliest time it can be finished.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional

from .intervals import Interval, Numeric, to_fraction

_next_auto_id = 0


def _auto_id() -> int:
    global _next_auto_id
    _next_auto_id += 1
    return _next_auto_id - 1


@dataclass(frozen=True)
class Job:
    """An immutable job ``(r_j, p_j, d_j)`` with exact rational data.

    ``id`` identifies the job within an instance; ``label`` is free-form and
    used by adversaries/generators to tag roles (e.g. ``"critical"``).
    """

    release: Fraction
    processing: Fraction
    deadline: Fraction
    id: int = field(default_factory=_auto_id)
    label: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "release", to_fraction(self.release))
        object.__setattr__(self, "processing", to_fraction(self.processing))
        object.__setattr__(self, "deadline", to_fraction(self.deadline))
        if self.processing <= 0:
            raise ValueError(f"job {self.id}: processing time must be positive")
        if self.deadline < self.release + self.processing:
            raise ValueError(
                f"job {self.id}: window [{self.release}, {self.deadline}) too "
                f"short for processing time {self.processing}"
            )

    # -- derived quantities (Section 2) -------------------------------------

    @property
    def window(self) -> Fraction:
        """Window length ``d_j − r_j``."""
        return self.deadline - self.release

    @property
    def laxity(self) -> Fraction:
        """``ℓ_j = d_j − r_j − p_j``."""
        return self.window - self.processing

    @property
    def interval(self) -> Interval:
        """``I(j) = [r_j, d_j)``."""
        return Interval(self.release, self.deadline)

    @property
    def latest_start(self) -> Fraction:
        """``a_j = r_j + ℓ_j``: latest feasible (re)start if never processed."""
        return self.release + self.laxity

    @property
    def earliest_finish(self) -> Fraction:
        """``f_j = d_j − ℓ_j``: earliest possible completion time."""
        return self.deadline - self.laxity

    # -- classification ------------------------------------------------------

    def is_loose(self, alpha: Numeric) -> bool:
        """True iff the job is α-loose: ``p_j ≤ α (d_j − r_j)``."""
        return self.processing <= to_fraction(alpha) * self.window

    def is_tight(self, alpha: Numeric) -> bool:
        """True iff the job is α-tight (the complement of α-loose)."""
        return not self.is_loose(alpha)

    @property
    def density(self) -> Fraction:
        """``p_j / (d_j − r_j)`` — the minimal α for which the job is α-loose."""
        return self.processing / self.window

    # -- time-dependent helpers ---------------------------------------------

    def laxity_at(self, t: Numeric, remaining: Optional[Numeric] = None) -> Fraction:
        """Laxity at time ``t`` given remaining work (defaults to ``p_j``)."""
        t = to_fraction(t)
        rem = self.processing if remaining is None else to_fraction(remaining)
        return self.deadline - t - rem

    def covers(self, t: Numeric) -> bool:
        """True iff ``t ∈ I(j)``."""
        return self.interval.contains(t)

    # -- transforms (Section 4) -----------------------------------------------

    def inflated(self, s: Numeric) -> "Job":
        """The job ``j^s`` with processing time scaled by ``s`` (Lemma 4).

        Requires the inflated job to still fit its window.
        """
        s = to_fraction(s)
        return Job(self.release, self.processing * s, self.deadline, id=self.id, label=self.label)

    def trim_left(self, gamma: Numeric) -> "Job":
        """The job ``j^γ`` with window ``[r_j + γ ℓ_j, d_j)`` (Lemma 3)."""
        gamma = to_fraction(gamma)
        return Job(
            self.release + gamma * self.laxity, self.processing, self.deadline,
            id=self.id, label=self.label,
        )

    def trim_right(self, gamma: Numeric) -> "Job":
        """The job ``j^0`` with window ``[r_j, d_j − γ ℓ_j)`` (Lemma 3)."""
        gamma = to_fraction(gamma)
        return Job(
            self.release, self.processing, self.deadline - gamma * self.laxity,
            id=self.id, label=self.label,
        )

    def scaled(self, scale: Numeric, shift: Numeric) -> "Job":
        """Affine time transform: ``t ↦ scale·t + shift`` with ``scale > 0``."""
        s, h = to_fraction(scale), to_fraction(shift)
        if s <= 0:
            raise ValueError("scale must be positive")
        return Job(
            s * self.release + h, s * self.processing, s * self.deadline + h,
            id=self.id, label=self.label,
        )

    def with_id(self, new_id: int) -> "Job":
        return Job(self.release, self.processing, self.deadline, id=new_id, label=self.label)

    def with_label(self, label: str) -> "Job":
        return Job(self.release, self.processing, self.deadline, id=self.id, label=label)

    def __repr__(self) -> str:
        tag = f" {self.label!r}" if self.label else ""
        return (
            f"Job(id={self.id}{tag}, r={self.release}, p={self.processing}, "
            f"d={self.deadline})"
        )
