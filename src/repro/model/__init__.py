"""Substrate: exact job/instance/interval/schedule model."""

from .intervals import Interval, IntervalUnion, Numeric, event_points, to_fraction
from .job import Job
from .instance import Instance, dominates, paper_order_key
from .schedule import FeasibilityReport, Schedule, Segment
from . import io

__all__ = [
    "Interval",
    "IntervalUnion",
    "Numeric",
    "event_points",
    "to_fraction",
    "Job",
    "Instance",
    "dominates",
    "paper_order_key",
    "FeasibilityReport",
    "Schedule",
    "Segment",
    "io",
]
