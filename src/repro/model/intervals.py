"""Exact arithmetic over finite unions of half-open intervals.

The paper's workload characterization (Theorem 1) and its laxity-trim lemma
(Lemma 3) both quantify over *finite unions of intervals* ``I`` and measure
``|I|``, ``|I ∩ I(j)|`` etc.  This module provides an immutable, normalized
:class:`IntervalUnion` over :class:`fractions.Fraction` endpoints so that
those quantities are computed exactly — the adversarial construction of
Lemma 2 recursively scales instances by data-dependent rationals and would
not survive floating-point round-off.

All intervals are half-open ``[a, b)``.  A normalized union stores pairwise
disjoint, non-empty, sorted components with no two components touching
(``b_i < a_{i+1}``), so equality of unions is equality of component tuples.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Iterator, Sequence, Tuple, Union

Numeric = Union[int, float, str, Fraction]


def to_fraction(x: Numeric) -> Fraction:
    """Convert ``x`` to an exact :class:`Fraction`.

    Floats are converted via :meth:`Fraction.limit_denominator` — floats are
    accepted only as a convenience for interactive use; library code and
    generators always pass ``int`` or ``Fraction``.
    """
    if isinstance(x, Fraction):
        return x
    if isinstance(x, int):
        return Fraction(x)
    if isinstance(x, float):
        return Fraction(x).limit_denominator(10**12)
    return Fraction(x)


class Interval:
    """A single half-open interval ``[start, end)`` with exact endpoints."""

    __slots__ = ("start", "end")

    def __init__(self, start: Numeric, end: Numeric) -> None:
        self.start = to_fraction(start)
        self.end = to_fraction(end)
        if self.end < self.start:
            raise ValueError(f"interval end {self.end} before start {self.start}")

    @property
    def length(self) -> Fraction:
        return self.end - self.start

    def is_empty(self) -> bool:
        return self.end <= self.start

    def contains(self, t: Numeric) -> bool:
        t = to_fraction(t)
        return self.start <= t < self.end

    def intersects(self, other: "Interval") -> bool:
        return self.start < other.end and other.start < self.end

    def intersection(self, other: "Interval") -> "Interval":
        lo = max(self.start, other.start)
        hi = min(self.end, other.end)
        if hi < lo:
            return Interval(lo, lo)
        return Interval(lo, hi)

    def contains_interval(self, other: "Interval") -> bool:
        """True iff ``other ⊆ self`` (empty intervals are contained in all)."""
        if other.is_empty():
            return True
        return self.start <= other.start and other.end <= self.end

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Interval):
            return NotImplemented
        return self.start == other.start and self.end == other.end

    def __hash__(self) -> int:
        return hash((self.start, self.end))

    def __repr__(self) -> str:
        return f"[{self.start}, {self.end})"


class IntervalUnion:
    """An immutable normalized finite union of half-open intervals."""

    __slots__ = ("components",)

    components: Tuple[Interval, ...]

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        object.__setattr__(self, "components", _normalize(intervals))

    def __setattr__(self, name: str, value: object) -> None:  # pragma: no cover
        raise AttributeError("IntervalUnion is immutable")

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[Numeric, Numeric]]) -> "IntervalUnion":
        return cls(Interval(a, b) for a, b in pairs)

    @classmethod
    def single(cls, start: Numeric, end: Numeric) -> "IntervalUnion":
        return cls([Interval(start, end)])

    @classmethod
    def empty(cls) -> "IntervalUnion":
        return cls()

    # -- measurements ------------------------------------------------------

    @property
    def length(self) -> Fraction:
        """Total measure ``|I|`` of the union."""
        return sum((c.length for c in self.components), Fraction(0))

    def is_empty(self) -> bool:
        return not self.components

    def contains(self, t: Numeric) -> bool:
        t = to_fraction(t)
        return any(c.contains(t) for c in self.components)

    @property
    def infimum(self) -> Fraction:
        if not self.components:
            raise ValueError("empty union has no infimum")
        return self.components[0].start

    @property
    def supremum(self) -> Fraction:
        if not self.components:
            raise ValueError("empty union has no supremum")
        return self.components[-1].end

    # -- set algebra -------------------------------------------------------

    def union(self, other: "IntervalUnion") -> "IntervalUnion":
        return IntervalUnion(list(self.components) + list(other.components))

    def intersection(self, other: "IntervalUnion") -> "IntervalUnion":
        out = []
        i = j = 0
        a, b = self.components, other.components
        while i < len(a) and j < len(b):
            x = a[i].intersection(b[j])
            if not x.is_empty():
                out.append(x)
            if a[i].end <= b[j].end:
                i += 1
            else:
                j += 1
        return IntervalUnion(out)

    def intersect_interval(self, iv: Interval) -> "IntervalUnion":
        return self.intersection(IntervalUnion([iv]))

    def difference(self, other: "IntervalUnion") -> "IntervalUnion":
        """Set difference ``self \\ other``."""
        out = []
        for comp in self.components:
            cur = comp.start
            for o in other.components:
                if o.end <= cur:
                    continue
                if o.start >= comp.end:
                    break
                if o.start > cur:
                    out.append(Interval(cur, min(o.start, comp.end)))
                cur = max(cur, o.end)
                if cur >= comp.end:
                    break
            if cur < comp.end:
                out.append(Interval(cur, comp.end))
        return IntervalUnion(out)

    def contains_union(self, other: "IntervalUnion") -> bool:
        """True iff ``other ⊆ self``."""
        return other.difference(self).is_empty()

    # -- transforms --------------------------------------------------------

    def scale_shift(self, scale: Numeric, shift: Numeric) -> "IntervalUnion":
        """Map every point ``t`` to ``scale * t + shift`` (``scale > 0``)."""
        s, h = to_fraction(scale), to_fraction(shift)
        if s <= 0:
            raise ValueError("scale must be positive")
        return IntervalUnion(Interval(s * c.start + h, s * c.end + h) for c in self.components)

    def expand_left(self, gamma: Numeric) -> "IntervalUnion":
        """The expansion operator ``ex(I)`` from the proof of Lemma 3.

        Each component ``[g_i, h_i)`` is expanded to the left so that the
        total length becomes ``|I| / (1 - gamma)``; when an expansion would
        overlap the previous component, the overflow ``δ`` is pushed further
        left, exactly as in the paper.  Expansion is processed right to left.
        """
        gamma = to_fraction(gamma)
        if not (0 < gamma < 1):
            raise ValueError("gamma must lie in (0, 1)")
        comps = list(self.components)
        if not comps:
            return IntervalUnion()
        factor = 1 / (1 - gamma)
        new_starts: list[Fraction] = [Fraction(0)] * len(comps)
        delta = Fraction(0)
        for i in range(len(comps) - 1, -1, -1):
            want = comps[i].end - (comps[i].length + delta) * factor
            floor = comps[i - 1].end if i > 0 else None
            if floor is not None and want < floor:
                new_starts[i] = floor
                delta = floor - want
                # delta carries the *unexpanded* shortfall scaled back down:
                # the paper pushes the leftover length (in expanded measure)
                # to the next interval; convert back to pre-expansion units.
                delta = delta / factor
            else:
                new_starts[i] = want
                delta = Fraction(0)
        return IntervalUnion(
            Interval(new_starts[i], comps[i].end) for i in range(len(comps))
        )

    # -- protocol ----------------------------------------------------------

    def __iter__(self) -> Iterator[Interval]:
        return iter(self.components)

    def __len__(self) -> int:
        return len(self.components)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalUnion):
            return NotImplemented
        return self.components == other.components

    def __hash__(self) -> int:
        return hash(self.components)

    def __repr__(self) -> str:
        return "IntervalUnion(" + " ∪ ".join(map(repr, self.components)) + ")"


def _normalize(intervals: Iterable[Interval]) -> Tuple[Interval, ...]:
    """Sort, drop empties, and merge overlapping/touching components."""
    items = sorted((iv for iv in intervals if not iv.is_empty()), key=lambda iv: (iv.start, iv.end))
    merged: list[Interval] = []
    for iv in items:
        if merged and iv.start <= merged[-1].end:
            if iv.end > merged[-1].end:
                merged[-1] = Interval(merged[-1].start, iv.end)
        else:
            merged.append(Interval(iv.start, iv.end))
    return tuple(merged)


def event_points(intervals: Sequence[Interval]) -> Tuple[Fraction, ...]:
    """Sorted distinct endpoints of the given intervals."""
    pts = {iv.start for iv in intervals} | {iv.end for iv in intervals}
    return tuple(sorted(pts))
