"""The HTTP face of the serve layer: stdlib ``ThreadingHTTPServer`` + signals.

This module is deliberately thin: every decision lives in
:class:`~repro.serve.app.ServeApp` (tested socketlessly); the daemon only
moves bytes and wires signals.

Shutdown is the interesting part.  SIGTERM (and SIGINT) trigger the
graceful drain sequence — the running theme is that *every* step is safe
to skip by dying instead, because the queue is crash-only:

1. ``app.begin_drain()`` — ``/readyz`` flips 503, submits answer 503,
2. ``server.shutdown()`` from a helper thread (calling it from the signal
   handler would deadlock the ``serve_forever`` loop it interrupts);
   with non-daemon handler threads the server then joins every in-flight
   request,
3. ``queue.drain()`` — the in-flight sweep finishes or journal-checkpoints
   (fsynced) and the executor thread exits,
4. exit 0.

A SIGKILL at any point in (or before) this sequence leaves the journal
directory in a state the next ``repro serve`` recovers exactly — that is
the kill-resume conformance the chaos suite pins.
"""

from __future__ import annotations

import signal
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from .app import Request, ServeApp, encode_body
from .queue import SweepQueue

__all__ = ["ServeDaemon", "make_server"]


class _Handler(BaseHTTPRequestHandler):
    """Translates HTTP ↔ :class:`Request`/:class:`Response`; no logic."""

    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"

    def _dispatch(self) -> None:
        app: ServeApp = self.server.app  # type: ignore[attr-defined]
        length_header = self.headers.get("Content-Length", "0")
        try:
            length = int(length_header)
        except ValueError:
            length = -1
        if length < 0:
            self.send_error(400, "bad Content-Length")
            return
        if length > app.max_body:
            # Refuse before reading: a 10 GB body should cost a header
            # read.  The unread body poisons the connection for keep-alive,
            # so close it after responding.
            body = b"x" * (app.max_body + 1)
            self.close_connection = True
        else:
            body = self.rfile.read(length) if length else b""
        response = app.handle(
            Request(
                method=self.command,
                path=self.path.split("?", 1)[0],
                body=body,
                headers={k.lower(): v for k, v in self.headers.items()},
            )
        )
        payload, content_type = encode_body(response)
        self.send_response(response.status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    do_GET = do_POST = do_PUT = do_DELETE = _dispatch

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        # Request metrics live in the app registry; per-line stderr chatter
        # from a threaded server interleaves uselessly.
        pass


def make_server(app: ServeApp, host: str = "127.0.0.1", port: int = 0):
    """A bound (not yet serving) threaded HTTP server for ``app``.

    ``port=0`` binds an ephemeral port (tests, CI); read the real one from
    ``server.server_address``.  Handler threads are non-daemon so shutdown
    joins in-flight requests instead of abandoning them mid-response.
    """
    server = ThreadingHTTPServer((host, port), _Handler)
    server.daemon_threads = False
    server.app = app  # type: ignore[attr-defined]
    return server


class ServeDaemon:
    """One daemon process: queue + app + HTTP server + signal wiring."""

    def __init__(
        self,
        journal_dir: str,
        host: str = "127.0.0.1",
        port: int = 8123,
        workers: int = 4,
        max_queue: int = 8,
        request_timeout: float = 10.0,
        sweep_workers: int = 1,
        max_body: int = 1_000_000,
    ) -> None:
        self.queue = SweepQueue(
            journal_dir, max_queue=max_queue, sweep_workers=sweep_workers
        )
        self.app = ServeApp(
            self.queue,
            max_body=max_body,
            request_timeout=request_timeout,
            compute_workers=workers,
        )
        self.queue.on_item = self._item_tick
        self.server = make_server(self.app, host, port)
        self._stopped = threading.Event()

    def _item_tick(self, sweep_id: str, result) -> None:
        self.app.registry.on_counter("serve.sweep.items", 1, {})

    @property
    def address(self) -> Tuple[str, int]:
        return self.server.server_address[:2]

    def begin_shutdown(self) -> None:
        """Start the drain sequence; idempotent, callable from a signal."""
        if self._stopped.is_set():
            return
        self._stopped.set()
        self.app.begin_drain()
        self.queue.begin_drain()
        # serve_forever() must not be shut down from its own thread (the
        # signal handler runs there): hand it to a helper.
        threading.Thread(target=self.server.shutdown, daemon=True).start()

    def run(self, install_signals: bool = True) -> int:
        """Serve until SIGTERM/SIGINT; returns the process exit code (0)."""
        host, port = self.address
        self.queue.start()
        if install_signals:
            def _on_signal(signum, frame) -> None:
                print(f"repro serve: caught signal {signum}, draining",
                      file=sys.stderr, flush=True)
                self.begin_shutdown()

            signal.signal(signal.SIGTERM, _on_signal)
            signal.signal(signal.SIGINT, _on_signal)
        print(f"repro serve listening on http://{host}:{port}", flush=True)
        try:
            self.server.serve_forever(poll_interval=0.1)
        finally:
            # Joins in-flight request threads (non-daemon handler threads).
            self.server.server_close()
            drained = self.queue.drain(timeout=60.0)
            self.app.close()
            if not drained:
                # The journal still holds every settled item; the next
                # generation resumes.  Report the impatience honestly.
                print("repro serve: drain timed out; journal is consistent, "
                      "restart will resume", file=sys.stderr, flush=True)
        print("repro serve: drained, exiting", flush=True)
        return 0
