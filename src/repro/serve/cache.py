"""Shared, size-bounded feasibility-cache pool with per-tenant namespaces.

The feasibility core hangs a :class:`~repro.offline.feascache.FeasibilityCache`
off each :class:`~repro.model.Instance`, so *keeping the instance object
alive between requests* is what keeps its probe cache warm.  The pool maps
``(tenant, instance content)`` to one canonical instance object:

* repeated requests for the same instance reuse the warm object (and its
  cache) instead of re-solving from scratch,
* each tenant has its own LRU of at most ``per_tenant`` instances, so one
  tenant's flood of novel instances evicts only *its own* warm entries —
  never another tenant's,
* at most ``max_tenants`` tenant namespaces exist at once (tenants
  themselves are LRU), bounding total memory by
  ``max_tenants × per_tenant`` instances.

A :class:`FeasibilityCache` is **not** thread-safe, so every entry carries
a lock; concurrent requests touching the same warm instance serialize on
it, while requests for different instances proceed in parallel.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from ..model import Instance
from ..runner.plan import instance_key

__all__ = ["TenantCachePool"]


class _Entry:
    __slots__ = ("instance", "lock")

    def __init__(self, instance: Instance) -> None:
        self.instance = instance
        self.lock = threading.Lock()


class TenantCachePool:
    """``(tenant, instance) → (canonical instance, its lock)`` with LRU bounds."""

    def __init__(self, per_tenant: int = 32, max_tenants: int = 64) -> None:
        if per_tenant < 1 or max_tenants < 1:
            raise ValueError("per_tenant and max_tenants must be >= 1")
        self.per_tenant = per_tenant
        self.max_tenants = max_tenants
        self._lock = threading.Lock()
        self._tenants: "OrderedDict[str, OrderedDict[str, _Entry]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, tenant: str, instance: Instance) -> Tuple[Instance, threading.Lock]:
        """The canonical warm instance for this content, and its lock.

        On a miss the given ``instance`` becomes the canonical object; on a
        hit the previously stored (warm) object is returned and the given
        one is discarded.  Callers must hold the returned lock while
        certifying against the instance.
        """
        key = instance_key(instance)
        with self._lock:
            entries = self._tenants.get(tenant)
            if entries is None:
                while len(self._tenants) >= self.max_tenants:
                    _, dropped = self._tenants.popitem(last=False)
                    self.evictions += len(dropped)
                entries = self._tenants[tenant] = OrderedDict()
            else:
                self._tenants.move_to_end(tenant)
            entry = entries.get(key)
            if entry is not None:
                entries.move_to_end(key)
                self.hits += 1
                return entry.instance, entry.lock
            while len(entries) >= self.per_tenant:
                entries.popitem(last=False)
                self.evictions += 1
            entry = entries[key] = _Entry(instance)
            self.misses += 1
            return entry.instance, entry.lock

    def stats(self) -> Dict[str, Any]:
        """JSON-safe counters for the ``/metrics`` exposition."""
        with self._lock:
            return {
                "tenants": len(self._tenants),
                "entries": sum(len(e) for e in self._tenants.values()),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
