"""The serve application: routing, hardening, deadlines — no sockets.

:class:`ServeApp` is a plain callable core — ``handle(Request) → Response``
— with the HTTP server (:mod:`repro.serve.daemon`) and the socketless
:class:`~repro.serve.testclient.TestClient` as thin adapters over it, so
every behavior is testable in-process.

Request lifecycle (the hardening ladder, in order):

1. **route** — exact-match table with ``{id}`` captures; unknown path →
   404, known path with wrong method → 405 + ``Allow``,
2. **size** — body larger than ``max_body`` → 413 before any parsing,
3. **parse** — invalid JSON, wrong shapes, malformed instances (via
   :class:`~repro.model.io.InstanceFormatError`) → typed 400 naming the
   offending field; nothing is half-processed,
4. **deadline** — compute endpoints run on a bounded thread pool with
   ``future.result(timeout=…)``; an overrun returns 503 +
   ``Retry-After`` *within the deadline* instead of hanging the client
   (the orphaned computation finishes in the background and warms the
   tenant cache, so the retry it invites is cheap),
5. **metrics** — every response increments ``serve.requests`` and a
   per-route/status counter in the service registry that ``/metrics``
   renders (Prometheus text exposition).

Responses never include warmth-dependent fields (``cache_stats``): a
response must be byte-identical whether the tenant cache was cold or hot,
which is what the concurrent-determinism test pins.
"""

from __future__ import annotations

import json
import threading
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Callable, Dict, Optional, Tuple

from ..model.io import InstanceFormatError, instance_from_dict
from ..obs.prom import render_prometheus
from ..obs.sinks import Registry, jsonable
from .cache import TenantCachePool
from .errors import (
    ApiError,
    BadRequest,
    DeadlineExceeded,
    MethodNotAllowed,
    NotFound,
    PayloadTooLarge,
    ServiceUnavailable,
)

__all__ = ["Request", "Response", "ServeApp", "encode_body"]

#: Routes understood by the daemon: ``(method, pattern)`` — ``{name}``
#: segments capture one path component.  The table is data, the dispatch
#: below is logic; both are mutation-smoke targets.
ROUTES: Tuple[Tuple[str, str, str], ...] = (
    ("POST", "/v1/certify", "certify"),
    ("POST", "/v1/optimum", "optimum"),
    ("POST", "/v1/sweeps", "submit_sweep"),
    ("GET", "/v1/sweeps/{id}", "sweep_status"),
    ("GET", "/healthz", "healthz"),
    ("GET", "/readyz", "readyz"),
    ("GET", "/metrics", "metrics"),
)

_TENANT_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"
)


@dataclass
class Request:
    """One parsed request, transport-agnostic (HTTP or testclient)."""

    method: str
    path: str
    body: bytes = b""
    headers: Dict[str, str] = field(default_factory=dict)


@dataclass
class Response:
    """One response: a JSON-able payload or pre-rendered text."""

    status: int
    payload: Any = None  # dict → JSON; str → text/plain (the /metrics page)
    headers: Dict[str, str] = field(default_factory=dict)


def encode_body(response: Response) -> Tuple[bytes, str]:
    """``(body bytes, content type)`` — shared by daemon and testclient."""
    if isinstance(response.payload, str):
        return response.payload.encode("utf-8"), "text/plain; charset=utf-8"
    body = json.dumps(jsonable(response.payload), sort_keys=True)
    return body.encode("utf-8"), "application/json"


def _match(pattern: str, path: str) -> Optional[Dict[str, str]]:
    """Match one route pattern; returns captured ``{name}`` segments."""
    pattern_parts = pattern.split("/")
    path_parts = path.split("/")
    if len(pattern_parts) != len(path_parts):
        return None
    params: Dict[str, str] = {}
    for want, got in zip(pattern_parts, path_parts):
        if want.startswith("{") and want.endswith("}"):
            if not got:
                return None
            params[want[1:-1]] = got
        elif want != got:
            return None
    return params


class ServeApp:
    """The daemon's request core; see the module docstring for the ladder."""

    def __init__(
        self,
        queue: Any = None,
        *,
        registry: Optional[Registry] = None,
        cache_pool: Optional[TenantCachePool] = None,
        max_body: int = 1_000_000,
        request_timeout: float = 10.0,
        compute_workers: int = 4,
    ) -> None:
        self.queue = queue
        self.registry = registry or Registry()
        self.cache_pool = cache_pool or TenantCachePool()
        self.max_body = max_body
        self.request_timeout = request_timeout
        self._draining = threading.Event()
        self._compute = ThreadPoolExecutor(
            max_workers=compute_workers, thread_name_prefix="serve-compute"
        )

    # -- lifecycle -----------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def begin_drain(self) -> None:
        """Stop accepting work: ``/readyz`` flips 503, submits are refused.

        ``/healthz`` stays 200 — the process is alive and finishing what it
        already acknowledged; only *readiness* is withdrawn.
        """
        self._draining.set()

    def close(self) -> None:
        self._compute.shutdown(wait=False, cancel_futures=True)

    # -- routing -------------------------------------------------------------

    def dispatch(self, method: str, path: str) -> Tuple[str, Dict[str, str]]:
        """Resolve ``(method, path)`` to a handler name + path params.

        Unknown path → 404; known path, wrong method → 405 carrying the
        allowed methods.  A trailing slash is not forgiven — the route
        table is the contract.
        """
        allowed = []
        params_for_path: Optional[Dict[str, str]] = None
        for route_method, pattern, name in ROUTES:
            params = _match(pattern, path)
            if params is None:
                continue
            if route_method == method:
                return name, params
            allowed.append(route_method)
            params_for_path = params
        if params_for_path is not None or allowed:
            raise MethodNotAllowed(
                f"{method} not allowed on {path}", allowed=tuple(allowed)
            )
        raise NotFound(f"no route matches {path}")

    # -- entry point ---------------------------------------------------------

    def handle(self, request: Request) -> Response:
        """Run one request through the full ladder; never raises."""
        route = "unrouted"
        try:
            route, params = self.dispatch(request.method, request.path)
            if len(request.body) > self.max_body:
                raise PayloadTooLarge(
                    f"request body is {len(request.body)} bytes; "
                    f"the limit is {self.max_body}"
                )
            handler: Callable[..., Response] = getattr(self, "_do_" + route)
            if route in ("certify", "optimum"):
                body = self._parse_json(request)
                response = self._with_deadline(route, handler, body)
            elif route == "submit_sweep":
                response = handler(self._parse_json(request))
            else:
                response = handler(**params)
        except InstanceFormatError as exc:
            response = self._error_response(BadRequest(str(exc)))
        except ApiError as exc:
            response = self._error_response(exc)
        except Exception as exc:  # noqa: BLE001 — clients never see tracebacks
            response = self._error_response(
                ApiError(f"internal error: {type(exc).__name__}: {exc}")
            )
        self._count(route, response.status)
        return response

    def _error_response(self, exc: ApiError) -> Response:
        return Response(
            status=exc.status,
            payload={"error": {"code": exc.code, "message": exc.message}},
            headers=exc.headers(),
        )

    def _count(self, route: str, status: int) -> None:
        self.registry.on_counter("serve.requests", 1, {})
        self.registry.on_counter(f"serve.requests.{route}.{status}", 1, {})

    def _parse_json(self, request: Request) -> Dict[str, Any]:
        try:
            body = json.loads(request.body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadRequest(f"invalid JSON body: {exc}")
        if not isinstance(body, dict):
            raise BadRequest(
                f"expected a JSON object body, got {type(body).__name__}"
            )
        return body

    def _with_deadline(
        self, route: str, handler: Callable[[Dict[str, Any]], Response], body: Dict[str, Any]
    ) -> Response:
        """Run a compute handler under the per-request deadline.

        The computation is *not* cancelled on overrun — a thread cannot be
        killed — it finishes in the background holding its cache-entry
        lock, so the warm result is there for the retry the 503 invites.
        """
        future = self._compute.submit(handler, body)
        try:
            return future.result(timeout=self.request_timeout)
        except FutureTimeout:
            self.registry.on_counter(f"serve.deadline_exceeded.{route}", 1, {})
            raise DeadlineExceeded(
                f"{route} exceeded the {self.request_timeout}s request "
                f"deadline; retry to reuse the warmed cache",
                retry_after=min(self.request_timeout, 5.0),
            )

    # -- request parsing helpers ---------------------------------------------

    def _parse_common(self, body: Dict[str, Any]):
        """Shared certify/optimum fields: tenant, instance, speed, backend."""
        tenant = body.get("tenant", "public")
        if (
            not isinstance(tenant, str)
            or not 0 < len(tenant) <= 64
            or not set(tenant) <= _TENANT_OK
        ):
            raise BadRequest(
                "tenant must be 1-64 characters of [A-Za-z0-9._-]"
            )
        payload = body.get("instance")
        if not isinstance(payload, dict):
            raise BadRequest('missing or non-object "instance" field')
        instance = instance_from_dict(payload, source="request.instance")
        raw_speed = body.get("speed", "1")
        try:
            speed = Fraction(str(raw_speed))
        except (ValueError, ZeroDivisionError):
            raise BadRequest(f"unparsable speed {raw_speed!r}")
        if speed <= 0:
            raise BadRequest(f"speed must be positive, got {speed}")
        backend = body.get("backend", "auto")
        if backend not in ("auto", "dinic", "dinic_np", "dinic_c", "networkx"):
            raise BadRequest(f"unknown backend {backend!r}")
        return tenant, instance, speed, backend

    # -- compute endpoints -----------------------------------------------------

    def _do_certify(self, body: Dict[str, Any]) -> Response:
        from ..verify import certify

        tenant, instance, speed, backend = self._parse_common(body)
        m = body.get("m")
        if not isinstance(m, int) or isinstance(m, bool) or not 0 <= m <= 10**6:
            raise BadRequest('"m" must be an integer machine count in [0, 1e6]')
        warm, lock = self.cache_pool.get(tenant, instance)
        with lock:
            cert = certify(warm, m, speed, backend=backend)
        payload = cert.to_dict()
        payload.pop("cache_stats", None)  # warmth-dependent: never in responses
        return Response(200, payload)

    def _do_optimum(self, body: Dict[str, Any]) -> Response:
        from ..verify import Unsatisfiable, certified_optimum

        tenant, instance, speed, backend = self._parse_common(body)
        warm, lock = self.cache_pool.get(tenant, instance)
        with lock:
            try:
                co = certified_optimum(warm, speed, backend=backend)
            except Unsatisfiable as exc:
                witness = exc.certificate.to_dict()
                witness.pop("cache_stats", None)
                return Response(
                    200,
                    {"satisfiable": False, "infeasible": witness},
                )
        feasible = co.feasible.to_dict()
        feasible.pop("cache_stats", None)
        payload: Dict[str, Any] = {
            "satisfiable": True,
            "optimum": co.machines,
            "feasible": feasible,
        }
        if co.infeasible is not None:
            infeasible = co.infeasible.to_dict()
            infeasible.pop("cache_stats", None)
            payload["infeasible"] = infeasible
        return Response(200, payload)

    # -- sweep endpoints -------------------------------------------------------

    def _require_queue(self):
        if self.queue is None:
            raise ServiceUnavailable(
                "this deployment has no sweep queue", retry_after=60.0
            )
        return self.queue

    def _do_submit_sweep(self, body: Dict[str, Any]) -> Response:
        queue = self._require_queue()
        if self.draining:
            raise ServiceUnavailable(
                "daemon is draining; resubmit to the replacement",
                retry_after=5.0,
            )
        sweep_id, state, created = queue.submit(body)
        # 202 for a fresh acceptance (work is durable but not done); 200
        # for an idempotent resubmission of a known spec.
        return Response(
            202 if created else 200,
            {"id": sweep_id, "state": state},
        )

    def _do_sweep_status(self, id: str) -> Response:
        queue = self._require_queue()
        status = queue.status(id)
        if status is None:
            raise NotFound(f"no sweep {id!r}")
        return Response(200, status)

    # -- liveness / metrics ----------------------------------------------------

    def _do_healthz(self) -> Response:
        """Liveness: 200 whenever the process can answer at all."""
        return Response(200, {"ok": True})

    def _do_readyz(self) -> Response:
        """Readiness: 503 while draining or while the queue has no room."""
        depth, capacity = (0, 0)
        if self.queue is not None:
            depth, capacity = self.queue.depth(), self.queue.max_queue
        payload = {
            "draining": self.draining,
            "queue_depth": depth,
            "queue_capacity": capacity,
        }
        if self.draining or (self.queue is not None and depth >= capacity):
            return Response(503, {"ready": False, **payload})
        return Response(200, {"ready": True, **payload})

    def _do_metrics(self) -> Response:
        for name, value in self.cache_pool.stats().items():
            self.registry.on_gauge(f"serve.cache.{name}", value, {})
        if self.queue is not None:
            self.registry.on_gauge("serve.queue.depth", self.queue.depth(), {})
        return Response(200, render_prometheus(self.registry.snapshot()))
