"""Crash-only scheduling service: the ``repro serve`` daemon.

A stdlib-only HTTP/JSON layer over the repo's certified feasibility core
and durable sweep runner:

========  ==================  ==============================================
method    path                does
========  ==================  ==============================================
POST      ``/v1/certify``     certified feasibility verdict at ``m`` machines
POST      ``/v1/optimum``     certified optimum (sandwich certificates)
POST      ``/v1/sweeps``      submit a sweep — journaled before acknowledged
GET       ``/v1/sweeps/{id}`` durable status / finished report
GET       ``/healthz``        liveness (always 200 while the process lives)
GET       ``/readyz``         readiness (503 while draining or queue-full)
GET       ``/metrics``        Prometheus text exposition of the service
========  ==================  ==============================================

Module map: :mod:`~repro.serve.app` (routing + hardening + deadlines),
:mod:`~repro.serve.queue` (durable sweep queue, drain state machine),
:mod:`~repro.serve.cache` (per-tenant warm-instance pool),
:mod:`~repro.serve.daemon` (HTTP + signals), :mod:`~repro.serve.errors`
(typed API errors), :mod:`~repro.serve.testclient` (socketless client).
"""

from .app import Request, Response, ServeApp
from .cache import TenantCachePool
from .daemon import ServeDaemon, make_server
from .errors import (
    ApiError,
    BadRequest,
    DeadlineExceeded,
    MethodNotAllowed,
    NotFound,
    PayloadTooLarge,
    ServiceUnavailable,
    TooManyRequests,
)
from .queue import SweepQueue, normalize_spec, plan_from_spec
from .testclient import TestClient, TestResponse

__all__ = [
    "ApiError",
    "BadRequest",
    "DeadlineExceeded",
    "MethodNotAllowed",
    "NotFound",
    "PayloadTooLarge",
    "Request",
    "Response",
    "ServeApp",
    "ServeDaemon",
    "ServiceUnavailable",
    "SweepQueue",
    "TenantCachePool",
    "TestClient",
    "TestResponse",
    "TooManyRequests",
    "make_server",
    "normalize_spec",
    "plan_from_spec",
]
