"""Socketless test client: drive a :class:`ServeApp` without a server.

The client speaks the app's own ``Request``/``Response`` vocabulary and
encodes bodies through the same :func:`~repro.serve.app.encode_body` the
HTTP daemon uses, so a test sees byte-identical payloads to a real client
— minus sockets, ports, and timing flakiness.  ~100 lines, stdlib only::

    app = ServeApp(queue)
    client = TestClient(app)
    resp = client.post("/v1/certify", json={"instance": …, "m": 2})
    assert resp.status == 200 and resp.json()["kind"] == "feasible"
"""

from __future__ import annotations

import json as _json
from typing import Any, Dict, Optional

from ..obs.sinks import jsonable
from .app import Request, ServeApp, encode_body

__all__ = ["TestClient", "TestResponse"]


class TestResponse:
    """What a request returned: status, headers, and the encoded body."""

    __test__ = False  # "Test" prefix is descriptive, not a pytest class

    def __init__(self, status: int, headers: Dict[str, str], body: bytes,
                 content_type: str) -> None:
        self.status = status
        self.headers = dict(headers)
        self.body = body
        self.content_type = content_type

    @property
    def text(self) -> str:
        return self.body.decode("utf-8")

    def json(self) -> Any:
        return _json.loads(self.body)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<TestResponse {self.status} {self.body[:80]!r}>"


class TestClient:
    """In-process client for a :class:`~repro.serve.app.ServeApp`."""

    __test__ = False  # "Test" prefix is descriptive, not a pytest class

    def __init__(self, app: ServeApp) -> None:
        self.app = app

    def request(
        self,
        method: str,
        path: str,
        json: Any = None,
        data: Optional[bytes] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> TestResponse:
        """One request through the app's full hardening ladder.

        ``json`` is serialized exactly as a real client would send it
        (rationals as ``"num/den"`` strings via ``jsonable``); ``data``
        sends raw bytes instead — the hook for malformed-body tests.
        """
        if json is not None and data is not None:
            raise ValueError("pass json= or data=, not both")
        body = data if data is not None else (
            _json.dumps(jsonable(json)).encode("utf-8")
            if json is not None
            else b""
        )
        response = self.app.handle(
            Request(
                method=method.upper(),
                path=path,
                body=body,
                headers={k.lower(): v for k, v in (headers or {}).items()},
            )
        )
        payload, content_type = encode_body(response)
        return TestResponse(
            response.status, response.headers, payload, content_type
        )

    def get(self, path: str, **kwargs) -> TestResponse:
        return self.request("GET", path, **kwargs)

    def post(self, path: str, **kwargs) -> TestResponse:
        return self.request("POST", path, **kwargs)
