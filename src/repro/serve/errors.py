"""Typed API errors: every client-visible failure is one of these.

The serve layer never leaks a traceback to a client.  Handlers raise
:class:`ApiError` subclasses (or :class:`~repro.model.io.InstanceFormatError`,
which the app maps to :class:`BadRequest`); the app renders them as a JSON
body ``{"error": {"code": ..., "message": ...}}`` with the matching HTTP
status.  Overload errors (429/503) carry a ``Retry-After`` header so
clients back off instead of hammering — the daemon's answer to pressure
is always a fast, honest status, never a hang.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "ApiError",
    "BadRequest",
    "DeadlineExceeded",
    "MethodNotAllowed",
    "NotFound",
    "PayloadTooLarge",
    "ServiceUnavailable",
    "TooManyRequests",
]


class ApiError(Exception):
    """Base of all client-visible errors; renders as a JSON error body."""

    status = 500
    code = "internal"

    def __init__(self, message: str, retry_after: Optional[float] = None) -> None:
        super().__init__(message)
        self.message = message
        #: Seconds the client should wait before retrying; rendered as a
        #: ``Retry-After`` header when set (429/503 responses).
        self.retry_after = retry_after

    def headers(self) -> dict:
        if self.retry_after is None:
            return {}
        # Retry-After is delta-seconds; round up so "0.2" does not render
        # as an immediate-retry "0".
        return {"Retry-After": str(max(1, int(self.retry_after + 0.999)))}


class BadRequest(ApiError):
    """The request body is structurally or semantically invalid."""

    status = 400
    code = "bad_request"


class NotFound(ApiError):
    """No route (or no resource) matches the request path."""

    status = 404
    code = "not_found"


class MethodNotAllowed(ApiError):
    """The path exists but not for this HTTP method."""

    status = 405
    code = "method_not_allowed"

    def __init__(self, message: str, allowed: tuple = ()) -> None:
        super().__init__(message)
        self.allowed = tuple(allowed)

    def headers(self) -> dict:
        return {"Allow": ", ".join(self.allowed)} if self.allowed else {}


class PayloadTooLarge(ApiError):
    """The request body exceeds the configured size bound."""

    status = 413
    code = "payload_too_large"


class TooManyRequests(ApiError):
    """Backpressure: the bounded work queue is full."""

    status = 429
    code = "too_many_requests"

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message, retry_after=retry_after)


class DeadlineExceeded(ApiError):
    """The per-request deadline elapsed before the computation finished.

    503 (not 504): the work is still running server-side and will warm the
    cache, so a client retry after ``Retry-After`` is likely to succeed.
    """

    status = 503
    code = "deadline_exceeded"

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message, retry_after=retry_after)


class ServiceUnavailable(ApiError):
    """The daemon is draining (or otherwise not accepting new work)."""

    status = 503
    code = "unavailable"

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message, retry_after=retry_after)
