"""Durable sweep queue: journaled before acknowledged, resumed on restart.

The queue is the crash-only core of the daemon.  Its invariant is the
acknowledgement rule from :mod:`repro.runner.journal`'s durability
contract: **whatever is acknowledged is durable, whatever is not durable
was never acknowledged.**  Concretely, ``submit`` writes the normalized
sweep spec to ``<id>.spec.json`` (atomic tmp-write → fsync → rename →
parent-directory fsync) *before* returning the 202 — so a daemon killed
the instruction after acknowledging a sweep still owns it after restart.

On-disk layout under ``journal_dir`` (one flat directory):

* ``<id>.spec.json``    — the accepted spec; existence == acknowledged,
* ``<id>.journal.jsonl`` — the runner's item journal (PR 5 format),
* ``<id>.report.json``  — the finished report snapshot; existence == done,
* ``<id>.error.json``   — a terminal submission-independent failure.

``<id>`` is the SHA-256 (truncated) of the normalized spec, so
resubmitting the same spec is idempotent — same id, no duplicate work —
and ids are stable across daemon generations.

The executor is one thread draining accepted sweeps in FIFO order through
:func:`repro.runner.pool.run_sweep` with the full retry/timeout/
degradation ladder, journaling every item.  The drain state machine is::

    SERVING ──begin_drain()──▶ DRAINING ──executor exits──▶ STOPPED

While DRAINING no new sweep starts and the in-flight sweep is
*checkpointed*: the per-item ``on_result`` hook raises KeyboardInterrupt,
``run_sweep`` flushes + fsyncs the journal on its way out (both its serial
and parallel paths), and the sweep's state returns to ``accepted`` — on
disk it is indistinguishable from a SIGKILL at that journal prefix, which
is exactly why the kill-resume conformance property holds for graceful
and violent deaths alike.  Restart scans the directory, re-enqueues every
acknowledged-but-unfinished sweep, and resumes each from its journal to a
report byte-identical (``canonical_report_view``) to an uninterrupted run.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..runner.faults import FaultPlan
from ..runner.journal import JournalError, _fsync_dir, journal_status
from ..runner.plan import FAMILIES, InstanceSpec, SweepPlan, split_seed
from .errors import BadRequest, ServiceUnavailable, TooManyRequests

__all__ = ["SweepQueue", "normalize_spec", "plan_from_spec",
           "SERVING", "DRAINING", "STOPPED"]

#: Drain state machine: SERVING → DRAINING → STOPPED, never backwards.
#: Internal comparisons use the int codes; :attr:`SweepQueue.lifecycle`
#: exposes the names.
_SERVING, _DRAINING, _STOPPED = 0, 1, 2
_LIFECYCLE_NAMES = ("serving", "draining", "stopped")
SERVING, DRAINING, STOPPED = _LIFECYCLE_NAMES

_SPEC_FIELDS = {
    "kind", "policies", "families", "n", "seeds", "root_seed",
    "speeds", "no_lp", "dir",
    "workers", "chunksize", "retries", "item_timeout", "chaos",
}


def _require_int(spec: Dict[str, Any], key: str, lo: int, hi: int, default: int) -> int:
    value = spec.get(key, default)
    if not isinstance(value, int) or isinstance(value, bool) or not lo <= value <= hi:
        raise BadRequest(f'"{key}" must be an integer in [{lo}, {hi}]')
    return value


def _require_names(spec: Dict[str, Any], key: str, known, what: str) -> List[str]:
    value = spec.get(key)
    if (
        not isinstance(value, list)
        or not value
        or not all(isinstance(v, str) for v in value)
    ):
        raise BadRequest(f'"{key}" must be a non-empty list of {what} names')
    unknown = [v for v in value if v not in known]
    if unknown:
        raise BadRequest(
            f"unknown {what}(s) {unknown}; known: {sorted(known)}"
        )
    return list(value)


def normalize_spec(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Validate a submitted sweep spec and fill every default.

    The normalized dict is the sweep's *identity* — its canonical JSON is
    hashed into the sweep id — so two submissions that mean the same work
    collapse onto one durable sweep.  All malformed input raises
    :class:`~repro.serve.errors.BadRequest` naming the offending field;
    nothing is accepted (or written) until the whole spec validates and
    its plan builds.
    """
    from ..runner.tasks import POLICIES as sweep_policies

    if not isinstance(spec, dict):
        raise BadRequest("sweep spec must be a JSON object")
    stray = sorted(set(spec) - _SPEC_FIELDS)
    if stray:
        raise BadRequest(f"unknown spec field(s) {stray}")
    kind = spec.get("kind")
    if kind not in ("ratio", "differential", "corpus"):
        raise BadRequest(
            f'"kind" must be one of ratio/differential/corpus, got {kind!r}'
        )
    out: Dict[str, Any] = {"kind": kind}
    if kind == "ratio":
        out["policies"] = _require_names(spec, "policies", sweep_policies, "policy")
        out["families"] = _require_names(spec, "families", FAMILIES, "family")
        out["n"] = _require_int(spec, "n", 1, 200, 12)
        out["seeds"] = _require_int(spec, "seeds", 1, 64, 3)
        out["root_seed"] = _require_int(spec, "root_seed", 0, 2**32, 0)
    elif kind == "differential":
        out["families"] = _require_names(spec, "families", FAMILIES, "family")
        out["n"] = _require_int(spec, "n", 1, 200, 12)
        out["seeds"] = _require_int(spec, "seeds", 1, 64, 3)
        out["root_seed"] = _require_int(spec, "root_seed", 0, 2**32, 0)
        speeds = spec.get("speeds", ["1"])
        if not isinstance(speeds, list) or not speeds or not all(
            isinstance(s, str) for s in speeds
        ):
            raise BadRequest('"speeds" must be a non-empty list of strings')
        from fractions import Fraction

        for s in speeds:
            try:
                if Fraction(s) <= 0:
                    raise ValueError
            except (ValueError, ZeroDivisionError):
                raise BadRequest(f"unparsable or non-positive speed {s!r}")
        out["speeds"] = list(speeds)
        out["no_lp"] = bool(spec.get("no_lp", False))
    else:  # corpus
        corpus_dir = spec.get("dir")
        if not isinstance(corpus_dir, str) or not corpus_dir:
            raise BadRequest('corpus sweeps need a "dir" string field')
        if not os.path.isfile(os.path.join(corpus_dir, "expectations.json")):
            raise BadRequest(f"{corpus_dir!r} has no expectations.json")
        out["dir"] = corpus_dir
    out["workers"] = _require_int(spec, "workers", 1, 8, 1)
    out["chunksize"] = _require_int(spec, "chunksize", 1, 64, 1)
    out["retries"] = _require_int(spec, "retries", 0, 5, 0)
    timeout = spec.get("item_timeout")
    if timeout is not None and (
        not isinstance(timeout, (int, float))
        or isinstance(timeout, bool)
        or not 0 < timeout <= 300
    ):
        raise BadRequest('"item_timeout" must be a number in (0, 300] seconds')
    out["item_timeout"] = timeout
    chaos = spec.get("chaos")
    if chaos is not None:
        if not isinstance(chaos, str):
            raise BadRequest('"chaos" must be a fault-plan string')
        try:
            FaultPlan.parse(chaos)
        except ValueError as exc:
            raise BadRequest(f"bad chaos plan: {exc}")
    out["chaos"] = chaos
    return out


def plan_from_spec(spec: Dict[str, Any]) -> SweepPlan:
    """Build the :class:`SweepPlan` a normalized spec describes.

    Pure function of the spec: every daemon generation that reads the same
    ``<id>.spec.json`` builds the byte-identical plan (same fingerprint),
    which is what lets a restart resume the old journal at all.
    """
    kind = spec["kind"]
    if kind == "ratio":
        return SweepPlan.competitive(
            policies=spec["policies"],
            families=spec["families"],
            n=spec["n"],
            seeds=spec["seeds"],
            root_seed=spec["root_seed"],
        )
    if kind == "differential":
        specs = [
            InstanceSpec(family, spec["n"], split_seed(spec["root_seed"], i))
            for family in spec["families"]
            for i in range(spec["seeds"])
        ]
        return SweepPlan.differential(
            specs,
            speeds=spec["speeds"],
            use_lp=not spec["no_lp"],
            lp_deadline=spec["item_timeout"],
        )
    return SweepPlan.corpus(spec["dir"])


def _sweep_id(normalized: Dict[str, Any]) -> str:
    canonical = json.dumps(normalized, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def _write_durable(path: str, payload: Any) -> None:
    """Atomic durable write: tmp → fsync → rename → directory fsync."""
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, sort_keys=True)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    _fsync_dir(path)


class SweepQueue:
    """Bounded, durable, resumable sweep queue (see the module docstring)."""

    def __init__(
        self,
        journal_dir: str,
        max_queue: int = 8,
        sweep_workers: int = 1,
        on_item: Optional[Callable[[str, Any], None]] = None,
    ) -> None:
        self.journal_dir = journal_dir
        self.max_queue = max_queue
        self.sweep_workers = sweep_workers
        #: Per-item observation hook ``(sweep_id, ItemResult)`` — metrics
        #: tick for the app, drain trigger for the chaos tests.  Runs on
        #: the executor thread; exceptions it raises checkpoint the sweep.
        self.on_item = on_item
        os.makedirs(journal_dir, exist_ok=True)
        self._cond = threading.Condition()
        self._lifecycle = _SERVING
        self._pending: "deque[str]" = deque()
        self._specs: Dict[str, Dict[str, Any]] = {}
        self._state: Dict[str, str] = {}
        self._thread: Optional[threading.Thread] = None
        self.completed = 0
        self.checkpointed = 0
        self.resumed = 0

    # -- paths ----------------------------------------------------------------

    def _path(self, sweep_id: str, suffix: str) -> str:
        return os.path.join(self.journal_dir, f"{sweep_id}.{suffix}")

    # -- lifecycle ------------------------------------------------------------

    @property
    def lifecycle(self) -> str:
        return _LIFECYCLE_NAMES[self._lifecycle]

    def start(self) -> "SweepQueue":
        """Recover acknowledged-but-unfinished sweeps, then start executing."""
        for name in sorted(os.listdir(self.journal_dir)):
            if not name.endswith(".spec.json"):
                continue
            sweep_id = name[: -len(".spec.json")]
            if os.path.exists(self._path(sweep_id, "report.json")):
                continue
            if os.path.exists(self._path(sweep_id, "error.json")):
                continue
            with open(self._path(sweep_id, "spec.json"), encoding="utf-8") as fh:
                spec = json.load(fh)
            with self._cond:
                self._specs[sweep_id] = spec
                self._state[sweep_id] = "accepted"
                self._pending.append(sweep_id)
                self.resumed += 1
        self._thread = threading.Thread(
            target=self._run, name="serve-sweeps", daemon=True
        )
        self._thread.start()
        return self

    def begin_drain(self) -> None:
        """SERVING → DRAINING: refuse new work, checkpoint the in-flight sweep."""
        with self._cond:
            if self._lifecycle == _SERVING:
                self._lifecycle = _DRAINING
            self._cond.notify_all()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Drain and join the executor; True iff it stopped in time."""
        self.begin_drain()
        if self._thread is not None:
            self._thread.join(timeout)
            if self._thread.is_alive():
                return False
        with self._cond:
            self._lifecycle = _STOPPED
        return True

    # -- client surface -------------------------------------------------------

    def depth(self) -> int:
        with self._cond:
            return len(self._pending)

    def submit(self, spec: Dict[str, Any]) -> Tuple[str, str, bool]:
        """Accept a sweep durably; returns ``(id, state, created)``.

        The spec is fully validated (its plan must build) *before* anything
        is written; the spec file is durable on disk *before* this returns.
        Known ids — done, failed, queued, or running — are answered
        idempotently without re-enqueueing.  A full queue raises
        :class:`~repro.serve.errors.TooManyRequests` immediately: honest
        backpressure beats an unbounded backlog.
        """
        normalized = normalize_spec(spec)
        plan_from_spec(normalized)  # must build; BadRequest on any defect
        sweep_id = _sweep_id(normalized)
        with self._cond:
            if self._lifecycle != _SERVING:
                raise ServiceUnavailable(
                    "queue is draining; resubmit to the replacement daemon",
                    retry_after=5.0,
                )
            if os.path.exists(self._path(sweep_id, "report.json")):
                return sweep_id, "done", False
            if os.path.exists(self._path(sweep_id, "error.json")):
                return sweep_id, "failed", False
            if sweep_id in self._state:
                return sweep_id, self._state[sweep_id], False
            if len(self._pending) >= self.max_queue:
                raise TooManyRequests(
                    f"sweep queue is full ({self.max_queue} pending); "
                    f"retry after the backlog drains",
                    retry_after=2.0,
                )
            # Ack rule: durable before acknowledged.  A kill after this
            # write re-enqueues the sweep on restart; a kill before it
            # means the client never saw a 202 and resubmits.
            _write_durable(self._path(sweep_id, "spec.json"), normalized)
            self._specs[sweep_id] = normalized
            self._state[sweep_id] = "accepted"
            self._pending.append(sweep_id)
            self._cond.notify_all()
        return sweep_id, "accepted", True

    def status(self, sweep_id: str) -> Optional[Dict[str, Any]]:
        """Durable-first status: disk is the truth, memory adds liveness."""
        if not sweep_id or "/" in sweep_id or "." in sweep_id:
            return None
        report_path = self._path(sweep_id, "report.json")
        if os.path.exists(report_path):
            with open(report_path, encoding="utf-8") as fh:
                return {"id": sweep_id, "state": "done", "report": json.load(fh)}
        error_path = self._path(sweep_id, "error.json")
        if os.path.exists(error_path):
            with open(error_path, encoding="utf-8") as fh:
                return {"id": sweep_id, "state": "failed", **json.load(fh)}
        if not os.path.exists(self._path(sweep_id, "spec.json")):
            return None
        with self._cond:
            state = self._state.get(sweep_id, "accepted")
        out: Dict[str, Any] = {"id": sweep_id, "state": state}
        journal = self._path(sweep_id, "journal.jsonl")
        if os.path.exists(journal):
            try:
                progress = journal_status(journal)
            except JournalError:
                progress = None
            if progress is not None:
                out["progress"] = {
                    k: progress[k]
                    for k in ("settled", "remaining", "by_status",
                              "retries", "dropped")
                }
        return out

    # -- executor -------------------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._cond:
                while self._lifecycle == _SERVING and not self._pending:
                    self._cond.wait()
                if self._lifecycle != _SERVING:
                    # DRAINING: pending sweeps stay acknowledged on disk;
                    # the next daemon generation picks them up.
                    return
                sweep_id = self._pending.popleft()
                self._state[sweep_id] = "running"
            self._run_one(sweep_id)

    def _run_one(self, sweep_id: str) -> None:
        from ..runner.pool import run_sweep

        spec = self._specs[sweep_id]
        journal = self._path(sweep_id, "journal.jsonl")
        resume = os.path.exists(journal)

        def tick(result) -> None:
            if self._lifecycle != _SERVING:
                raise KeyboardInterrupt
            if self.on_item is not None:
                self.on_item(sweep_id, result)

        try:
            plan = plan_from_spec(spec)
            report = run_sweep(
                plan,
                n_jobs=max(1, min(spec.get("workers", 1), self.sweep_workers)),
                chunksize=spec.get("chunksize", 1),
                retry=spec.get("retries", 0),
                item_timeout=spec.get("item_timeout"),
                faults=FaultPlan.parse(spec["chaos"]) if spec.get("chaos") else None,
                journal=journal,
                resume=resume,
                on_result=tick,
            )
        except KeyboardInterrupt:
            # Serial-path drain: run_sweep's finally already fsynced the
            # journal — on disk this is a SIGKILL at a record boundary.
            self._checkpoint(sweep_id)
            return
        except Exception as exc:  # noqa: BLE001 — a spec-level defect
            _write_durable(
                self._path(sweep_id, "error.json"),
                {"error": f"{type(exc).__name__}: {exc}"},
            )
            with self._cond:
                self._state.pop(sweep_id, None)
                self._specs.pop(sweep_id, None)
            return
        self._finish(sweep_id, report)

    def _outcome(self, report: Any) -> str:
        """Classify a returned report: ``done`` / ``checkpoint`` / ``stalled``.

        ``done`` iff every item settled (``ok``/``error`` — the journal
        reader's own settledness rule).  An incomplete report while
        DRAINING is a checkpoint (the parallel path returns instead of
        raising on interrupt); incomplete while SERVING means the ladder
        was exhausted — ``stalled``, terminal for this process life so the
        executor cannot hot-loop, but *not* terminal on disk: a restart
        retries it.
        """
        if all(r.status in ("ok", "error") for r in report.results):
            return "done"
        if self._lifecycle != _SERVING:
            return "checkpoint"
        return "stalled"

    def _finish(self, sweep_id: str, report: Any) -> None:
        outcome = self._outcome(report)
        if outcome == "done":
            from ..obs.sinks import jsonable

            _write_durable(
                self._path(sweep_id, "report.json"),
                jsonable(report.snapshot()),
            )
            with self._cond:
                self._state.pop(sweep_id, None)
                self._specs.pop(sweep_id, None)
                self.completed += 1
        elif outcome == "checkpoint":
            self._checkpoint(sweep_id)
        else:
            with self._cond:
                self._state[sweep_id] = "stalled"

    def _checkpoint(self, sweep_id: str) -> None:
        with self._cond:
            self._state[sweep_id] = "accepted"
            self.checkpointed += 1
