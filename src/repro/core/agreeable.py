"""The O(1)-competitive non-preemptive algorithm for agreeable instances.

Theorem 12's algorithm for an agreeable instance:

* split jobs at looseness threshold ``α``;
* **loose part** — plain EDF, which on agreeable instances never preempts a
  started job (Corollary 1) and needs at most ``m/(1−α)²`` machines
  (Theorem 13);
* **tight part** — MediumFit (Lemma 8), at most ``16m/α`` machines.

The total ``m/(1−α)² + 16m/α`` is minimized at ``α* ≈ 0.6303``, giving the
paper's ``32.70 · m`` bound.  Both parts are non-preemptive and run on
disjoint machine pools, so the combination is non-preemptive (hence
non-migratory) and online.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Tuple

from ..model.instance import Instance
from ..model.intervals import Numeric, to_fraction
from ..model.schedule import Schedule
from ..online.edf import NonPreemptiveEDF
from ..online.engine import min_machines, simulate
from .medium_fit import MediumFit


def combined_bound(alpha: Numeric) -> Fraction:
    """The per-``m`` machine bound of Theorem 12: ``1/(1−α)² + 16/α``."""
    alpha = to_fraction(alpha)
    if not (0 < alpha < 1):
        raise ValueError("alpha must lie in (0, 1)")
    return 1 / (1 - alpha) ** 2 + 16 / alpha


def optimal_alpha(resolution: int = 10_000) -> Tuple[Fraction, Fraction]:
    """Minimize ``1/(1−α)² + 16/α`` over a rational grid.

    Returns ``(α*, bound)``; with the default resolution the bound evaluates
    to ``≈ 32.70``, matching the constant in Theorem 12.
    """
    best_alpha = Fraction(1, 2)
    best = combined_bound(best_alpha)
    for k in range(1, resolution):
        alpha = Fraction(k, resolution)
        value = combined_bound(alpha)
        if value < best:
            best = value
            best_alpha = alpha
    return best_alpha, best


@dataclass
class AgreeableRunResult:
    """Outcome of Theorem 12's algorithm on one agreeable instance."""

    schedule: Schedule
    loose_machines: int
    tight_machines: int
    alpha: Fraction

    @property
    def machines(self) -> int:
        return self.loose_machines + self.tight_machines


class AgreeableAlgorithm:
    """Theorem 12: non-preemptive EDF (loose) + MediumFit (tight)."""

    def __init__(self, alpha: Optional[Numeric] = None) -> None:
        if alpha is None:
            alpha, _ = optimal_alpha(resolution=200)
        self.alpha = to_fraction(alpha)
        if not (0 < self.alpha < 1):
            raise ValueError("alpha must lie in (0, 1)")

    def run_with_budget(
        self, instance: Instance, loose_machines: int
    ) -> Optional[AgreeableRunResult]:
        """Run with a fixed EDF machine budget for the loose part.

        MediumFit determines its own machine count (fixed slots).  Returns
        ``None`` if the loose part misses a deadline at this budget.
        """
        if not instance.is_agreeable():
            raise ValueError("instance is not agreeable")
        loose, tight = instance.split_by_looseness(self.alpha)
        loose_schedule = Schedule([])
        if len(loose) > 0:
            engine = simulate(NonPreemptiveEDF(), loose, machines=loose_machines)
            if engine.missed_jobs:
                return None
            loose_schedule = engine.schedule()
        tight_schedule = MediumFit().schedule(tight)
        offset = loose_machines if len(loose) > 0 else 0
        combined = loose_schedule.merged(tight_schedule.shifted_machines(offset))
        return AgreeableRunResult(
            schedule=combined,
            loose_machines=loose_schedule.machines_used,
            tight_machines=tight_schedule.machines_used,
            alpha=self.alpha,
        )

    def run(self, instance: Instance) -> AgreeableRunResult:
        """Run with the smallest loose-part budget that succeeds."""
        if not instance.is_agreeable():
            raise ValueError("instance is not agreeable")
        loose, _ = instance.split_by_looseness(self.alpha)
        budget = 0
        if len(loose) > 0:
            budget = min_machines(lambda k: NonPreemptiveEDF(), loose)
        result = self.run_with_budget(instance, budget)
        assert result is not None
        return result

    def theorem12_bound(self, m: int) -> Fraction:
        """Machine bound promised by Theorem 12 for optimum ``m``."""
        return combined_bound(self.alpha) * m
