"""The O(m log m)-machine non-migratory algorithm for laminar instances.

Section 5 of the paper.  α-loose jobs go to the Section 4 algorithm on a
separate machine pool; the heart is the assignment scheme for α-tight jobs
on ``m'`` machines:

* Jobs are assigned at release, in the paper's index order (release
  ascending, deadline descending at ties).
* If some machine has no previously assigned job whose window intersects
  ``I(j)``, job ``j`` goes to any such machine.
* Otherwise every machine has a unique **responsible** job — the ≺-minimal
  assigned job whose window intersects (hence contains) ``I(j)``.  By
  laminarity the responsibles form a chain ``c_1(j) ≺ … ≺ c_{m'}(j)``
  (the *candidates* of ``j``, smallest window first).
* Every job's laxity is split into ``m'`` equal sub-budgets.  Job ``j`` is
  assigned to the machine of the smallest-index candidate ``c_i(j)`` whose
  *i-th* budget can still pay ``|I(j)|``:

      ℓ_{c_i(j)}/m'  −  Σ_{j' ∈ U_i(c_i(j))} |I(j')|  ≥  |I(j)|,

  where ``U_i(c)`` are the previously assigned *i-th users* of ``c``.
* If no candidate can pay, the assignment **fails**; Theorem 9 proves this
  cannot happen for ``m' = O(m log m)`` (validated in experiment E-T9).

Scheduling is machine-local EDF; Lemma 5 shows the budgets guarantee
feasibility whenever the assignment succeeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from ..model.instance import Instance, paper_order_key
from ..model.intervals import Numeric, to_fraction
from ..model.job import Job
from ..model.schedule import Schedule
from ..online.base import EngineError, JobState
from ..online.engine import OnlineEngine, min_machines, simulate
from ..online.nonmigratory import CommitAtReleasePolicy
from .loose import LooseAlgorithm


class LaminarAssignmentError(EngineError):
    """No candidate's budget could pay for the arriving job."""


class LaminarBudgetPolicy(CommitAtReleasePolicy):
    """The Section 5.1 assignment scheme on a fixed pool of ``m'`` machines.

    Intended for α-tight laminar job sets; the policy itself never inspects
    looseness (the split is done by :class:`LaminarAlgorithm`).
    """

    migratory = False

    def __init__(self) -> None:
        #: machine → jobs assigned to it, in assignment order
        self._assigned: Dict[int, List[Job]] = {}
        #: (candidate_id, i) → total |I(j')| charged by its i-th users
        self._charged: Dict[Tuple[int, int], Fraction] = {}

    # -- assignment --------------------------------------------------------

    def on_release(self, engine: OnlineEngine, jobs: Sequence[JobState]) -> None:
        for state in sorted(jobs, key=lambda s: paper_order_key(s.job)):
            machine = self._assign(engine, state.job)
            engine.commit(state.job.id, machine)
            self._assigned.setdefault(machine, []).append(state.job)

    def _assign(self, engine: OnlineEngine, job: Job) -> int:
        m_prime = engine.machines
        responsibles: List[Tuple[Job, int]] = []
        for machine in range(m_prime):
            intersecting = [
                j
                for j in self._assigned.get(machine, [])
                if j.interval.intersects(job.interval)
            ]
            if not intersecting:
                return machine
            responsibles.append((_min_by_domination(intersecting), machine))
        # all machines occupied around I(j): order candidates ≺-ascending
        responsibles.sort(key=lambda item: _chain_key(item[0]))
        for i, (candidate, machine) in enumerate(responsibles, start=1):
            budget = candidate.laxity / m_prime
            used = self._charged.get((candidate.id, i), Fraction(0))
            if budget - used >= job.window:
                self._charged[(candidate.id, i)] = used + job.window
                return machine
        raise LaminarAssignmentError(
            f"job {job.id} (|I|={job.window}) rejected by all {m_prime} budgets"
        )

    # selection: machine-local EDF inherited from CommitAtReleasePolicy


class GreedyLaminarPolicy(CommitAtReleasePolicy):
    """The *failing* greedy variant the paper warns about (Section 5.1).

    "Intuitively, we would also like to minimize the candidate that we pick
    w.r.t. ≺ … However, it fails to greedily assign jobs to the machine of
    their ≺-minimal candidate that fulfills the above necessary criterion."

    This policy assigns each job to the ≺-minimal candidate whose *total*
    laxity budget can still pay for ``|I(j)|`` — no per-index sub-budgets.
    It exists for the ablation experiment E-T9-abl: the sub-budget split of
    :class:`LaminarBudgetPolicy` is load-bearing, not an implementation
    detail.
    """

    migratory = False

    def __init__(self) -> None:
        self._assigned: Dict[int, List[Job]] = {}
        self._charged: Dict[int, Fraction] = {}

    def on_release(self, engine: OnlineEngine, jobs: Sequence[JobState]) -> None:
        for state in sorted(jobs, key=lambda s: paper_order_key(s.job)):
            machine = self._assign(engine, state.job)
            engine.commit(state.job.id, machine)
            self._assigned.setdefault(machine, []).append(state.job)

    def _assign(self, engine: OnlineEngine, job: Job) -> int:
        responsibles: List[Tuple[Job, int]] = []
        for machine in range(engine.machines):
            intersecting = [
                j
                for j in self._assigned.get(machine, [])
                if j.interval.intersects(job.interval)
            ]
            if not intersecting:
                return machine
            responsibles.append((_min_by_domination(intersecting), machine))
        responsibles.sort(key=lambda item: _chain_key(item[0]))
        for candidate, machine in responsibles:
            used = self._charged.get(candidate.id, Fraction(0))
            if candidate.laxity - used >= job.window:
                self._charged[candidate.id] = used + job.window
                return machine
        raise LaminarAssignmentError(
            f"greedy: job {job.id} rejected by every candidate's total budget"
        )


def _min_by_domination(jobs: Sequence[Job]) -> Job:
    """The ≺-minimal job: smallest window; ties resolved by index order.

    For equal windows the *later*-indexed job is dominated (the paper breaks
    window ties by index), hence ≺-minimal.
    """
    return min(jobs, key=_chain_key)


def _chain_key(job: Job) -> Tuple[Fraction, Tuple]:
    """Sort key realizing the ≺ chain order (most dominated first)."""
    inverted = paper_order_key(job)
    return (job.window, (-inverted[0], -inverted[1], -inverted[2]))


@dataclass
class LaminarRunResult:
    """Outcome of Theorem 9's algorithm on one laminar instance."""

    schedule: Schedule
    tight_machines: int
    loose_machines: int
    alpha: Fraction

    @property
    def machines(self) -> int:
        return self.tight_machines + self.loose_machines


class LaminarAlgorithm:
    """Theorem 9: budget assignment for tight jobs + Section 4 for loose."""

    def __init__(self, alpha: Numeric = Fraction(1, 2)) -> None:
        self.alpha = to_fraction(alpha)
        if not (0 < self.alpha < 1):
            raise ValueError("alpha must lie in (0, 1)")

    def run_tight_with_budget(
        self, tight: Instance, m_prime: int
    ) -> Optional[Schedule]:
        """Run the budget scheme on ``m'`` machines; ``None`` on failure."""
        try:
            engine = simulate(LaminarBudgetPolicy(), tight, machines=m_prime)
        except LaminarAssignmentError:
            return None
        if engine.missed_jobs:
            return None
        return engine.schedule()

    def min_tight_machines(self, tight: Instance) -> int:
        """Smallest ``m'`` for which the budget scheme succeeds."""
        if len(tight) == 0:
            return 0
        return min_machines(lambda k: LaminarBudgetPolicy(), tight)

    def run(self, instance: Instance) -> LaminarRunResult:
        if not instance.is_laminar():
            raise ValueError("instance is not laminar")
        loose, tight = instance.split_by_looseness(self.alpha)
        tight_schedule = Schedule([])
        m_prime = 0
        if len(tight) > 0:
            m_prime = self.min_tight_machines(tight)
            sched = self.run_tight_with_budget(tight, m_prime)
            assert sched is not None
            tight_schedule = sched
        loose_schedule = Schedule([])
        loose_machines = 0
        if len(loose) > 0:
            result = LooseAlgorithm(self.alpha).run(loose)
            loose_schedule = result.schedule
            loose_machines = result.machines
        combined = tight_schedule.merged(loose_schedule.shifted_machines(m_prime))
        return LaminarRunResult(
            schedule=combined,
            tight_machines=m_prime,
            loose_machines=loose_machines,
            alpha=self.alpha,
        )
