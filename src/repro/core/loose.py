"""The O(1)-competitive non-migratory algorithm for α-loose jobs (Section 4).

Theorem 6's reduction, implemented verbatim:

1. *Inflate*: replace every arriving job ``j`` by ``j^s`` with processing
   time ``s · p_j`` (feasible because ``α < 1/s`` keeps ``p ≤ window``).
2. *Black box*: run a non-migratory online algorithm for general instances
   on speed-``s`` machines on the inflated instance ``J^s``.
3. *Deflate*: whenever ``j^s`` is processed, process ``j`` on the same
   machine at unit speed.

Step 3 is exact: ``j^s`` needs ``s·p_j / s = p_j`` wall-clock machine time,
so the black-box segments *are* the unit-speed schedule of ``j`` — windows,
non-migration, and exclusivity carry over unchanged, and the pipeline stays
online because the transform is applied per job at its release.

Lemma 4 (validated in experiment E-L4) bounds ``m(J^s) = O(m(J))``, and the
black box uses ``f(m(J^s))`` machines, which yields Theorem 5's ``O(m)``
machines overall; with Lemma 1 this gives the O(1) competitive ratio of
Theorem 8.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Tuple

from ..model.instance import Instance
from ..model.intervals import Numeric, to_fraction
from ..model.schedule import Schedule
from ..online.engine import min_machines, simulate, succeeds
from .speed_fit import SpeedFit, clt_machine_budget, clt_speed


def default_epsilon(alpha: Numeric) -> Fraction:
    """A valid ε for α-loose jobs: needs speed ``(1+ε)² < 1/α``.

    Picks the midpoint ``ε = (√(1/α) − 1)/2`` (as an exact rational via a
    conservative rational square root), so the inflated jobs still fit their
    windows with slack.
    """
    alpha = to_fraction(alpha)
    if not (0 < alpha < 1):
        raise ValueError("alpha must lie in (0, 1)")
    root = Fraction(math.isqrt(int((1 / alpha) * 10**12 * 10**12)), 10**12)
    # round the approximate sqrt(1/α) down so that (1+2ε)... stays safe
    eps = (root - 1) / 2
    if eps <= 0:
        raise ValueError(f"alpha={alpha} leaves no room for speed augmentation")
    while (1 + eps) ** 2 >= 1 / alpha:
        eps = eps * Fraction(9, 10)
    return eps


@dataclass
class LooseRunResult:
    """Outcome of the Theorem 6 pipeline on one instance."""

    schedule: Schedule
    machines: int
    speed: Fraction
    epsilon: Fraction
    inflated: Instance

    @property
    def machines_used(self) -> int:
        return self.schedule.machines_used


class LooseAlgorithm:
    """Theorem 5's algorithm: inflate → speed-s black box → deflate.

    ``alpha`` is the looseness bound of the input class; ``epsilon``
    (optional) tunes the trade-off of Theorem 7 and must satisfy
    ``(1+ε)² < 1/α``.
    """

    def __init__(
        self,
        alpha: Numeric,
        epsilon: Optional[Numeric] = None,
        blackbox_factory=None,
    ) -> None:
        self.alpha = to_fraction(alpha)
        self.epsilon = (
            to_fraction(epsilon) if epsilon is not None else default_epsilon(alpha)
        )
        self.speed = clt_speed(self.epsilon)
        if self.speed >= 1 / self.alpha:
            raise ValueError(
                f"speed (1+ε)² = {self.speed} must be < 1/α = {1 / self.alpha}"
            )
        # Theorem 6 is agnostic to the black box: any non-migratory online
        # policy works; the default is the SpeedFit substitute (DESIGN.md §5)
        self.blackbox_factory = blackbox_factory or (lambda: SpeedFit())
        probe = self.blackbox_factory()
        if probe.migratory:
            raise ValueError("the Theorem 6 black box must be non-migratory")

    def inflate(self, instance: Instance) -> Instance:
        """``J → J^s`` (valid because every job is α-loose with α < 1/s)."""
        for job in instance:
            if not job.is_loose(self.alpha):
                raise ValueError(f"job {job.id} is not {self.alpha}-loose")
        return instance.inflated(self.speed)

    def run_with_budget(self, instance: Instance, machines: int) -> Optional[LooseRunResult]:
        """Run on a fixed machine budget; ``None`` if a deadline is missed."""
        inflated = self.inflate(instance)
        engine = simulate(
            self.blackbox_factory(), inflated, machines=machines, speed=self.speed
        )
        if engine.missed_jobs:
            return None
        # Deflate: the black-box wall-clock segments are the unit-speed
        # schedule of the original jobs (see module docstring).
        schedule = engine.schedule()
        return LooseRunResult(
            schedule=schedule,
            machines=machines,
            speed=self.speed,
            epsilon=self.epsilon,
            inflated=inflated,
        )

    def run(self, instance: Instance) -> LooseRunResult:
        """Run with the smallest machine budget that succeeds."""
        if len(instance) == 0:
            return LooseRunResult(Schedule([]), 0, self.speed, self.epsilon, instance)
        inflated = self.inflate(instance)
        machines = min_machines(
            lambda k: self.blackbox_factory(), inflated, speed=self.speed
        )
        result = self.run_with_budget(instance, machines)
        assert result is not None
        return result

    def theorem7_budget(self, m: int) -> int:
        """The machine budget Theorem 7 would grant for optimum ``m``."""
        return clt_machine_budget(m, self.epsilon)
