"""Instance classification and algorithm dispatch.

Given an arbitrary instance, pick the strongest applicable result from the
paper and run it:

* every job α-loose for a usefully small α  →  :class:`LooseAlgorithm`
  (Theorem 5, ``O(m)`` machines),
* agreeable                                  →  :class:`AgreeableAlgorithm`
  (Theorem 12, ``32.70·m`` machines, non-preemptive),
* laminar                                    →  :class:`LaminarAlgorithm`
  (Theorem 9, ``O(m log m)`` machines),
* otherwise                                  →  non-migratory first-fit EDF
  (no worst-case guarantee exists: Theorem 3 rules out any ``f(m)`` bound
  for general instances; the dispatcher reports this).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

from ..model.instance import Instance
from ..model.intervals import Numeric, to_fraction
from ..model.schedule import Schedule
from ..online.engine import min_machines, simulate
from ..online.nonmigratory import FirstFitEDF
from .agreeable import AgreeableAlgorithm
from .laminar import LaminarAlgorithm
from .loose import LooseAlgorithm

#: Looseness threshold below which the Theorem 5 pipeline is preferred.
LOOSE_DISPATCH_THRESHOLD = Fraction(2, 5)


@dataclass
class DispatchResult:
    """What the dispatcher ran and what it produced."""

    schedule: Schedule
    machines: int
    algorithm: str
    instance_class: str
    guarantee: str


def classify(instance: Instance, loose_threshold: Numeric = LOOSE_DISPATCH_THRESHOLD) -> str:
    """Name the strongest structure the instance possesses."""
    if len(instance) == 0:
        return "empty"
    if instance.max_density <= to_fraction(loose_threshold):
        return "loose"
    if instance.is_agreeable():
        return "agreeable"
    if instance.is_laminar():
        return "laminar"
    return "general"


def dispatch(
    instance: Instance, loose_threshold: Numeric = LOOSE_DISPATCH_THRESHOLD
) -> DispatchResult:
    """Classify and schedule with the best matching paper algorithm."""
    kind = classify(instance, loose_threshold)
    if kind == "empty":
        return DispatchResult(Schedule([]), 0, "none", "empty", "trivial")
    if kind == "loose":
        alpha = max(instance.max_density, Fraction(1, 100))
        result = LooseAlgorithm(alpha).run(instance)
        return DispatchResult(
            result.schedule,
            result.machines,
            "LooseAlgorithm",
            "loose",
            "O(m) machines (Theorem 5)",
        )
    if kind == "agreeable":
        result = AgreeableAlgorithm().run(instance)
        return DispatchResult(
            result.schedule,
            result.machines,
            "AgreeableAlgorithm",
            "agreeable",
            "32.70·m machines, non-preemptive (Theorem 12)",
        )
    if kind == "laminar":
        result = LaminarAlgorithm().run(instance)
        return DispatchResult(
            result.schedule,
            result.machines,
            "LaminarAlgorithm",
            "laminar",
            "O(m log m) machines (Theorem 9)",
        )
    machines = min_machines(lambda k: FirstFitEDF(), instance)
    engine = simulate(FirstFitEDF(), instance, machines=machines)
    return DispatchResult(
        engine.schedule(),
        machines,
        "FirstFitEDF",
        "general",
        "no f(m) guarantee exists for general instances (Theorem 3)",
    )
