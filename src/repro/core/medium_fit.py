"""MediumFit — the non-preemptive rule for α-tight agreeable jobs (Lemma 8).

MediumFit runs every job ``j`` exactly in ``[r_j + ℓ_j/2, d_j − ℓ_j/2)``
(length exactly ``p_j``), *independently of all other jobs*.  The paper
notes this centering is essential: anchoring at ``[r_j, d_j − ℓ_j)`` or
``[r_j + ℓ_j, d_j)`` does **not** give an ``O(m)`` bound — experiment E-L8
includes this ablation via the ``anchor`` parameter.

Machine packing of the resulting fixed intervals is greedy first-fit in
start-time order, which is optimal for interval-graph coloring, i.e. it uses
exactly the maximum overlap many machines.  The whole procedure is online
(the slot of a job depends only on the job itself) and non-preemptive.

Lemma 8: on agreeable instances of α-tight jobs, the maximum overlap — and
hence the machine count — is at most ``16 m / α``.
"""

from __future__ import annotations

import heapq
from fractions import Fraction
from typing import Dict, List, Literal, Tuple

from ..model.instance import Instance
from ..model.intervals import Interval, Numeric, to_fraction
from ..model.job import Job
from ..model.schedule import Schedule, Segment

Anchor = Literal["middle", "left", "right"]


def fixed_slot(job: Job, anchor: Anchor = "middle") -> Interval:
    """The slot MediumFit (or an ablation anchor) assigns to ``job``."""
    half = job.laxity / 2
    if anchor == "middle":
        return Interval(job.release + half, job.deadline - half)
    if anchor == "left":
        return Interval(job.release, job.release + job.processing)
    if anchor == "right":
        return Interval(job.deadline - job.processing, job.deadline)
    raise ValueError(f"unknown anchor {anchor!r}")


def pack_fixed_intervals(slots: List[Tuple[int, Interval]]) -> Dict[int, int]:
    """First-fit machine assignment of fixed intervals, by start time.

    Returns ``job_id → machine``.  Uses the optimal greedy interval-coloring:
    process intervals by start, reuse the machine freed the longest ago.
    """
    order = sorted(slots, key=lambda item: (item[1].start, item[1].end, item[0]))
    free: List[int] = []  # machine indices available for reuse (min-heap)
    busy: List[Tuple[Fraction, int]] = []  # (end, machine)
    assignment: Dict[int, int] = {}
    next_machine = 0
    for job_id, slot in order:
        while busy and busy[0][0] <= slot.start:
            _, machine = heapq.heappop(busy)
            heapq.heappush(free, machine)
        if free:
            machine = heapq.heappop(free)
        else:
            machine = next_machine
            next_machine += 1
        assignment[job_id] = machine
        heapq.heappush(busy, (slot.end, machine))
    return assignment


class MediumFit:
    """The MediumFit scheduler of Section 6.1 (non-preemptive, online)."""

    def __init__(self, anchor: Anchor = "middle") -> None:
        self.anchor: Anchor = anchor

    def schedule(self, instance: Instance) -> Schedule:
        slots = [(job.id, fixed_slot(job, self.anchor)) for job in instance]
        assignment = pack_fixed_intervals(slots)
        segments = [
            Segment(job_id, machine, *_bounds(slots, job_id))
            for job_id, machine in assignment.items()
        ]
        return Schedule(segments)

    def machines_needed(self, instance: Instance) -> int:
        """Maximum overlap of the fixed slots (== machines used)."""
        events: List[Tuple[Fraction, int]] = []
        for job in instance:
            slot = fixed_slot(job, self.anchor)
            events.append((slot.start, 1))
            events.append((slot.end, -1))
        events.sort()
        best = cur = 0
        for _, delta in events:
            cur += delta
            best = max(best, cur)
        return best


def _bounds(slots: List[Tuple[int, Interval]], job_id: int) -> Tuple[Fraction, Fraction]:
    for jid, slot in slots:
        if jid == job_id:
            return slot.start, slot.end
    raise KeyError(job_id)  # pragma: no cover


def lemma8_bound(m: int, alpha: Numeric) -> Fraction:
    """Lemma 8's machine bound for α-tight agreeable jobs: ``16 m / α``."""
    return 16 * m / to_fraction(alpha)
