"""Speed-augmented non-migratory black box (substitute for Theorem 7).

The paper plugs the Chan–Lam–To algorithm [3] — non-migratory, at most
``⌈(1+1/ε)²⌉ · m`` machines of speed ``(1+ε)²`` — into the reduction of
Theorem 6 *as a black box*.  Only its interface matters to the reduction:

    given speed-``s`` machines, schedule an arbitrary instance online and
    non-migratorily on ``f(m)`` machines.

This module provides :class:`SpeedFit`, an equivalently-interfaced scheduler:
first-fit commitment backed by the exact machine-local EDF admission oracle,
run at machine speed ``s``.  Machines are provisioned up-front (the engine
model uses a fixed machine count; :func:`speed_fit_machines` binary-searches
the minimum count that succeeds, which is how every experiment consumes it).

The substitution is documented in DESIGN.md §5: experiment E-T5 validates
the end-to-end property the paper needs — an O(1) machine blow-up for
α-loose instances after the Theorem 6 reduction.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Optional

from ..model.instance import Instance
from ..model.intervals import Numeric, to_fraction
from ..online.engine import OnlineEngine, min_machines, simulate
from ..online.nonmigratory import FirstFitEDF


class SpeedFit(FirstFitEDF):
    """First-fit EDF on speed-``s`` machines (the engine supplies the speed).

    Identical policy logic to :class:`FirstFitEDF`; the class exists so that
    experiment output names the black box explicitly.
    """


def clt_machine_budget(m: int, epsilon: Numeric) -> int:
    """The machine budget of Theorem 7: ``⌈(1+1/ε)²⌉ · m``."""
    epsilon = to_fraction(epsilon)
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    return math.ceil((1 + 1 / epsilon) ** 2) * m


def clt_speed(epsilon: Numeric) -> Fraction:
    """The speed of Theorem 7: ``(1+ε)²``."""
    epsilon = to_fraction(epsilon)
    return (1 + epsilon) ** 2


def run_speed_fit(
    instance: Instance, machines: int, speed: Numeric
) -> OnlineEngine:
    """Run the black box on a fixed machine budget; returns the engine."""
    return simulate(SpeedFit(), instance, machines=machines, speed=speed)


def speed_fit_machines(instance: Instance, speed: Numeric, lo: int = 1) -> int:
    """Minimum machine count at which the black box succeeds at ``speed``."""
    return min_machines(lambda k: SpeedFit(), instance, lo=lo, speed=speed)
