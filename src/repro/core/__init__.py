"""The paper's contribution: non-migratory algorithms and adversaries."""

from .agreeable import AgreeableAlgorithm, AgreeableRunResult, combined_bound, optimal_alpha
from .laminar import (
    LaminarAlgorithm,
    LaminarAssignmentError,
    LaminarBudgetPolicy,
    LaminarRunResult,
)
from .loose import LooseAlgorithm, LooseRunResult, default_epsilon
from .medium_fit import MediumFit, fixed_slot, lemma8_bound, pack_fixed_intervals
from .speed_fit import SpeedFit, clt_machine_budget, clt_speed, speed_fit_machines
from .splitter import DispatchResult, classify, dispatch

__all__ = [
    "AgreeableAlgorithm",
    "AgreeableRunResult",
    "combined_bound",
    "optimal_alpha",
    "LaminarAlgorithm",
    "LaminarAssignmentError",
    "LaminarBudgetPolicy",
    "LaminarRunResult",
    "LooseAlgorithm",
    "LooseRunResult",
    "default_epsilon",
    "MediumFit",
    "fixed_slot",
    "lemma8_bound",
    "pack_fixed_intervals",
    "SpeedFit",
    "clt_machine_budget",
    "clt_speed",
    "speed_fit_machines",
    "DispatchResult",
    "classify",
    "dispatch",
]
