"""Executable lower-bound constructions from Sections 3 and 6.2."""

from .agreeable_lb import (
    DEFAULT_ALPHA,
    THEOREM15_THRESHOLD,
    AgreeableAdversary,
    AgreeableAdversaryResult,
    RoundRecord,
    capacity_sweep,
)
from .migration_gap import (
    AdversaryOutcome,
    AdversaryResult,
    ConstructionNode,
    MigrationGapAdversary,
    offline_witness,
)
from .nonpreemptive import ClassBasedNonPreemptive
from .np_trap import NonPreemptiveTrapAdversary, NpTrapResult

__all__ = [
    "DEFAULT_ALPHA",
    "THEOREM15_THRESHOLD",
    "AgreeableAdversary",
    "AgreeableAdversaryResult",
    "RoundRecord",
    "capacity_sweep",
    "AdversaryOutcome",
    "AdversaryResult",
    "ConstructionNode",
    "MigrationGapAdversary",
    "offline_witness",
    "ClassBasedNonPreemptive",
    "NonPreemptiveTrapAdversary",
    "NpTrapResult",
]
