"""Non-preemptive baseline scheduler (Saha-style processing-time classes).

Related work (Section 1): for the *non-preemptive* problem Saha [11] gave an
``O(log Δ)``-competitive algorithm (``Δ`` = max/min processing-time ratio)
and showed no ``f(m)``-competitive algorithm exists.  The classic scheme
groups jobs into geometric processing-time classes ``p ∈ [2^i, 2^{i+1})``
and serves each class on its own machine pool, which is what this module
provides as the related-work baseline for experiment E-BL: the number of
non-empty classes is ``⌈log₂ Δ⌉ + 1``, giving the logarithmic factor.

Within a class, a job is started as late as safe (at its latest start time
``a_j``) unless a machine is free earlier; machines are added on demand.
This is an *inspired-by* rendition for baseline comparison, not a claim of
reproducing Saha's exact construction (her paper is not part of the
supplied text).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from ...model.instance import Instance
from ...model.job import Job
from ...model.schedule import Schedule, Segment


@dataclass
class ClassPool:
    """Machines dedicated to one processing-time class."""

    index: int
    #: per machine, the time it becomes free
    free_at: List[Fraction]


class ClassBasedNonPreemptive:
    """Greedy non-preemptive scheduler over geometric processing-time classes."""

    def __init__(self) -> None:
        self._pools: Dict[int, ClassPool] = {}

    @staticmethod
    def job_class(job: Job) -> int:
        """Class index ``i`` with ``p_j ∈ [2^i, 2^{i+1})``."""
        return math.floor(math.log2(float(job.processing)))

    def schedule(self, instance: Instance) -> Tuple[Schedule, Dict[int, int]]:
        """Non-preemptive schedule; returns it with per-class machine counts.

        Jobs are processed in release order (online): each job starts on the
        first machine of its class pool that is free by ``a_j = r_j + ℓ_j``
        (at ``max(r_j, free time)``), opening a new machine if none is.
        """
        segments: List[Segment] = []
        machine_base: Dict[int, int] = {}
        next_base = 0
        per_class: Dict[int, int] = {}
        order = sorted(instance, key=lambda j: (j.release, j.deadline, j.id))
        pools: Dict[int, ClassPool] = {}
        for job in order:
            cls = self.job_class(job)
            pool = pools.setdefault(cls, ClassPool(cls, []))
            start: Optional[Fraction] = None
            chosen: Optional[int] = None
            for idx, free in enumerate(pool.free_at):
                candidate = max(job.release, free)
                if candidate <= job.latest_start:
                    if start is None or candidate < start:
                        start = candidate
                        chosen = idx
            if chosen is None:
                pool.free_at.append(job.release)
                chosen = len(pool.free_at) - 1
                start = job.release
            assert start is not None
            pool.free_at[chosen] = start + job.processing
            if cls not in machine_base:
                machine_base[cls] = next_base
                # reserve a generous block; compacted below
                next_base += len(instance)
            segments.append(
                Segment(job.id, machine_base[cls] + chosen, start, start + job.processing)
            )
            per_class[cls] = max(per_class.get(cls, 0), chosen + 1)
        # compact machine indices
        remap: Dict[int, int] = {}
        for seg in sorted(segments, key=lambda s: s.machine):
            if seg.machine not in remap:
                remap[seg.machine] = len(remap)
        compacted = [
            Segment(s.job_id, remap[s.machine], s.start, s.end) for s in segments
        ]
        return Schedule(compacted), per_class

    def machines_needed(self, instance: Instance) -> int:
        schedule, per_class = self.schedule(instance)
        return schedule.machines_used

    @staticmethod
    def class_count(instance: Instance) -> int:
        """Number of distinct processing-time classes (the log Δ factor)."""
        return len({ClassBasedNonPreemptive.job_class(j) for j in instance})
