"""The strong lower bound: Lemma 2 / Theorem 3 as an executable adversary.

This module implements the paper's recursive *interactive* construction
``I_k`` against an arbitrary non-migratory online policy.  It drives a live
:class:`~repro.online.engine.OnlineEngine`, observing the policy's machine
commitments and remaining processing times, and releases jobs adaptively:

* **Base** ``I_2`` (parameters ``α = 3/4``, ``β = 1/4``, satisfying
  Equation (1)): release the long job ``j_1`` (``p = α·h`` in a window of
  length ``h``), then from ``a_{j_1}`` short jobs of window ``β·h`` and
  processing ``α·β·h`` back to back.  Their total mandatory work inside
  ``[a_{j_1}, f_{j_1}]`` exceeds ``ℓ_{j_1}``, so the policy must commit some
  short job ``j_2`` to a second machine (or miss a deadline); the critical
  time is ``t_0 = a_{j_2}``.

* **Step** ``I_k``: run ``I_{k-1}``, compute
  ``ε' = min(ε, p_{j_1}(t_0), …, p_{j_{k-1}}(t_0))``, and release a copy of
  ``I_{k-1}`` scaled into ``[t_0, t_0 + ε'/2]``.

  - *Case 1* — some critical job of the copy sits on a machine outside the
    ``k−1`` machines of the outer critical jobs: together they give ``k``
    critical jobs.
  - *Case 2* — the copy reuses exactly the same machines: release the
    conflict job ``j*`` at the copy's critical time ``t'_0`` with deadline
    ``t_0 + ε'`` and processing time chosen inside the paper's open
    interval, so ``j*`` fits on no machine hosting an unfinished critical
    copy-job and cannot finish by ``t_0 + ε'/2``; the policy must open a
    ``k``-th machine.

The construction also assembles the paper's **3-machine offline witness
schedule** (Figure 1) recursively, with two machines idle in
``[t_0, t_0 + ε]`` and the third idle from ``t_0`` on, exactly as Lemma 2
part (ii) requires; :func:`offline_witness` returns it as a verifiable
:class:`~repro.model.schedule.Schedule`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ...model.instance import Instance
from ...model.intervals import Numeric, to_fraction
from ...model.job import Job
from ...model.schedule import Schedule, Segment
from ...online.base import Policy
from ...online.engine import OnlineEngine

#: offline witness machine indices (the paper's machines 1, 2, 3)
_M1, _M2, _M3 = 0, 1, 2


class AdversaryOutcome(Exception):
    """Raised when the policy fails outright (misses a deadline)."""

    def __init__(self, message: str, missed: Sequence[int]) -> None:
        super().__init__(message)
        self.missed = tuple(missed)


@dataclass
class ConstructionNode:
    """Trace of one recursion level of the Lemma 2 construction."""

    k: int
    start: Fraction
    horizon: Fraction
    case: str  # 'base' | 'case1' | 'case2'
    jobs: List[Job]  # jobs released *at this level* (not in children)
    critical: List[Job]
    critical_time: Fraction
    idle_eps: Fraction  # the ε of Lemma 2 part (ii)
    main: Optional["ConstructionNode"] = None
    sub: Optional["ConstructionNode"] = None
    conflict_job: Optional[Job] = None
    #: base case only: the diverted short job j_2 and the long job j_1
    base_long: Optional[Job] = None
    base_short: Optional[Job] = None

    def all_jobs(self) -> List[Job]:
        out = list(self.jobs)
        if self.main is not None:
            out.extend(self.main.all_jobs())
        if self.sub is not None:
            out.extend(self.sub.all_jobs())
        return out

    def instance(self) -> Instance:
        return Instance(self.all_jobs())


@dataclass
class AdversaryResult:
    """Outcome of running the adversary to depth ``k``."""

    node: ConstructionNode
    engine: OnlineEngine
    policy_name: str

    @property
    def instance(self) -> Instance:
        return self.node.instance()

    @property
    def n_jobs(self) -> int:
        return len(self.node.all_jobs())

    @property
    def critical_machines(self) -> Tuple[int, ...]:
        return tuple(
            sorted(
                self.engine.committed_machine(j.id)
                for j in self.node.critical
            )
        )

    @property
    def machines_forced(self) -> int:
        return len(set(self.critical_machines))

    def offline_witness(self) -> Schedule:
        return offline_witness(self.node)


class MigrationGapAdversary:
    """Drives Lemma 2's construction against a non-migratory policy."""

    def __init__(
        self,
        policy: Policy,
        machines: int,
        alpha: Numeric = Fraction(3, 4),
        beta: Numeric = Fraction(1, 4),
    ) -> None:
        if policy.migratory:
            raise ValueError("the Lemma 2 adversary targets non-migratory policies")
        self.alpha = to_fraction(alpha)
        self.beta = to_fraction(beta)
        if not (Fraction(1, 2) < self.alpha < 1):
            raise ValueError("alpha must lie in (1/2, 1)")
        if not (0 < self.beta < Fraction(1, 2)):
            raise ValueError("beta must lie in (0, 1/2)")
        # Equation (1): floor((2α−1)/β) · αβ > 1 − α
        usable = int((2 * self.alpha - 1) / self.beta)
        if not usable * self.alpha * self.beta > 1 - self.alpha:
            raise ValueError("(alpha, beta) violate Equation (1) of the paper")
        self.policy = policy
        self.engine = OnlineEngine(policy, machines=machines, on_miss="record")
        self._next_id = 0

    # -- public API -----------------------------------------------------------

    def run(self, k: int) -> AdversaryResult:
        """Run the construction of ``I_k``; k ≥ 2.  Single use per instance."""
        if k < 2:
            raise ValueError("the construction starts at k = 2")
        if self._next_id:
            raise RuntimeError(
                "this adversary already ran; construct a fresh one (the "
                "engine and policy state are consumed by a run)"
            )
        node = self._construct(k, Fraction(0), Fraction(1))
        return AdversaryResult(node=node, engine=self.engine, policy_name=self.policy.name)

    # -- helpers ----------------------------------------------------------------

    def _new_job(self, r: Fraction, p: Fraction, d: Fraction, label: str) -> Job:
        job = Job(r, p, d, id=self._next_id, label=label)
        self._next_id += 1
        return job

    def _release_and_run(self, job: Job) -> None:
        """Release a job and advance the engine to its release time."""
        self.engine.release([job])
        self.engine.run_until(job.release)
        self._assert_alive()

    def _assert_alive(self) -> None:
        if self.engine.missed_jobs:
            raise AdversaryOutcome(
                "policy missed a deadline during the construction "
                "(the adversary wins outright)",
                self.engine.missed_jobs,
            )

    def _machine_of(self, job: Job) -> int:
        """The machine the policy has bound the job to.

        Policies that defer commitment must still bind by the latest start
        time ``a_j = r_j + ℓ_j`` (the paper's argument): the adversary waits
        — advancing the engine in small exact steps — until the commitment
        appears or ``a_j`` passes, in which case the job must miss.
        """
        machine = self.engine.committed_machine(job.id)
        step = job.laxity / 8
        while machine is None and self.engine.time < job.latest_start and step > 0:
            self.engine.run_until(
                min(job.latest_start, self.engine.time + step)
            )
            self._assert_alive()
            self.engine.poll_selection()  # bind at-this-instant starts
            machine = self.engine.committed_machine(job.id)
        if machine is None:
            raise AdversaryOutcome(
                f"policy never committed job {job.id} by its latest start "
                f"{job.latest_start}; it must miss its deadline",
                [job.id],
            )
        return machine

    # -- the construction ----------------------------------------------------------

    def _construct(self, k: int, start: Fraction, horizon: Fraction) -> ConstructionNode:
        if k == 2:
            return self._construct_base(start, horizon)
        return self._construct_step(k, start, horizon)

    def _construct_base(self, start: Fraction, horizon: Fraction) -> ConstructionNode:
        """``I_2`` scaled into ``[start, start + horizon)``."""
        alpha, beta, h = self.alpha, self.beta, horizon
        long_job = self._new_job(start, alpha * h, start + h, "long")
        self._release_and_run(long_job)
        a1 = long_job.latest_start  # start + (1−α)h
        f1 = long_job.earliest_finish  # start + αh
        long_machine = self._machine_of(long_job)

        jobs = [long_job]
        diverted: Optional[Job] = None
        max_shorts = int((f1 - a1) / (beta * h))  # windows fully inside [a1, f1]
        for i in range(max_shorts):
            r = a1 + i * beta * h
            short = self._new_job(r, alpha * beta * h, r + beta * h, "short")
            self._release_and_run(short)
            jobs.append(short)
            if self._machine_of(short) != long_machine:
                diverted = short
                break
        if diverted is None:
            # Equation (1): the policy has overcommitted the long job's
            # machine and must miss a deadline; run it into the ground.
            self.engine.run_until(long_job.deadline)
            self._assert_alive()  # always raises here
            raise AssertionError("Equation (1) violated")  # pragma: no cover

        t0 = diverted.latest_start  # a_{j_2}
        self.engine.run_until(t0)
        self._assert_alive()
        eps = (1 - alpha) * beta * h  # = ℓ of a short job ≤ ℓ_{j_1}
        return ConstructionNode(
            k=2,
            start=start,
            horizon=horizon,
            case="base",
            jobs=jobs,
            critical=[long_job, diverted],
            critical_time=t0,
            idle_eps=eps,
            base_long=long_job,
            base_short=diverted,
        )

    def _construct_step(self, k: int, start: Fraction, horizon: Fraction) -> ConstructionNode:
        main = self._construct(k - 1, start, horizon)
        t0 = main.critical_time
        # ε' = min(ε, p_{j_1}(t_0), …): no critical job can finish inside
        # [t_0, t_0 + ε'] and the offline machines 1–2 stay idle there.
        eps_prime = min(
            [main.idle_eps]
            + [self.engine.remaining(j.id) for j in main.critical]
        )
        assert eps_prime > 0
        sub = self._construct(k - 1, t0, eps_prime / 2)
        t0_sub = sub.critical_time

        main_machines = {self._machine_of(j) for j in main.critical}
        sub_machines = {self._machine_of(j) for j in sub.critical}

        if not sub_machines <= main_machines:
            # Case 1: some copy-critical job occupies a fresh machine.
            fresh = next(
                j for j in sub.critical
                if self._machine_of(j) not in main_machines
            )
            return ConstructionNode(
                k=k,
                start=start,
                horizon=horizon,
                case="case1",
                jobs=[],
                critical=main.critical + [fresh],
                critical_time=t0_sub,
                idle_eps=sub.idle_eps,
                main=main,
                sub=sub,
            )

        # Case 2: the copy reused exactly the same machines; release j*.
        window = t0 + eps_prime - t0_sub
        min_sub_remaining = min(self.engine.remaining(j.id) for j in sub.critical)
        lower = max(window - min_sub_remaining, t0 + eps_prime / 2 - t0_sub)
        upper = window
        assert lower < upper, "the paper's open interval for p_{j*} is empty"
        p_star = (lower + upper) / 2
        conflict = self._new_job(t0_sub, p_star, t0 + eps_prime, "conflict")
        self._release_and_run(conflict)
        new_time = t0 + eps_prime / 2
        self.engine.run_until(new_time)
        self._assert_alive()
        conflict_machine = self._machine_of(conflict)
        if conflict_machine in main_machines:
            # The policy placed j* on a machine that cannot finish both j*
            # and the copy-critical job committed there: a miss is forced.
            self.engine.run_until(t0 + eps_prime)
            self._assert_alive()  # always raises here
            raise AssertionError(
                "conflict job coexisted with a critical job"
            )  # pragma: no cover
        laxity_star = window - p_star
        return ConstructionNode(
            k=k,
            start=start,
            horizon=horizon,
            case="case2",
            jobs=[conflict],
            critical=main.critical + [conflict],
            critical_time=new_time,
            idle_eps=min(laxity_star, eps_prime / 2),
            main=main,
            sub=sub,
            conflict_job=conflict,
        )


# -- the offline witness (Lemma 2 part (ii) / Figure 1) --------------------------


def offline_witness(node: ConstructionNode) -> Schedule:
    """The 3-machine migratory offline schedule constructed in the proof.

    Machines ``0`` and ``1`` are idle within
    ``[critical_time, critical_time + idle_eps]`` and machine ``2`` is
    continuously idle from ``critical_time`` on.
    """
    return Schedule(_witness_segments(node))


def _witness_segments(node: ConstructionNode) -> List[Segment]:
    if node.case == "base":
        return _witness_base(node)
    segments = _witness_segments(node.main) + _witness_segments(node.sub)
    if node.case == "case2":
        conflict = node.conflict_job
        assert conflict is not None and node.main is not None
        t0_sub = conflict.release
        new_time = node.critical_time  # t0 + ε'/2
        head = new_time - t0_sub
        tail = conflict.processing - head
        assert tail > 0  # guaranteed by p_{j*} > t_0 + ε'/2 − t'_0
        # j* runs on machine 3 until the new critical time, then on machine 1
        # as late as possible (this split is the migration shown in Figure 1).
        segments.append(Segment(conflict.id, _M3, t0_sub, new_time))
        segments.append(
            Segment(conflict.id, _M1, conflict.deadline - tail, conflict.deadline)
        )
    return segments


def _witness_base(node: ConstructionNode) -> List[Segment]:
    """Base schedule: j_1 on machine 1, shorts on machine 2, machine 3 idle.

    Both busy machines take their Lemma 2 idle break in
    ``[t_0, t_0 + ε]``; all other processing is greedy from the release.
    """
    t0, eps = node.critical_time, node.idle_eps
    segments: List[Segment] = []
    long_job = node.base_long
    assert long_job is not None
    segments.extend(_run_with_break(long_job, _M1, t0, eps))
    for job in node.jobs:
        if job is not long_job:
            # shorts released before j_2 finish before t_0; j_2 straddles
            # the break and resumes after it (ε ≤ ℓ of a short job)
            segments.extend(_run_with_break(job, _M2, t0, eps))
    return segments


def _run_with_break(
    job: Job, machine: int, break_start: Fraction, break_len: Fraction
) -> List[Segment]:
    """Run ``job`` greedily from release, pausing during the idle break."""
    segments: List[Segment] = []
    remaining = job.processing
    t = job.release
    while remaining > 0:
        if break_start <= t < break_start + break_len:
            t = break_start + break_len
            continue
        end = t + remaining
        if t < break_start < end:
            end = break_start
        segments.append(Segment(job.id, machine, t, end))
        remaining -= end - t
        t = end
    assert segments[-1].end <= job.deadline, "witness schedule violates a deadline"
    return segments
