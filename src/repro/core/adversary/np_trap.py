"""Adaptive adversary against non-preemptive policies (related work [11]).

Saha showed the fully non-preemptive problem admits no ``f(m)``-competitive
algorithm and that ``Θ(log Δ)`` is the right answer.  This module provides
an executable adversary in that spirit: a *nesting trap* exploiting that a
started job cannot be preempted.

Strategy (``k`` levels, ``Δ = 2^k``):

1. release ``J_1`` with ``p = 2^k`` and laxity ``2^k`` (window ``2^{k+1}``);
2. wait until the policy *starts* ``J_1`` at some ``s_1`` — it must, by
   ``a_{J_1}``; the machine is now locked for ``2^k`` time;
3. release ``J_2`` at ``s_1`` with ``p = 2^{k-1}`` and window ``2^k`` —
   its entire window sits inside ``J_1``'s locked run, so the policy needs
   a second machine; recurse on ``J_2``'s start, halving each level.

Every job's window nests inside all previously locked runs, so the policy
ends with ``k+1`` jobs running on ``k+1`` distinct machines.  The exact
non-preemptive offline optimum of the released instance is computed with
the subset-DP solver and is small (≈2–3): the adversary certifies the
``Ω(log Δ)`` gap rather than assuming it.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Tuple

from ...model.instance import Instance
from ...model.job import Job
from ...online.base import Policy
from ...online.engine import OnlineEngine


@dataclass
class NpTrapResult:
    instance: Instance
    engine: OnlineEngine
    levels: int
    starts: List[Fraction]

    @property
    def machines_forced(self) -> int:
        return len(
            {self.engine.state_of(j.id).last_machine for j in self.instance
             if self.engine.state_of(j.id).last_machine is not None}
        )

    @property
    def delta(self) -> int:
        return 2 ** (self.levels - 1)

    @property
    def missed(self) -> bool:
        return bool(self.engine.missed_jobs)


class NonPreemptiveTrapAdversary:
    """Drives the nesting trap against a non-preemptive policy.

    The policy must genuinely be non-preemptive (started jobs run to
    completion on their machine); :class:`~repro.online.edf.NonPreemptiveEDF`
    is the canonical target.
    """

    def __init__(self, policy: Policy, machines: int) -> None:
        self.policy = policy
        self.engine = OnlineEngine(policy, machines=machines, on_miss="record")

    def run(self, levels: int) -> NpTrapResult:
        if levels < 1:
            raise ValueError("need at least one level")
        jobs: List[Job] = []
        starts: List[Fraction] = []
        release = Fraction(0)
        lock_end: Fraction = None  # end of the previous level's locked run
        for level in range(levels):
            p = Fraction(2 ** (levels - 1 - level))
            deadline = release + 2 * p
            if lock_end is not None:
                # keep the window strictly inside the parent's locked run so
                # waiting for that machine can never save the policy
                deadline = min(deadline, lock_end)
            if deadline - release < p:  # pragma: no cover - hop bound keeps this
                break
            job = Job(release, p, deadline, id=level, label=f"L{level}")
            jobs.append(job)
            self.engine.release([job])
            start = self._wait_for_start(job)
            if start is None:
                break  # the policy failed outright; stop releasing
            starts.append(start)
            lock_end = start + p
            # the engine may sit slightly past the observed start; release
            # the next level at the current instant (still inside the run)
            release = max(start, self.engine.time)
        self.engine.run_to_completion()
        return NpTrapResult(
            instance=Instance(jobs),
            engine=self.engine,
            levels=len(jobs),
            starts=starts,
        )

    def _wait_for_start(self, job: Job):
        """Advance until the job starts processing (or its latest start)."""
        state = self.engine.state_of(job.id)
        while state.started_at is None:
            horizon = min(job.latest_start, self.engine.time + job.laxity / 4 + Fraction(1, 8))
            if self.engine.time >= job.latest_start:
                return None  # must miss; adversary wins outright
            self.engine.run_until(horizon)
        return state.started_at
