"""The agreeable lower bound: Lemma 9 / Theorem 15 as an executable adversary.

Theorem 15: no online algorithm (even a migratory one) can schedule all
agreeable instances with identical processing times on fewer than
``(6 − 2√6) · m ≈ 1.10 · m`` machines.  The proof iterates Lemma 9: while
the algorithm is *behind* by ``w`` (unfinished work whose deadlines are
within the next time unit), another round of unit jobs increases the debt
by ``δ > 0``; once the debt exceeds what the machine capacity can clear,
a final batch of zero-laxity jobs forces a miss.

Operationally (one round starting at time ``t``, with ``α = 9/40 ≈ 0.225``
a rational stand-in for the paper's optimizer ``(√6 − 2)/2 ≈ 0.2247``):

* release ``αm`` **type-1** jobs (``p = 1``, ``d = t + 1 + α``) and ``m``
  **type-2** jobs (``p = 1``, ``d = t + 2``);
* at ``t + 1``, inspect the algorithm: if its leftover type-1/type-2 work
  could not coexist with ``(1−α)m`` zero-laxity unit jobs (the paper's
  threat "could be released at ``t+1`` without violating feasibility"),
  release exactly those **tight** jobs and run to ``t + 2`` — a deadline
  miss is forced;
* otherwise advance to ``t' = t + 1 + α`` and start the next round.  The
  offline optimum stays exactly ``m``: per round OPT runs type-1 on ``αm``
  machines during ``[t, t+1]`` and type-2 on the rest, finishing everything
  by ``t'`` (and, in a terminal round, by ``t + 2`` including the tights).

The construction is agreeable with identical processing times throughout,
exactly as Theorem 15 requires, and the resulting instance's migratory
optimum is verified (``verify_opt=True``) against the flow solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import List, Optional, Tuple

from ...model.instance import Instance
from ...model.intervals import Numeric, to_fraction
from ...model.job import Job
from ...online.base import Policy
from ...online.engine import OnlineEngine

#: Rational stand-in for the paper's optimal α = (√6 − 2)/2 ≈ 0.2247.
DEFAULT_ALPHA = Fraction(9, 40)

#: The paper's capacity threshold 6 − 2√6 ≈ 1.1010 (as a float, display only).
THEOREM15_THRESHOLD = 6 - 2 * 6 ** 0.5


@dataclass
class RoundRecord:
    """Diagnostics for one adversary round."""

    index: int
    start: Fraction
    #: unfinished released work at the round start (the paper's ``w``)
    debt_at_start: Fraction
    #: leftover type-1 work at ``t + 1``
    type1_leftover: Fraction
    #: leftover type-2 work at ``t + 1``
    type2_leftover: Fraction
    released_tights: bool


@dataclass
class AgreeableAdversaryResult:
    """Outcome of the Lemma 9 adversary."""

    policy_name: str
    m: int
    machines: int
    alpha: Fraction
    rounds: List[RoundRecord]
    missed: bool
    missed_jobs: Tuple[int, ...]
    instance: Instance

    @property
    def capacity_ratio(self) -> float:
        return self.machines / self.m

    @property
    def rounds_played(self) -> int:
        return len(self.rounds)

    @property
    def debts(self) -> List[Fraction]:
        return [r.debt_at_start for r in self.rounds]


class AgreeableAdversary:
    """Drives the Lemma 9 round structure against an online policy.

    ``m`` must be divisible by ``alpha``'s denominator so every batch size
    is integral (default ``α = 9/40`` → multiples of 40).
    """

    def __init__(
        self,
        policy: Policy,
        m: int,
        machines: int,
        alpha: Numeric = DEFAULT_ALPHA,
    ) -> None:
        self.alpha = to_fraction(alpha)
        if not (0 < self.alpha < Fraction(1, 2)):
            raise ValueError("alpha must lie in (0, 1/2)")
        if (self.alpha * m).denominator != 1:
            raise ValueError(
                f"m = {m} must make α·m integral (α = {self.alpha})"
            )
        self.m = m
        self.machines = machines
        self.policy = policy
        self.engine = OnlineEngine(policy, machines=machines, on_miss="record")
        self._next_id = 0
        self._jobs: List[Job] = []

    # -- helpers --------------------------------------------------------------

    def _batch(self, count: int, release: Fraction, deadline: Fraction, label: str) -> List[Job]:
        jobs = []
        for _ in range(count):
            job = Job(release, 1, deadline, id=self._next_id, label=label)
            self._next_id += 1
            jobs.append(job)
        self._jobs.extend(jobs)
        self.engine.release(jobs)
        return jobs

    def _leftover(self, jobs: List[Job]) -> Fraction:
        return sum(
            (self.engine.remaining(j.id) for j in jobs
             if not self.engine.state_of(j.id).finished),
            Fraction(0),
        )

    def _total_debt(self) -> Fraction:
        """Unfinished released work (the ``w`` of the behind-by definition)."""
        return sum(
            (s.remaining for s in self.engine.jobs.values()
             if s.job.release <= self.engine.time and not s.finished),
            Fraction(0),
        )

    # -- the adversary --------------------------------------------------------

    def run(self, max_rounds: int = 50) -> AgreeableAdversaryResult:
        alpha, m = self.alpha, self.m
        t = Fraction(0)
        rounds: List[RoundRecord] = []
        for index in range(max_rounds):
            debt = self._total_debt()
            type1 = self._batch(int(alpha * m), t, t + 1 + alpha, "type1")
            type2 = self._batch(m, t, t + 2, "type2")
            self.engine.run_until(t + 1)
            if self.engine.missed_jobs:
                rounds.append(RoundRecord(index, t, debt, Fraction(0), Fraction(0), False))
                break
            x1 = self._leftover(type1)
            l2 = self._leftover(type2)
            # The Lemma 9 threat: (1−α)m zero-laxity unit jobs at t+1 leave
            # (machines − (1−α)m) machines for everything else in [t+1, t+2]
            # and only α·(machines − (1−α)m) capacity for type-1 by t+1+α.
            spare = self.machines - (1 - alpha) * m
            kill = x1 + l2 > spare or x1 > alpha * spare
            rounds.append(RoundRecord(index, t, debt, x1, l2, kill))
            if kill:
                self._batch(int((1 - alpha) * m), t + 1, t + 2, "tight")
                self.engine.run_until(t + 2)
                break
            t = t + 1 + alpha
            self.engine.run_until(t)
            if self.engine.missed_jobs:
                break
        self.engine.run_to_completion()
        return AgreeableAdversaryResult(
            policy_name=self.policy.name,
            m=self.m,
            machines=self.machines,
            alpha=self.alpha,
            rounds=rounds,
            missed=bool(self.engine.missed_jobs),
            missed_jobs=tuple(self.engine.missed_jobs),
            instance=Instance(self._jobs),
        )


def capacity_sweep(
    policy_factory,
    m: int,
    ratios,
    alpha: Numeric = DEFAULT_ALPHA,
    max_rounds: int = 50,
) -> List[AgreeableAdversaryResult]:
    """Run the adversary at each capacity ratio; returns one result each.

    ``ratios`` are machine-count multipliers (e.g. ``[1.0, 1.05, 1.2]``);
    the machine count is ``floor(ratio · m)``.
    """
    results = []
    for ratio in ratios:
        machines = int(to_fraction(ratio) * m)
        adversary = AgreeableAdversary(
            policy_factory(), m=m, machines=machines, alpha=alpha
        )
        results.append(adversary.run(max_rounds=max_rounds))
    return results
