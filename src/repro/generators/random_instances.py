"""Seeded random instance generators (integer grid).

All generators emit jobs whose data are integers (exact :class:`Fraction`
values with denominator 1) so that the exact-arithmetic fast path stays
cheap, and take an explicit ``seed`` so every experiment is reproducible.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import List, Optional

from ..model.instance import Instance
from ..model.job import Job


def uniform_random_instance(
    n: int,
    horizon: int = 100,
    max_processing: int = 10,
    min_processing: int = 1,
    max_slack: int = 10,
    seed: int = 0,
) -> Instance:
    """``n`` jobs with uniform releases, processing times, and window slack.

    ``release ~ U[0, horizon]``, ``p ~ U[min_processing, max_processing]``,
    ``deadline = release + p + U[0, max_slack]``.
    """
    rng = random.Random(seed)
    jobs: List[Job] = []
    for i in range(n):
        release = rng.randint(0, horizon)
        processing = rng.randint(min_processing, max_processing)
        slack = rng.randint(0, max_slack)
        jobs.append(Job(release, processing, release + processing + slack, id=i))
    return Instance(jobs)


def bursty_instance(
    bursts: int,
    jobs_per_burst: int,
    burst_gap: int = 20,
    max_processing: int = 8,
    max_slack: int = 12,
    seed: int = 0,
) -> Instance:
    """Jobs arriving in synchronized bursts (the hard regime for packing)."""
    rng = random.Random(seed)
    jobs: List[Job] = []
    job_id = 0
    for b in range(bursts):
        release = b * burst_gap
        for _ in range(jobs_per_burst):
            processing = rng.randint(1, max_processing)
            slack = rng.randint(0, max_slack)
            jobs.append(
                Job(release, processing, release + processing + slack, id=job_id)
            )
            job_id += 1
    return Instance(jobs)


def unit_jobs_instance(
    n: int, horizon: int = 50, window: int = 3, seed: int = 0
) -> Instance:
    """Unit processing times with fixed window length (Saha's easy case)."""
    rng = random.Random(seed)
    jobs = []
    for i in range(n):
        release = rng.randint(0, horizon)
        jobs.append(Job(release, 1, release + window, id=i))
    return Instance(jobs)
