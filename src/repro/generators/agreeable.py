"""Generators for agreeable instances (Section 6).

An instance is agreeable when ``r_j < r_{j'}`` implies ``d_j ≤ d_{j'}``:
release order and deadline order coincide.  The generators enforce this by
construction (deadlines are made monotone over release-sorted jobs).
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import List

from ..model.instance import Instance
from ..model.intervals import Numeric, to_fraction
from ..model.job import Job


def agreeable_instance(
    n: int,
    horizon: int = 100,
    max_processing: int = 8,
    max_slack: int = 15,
    seed: int = 0,
) -> Instance:
    """Random agreeable instance: deadlines forced monotone in releases."""
    rng = random.Random(seed)
    releases = sorted(rng.randint(0, horizon) for _ in range(n))
    jobs: List[Job] = []
    prev_deadline = 0
    for i, release in enumerate(releases):
        processing = rng.randint(1, max_processing)
        slack = rng.randint(0, max_slack)
        deadline = max(release + processing + slack, prev_deadline)
        # keep deadlines weakly increasing so the instance stays agreeable
        prev_deadline = deadline
        jobs.append(Job(release, processing, deadline, id=i))
    return Instance(jobs)


def agreeable_tight_instance(
    n: int,
    alpha: Numeric,
    horizon: int = 100,
    max_processing: int = 12,
    seed: int = 0,
) -> Instance:
    """Agreeable instance of α-tight jobs (the MediumFit regime, Lemma 8).

    Windows are at most ``p/α`` so every job is α-tight; deadline
    monotonicity is enforced by shifting release times when needed.
    """
    alpha = to_fraction(alpha)
    rng = random.Random(seed)
    jobs: List[Job] = []
    prev_release = 0
    prev_deadline = 0
    # Releases and deadlines are both made monotone in index, which implies
    # agreeability for every pair.  Tightness is enforced by shifting the
    # release *up* towards the deadline, which preserves both monotonicities.
    step = max(1, horizon // max(n, 1))
    for i in range(n):
        processing = rng.randint(2, max_processing)
        # the largest integer window that is still α-tight for this p
        w_max = int(processing / alpha)
        while to_fraction(w_max) * alpha >= processing:
            w_max -= 1
        w_max = max(w_max, processing)
        window = rng.randint(processing, w_max)
        release = prev_release + rng.randint(0, 2 * step)
        deadline = max(release + window, prev_deadline)
        release = max(release, deadline - window)  # shrink window if clamped
        jobs.append(Job(release, processing, deadline, id=i))
        prev_release = release
        prev_deadline = deadline
    return Instance(jobs)


def identical_jobs_batches(
    batches: int,
    per_batch: int,
    period: int = 3,
    window: int = 4,
    seed: int = 0,
) -> Instance:
    """Identical unit-speed batches (Theorem 15's regime: equal ``p_j``).

    ``per_batch`` unit jobs released every ``period`` with window
    ``window`` — agreeable by construction.
    """
    jobs: List[Job] = []
    job_id = 0
    for b in range(batches):
        release = b * period
        for _ in range(per_batch):
            jobs.append(Job(release, 1, release + window, id=job_id))
            job_id += 1
    return Instance(jobs)
