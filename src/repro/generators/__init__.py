"""Seeded workload generators for every instance class in the paper."""

from .arrival_patterns import (
    diurnal_instance,
    heavy_tailed_instance,
    poisson_instance,
)
from .agreeable import (
    agreeable_instance,
    agreeable_tight_instance,
    identical_jobs_batches,
)
from .laminar import laminar_chain, laminar_instance, laminar_random
from .random_instances import bursty_instance, uniform_random_instance, unit_jobs_instance
from .separation import delta_sweep, edf_trap_instance
from .tight_loose import loose_instance, mixed_instance, tight_instance

__all__ = [
    "diurnal_instance",
    "heavy_tailed_instance",
    "poisson_instance",
    "agreeable_instance",
    "agreeable_tight_instance",
    "identical_jobs_batches",
    "laminar_chain",
    "laminar_instance",
    "laminar_random",
    "bursty_instance",
    "uniform_random_instance",
    "unit_jobs_instance",
    "delta_sweep",
    "edf_trap_instance",
    "loose_instance",
    "mixed_instance",
    "tight_instance",
]
