"""The EDF-vs-LLF separation family (related work, Section 1).

Phillips et al. proved LLF is ``O(log Δ)``-competitive for machine
minimization while EDF has an ``Ω(Δ)`` lower bound (``Δ`` = max/min
processing-time ratio).  :func:`edf_trap_instance` realizes the separation:

* one **anchor** job per group: ``p = Δ``, window ``[0, Δ)`` — zero laxity,
  so it must run continuously from time 0;
* ``Δ − 1`` **bait** jobs per group: ``p = 1``, window ``[0, Δ − 1)`` —
  *earlier* deadline but huge laxity.

EDF prefers the baits (earlier deadline) and starves the anchor, which any
delay kills; it needs ``Δ`` machines per group.  LLF runs the anchor first
(zero laxity) and drains the baits on one extra machine: 2 machines per
group, which equals the optimum.  Experiment E-BL sweeps ``Δ``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List

from ..model.instance import Instance
from ..model.job import Job


def edf_trap_instance(delta: int, groups: int = 1) -> Instance:
    """``groups`` concurrent trap groups with processing-time ratio ``Δ``.

    All groups are released at time 0, so the optimum is ``2 · groups``
    (anchor machine + bait machine per group) while EDF needs about
    ``Δ · groups`` machines — the ``Ω(Δ)`` separation.
    """
    if delta < 3:
        raise ValueError("delta must be at least 3")
    jobs: List[Job] = []
    job_id = 0
    for g in range(groups):
        # all groups share time 0: OPT = 2·groups, EDF ≈ Δ·groups
        anchor = Job(0, delta, delta, id=job_id, label=f"anchor{g}")
        job_id += 1
        jobs.append(anchor)
        for _ in range(delta - 1):
            jobs.append(Job(0, 1, delta - 1, id=job_id, label=f"bait{g}"))
            job_id += 1
    return Instance(jobs)


def delta_sweep(deltas, groups: int = 1) -> List[Instance]:
    """One trap instance per ``Δ`` value."""
    return [edf_trap_instance(d, groups) for d in deltas]
