"""Generators for laminar instances (Section 5).

Laminar = any two intersecting windows are nested.  The generator builds an
explicit laminar *tree* of windows — the root spans the horizon, children
partition (a portion of) their parent — and places one or more jobs in each
node, so laminarity holds by construction and the nesting depth is a
controllable parameter (the chain length the budget scheme must handle).
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import List, Optional, Tuple

from ..model.instance import Instance
from ..model.intervals import Numeric, to_fraction
from ..model.job import Job


def laminar_instance(
    depth: int,
    fanout: int = 2,
    jobs_per_node: int = 1,
    density: Numeric = Fraction(3, 4),
    horizon: Optional[int] = None,
    seed: int = 0,
) -> Instance:
    """A full laminar tree of windows with ``jobs_per_node`` jobs per node.

    * ``depth`` — nesting levels (the root is level 0),
    * ``fanout`` — children per node; each child receives an equal slice of
      an inner portion of the parent window,
    * ``density`` — every job's ``p/(d−r)``; densities above 1/2 make the
      jobs α-tight for α = 1/2, exercising the budget scheme.

    The horizon defaults to ``fanout**depth * 4`` so leaf windows stay on a
    reasonably coarse rational grid.
    """
    density = to_fraction(density)
    if not (0 < density < 1):
        raise ValueError("density must lie in (0, 1)")
    rng = random.Random(seed)
    if horizon is None:
        horizon = 4 * fanout**depth
    jobs: List[Job] = []
    counter = [0]

    def emit(lo: Fraction, hi: Fraction) -> None:
        width = hi - lo
        for _ in range(jobs_per_node):
            jobs.append(
                Job(lo, width * density, hi, id=counter[0], label="laminar")
            )
            counter[0] += 1

    def build(lo: Fraction, hi: Fraction, level: int) -> None:
        emit(lo, hi)
        if level >= depth:
            return
        # children partition the middle (1 − margin) of the parent window
        width = hi - lo
        margin = width / (4 * fanout)
        inner_lo, inner_hi = lo + margin, hi - margin
        slice_width = (inner_hi - inner_lo) / fanout
        for c in range(fanout):
            build(inner_lo + c * slice_width, inner_lo + (c + 1) * slice_width, level + 1)

    build(Fraction(0), Fraction(horizon), 0)
    return Instance(jobs)


def laminar_chain(
    length: int,
    density: Numeric = Fraction(2, 3),
    horizon: int = 1024,
) -> Instance:
    """A single chain of ``length`` strictly nested windows (worst depth)."""
    density = to_fraction(density)
    jobs: List[Job] = []
    lo, hi = Fraction(0), Fraction(horizon)
    for i in range(length):
        jobs.append(Job(lo, (hi - lo) * density, hi, id=i))
        width = hi - lo
        lo, hi = lo + width / 4, hi - width / 4
    return Instance(jobs)


def laminar_random(
    n: int,
    horizon: int = 256,
    density_range: Tuple[float, float] = (0.3, 0.9),
    seed: int = 0,
) -> Instance:
    """Random laminar instance via recursive random splitting.

    Starting from the full horizon, intervals are recursively split into two
    nested halves with probability 1/2; each produced interval yields one
    job with a random density.
    """
    import heapq

    rng = random.Random(seed)
    jobs: List[Job] = []
    # widest-interval-first subdivision: every emitted interval is split into
    # two nested, disjoint children, so the window family is laminar
    heap: List[Tuple[Fraction, int, Fraction, Fraction]] = []
    heapq.heappush(heap, (-Fraction(horizon), 0, Fraction(0), Fraction(horizon)))
    tie = 1
    while len(jobs) < n and heap:
        _, _, lo, hi = heapq.heappop(heap)
        density = Fraction(
            rng.randint(int(density_range[0] * 100), int(density_range[1] * 100)),
            100,
        )
        jobs.append(Job(lo, (hi - lo) * density, hi, id=len(jobs)))
        width = hi - lo
        mid = lo + width * Fraction(rng.randint(30, 70), 100)
        gap = width / 16
        for child_lo, child_hi in ((lo + gap, mid - gap), (mid + gap, hi - gap)):
            if child_hi > child_lo:
                heapq.heappush(
                    heap, (-(child_hi - child_lo), tie, child_lo, child_hi)
                )
                tie += 1
    return Instance(jobs)
