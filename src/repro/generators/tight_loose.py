"""Generators for α-loose and α-tight instances (Section 4 / Lemma 8).

A job is α-loose when ``p_j ≤ α (d_j − r_j)`` and α-tight otherwise.  The
generators here control the density ``p_j / (d_j − r_j)`` exactly using a
rational grid so classification is never borderline-ambiguous.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import List

from ..model.instance import Instance
from ..model.intervals import Numeric, to_fraction
from ..model.job import Job


def loose_instance(
    n: int,
    alpha: Numeric,
    horizon: int = 100,
    max_processing: int = 10,
    seed: int = 0,
) -> Instance:
    """``n`` jobs, each exactly α'-loose for some random ``α' ≤ α``.

    Window length is ``ceil(p/α')`` with ``α'`` drawn from
    ``{α/4, α/2, 3α/4, α}``, guaranteeing ``p ≤ α·window`` for every job.
    """
    alpha = to_fraction(alpha)
    if not (0 < alpha < 1):
        raise ValueError("alpha must lie in (0, 1)")
    rng = random.Random(seed)
    jobs: List[Job] = []
    fractions = [alpha * Fraction(k, 4) for k in (1, 2, 3, 4)]
    for i in range(n):
        release = rng.randint(0, horizon)
        processing = rng.randint(1, max_processing)
        density = rng.choice(fractions)
        window = processing / density
        # round the window *up* to the integer grid: only ever looser
        window_int = -(-window.numerator // window.denominator)
        jobs.append(Job(release, processing, release + window_int, id=i))
    return Instance(jobs)


def tight_instance(
    n: int,
    alpha: Numeric,
    horizon: int = 100,
    max_processing: int = 12,
    seed: int = 0,
) -> Instance:
    """``n`` α-tight jobs: density drawn strictly above ``α``.

    The window is ``floor(p/density)`` for a density in ``(α, 1]``, then
    clamped so that ``p ≤ window`` still holds (density 1 = zero laxity).
    """
    alpha = to_fraction(alpha)
    if not (0 < alpha < 1):
        raise ValueError("alpha must lie in (0, 1)")
    rng = random.Random(seed)
    jobs: List[Job] = []
    for i in range(n):
        release = rng.randint(0, horizon)
        processing = rng.randint(2, max_processing)
        # density in (alpha, 1]: windows in [p, p/alpha)
        max_window = (processing / alpha).numerator // (processing / alpha).denominator
        if to_fraction(max_window) * alpha >= processing:
            max_window -= 1
        window = rng.randint(processing, max(processing, max_window))
        job = Job(release, processing, release + window, id=i)
        if job.is_loose(alpha):  # grid rounding pushed it over; tighten
            job = Job(release, processing, release + processing, id=i)
        jobs.append(job)
    return Instance(jobs)


def mixed_instance(
    n: int,
    alpha: Numeric,
    loose_fraction: float = 0.5,
    horizon: int = 100,
    seed: int = 0,
) -> Instance:
    """A mix of α-loose and α-tight jobs (for the split-based algorithms)."""
    n_loose = int(n * loose_fraction)
    loose = loose_instance(n_loose, alpha, horizon=horizon, seed=seed)
    tight = tight_instance(n - n_loose, alpha, horizon=horizon, seed=seed + 1)
    jobs = list(loose) + [j.with_id(j.id + n_loose) for j in tight]
    return Instance(jobs)
