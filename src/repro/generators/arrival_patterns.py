"""Stochastic arrival-pattern generators (Poisson, heavy-tailed, diurnal).

These model the workload shapes a deployed scheduler actually sees and are
used by the throughput benchmarks and the capacity-planning example.  All
randomness is discretized to exact rationals on a fixed grid so instances
stay bit-reproducible and exact-arithmetic friendly.
"""

from __future__ import annotations

import math
import random
from fractions import Fraction
from typing import List

from ..model.instance import Instance
from ..model.job import Job


def poisson_instance(
    n: int,
    rate: float = 1.0,
    mean_processing: int = 3,
    slack_factor: int = 4,
    seed: int = 0,
) -> Instance:
    """Poisson arrivals (exponential gaps), geometric processing times.

    Gaps are drawn as ``round(Exp(rate)·8)/8``; slack is proportional to the
    processing time (``slack_factor·p`` window), so densities stay bounded.
    """
    rng = random.Random(seed)
    grid = 8
    jobs: List[Job] = []
    t = Fraction(0)
    for i in range(n):
        gap = rng.expovariate(rate)
        t += Fraction(max(0, round(gap * grid)), grid)
        p = 1 + _geometric(rng, mean_processing)
        jobs.append(Job(t, p, t + p * (1 + slack_factor), id=i))
    return Instance(jobs)


def heavy_tailed_instance(
    n: int,
    alpha_tail: float = 1.5,
    max_processing: int = 200,
    horizon: int = 400,
    slack: int = 30,
    seed: int = 0,
) -> Instance:
    """Pareto-like processing times (discretized), uniform releases.

    ``P(p ≥ x) ≈ x^{−alpha_tail}`` truncated at ``max_processing`` — the
    elephant-and-mice mix that separates deadline- from laxity-driven
    policies (large Δ).
    """
    rng = random.Random(seed)
    jobs: List[Job] = []
    for i in range(n):
        u = rng.random()
        p = min(max_processing, max(1, int(u ** (-1.0 / alpha_tail))))
        release = rng.randint(0, horizon)
        jobs.append(Job(release, p, release + p + rng.randint(1, slack), id=i))
    return Instance(jobs)


def diurnal_instance(
    n: int,
    period: int = 100,
    peak_share: float = 0.8,
    max_processing: int = 6,
    max_slack: int = 10,
    seed: int = 0,
) -> Instance:
    """Day/night load: ``peak_share`` of the jobs land in the first half of
    each period (the 'day'), the rest spread over the 'night'."""
    rng = random.Random(seed)
    jobs: List[Job] = []
    for i in range(n):
        cycle = rng.randint(0, 3)
        if rng.random() < peak_share:
            release = cycle * period + rng.randint(0, period // 2 - 1)
        else:
            release = cycle * period + rng.randint(period // 2, period - 1)
        p = rng.randint(1, max_processing)
        jobs.append(Job(release, p, release + p + rng.randint(0, max_slack), id=i))
    return Instance(jobs)


def _geometric(rng: random.Random, mean: int) -> int:
    """Geometric with the given mean (≥ 0)."""
    if mean <= 0:
        return 0
    p = 1.0 / (mean + 1)
    count = 0
    while rng.random() > p and count < 50 * mean:
        count += 1
    return count
