"""Differential verification harness: dinic vs networkx vs LP.

Three independent implementations answer the same feasibility question:

* the flat-array Dinic solver (the hot path),
* the generic networkx max-flow formulation,
* the float-based HiGHS LP relaxation (advisory).

This module runs them side by side on the same ``(instance, m, speed)``
probes and *arbitrates with certificates*: the exact backends must agree
verdict-for-verdict and each verdict must come with a certificate that
passes the solver-independent checkers.  The LP is float-based, so a lone
LP disagreement is recorded (``lp_disagreements``) but does not fail the
run when the exact consensus is backed by a valid certificate — the
certificate, not the majority, is the ground truth.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..model.instance import Instance
from ..model.intervals import Numeric, to_fraction
from ..obs import core as _obs
from ..offline.flow import available_backends, migratory_feasible
from ..offline.optimum import migratory_optimum
from .certify import certify, unsat_certificate
from .checkers import check_certificate


@dataclass(frozen=True)
class DifferentialRecord:
    """One cross-checked probe ``(m, speed)`` on one instance."""

    m: int
    speed: Fraction
    verdicts: Tuple[Tuple[str, bool], ...]  # backend → feasible
    lp_verdict: Optional[bool]  # None: LP skipped or solver failure
    failures: Tuple[str, ...]  # exact-backend disagreements / bad certificates
    lp_disagreement: bool
    #: backend → seconds spent on this probe (verdict + certificate + check;
    #: the LP leg appears as "lp"), so disagreement cost is attributable.
    timings: Tuple[Tuple[str, float], ...] = field(default=(), compare=False)

    @property
    def ok(self) -> bool:
        return not self.failures


@dataclass(frozen=True)
class DifferentialReport:
    """Aggregated outcome of a differential sweep."""

    records: Tuple[DifferentialRecord, ...]

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.records)

    @property
    def failures(self) -> List[str]:
        return [f for r in self.records for f in r.failures]

    @property
    def lp_disagreements(self) -> int:
        return sum(1 for r in self.records if r.lp_disagreement)

    @property
    def backend_seconds(self) -> Dict[str, float]:
        """Total wall time attributed to each backend across all probes."""
        totals: Dict[str, float] = {}
        for r in self.records:
            for backend, sec in r.timings:
                totals[backend] = totals.get(backend, 0.0) + sec
        return totals

    def summary(self) -> str:
        status = "OK" if self.ok else f"FAILED ({len(self.failures)} failures)"
        lp = (
            f", {self.lp_disagreements} advisory LP disagreement(s)"
            if self.lp_disagreements
            else ""
        )
        seconds = self.backend_seconds
        timing = (
            " ["
            + ", ".join(f"{b} {s:.3f}s" for b, s in sorted(seconds.items()))
            + "]"
            if seconds
            else ""
        )
        return f"differential: {len(self.records)} probes {status}{lp}{timing}"


def _lp_verdict(
    instance: Instance,
    m: int,
    speed: Fraction,
    deadline: Optional[float] = None,
) -> Tuple[Optional[bool], bool]:
    """The advisory LP's ``(verdict, timed_out)`` for one probe.

    ``deadline`` bounds the solve with :func:`repro.runner.faults.time_limit`
    (nested safely inside any enclosing per-item deadline); a timeout yields
    ``(None, True)``.  Solver hiccups and a missing scipy yield
    ``(None, False)`` — the advisory leg never fails the run.
    """
    try:
        from ..offline.lp import lp_feasible
    except ImportError:  # scipy unavailable: LP leg is advisory anyway
        return None, False
    if deadline is not None:
        from ..runner.faults import ItemTimeout, time_limit

        try:
            with time_limit(deadline, label=f"lp probe m={m}"):
                return lp_feasible(instance, m, speed), False
        except ItemTimeout:
            return None, True
        except Exception:
            return None, False
    try:
        return lp_feasible(instance, m, speed), False
    except Exception:  # solver hiccup — advisory leg never fails the run
        return None, False


def differential_check(
    instance: Instance,
    m: int,
    speed: Numeric = 1,
    backends: Optional[Sequence[str]] = None,
    use_lp: bool = True,
    lp_deadline: Optional[float] = None,
) -> DifferentialRecord:
    """Cross-check one probe: verdicts, certificates, and the LP advisory.

    ``lp_deadline`` (seconds) bounds the float LP leg: a pathological LP
    records a ``("timeout", elapsed)`` leg in ``timings`` (plus a
    ``differential.lp_timeouts`` counter) instead of stalling the probe —
    the exact backends are never deadline-bounded here, their budget is the
    sweep's per-item deadline.

    ``backends`` defaults to :func:`~repro.offline.flow.available_backends`
    — every exact backend this process can actually run (``dinic_c`` drops
    out on compiler-less hosts instead of failing the harness).
    """
    if backends is None:
        backends = available_backends()
    speed = to_fraction(speed)
    failures: List[str] = []
    verdicts: Dict[str, bool] = {}
    timings: List[Tuple[str, float]] = []
    _obs.incr("differential.probes")
    for backend in backends:
        t0 = time.perf_counter()
        with _obs.span("differential.backend", backend=backend, m=m):
            verdict = migratory_feasible(instance, m, speed, backend=backend)
            verdicts[backend] = verdict
            cert = certify(instance, m, speed, backend=backend, check=False)
            if (cert.kind == "feasible") != verdict:
                failures.append(
                    f"{backend}: verdict {verdict} but certificate kind {cert.kind}"
                )
            result = check_certificate(instance, cert)
            if not result.ok:
                failures.append(
                    f"{backend}: invalid {cert.kind} certificate at m={m}: "
                    + "; ".join(result.reasons[:3])
                )
        timings.append((backend, time.perf_counter() - t0))
    if len(set(verdicts.values())) > 1:
        failures.append(f"exact backends disagree at m={m}: {verdicts}")
        _obs.incr("differential.disagreements")
    lp = None
    if use_lp:
        t0 = time.perf_counter()
        with _obs.span("differential.backend", backend="lp", m=m):
            lp, lp_timed_out = _lp_verdict(instance, m, speed, lp_deadline)
        elapsed = time.perf_counter() - t0
        if lp_timed_out:
            timings.append(("timeout", elapsed))
            _obs.incr("differential.lp_timeouts")
        else:
            timings.append(("lp", elapsed))
    lp_disagrees = lp is not None and bool(verdicts) and lp != next(iter(verdicts.values()))
    if lp_disagrees:
        _obs.incr("differential.lp_disagreements")
    return DifferentialRecord(
        m=m,
        speed=speed,
        verdicts=tuple(sorted(verdicts.items())),
        lp_verdict=lp,
        failures=tuple(failures),
        lp_disagreement=lp_disagrees,
        timings=tuple(timings),
    )


def differential_optimum(
    instance: Instance,
    speed: Numeric = 1,
    backends: Optional[Sequence[str]] = None,
    use_lp: bool = True,
    lp_deadline: Optional[float] = None,
) -> DifferentialReport:
    """Cross-check the certified optimum: probes at OPT and OPT − 1.

    Every backend must compute the same optimum; unsatisfiable instances
    (``speed < 1``) must carry a valid degenerate witness instead.
    """
    if backends is None:
        backends = available_backends()
    speed = to_fraction(speed)
    unsat = unsat_certificate(instance, speed)
    if unsat is not None:
        failures: List[str] = []
        result = check_certificate(instance, unsat)
        if not result.ok:
            failures.append("invalid unsat witness: " + "; ".join(result.reasons[:3]))
        record = DifferentialRecord(
            m=-1,
            speed=speed,
            verdicts=tuple((b, False) for b in backends),
            lp_verdict=None,
            failures=tuple(failures),
            lp_disagreement=False,
        )
        return DifferentialReport((record,))
    optima = {b: migratory_optimum(instance, speed, backend=b) for b in backends}
    records: List[DifferentialRecord] = []
    if len(set(optima.values())) > 1:
        records.append(
            DifferentialRecord(
                m=-1,
                speed=speed,
                verdicts=(),
                lp_verdict=None,
                failures=(f"backends disagree on the optimum: {optima}",),
                lp_disagreement=False,
            )
        )
    m = max(optima.values())
    records.append(
        differential_check(instance, m, speed, backends, use_lp, lp_deadline)
    )
    if m > 0:
        records.append(
            differential_check(instance, m - 1, speed, backends, use_lp, lp_deadline)
        )
    return DifferentialReport(tuple(records))


def differential_sweep(
    instances: Iterable[Instance],
    speeds: Sequence[Numeric] = (1,),
    backends: Optional[Sequence[str]] = None,
    use_lp: bool = True,
    lp_deadline: Optional[float] = None,
    n_jobs: int = 1,
    chunksize: int = 1,
) -> DifferentialReport:
    """Run :func:`differential_optimum` over a corpus of instances/speeds.

    With ``n_jobs != 1`` the probes fan out through :mod:`repro.runner`
    (one work item per instance × speed); the record order and contents are
    bit-identical to the serial path for every worker count.  The backend
    set is resolved *here* (to the available backends by default) so every
    worker cross-checks the same set regardless of its own environment.
    """
    if backends is None:
        backends = available_backends()
    if n_jobs != 1:
        from ..runner import SweepPlan, run_sweep

        plan = SweepPlan.build(
            (
                "differential_optimum",
                instance,
                {
                    "speed": str(to_fraction(speed)),
                    "use_lp": use_lp,
                    "backends": tuple(backends),
                    **(
                        {"lp_deadline": lp_deadline}
                        if lp_deadline is not None
                        else {}
                    ),
                },
            )
            for instance in instances
            for speed in speeds
        )
        sweep = run_sweep(plan, n_jobs=n_jobs, chunksize=chunksize)
        failed = sweep.errors + sweep.failed + sweep.crashes + sweep.cancelled
        if failed:
            raise RuntimeError(
                f"differential sweep failed on item {failed[0].index}: "
                f"{failed[0].error}"
            )
        return DifferentialReport(
            tuple(record for records in sweep.values() for record in records)
        )
    records: List[DifferentialRecord] = []
    for instance in instances:
        for speed in speeds:
            report = differential_optimum(
                instance, speed, backends, use_lp, lp_deadline
            )
            records.extend(report.records)
    return DifferentialReport(tuple(records))
