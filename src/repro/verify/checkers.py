"""Solver-independent certificate checkers (exact ``Fraction`` arithmetic).

These functions are the trust anchor of the verification layer: they touch
*only* the model layer — interval unions, job data, and the schedule
checker — so a bug in the flow solvers cannot leak into the verdict they
confirm.  A certificate either passes here or the verdict it claims is
unsubstantiated.
"""

from __future__ import annotations

from typing import List, Tuple

from ..model.instance import Instance
from .certificates import (
    Certificate,
    FeasibleCertificate,
    InfeasibleCertificate,
)


class CertificationError(AssertionError):
    """A certificate failed its independent check."""


class CheckResult:
    """Outcome of checking one certificate against an instance."""

    __slots__ = ("ok", "reasons")

    def __init__(self, ok: bool, reasons: Tuple[str, ...] = ()) -> None:
        self.ok = ok
        self.reasons = reasons

    def __bool__(self) -> bool:
        return self.ok

    def require(self) -> "CheckResult":
        if not self.ok:
            raise CertificationError(
                "certificate check failed: " + "; ".join(self.reasons[:5])
            )
        return self

    def __repr__(self) -> str:
        status = "ok" if self.ok else "FAILED"
        tail = f" ({'; '.join(self.reasons[:3])})" if self.reasons else ""
        return f"CheckResult({status}{tail})"


def check_feasible_certificate(
    instance: Instance, cert: FeasibleCertificate
) -> CheckResult:
    """Re-verify the witness schedule exactly, bounded to ``cert.machines``."""
    reasons: List[str] = []
    if cert.machines < 0:
        reasons.append(f"negative machine count {cert.machines}")
    if cert.speed <= 0:
        reasons.append(f"non-positive speed {cert.speed}")
    if not reasons:
        report = cert.schedule.verify(instance, cert.speed, machines=cert.machines)
        reasons.extend(report.violations)
    return CheckResult(not reasons, tuple(reasons))


def check_infeasible_certificate(
    instance: Instance, cert: InfeasibleCertificate
) -> CheckResult:
    """Check the overloaded interval set ``(S, I)`` by direct arithmetic.

    Valid iff ``C_s(S, I) > m · s · |I|`` — with ``|I| = 0`` this degenerates
    to ``C_s(S, ∅) > 0``, which refutes every machine count at once.
    """
    reasons: List[str] = []
    if cert.machines < 0:
        reasons.append(f"negative machine count {cert.machines}")
    if cert.speed <= 0:
        reasons.append(f"non-positive speed {cert.speed}")
    unknown = [j for j in set(cert.jobs) if j not in instance]
    if unknown:
        reasons.append(f"witness references unknown jobs {sorted(unknown)}")
    if reasons:
        return CheckResult(False, tuple(reasons))
    contribution = cert.contribution(instance)
    capacity = cert.capacity
    if contribution <= capacity:
        reasons.append(
            f"C(S,I) = {contribution} does not exceed machine capacity "
            f"{capacity} = {cert.machines}·{cert.speed}·{cert.region.length}"
        )
    return CheckResult(not reasons, tuple(reasons))


def check_certificate(instance: Instance, cert: Certificate) -> CheckResult:
    """Dispatch on the certificate kind."""
    if isinstance(cert, FeasibleCertificate):
        return check_feasible_certificate(instance, cert)
    if isinstance(cert, InfeasibleCertificate):
        return check_infeasible_certificate(instance, cert)
    raise TypeError(f"not a certificate: {type(cert).__name__}")
