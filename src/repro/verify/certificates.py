"""Certificate types for feasibility verdicts.

Theorem 1 characterizes the migratory optimum as

    m  =  max_I  ceil( C(S, I) / |I| ),

a maximum over finite unions of intervals ``I``, which gives every verdict
of the feasibility core a short, independently checkable witness:

* **feasible at m** — an explicit :class:`~repro.model.schedule.Schedule`
  that :meth:`~repro.model.schedule.Schedule.verify` accepts with exact
  :class:`~fractions.Fraction` arithmetic on at most ``m`` machines;
* **infeasible at m** — an *overloaded interval set* ``(S, I)``: a job set
  ``S`` and an interval union ``I`` whose mandatory workload exceeds the
  machine capacity,

      C_s(S, I)  =  Σ_{j ∈ S} max(0, p_j − s·(|I(j)| − |I(j) ∩ I|))
                 >  m · s · |I|,

  the speed-``s`` generalization of the paper's ``C(S, I) > m·|I|`` (at
  ``s = 1`` the summand reduces to ``max(0, |I ∩ I(j)| − ℓ_j)``).  The
  degenerate witness ``|I| = 0`` with ``C_s(S, I) > 0`` certifies
  infeasibility at *every* machine count (a job that cannot finish even
  running alone throughout its window — only possible for ``s < 1``).

Both checks use only model-layer arithmetic — no reference to the solver
that produced the certificate (see :mod:`repro.verify.checkers`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from math import ceil
from typing import Any, Dict, Optional, Tuple, Union

from ..model.instance import Instance
from ..model.intervals import IntervalUnion, to_fraction
from ..model.io import schedule_from_dict, schedule_to_dict
from ..model.job import Job
from ..model.schedule import Schedule
from ..offline.feascache import CacheStats


def mandatory_work(job: Job, region: IntervalUnion, speed: Fraction) -> Fraction:
    """``C_s(j, I)`` — work ``j`` must receive inside ``I`` at speed ``s``.

    Outside ``I`` (but inside its own window) the job can absorb at most
    ``s · (|I(j)| − |I(j) ∩ I|)`` work, so the rest is forced into ``I``.
    Pure interval arithmetic — the infeasibility checker's only primitive.
    """
    outside = job.window - region.intersect_interval(job.interval).length
    return max(Fraction(0), job.processing - speed * outside)


@dataclass(frozen=True)
class FeasibleCertificate:
    """Witness that ``instance`` is feasible on ``machines`` speed-``speed`` machines."""

    machines: int
    speed: Fraction
    schedule: Schedule
    #: Snapshot of the producing cache's counters at certification time
    #: (dinic backend only) — the canonical carrier for solver-effort stats.
    cache_stats: Optional[CacheStats] = field(
        default=None, compare=False, repr=False
    )

    kind = "feasible"

    def describe(self) -> str:
        s = self.schedule
        return (
            f"feasible @ m={self.machines} (speed {self.speed}): schedule with "
            f"{len(s)} segments on {s.machines_used} machines"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "feasible",
            "machines": self.machines,
            "speed": str(self.speed),
            "schedule": schedule_to_dict(self.schedule),
            **(
                {"cache_stats": self.cache_stats.as_dict()}
                if self.cache_stats is not None
                else {}
            ),
        }


@dataclass(frozen=True)
class InfeasibleCertificate:
    """Overloaded interval set ``(S, I)`` refuting feasibility at ``machines``."""

    machines: int
    speed: Fraction
    jobs: Tuple[int, ...]  # S — job ids contributing mandatory work
    region: IntervalUnion  # I — finite union of intervals
    #: Snapshot of the producing cache's counters (dinic backend only).
    cache_stats: Optional[CacheStats] = field(
        default=None, compare=False, repr=False
    )

    kind = "infeasible"

    def contribution(self, instance: Instance) -> Fraction:
        """``C_s(S, I)`` by direct arithmetic over the instance data."""
        return sum(
            (mandatory_work(instance.job(j), self.region, self.speed)
             for j in set(self.jobs)),
            Fraction(0),
        )

    @property
    def capacity(self) -> Fraction:
        """``m · s · |I|`` — total work the machines can do inside ``I``."""
        return self.machines * self.speed * self.region.length

    def required_machines(self, instance: Instance) -> Optional[int]:
        """``ceil(C_s(S,I) / (s·|I|))`` — the lower bound the witness proves.

        ``None`` when ``|I| = 0`` (the degenerate witness: no machine count
        suffices).
        """
        length = self.region.length
        if length == 0:
            return None
        return ceil(self.contribution(instance) / (self.speed * length))

    def describe(self, instance: Optional[Instance] = None) -> str:
        region = " ∪ ".join(map(repr, self.region)) or "∅"
        text = (
            f"infeasible @ m={self.machines} (speed {self.speed}): "
            f"S = {len(set(self.jobs))} jobs, I = {region} (|I| = {self.region.length})"
        )
        if instance is not None:
            c = self.contribution(instance)
            need = self.required_machines(instance)
            bound = "every m" if need is None else f"m ≥ {need}"
            text += f", C(S,I) = {c} > {self.capacity} = m·s·|I|  ⟹  {bound}"
        return text

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "infeasible",
            "machines": self.machines,
            "speed": str(self.speed),
            "jobs": list(self.jobs),
            "region": [[str(c.start), str(c.end)] for c in self.region],
            **(
                {"cache_stats": self.cache_stats.as_dict()}
                if self.cache_stats is not None
                else {}
            ),
        }


Certificate = Union[FeasibleCertificate, InfeasibleCertificate]


def certificate_from_dict(data: Dict[str, Any]) -> Certificate:
    """Inverse of ``Certificate.to_dict`` (lossless rational round-trip)."""
    kind = data.get("kind")
    speed = to_fraction(data["speed"])
    stats = (
        CacheStats(**data["cache_stats"]) if "cache_stats" in data else None
    )
    if kind == "feasible":
        return FeasibleCertificate(
            data["machines"],
            speed,
            schedule_from_dict(data["schedule"]),
            cache_stats=stats,
        )
    if kind == "infeasible":
        return InfeasibleCertificate(
            data["machines"],
            speed,
            tuple(data["jobs"]),
            IntervalUnion.from_pairs(
                (to_fraction(a), to_fraction(b)) for a, b in data["region"]
            ),
            cache_stats=stats,
        )
    raise ValueError(f"unknown certificate kind {kind!r}")


@dataclass(frozen=True)
class CertifiedOptimum:
    """The optimum ``machines`` sandwiched by certificates on both sides.

    ``feasible`` witnesses OPT ≤ m; ``infeasible`` (an overloaded interval
    set at ``m − 1`` machines) witnesses OPT ≥ m.  ``infeasible`` is ``None``
    exactly when ``machines = 0`` (the empty instance has nothing to refute).
    """

    machines: int
    feasible: FeasibleCertificate
    infeasible: Optional[InfeasibleCertificate]
    #: Snapshot of the cache counters after both sandwich probes (dinic
    #: backend only) — total solver effort spent establishing the optimum.
    cache_stats: Optional[CacheStats] = field(
        default=None, compare=False, repr=False
    )

    def describe(self, instance: Optional[Instance] = None) -> str:
        lines = [f"certified optimum: {self.machines}", "  " + self.feasible.describe()]
        if self.infeasible is not None:
            lines.append("  " + self.infeasible.describe(instance))
        return "\n".join(lines)
