"""Certified feasibility verdicts: ``certify`` and ``certified_optimum``.

``certify(instance, m)`` answers the feasibility question *with a receipt*:

* feasible → a schedule extracted from the max flow and re-verified by
  :meth:`Schedule.verify` with exact arithmetic on at most ``m`` machines;
* infeasible → a minimum cut of the feasibility network converted into an
  overloaded interval set ``(S, I)`` and checked against Theorem 1 by pure
  workload arithmetic.

Certificates are checked before they are returned (``check=True``), so a
solver bug surfaces as a :class:`CertificationError` at the call site
instead of silently poisoning downstream experiments.

``certified_optimum`` sandwiches the optimum: a feasible certificate at
``m`` plus an infeasible certificate at ``m − 1``.  Instances that are
infeasible at *every* machine count (``speed < 1`` with a job whose window
is shorter than its slowed-down processing time) raise
:class:`Unsatisfiable`, which carries the degenerate ``|I| = 0`` witness.
"""

from __future__ import annotations

from typing import Optional

from ..model.instance import Instance
from ..model.intervals import IntervalUnion, Numeric, to_fraction
from ..model.schedule import Schedule
from ..obs import core as _obs
from ..offline.feascache import cache_for
from ..offline.flow import (
    DEFAULT_BACKEND,
    _DINIC_KERNELS,
    max_flow_assignment,
    networkx_min_cut,
    resolve_backend,
    schedule_from_work,
)
from ..offline.optimum import migratory_optimum
from .certificates import (
    Certificate,
    CertifiedOptimum,
    FeasibleCertificate,
    InfeasibleCertificate,
)
from .checkers import check_certificate


class Unsatisfiable(ValueError):
    """No machine count is feasible; carries the ``|I| = 0`` witness."""

    def __init__(self, message: str, certificate: InfeasibleCertificate) -> None:
        super().__init__(message)
        self.certificate = certificate


def unsat_certificate(
    instance: Instance, speed: Numeric = 1
) -> Optional[InfeasibleCertificate]:
    """The degenerate witness that no machine count works, if one exists.

    A job with ``p_j > s·|I(j)|`` cannot finish even running alone for its
    whole window (it cannot self-parallelize); with ``I = ∅`` its mandatory
    work ``C_s(j, ∅) = p_j − s·|I(j)| > 0`` exceeds the zero capacity at
    every ``m``.  Returns ``None`` when no such job exists.
    """
    speed = to_fraction(speed)
    culprits = tuple(j.id for j in instance if j.processing > speed * j.window)
    if not culprits:
        return None
    return InfeasibleCertificate(0, speed, culprits, IntervalUnion.empty())


def certify(
    instance: Instance,
    m: int,
    speed: Numeric = 1,
    backend: str = DEFAULT_BACKEND,
    check: bool = True,
    sparsify: bool = True,
) -> Certificate:
    """Feasibility verdict at ``m`` machines with an attached witness."""
    backend = resolve_backend(backend)
    speed = to_fraction(speed)
    if speed <= 0:
        raise ValueError("speed must be positive")
    if m < 0:
        raise ValueError("machine count must be non-negative")

    cert: Certificate
    with _obs.span("verify.certify", m=m, backend=backend, speed=str(speed)):
        if len(instance) == 0:
            cert = FeasibleCertificate(m, speed, Schedule([]))
        elif m == 0:
            # Zero machines, at least one job: the whole instance over the whole
            # event span is overloaded (C_s(S, I) ≥ Σ min(p_j, s·|I(j)|) > 0).
            cert = InfeasibleCertificate(
                0, speed, tuple(j.id for j in instance), instance.intervals()
            )
        elif backend in _DINIC_KERNELS:
            kernel = _DINIC_KERNELS[backend]
            cache = cache_for(instance, sparsify=sparsify)
            network = cache.solved_network(m, speed, kernel)
            # Work maps and cut indices refer to the interval list the
            # network was built over (sparsified by default).
            intervals = cache.network_intervals
            if network.feasible:
                work = network.work_by_job(speed, cache.scale_for(speed))
                cert = FeasibleCertificate(
                    m,
                    speed,
                    schedule_from_work(work, intervals, m),
                    cache_stats=cache.stats.snapshot(),
                )
            else:
                job_ids, iv_idx = network.min_cut()
                cert = InfeasibleCertificate(
                    m,
                    speed,
                    tuple(job_ids),
                    IntervalUnion.from_pairs(intervals[k] for k in iv_idx),
                    cache_stats=cache.stats.snapshot(),
                )
        else:
            feasible, work, intervals = max_flow_assignment(
                instance, m, speed, backend=backend, sparsify=sparsify
            )
            if feasible:
                cert = FeasibleCertificate(
                    m, speed, schedule_from_work(work, intervals, m)
                )
            else:
                job_ids, iv_idx = networkx_min_cut(
                    instance, m, speed, sparsify=sparsify
                )
                cert = InfeasibleCertificate(
                    m,
                    speed,
                    tuple(job_ids),
                    IntervalUnion.from_pairs(intervals[k] for k in iv_idx),
                )
        if check:
            with _obs.span("verify.check", kind=cert.kind, m=m):
                check_certificate(instance, cert).require()
            _obs.incr("verify.certificates_checked")
            _obs.incr(
                "verify.feasible_checked"
                if cert.kind == "feasible"
                else "verify.infeasible_checked"
            )
    return cert


def certified_optimum(
    instance: Instance,
    speed: Numeric = 1,
    backend: str = DEFAULT_BACKEND,
    check: bool = True,
    sparsify: bool = True,
) -> CertifiedOptimum:
    """The exact optimum with certificates on both sides.

    Raises :class:`Unsatisfiable` (with the degenerate witness attached)
    when no machine count is feasible.
    """
    backend = resolve_backend(backend)
    speed = to_fraction(speed)
    unsat = unsat_certificate(instance, speed)
    if unsat is not None:
        if check:
            check_certificate(instance, unsat).require()
        raise Unsatisfiable(
            "infeasible at every machine count: a job's window is shorter "
            f"than its processing time at speed {speed}",
            unsat,
        )
    with _obs.span("verify.certified_optimum", backend=backend, speed=str(speed)):
        m = migratory_optimum(instance, speed, backend=backend, sparsify=sparsify)
        feasible = certify(
            instance, m, speed, backend=backend, check=check, sparsify=sparsify
        )
        assert isinstance(feasible, FeasibleCertificate)
        infeasible: Optional[InfeasibleCertificate] = None
        if m > 0:
            below = certify(
                instance, m - 1, speed, backend=backend, check=check,
                sparsify=sparsify,
            )
            assert isinstance(below, InfeasibleCertificate)
            infeasible = below
    stats = None
    if backend in _DINIC_KERNELS and len(instance) > 0:
        # Snapshot *after* both sandwich probes: the total solver effort.
        stats = cache_for(instance, sparsify=sparsify).stats.snapshot()
    return CertifiedOptimum(m, feasible, infeasible, cache_stats=stats)
