"""Certified feasibility verdicts and the differential verification harness.

The layer every experiment certifies against: feasibility answers from the
flow core come with witnesses (:mod:`certificates <repro.verify.certificates>`),
witnesses are re-checked by solver-independent exact arithmetic
(:mod:`checkers <repro.verify.checkers>`), and the independent backends are
cross-examined on the same probes
(:mod:`differential <repro.verify.differential>`).  Entry points:

* :func:`certify` — feasibility verdict at ``m`` with an attached witness,
* :func:`certified_optimum` — the optimum sandwiched by certificates,
* :func:`differential_optimum` / :func:`differential_sweep` — dinic vs
  networkx vs LP on the same instances, arbitrated by certificates.
"""

from .certificates import (
    Certificate,
    CertifiedOptimum,
    FeasibleCertificate,
    InfeasibleCertificate,
    certificate_from_dict,
    mandatory_work,
)
from .certify import Unsatisfiable, certified_optimum, certify, unsat_certificate
from .checkers import (
    CertificationError,
    CheckResult,
    check_certificate,
    check_feasible_certificate,
    check_infeasible_certificate,
)
from .differential import (
    DifferentialRecord,
    DifferentialReport,
    differential_check,
    differential_optimum,
    differential_sweep,
)

__all__ = [
    "Certificate",
    "CertifiedOptimum",
    "FeasibleCertificate",
    "InfeasibleCertificate",
    "certificate_from_dict",
    "mandatory_work",
    "Unsatisfiable",
    "certify",
    "certified_optimum",
    "unsat_certificate",
    "CertificationError",
    "CheckResult",
    "check_certificate",
    "check_feasible_certificate",
    "check_infeasible_certificate",
    "DifferentialRecord",
    "DifferentialReport",
    "differential_check",
    "differential_optimum",
    "differential_sweep",
]
