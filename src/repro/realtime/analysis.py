"""Schedulability analysis for task sets via the paper's machinery.

Bridges the classical real-time view (task sets, utilization) with the
machine-minimization view (instances, exact optima, online policies):

* :func:`machines_for_taskset` — exact machine requirement of a hyperperiod
  expansion (flow optimum),
* :func:`online_machines_for_taskset` — what a given online policy needs,
* :func:`provisioning_report` — the dispatcher's recommendation plus the
  utilization lower bound, for capacity-planning style output.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Optional

from ..core.splitter import DispatchResult, classify, dispatch
from ..model.instance import Instance
from ..model.intervals import Numeric
from ..offline.optimum import migratory_optimum
from ..online.base import Policy
from ..online.engine import min_machines
from .tasks import TaskSet


@dataclass(frozen=True)
class ProvisioningReport:
    """Capacity-planning summary for one task set."""

    n_tasks: int
    n_jobs: int
    utilization: float
    utilization_bound: int
    migratory_opt: int
    recommended_machines: int
    algorithm: str
    instance_class: str

    @property
    def overhead(self) -> float:
        if self.migratory_opt == 0:
            return 0.0
        return self.recommended_machines / self.migratory_opt


def machines_for_taskset(
    taskset: TaskSet, horizon: Optional[Numeric] = None
) -> int:
    """Exact migratory machine requirement over the (default) hyperperiod."""
    return migratory_optimum(taskset.periodic_instance(horizon))


def online_machines_for_taskset(
    taskset: TaskSet,
    policy_factory: Callable[[], Policy],
    horizon: Optional[Numeric] = None,
) -> int:
    """Minimum machines at which a policy schedules the expansion."""
    instance = taskset.periodic_instance(horizon)
    if len(instance) == 0:
        return 0
    return min_machines(lambda k: policy_factory(), instance)


def provisioning_report(
    taskset: TaskSet, horizon: Optional[Numeric] = None
) -> ProvisioningReport:
    """Dispatch the expansion and summarize the provisioning decision."""
    instance = taskset.periodic_instance(horizon)
    if len(instance) == 0:
        return ProvisioningReport(0, 0, 0.0, 0, 0, 0, "none", "empty")
    result = dispatch(instance)
    result.schedule.verify(instance).require_feasible()
    return ProvisioningReport(
        n_tasks=len(taskset),
        n_jobs=len(instance),
        utilization=float(taskset.utilization),
        utilization_bound=taskset.utilization_lower_bound(),
        migratory_opt=migratory_optimum(instance),
        recommended_machines=result.machines,
        algorithm=result.algorithm,
        instance_class=result.instance_class,
    )
