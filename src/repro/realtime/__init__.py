"""Substrate: the periodic/sporadic real-time task model the paper's
introduction motivates, bridged to the machine-minimization machinery."""

from .analysis import (
    ProvisioningReport,
    machines_for_taskset,
    online_machines_for_taskset,
    provisioning_report,
)
from .tasks import PeriodicTask, TaskSet, harmonic_taskset, random_taskset

__all__ = [
    "ProvisioningReport",
    "machines_for_taskset",
    "online_machines_for_taskset",
    "provisioning_report",
    "PeriodicTask",
    "TaskSet",
    "harmonic_taskset",
    "random_taskset",
]
