"""Periodic and sporadic real-time task sets.

The paper's opening sentence places the problem in operating real-time
systems: recurring tasks release jobs with hard deadlines.  This subpackage
provides the standard task model as a substrate on top of the job/instance
layer:

* a :class:`PeriodicTask` ``(C, T, D, φ)`` releases a job of processing
  time ``C`` every ``T`` time units from phase ``φ`` on, each due ``D``
  after its release (``D ≤ T``: *constrained*; ``D = T``: *implicit*);
* a :class:`TaskSet` aggregates tasks: utilization ``U = Σ C_i/T_i``,
  hyperperiod (lcm of periods), density, and expansion into a concrete
  :class:`~repro.model.instance.Instance` over a horizon;
* sporadic releases (minimum inter-arrival ``T`` plus random extra delay)
  via :meth:`TaskSet.sporadic_instance`.

``⌈U⌉`` lower-bounds the machine count of any schedule of a full
hyperperiod (work density), which the tests check against the exact flow
optimum.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from fractions import Fraction
from math import ceil, gcd
from typing import List, Optional, Sequence

from ..model.instance import Instance
from ..model.intervals import Numeric, to_fraction
from ..model.job import Job


@dataclass(frozen=True)
class PeriodicTask:
    """A periodic hard real-time task ``(C, T, D, φ)``."""

    wcet: Fraction  # C: processing time per job
    period: Fraction  # T: release separation
    deadline: Optional[Fraction] = None  # D: relative deadline (default T)
    phase: Fraction = Fraction(0)  # φ: first release
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "wcet", to_fraction(self.wcet))
        object.__setattr__(self, "period", to_fraction(self.period))
        object.__setattr__(self, "phase", to_fraction(self.phase))
        rel = self.period if self.deadline is None else to_fraction(self.deadline)
        object.__setattr__(self, "deadline", rel)
        if self.wcet <= 0:
            raise ValueError("WCET must be positive")
        if self.period <= 0:
            raise ValueError("period must be positive")
        if self.deadline < self.wcet:
            raise ValueError("relative deadline shorter than WCET")

    @property
    def utilization(self) -> Fraction:
        """``C/T`` — the long-run machine share the task consumes."""
        return self.wcet / self.period

    @property
    def density(self) -> Fraction:
        """``C/D`` — the per-job looseness parameter (α of the paper)."""
        return self.wcet / self.deadline

    @property
    def implicit_deadline(self) -> bool:
        return self.deadline == self.period

    def jobs_until(self, horizon: Numeric, start_id: int) -> List[Job]:
        """Concrete jobs with releases in ``[phase, horizon)``."""
        horizon = to_fraction(horizon)
        jobs: List[Job] = []
        release = self.phase
        job_id = start_id
        while release < horizon:
            jobs.append(
                Job(release, self.wcet, release + self.deadline, id=job_id,
                    label=self.name or f"task{start_id}")
            )
            job_id += 1
            release += self.period
        return jobs


def _lcm(a: int, b: int) -> int:
    return a * b // gcd(a, b)


@dataclass
class TaskSet:
    """A collection of periodic tasks."""

    tasks: List[PeriodicTask] = field(default_factory=list)

    def add(self, task: PeriodicTask) -> "TaskSet":
        self.tasks.append(task)
        return self

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self):
        return iter(self.tasks)

    @property
    def utilization(self) -> Fraction:
        return sum((t.utilization for t in self.tasks), Fraction(0))

    @property
    def max_density(self) -> Fraction:
        if not self.tasks:
            return Fraction(0)
        return max(t.density for t in self.tasks)

    @property
    def hyperperiod(self) -> Fraction:
        """LCM of the periods: ``lcm(numerators)/gcd(denominators)`` exactly."""
        if not self.tasks:
            return Fraction(0)
        num = 1
        den = 0
        for t in self.tasks:
            num = _lcm(num, t.period.numerator)
            den = gcd(den, t.period.denominator)
        return Fraction(num, den)

    def utilization_lower_bound(self) -> int:
        """``⌈U⌉`` — machines needed over a full hyperperiod."""
        u = self.utilization
        return ceil(u) if u > 0 else 0

    def periodic_instance(self, horizon: Optional[Numeric] = None) -> Instance:
        """Expand all tasks into jobs over ``[0, horizon)`` (default: one
        hyperperiod past the largest phase)."""
        if not self.tasks:
            return Instance([])
        if horizon is None:
            horizon = max(t.phase for t in self.tasks) + self.hyperperiod
        horizon = to_fraction(horizon)
        expected = sum(
            int((horizon - t.phase) / t.period) + 1
            for t in self.tasks
            if t.phase < horizon
        )
        if expected > 100_000:
            raise ValueError(
                f"expansion would create ~{expected} jobs; non-harmonic "
                "periods can have astronomically large hyperperiods — pass "
                "an explicit horizon"
            )
        jobs: List[Job] = []
        next_id = 0
        for t in self.tasks:
            batch = t.jobs_until(horizon, next_id)
            jobs.extend(batch)
            next_id += len(batch) + 1
        return Instance(jobs)

    def sporadic_instance(
        self,
        horizon: Numeric,
        max_extra_delay: Numeric = 0,
        seed: int = 0,
    ) -> Instance:
        """Sporadic releases: inter-arrival ``T + U[0, max_extra_delay]``.

        The period is a *minimum* separation; extra delays are drawn on an
        integer grid to keep arithmetic exact.
        """
        horizon = to_fraction(horizon)
        max_extra = to_fraction(max_extra_delay)
        rng = random.Random(seed)
        grid = 8  # extra delays in eighths keeps denominators tame
        jobs: List[Job] = []
        next_id = 0
        for t in self.tasks:
            release = t.phase
            while release < horizon:
                jobs.append(
                    Job(release, t.wcet, release + t.deadline, id=next_id,
                        label=t.name)
                )
                next_id += 1
                extra = (
                    Fraction(rng.randint(0, int(max_extra * grid)), grid)
                    if max_extra > 0
                    else Fraction(0)
                )
                release += t.period + extra
        return Instance(jobs)


def harmonic_taskset(
    levels: int, base_period: int = 4, utilization_per_task: Numeric = Fraction(1, 4)
) -> TaskSet:
    """Harmonic periods ``base, 2·base, 4·base, …`` (easy to schedule)."""
    u = to_fraction(utilization_per_task)
    ts = TaskSet()
    for i in range(levels):
        period = Fraction(base_period * 2**i)
        ts.add(PeriodicTask(wcet=u * period, period=period, name=f"h{i}"))
    return ts


def random_taskset(
    n: int,
    target_utilization: Numeric,
    seed: int = 0,
    min_period: int = 4,
    max_period: int = 24,
) -> TaskSet:
    """``n`` tasks whose utilizations sum to ``target_utilization``.

    Uses the UUniFast-style stick-breaking split (discretized to exact
    rationals) over uniformly drawn integer periods.
    """
    target = to_fraction(target_utilization)
    rng = random.Random(seed)
    # stick-breaking: draw cut points on a fine integer grid
    grid = 1000
    cuts = sorted(rng.randint(0, grid) for _ in range(n - 1))
    shares = []
    prev = 0
    for c in cuts + [grid]:
        shares.append(Fraction(c - prev, grid))
        prev = c
    ts = TaskSet()
    for i, share in enumerate(shares):
        u_i = share * target
        period = Fraction(rng.randint(min_period, max_period))
        wcet = u_i * period
        if wcet <= 0:
            wcet = Fraction(1, 8)  # keep degenerate shares schedulable
        if wcet > period:
            wcet = period
        ts.add(PeriodicTask(wcet=wcet, period=period, phase=rng.randint(0, 4),
                            name=f"t{i}"))
    return ts
