"""Chunked, deterministic process-pool execution of sweep plans.

:func:`run_sweep` fans a :class:`~repro.runner.plan.SweepPlan` out across
``n_jobs`` worker processes and merges everything back into a single
:class:`SweepReport`.  The contract:

* **Bit-identical results.**  ``run_sweep(plan, n_jobs=k)`` returns the
  same results in the same order with the same merged counter totals for
  every ``k`` and every chunking.  Work is cut into group-preserving chunks
  up front (a function of the plan and ``chunksize`` only), each chunk runs
  under its own :func:`repro.obs.capture`, and snapshots merge in chunk
  order — never completion order.
* **Serial fast path.**  ``n_jobs=1`` executes the same chunk loop inline:
  no pool is spawned, no pickling happens, ambient obs sinks see the raw
  event stream exactly as before this module existed.
* **Warm caches.**  A chunk materializes each instance group once, so every
  item of the group shares the instance's
  :class:`~repro.offline.feascache.FeasibilityCache` (verdict memo + warm
  flow networks) inside its worker.
* **Failure containment.**  A task exception becomes an ``"error"`` record
  for that item (the sweep continues).  A worker process that dies
  mid-chunk (OOM-killed, segfault) breaks the pool; every unresolved item
  is then retried in an isolated single-worker pool, and an item that kills
  its worker again is reported as a ``"crashed"`` record carrying a
  :class:`WorkerCrash` message — never silently dropped.
  ``KeyboardInterrupt`` cancels outstanding work and returns the partial
  report with the remaining items marked ``"cancelled"``.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import time
import traceback
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..obs import core as _obs
from ..obs.sinks import Registry, jsonable
from .merge import merge_snapshot_into, replay_into_ambient
from .plan import SweepPlan, WorkItem
from .tasks import TASKS

__all__ = ["ItemResult", "SweepReport", "WorkerCrash", "run_sweep"]

#: (index, status, value, error) — the wire format a chunk ships back.
_Row = Tuple[int, str, Any, Optional[str]]


class WorkerCrash(RuntimeError):
    """A worker process died while executing an item (e.g. OOM-killed)."""


@dataclass(frozen=True)
class ItemResult:
    """Outcome of one work item; exactly one per plan item, in plan order."""

    index: int
    task: str
    group: str
    status: str  # "ok" | "error" | "crashed" | "cancelled"
    value: Any = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class SweepReport:
    """Merged outcome of a sweep: per-item results + one obs registry."""

    results: Tuple[ItemResult, ...]
    registry: Registry
    n_jobs: int
    n_chunks: int
    chunksize: int
    wall_seconds: float
    interrupted: bool = False

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    def values(self) -> List[Any]:
        """Values of successful items, in plan order."""
        return [r.value for r in self.results if r.ok]

    @property
    def errors(self) -> List[ItemResult]:
        return [r for r in self.results if r.status == "error"]

    @property
    def crashes(self) -> List[ItemResult]:
        return [r for r in self.results if r.status == "crashed"]

    @property
    def cancelled(self) -> List[ItemResult]:
        return [r for r in self.results if r.status == "cancelled"]

    def summary(self) -> str:
        n_ok = sum(1 for r in self.results if r.ok)
        parts = [f"sweep: {n_ok}/{len(self.results)} items ok"]
        for label, items in (
            ("errors", self.errors),
            ("crashed", self.crashes),
            ("cancelled", self.cancelled),
        ):
            if items:
                parts.append(f"{len(items)} {label}")
        parts.append(
            f"{self.n_chunks} chunks on {self.n_jobs} worker(s) "
            f"in {self.wall_seconds:.2f}s"
        )
        return ", ".join(parts)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe dump: per-item results + the merged registry snapshot."""
        return {
            "n_jobs": self.n_jobs,
            "n_chunks": self.n_chunks,
            "chunksize": self.chunksize,
            "wall_seconds": self.wall_seconds,
            "interrupted": self.interrupted,
            "results": [
                {
                    "index": r.index,
                    "task": r.task,
                    "status": r.status,
                    "value": jsonable(r.value),
                    **({"error": r.error} if r.error else {}),
                }
                for r in self.results
            ],
            **self.registry.snapshot(),
        }


def _init_worker() -> None:
    """Worker initialization: start from a clean observability state.

    Under the fork start method the child inherits the parent's attached
    sinks — including open ``--trace`` file descriptors, which concurrent
    workers would interleave garbage into.  Workers report exclusively
    through their chunk snapshot, so all inherited sinks are dropped.
    """
    _obs._sinks.clear()


def _execute_chunk(
    items: Sequence[WorkItem],
) -> Tuple[List[_Row], Dict[str, Any]]:
    """Run one chunk under a fresh capture; returns (row tuples, snapshot).

    This is the single execution path for both the serial loop and the pool
    workers — which is precisely why their counter totals agree.  The chunk
    materializes each instance group once; all items of the group share its
    warm :class:`~repro.offline.feascache.FeasibilityCache`.
    """
    from .. import obs

    rows: List[_Row] = []
    instances: Dict[str, Any] = {}
    with obs.capture() as registry:
        for item in items:
            try:
                instance = item.materialize(instances)
                fn = TASKS[item.task]
                value = fn(instance, **item.kwargs)
                rows.append((item.index, "ok", value, None))
            except Exception as exc:  # noqa: BLE001 — contained per item
                detail = traceback.format_exception_only(type(exc), exc)[-1].strip()
                rows.append((item.index, "error", None, detail))
                obs.incr("runner.task_errors")
    return rows, registry.snapshot()


def _default_context(start_method: Optional[str]):
    if start_method is not None:
        return multiprocessing.get_context(start_method)
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def _isolated_retry(
    chunk: Sequence[WorkItem], mp_context
) -> Tuple[Dict[int, _Row], List[Dict[str, Any]]]:
    """Re-run a crashed chunk's items one at a time, each in a fresh pool.

    Isolation pins the blame: an item that breaks its private single-worker
    pool is the crasher and gets a ``"crashed"`` record; its innocent
    chunk-mates recover their results.  Snapshots come back in item order,
    so the surviving items' merged counters stay deterministic.
    """
    rows: Dict[int, _Row] = {}
    snapshots: List[Dict[str, Any]] = []
    for item in chunk:
        pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=1, mp_context=mp_context, initializer=_init_worker
        )
        try:
            chunk_rows, snapshot = pool.submit(_execute_chunk, (item,)).result()
        except BrokenProcessPool:
            rows[item.index] = (
                item.index,
                "crashed",
                None,
                f"WorkerCrash: worker process died while running item "
                f"{item.index} ({item.task})",
            )
            pool.shutdown(wait=False)
            continue
        finally:
            pool.shutdown(wait=False)
        for row in chunk_rows:
            rows[row[0]] = row
        snapshots.append(snapshot)
    return rows, snapshots


class _ResultStream:
    """Streams item results to ``on_result`` exactly once each.

    ``ordered=True`` buffers completed chunks until every earlier chunk has
    been flushed (plan order); ``ordered=False`` forwards chunks in
    completion order.  Within a chunk, items always stream in plan order.
    """

    def __init__(
        self,
        on_result: Optional[Callable[["ItemResult"], None]],
        ordered: bool,
    ) -> None:
        self._on_result = on_result
        self._ordered = ordered
        self._pending: Dict[int, List[ItemResult]] = {}
        self._next_chunk = 0
        self.emitted: Set[int] = set()

    def chunk_done(self, chunk_index: int, results: List[ItemResult]) -> None:
        if self._on_result is None:
            return
        if not self._ordered:
            self._emit(results)
            return
        self._pending[chunk_index] = results
        while self._next_chunk in self._pending:
            self._emit(self._pending.pop(self._next_chunk))
            self._next_chunk += 1

    def flush_remaining(self, results: Sequence["ItemResult"]) -> None:
        """Emit whatever never streamed (retried/cancelled), in plan order."""
        if self._on_result is None:
            return
        self._emit([r for r in results if r.index not in self.emitted])

    def _emit(self, results: List["ItemResult"]) -> None:
        for result in results:
            if result.index not in self.emitted:
                self.emitted.add(result.index)
                self._on_result(result)


def run_sweep(
    plan: SweepPlan,
    n_jobs: int = 1,
    chunksize: int = 1,
    start_method: Optional[str] = None,
    on_result: Optional[Callable[[ItemResult], None]] = None,
    ordered: bool = True,
) -> SweepReport:
    """Execute ``plan`` on ``n_jobs`` processes; see the module contract.

    ``on_result`` streams item results as chunks finish — in plan order
    when ``ordered=True``, in completion order when ``ordered=False``.  The
    returned report is identical (and in plan order) either way.
    """
    if n_jobs < 1:
        raise ValueError("n_jobs must be >= 1")
    t0 = time.perf_counter()
    chunks = plan.chunks(chunksize)
    items_by_index = {item.index: item for item in plan}
    interrupted = False
    stream = _ResultStream(on_result, ordered)

    results_by_index: Dict[int, ItemResult] = {}
    chunk_snapshots: Dict[int, Dict[str, Any]] = {}
    extra_snapshots: List[Dict[str, Any]] = []

    def absorb(rows: List[_Row]) -> List[ItemResult]:
        out = []
        for index, status, value, error in rows:
            item = items_by_index[index]
            result = ItemResult(index, item.task, item.group, status, value, error)
            results_by_index[index] = result
            out.append(result)
        return out

    if n_jobs == 1:
        for ci, chunk in enumerate(chunks):
            try:
                rows, snapshot = _execute_chunk(chunk)
            except KeyboardInterrupt:
                interrupted = True
                break
            chunk_snapshots[ci] = snapshot
            stream.chunk_done(ci, absorb(rows))
    else:
        mp_context = _default_context(start_method)
        broken_chunks: List[int] = []
        pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=n_jobs, mp_context=mp_context, initializer=_init_worker
        )
        try:
            futures = {
                pool.submit(_execute_chunk, chunk): ci
                for ci, chunk in enumerate(chunks)
            }
            try:
                for future in concurrent.futures.as_completed(futures):
                    ci = futures[future]
                    try:
                        rows, snapshot = future.result()
                    except BrokenProcessPool:
                        broken_chunks.append(ci)
                        continue
                    except concurrent.futures.CancelledError:
                        continue
                    chunk_snapshots[ci] = snapshot
                    stream.chunk_done(ci, absorb(rows))
            except KeyboardInterrupt:
                # Report partial results instead of hanging on the join.
                interrupted = True
                pool.shutdown(wait=False, cancel_futures=True)
        finally:
            if not interrupted:
                pool.shutdown(wait=True)
        if broken_chunks and not interrupted:
            # The pool died under these chunks: re-run their items isolated
            # so exactly the killer is blamed and the rest are recovered.
            for ci in sorted(broken_chunks):
                rows, snapshots = _isolated_retry(chunks[ci], mp_context)
                absorb(list(rows.values()))
                extra_snapshots.extend(snapshots)
                _obs.incr("runner.worker_crashes")

    # -- deterministic assembly (plan order throughout) -----------------------
    results: List[ItemResult] = []
    for item in plan:
        result = results_by_index.get(item.index)
        if result is None:
            result = ItemResult(
                item.index, item.task, item.group, "cancelled",
                None, "sweep interrupted",
            )
        results.append(result)

    registry = Registry()
    for ci in sorted(chunk_snapshots):
        merge_snapshot_into(registry, chunk_snapshots[ci])
    for snapshot in extra_snapshots:
        merge_snapshot_into(registry, snapshot)

    n_errors = sum(1 for r in results if r.status == "error")
    n_crashed = sum(1 for r in results if r.status == "crashed")
    n_cancelled = sum(1 for r in results if r.status == "cancelled")
    registry.on_counter("runner.items", len(plan.items), {})
    registry.on_counter("runner.chunks", len(chunks), {})
    if n_errors:
        registry.on_counter("runner.errors", n_errors, {})
    if n_crashed:
        registry.on_counter("runner.crashes", n_crashed, {})
    if n_cancelled:
        registry.on_counter("runner.cancelled", n_cancelled, {})

    if n_jobs != 1:
        # Ambient sinks saw none of the workers' streams: replay the merged
        # totals so `repro stats` / `--trace` keep working under parallelism.
        replay_into_ambient(registry.snapshot())
    else:
        # Serial: the raw stream already reached ambient sinks; top up only
        # the runner's own bookkeeping so both paths report it identically.
        _obs.incr("runner.items", len(plan.items))
        _obs.incr("runner.chunks", len(chunks))
        for name, count in (
            ("runner.errors", n_errors),
            ("runner.crashes", n_crashed),
            ("runner.cancelled", n_cancelled),
        ):
            if count:
                _obs.incr(name, count)

    stream.flush_remaining(results)

    return SweepReport(
        results=tuple(results),
        registry=registry,
        n_jobs=n_jobs,
        n_chunks=len(chunks),
        chunksize=chunksize,
        wall_seconds=time.perf_counter() - t0,
        interrupted=interrupted,
    )
