"""Chunked, deterministic, crash-only process-pool execution of sweep plans.

:func:`run_sweep` fans a :class:`~repro.runner.plan.SweepPlan` out across
``n_jobs`` worker processes and merges everything back into a single
:class:`SweepReport`.  The contract:

* **Bit-identical results.**  ``run_sweep(plan, n_jobs=k)`` returns the
  same results in the same order with the same merged counter totals for
  every ``k`` and every chunking.  Work is cut into group-preserving chunks
  up front (a function of the plan and ``chunksize`` only), every item
  attempt runs under its own :func:`repro.obs.capture`, and only the
  *successful* attempt's snapshot is kept — merged in plan order — so
  faults, retries, and resumes cannot shift a single task-level counter.
* **Serial fast path.**  ``n_jobs=1`` executes the same chunk loop inline:
  no pool is spawned, no pickling happens, ambient obs sinks see the raw
  event stream exactly as before this module existed.
* **Warm caches.**  A chunk materializes each instance group once, so every
  item of the group shares the instance's
  :class:`~repro.offline.feascache.FeasibilityCache` (verdict memo + warm
  flow networks) inside its worker.
* **Failure containment.**  Transient failures (injected faults, item
  deadlines, ``OSError``) are retried up to the
  :class:`~repro.runner.faults.RetryPolicy` budget; exhausted items are
  quarantined as ``"failed"`` records.  Deterministic task exceptions
  become ``"error"`` records immediately (retrying cannot change them).
  Either way the sweep continues.
* **Graceful degradation.**  A worker that dies mid-chunk (OOM-killed,
  segfault) breaks the pool; the runner walks a ladder — pool → fresh pool
  per *group* → fresh pool per *item* → in-process serial — re-running the
  unresolved work at each rung until exactly the crasher is blamed with a
  ``"crashed"``/:class:`WorkerCrash` record.  Each transition is logged as
  a ``runner.degraded`` obs event; a sweep always terminates with a
  complete report, never silently dropping an item.
* **Durability.**  With ``journal=`` every completed item is appended to a
  checksummed JSONL journal (:mod:`repro.runner.journal`) as it lands;
  ``resume=True`` restores settled groups from the journal and executes
  only the rest.  ``KeyboardInterrupt`` cancels outstanding work, fsyncs
  the journal, and returns the partial report with remaining items marked
  ``"cancelled"`` — a Ctrl-C'd sweep is always resumable.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import multiprocessing
import os
import time
import traceback
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from ..obs import core as _obs
from ..obs.sinks import Registry, jsonable
from .faults import FaultPlan, ItemTimeout, RetryPolicy, time_limit
from .journal import Journal, JournalError, JournalRecord, read_journal
from .merge import merge_snapshot_into, replay_into_ambient
from .plan import SweepPlan, SweepShard, WorkItem, chunk_items
from .tasks import TASKS

__all__ = [
    "ExecPolicy",
    "ItemResult",
    "SweepProgress",
    "SweepReport",
    "WorkerCrash",
    "run_sweep",
]

#: (index, status, value, error, attempts, snapshot) — the wire format an
#: executed item ships back.  The snapshot is the successful attempt's obs
#: registry dump ({} for quarantined items: their attempts left no trace).
_Row = Tuple[int, str, Any, Optional[str], int, Dict[str, Any]]


class WorkerCrash(RuntimeError):
    """A worker process died while executing an item (e.g. OOM-killed)."""


@dataclass(frozen=True)
class ExecPolicy:
    """Per-item execution policy shipped to the workers (picklable).

    ``deadline`` is the per-item time budget in seconds (``None`` = no
    limit); ``retry`` bounds transient retries; ``faults`` is an optional
    chaos :class:`~repro.runner.faults.FaultPlan` consulted before each
    attempt.
    """

    deadline: Optional[float] = None
    retry: RetryPolicy = RetryPolicy()
    faults: Optional[FaultPlan] = None

    def without_kills(self) -> "ExecPolicy":
        if self.faults is None:
            return self
        return dataclasses.replace(self, faults=self.faults.without_kills())


@dataclass(frozen=True)
class ItemResult:
    """Outcome of one work item; exactly one per plan item, in plan order."""

    index: int
    task: str
    group: str
    status: str  # "ok" | "error" | "failed" | "crashed" | "cancelled"
    value: Any = None
    error: Optional[str] = None
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass(frozen=True)
class SweepProgress:
    """One live progress sample of a running sweep.

    Delivered to the ``progress`` callback of :func:`run_sweep` and
    emitted as a ``runner.progress`` obs event (ambient sinks only — the
    sample cadence is wall-clock-dependent, so progress never enters the
    merged report registry and cannot disturb its determinism).
    """

    total: int
    done: int  # settled this run or restored from the journal
    ok: int
    errors: int
    failed: int  # quarantined (retry budget exhausted)
    crashed: int
    retried: int  # extra attempts beyond the first, summed over items
    resumed: int
    elapsed_seconds: float
    rate: Optional[float]  # items/second executed this run, None until known
    eta_seconds: Optional[float]  # None until the rate is known

    @property
    def remaining(self) -> int:
        return self.total - self.done

    def render(self) -> str:
        """The single-line ticker ``repro sweep --progress`` prints."""
        parts = [f"{self.done}/{self.total}", f"ok={self.ok}"]
        for label, count in (
            ("err", self.errors),
            ("failed", self.failed),
            ("crashed", self.crashed),
            ("retried", self.retried),
            ("resumed", self.resumed),
        ):
            if count:
                parts.append(f"{label}={count}")
        if self.rate is not None:
            parts.append(f"{self.rate:.1f} it/s")
        if self.eta_seconds is not None:
            parts.append(f"eta {self.eta_seconds:.0f}s")
        return "[sweep] " + " ".join(parts)


class _ProgressTracker:
    """Samples sweep state into :class:`SweepProgress` at a bounded cadence.

    Opt-in (``run_sweep(progress=...)``): each emission goes to the ambient
    obs stream as a ``runner.progress`` event and to the callback, rate-
    limited to one per ``interval`` seconds plus a forced final sample —
    so even an instant sweep reports once.
    """

    def __init__(
        self,
        total: int,
        resumed: int,
        callback: Optional[Callable[[SweepProgress], None]],
        interval: float,
    ) -> None:
        self._total = total
        self._resumed = resumed
        self._callback = callback
        self._interval = interval
        self._t0 = time.perf_counter()
        self._last_emit: Optional[float] = None

    def sample(self, results: Dict[int, ItemResult]) -> SweepProgress:
        counts = {"ok": 0, "error": 0, "failed": 0, "crashed": 0}
        retried = 0
        for result in results.values():
            if result.status in counts:
                counts[result.status] += 1
            retried += max(0, result.attempts - 1)
        done = len(results)
        elapsed = time.perf_counter() - self._t0
        executed = done - self._resumed
        rate = executed / elapsed if executed > 0 and elapsed > 0 else None
        eta = (self._total - done) / rate if rate else None
        return SweepProgress(
            total=self._total,
            done=done,
            ok=counts["ok"],
            errors=counts["error"],
            failed=counts["failed"],
            crashed=counts["crashed"],
            retried=retried,
            resumed=self._resumed,
            elapsed_seconds=elapsed,
            rate=rate,
            eta_seconds=eta,
        )

    def tick(self, results: Dict[int, ItemResult], force: bool = False) -> None:
        now = time.perf_counter()
        if (
            not force
            and self._last_emit is not None
            and now - self._last_emit < self._interval
        ):
            return
        self._last_emit = now
        progress = self.sample(results)
        _obs.event(
            "runner.progress",
            done=progress.done,
            total=progress.total,
            ok=progress.ok,
            errors=progress.errors,
            failed=progress.failed,
            crashed=progress.crashed,
            retried=progress.retried,
            resumed=progress.resumed,
            rate=None if progress.rate is None else round(progress.rate, 3),
            eta_s=(
                None
                if progress.eta_seconds is None
                else round(progress.eta_seconds, 1)
            ),
        )
        if self._callback is not None:
            self._callback(progress)


@dataclass
class SweepReport:
    """Merged outcome of a sweep: per-item results + one obs registry."""

    results: Tuple[ItemResult, ...]
    registry: Registry
    n_jobs: int
    n_chunks: int
    chunksize: int
    wall_seconds: float
    interrupted: bool = False
    resumed: int = 0  # items restored from the journal instead of re-run
    shard: Optional[Tuple[int, int]] = None  # (k, n) when a SweepShard ran

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    def values(self) -> List[Any]:
        """Values of successful items, in plan order."""
        return [r.value for r in self.results if r.ok]

    @property
    def errors(self) -> List[ItemResult]:
        return [r for r in self.results if r.status == "error"]

    @property
    def failed(self) -> List[ItemResult]:
        return [r for r in self.results if r.status == "failed"]

    @property
    def crashes(self) -> List[ItemResult]:
        return [r for r in self.results if r.status == "crashed"]

    @property
    def cancelled(self) -> List[ItemResult]:
        return [r for r in self.results if r.status == "cancelled"]

    def summary(self) -> str:
        n_ok = sum(1 for r in self.results if r.ok)
        parts = [f"sweep: {n_ok}/{len(self.results)} items ok"]
        if self.shard is not None:
            parts[0] = (
                f"sweep (shard {self.shard[0]}/{self.shard[1]}): "
                f"{n_ok}/{len(self.results)} items ok"
            )
        for label, items in (
            ("errors", self.errors),
            ("failed", self.failed),
            ("crashed", self.crashes),
            ("cancelled", self.cancelled),
        ):
            if items:
                parts.append(f"{len(items)} {label}")
        if self.resumed:
            parts.append(f"{self.resumed} resumed from journal")
        if self.n_jobs == 0:
            parts.append(f"merged from {self.n_chunks} shard journal(s)")
        else:
            parts.append(
                f"{self.n_chunks} chunks on {self.n_jobs} worker(s) "
                f"in {self.wall_seconds:.2f}s"
            )
        item_ns = self.registry.hists.get("runner.item_ns")
        if item_ns is not None and item_ns.count:
            row = item_ns.quantile_row()
            parts.append(
                "item latency p50={:.1f}ms p90={:.1f}ms p99={:.1f}ms "
                "max={:.1f}ms".format(
                    row["p50"] / 1e6,
                    row["p90"] / 1e6,
                    row["p99"] / 1e6,
                    row["max"] / 1e6,
                )
            )
        return ", ".join(parts)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe dump: per-item results + the merged registry snapshot."""
        return {
            "n_jobs": self.n_jobs,
            "n_chunks": self.n_chunks,
            "chunksize": self.chunksize,
            "wall_seconds": self.wall_seconds,
            "interrupted": self.interrupted,
            "resumed": self.resumed,
            "shard": list(self.shard) if self.shard is not None else None,
            "results": [
                {
                    "index": r.index,
                    "task": r.task,
                    "status": r.status,
                    "value": jsonable(r.value),
                    "attempts": r.attempts,
                    **({"error": r.error} if r.error else {}),
                }
                for r in self.results
            ],
            **self.registry.snapshot(),
        }


def _init_worker() -> None:
    """Worker initialization: start from a clean observability state.

    Under the fork start method the child inherits the parent's attached
    sinks — including open ``--trace`` file descriptors, which concurrent
    workers would interleave garbage into.  Workers report exclusively
    through their row snapshots, so all inherited sinks are dropped —
    both the global list and any context-local capture the forking thread
    had open (fork copies that thread's contextvars into the child's main
    thread, e.g. when a serve daemon's drained request capture forks a
    sweep pool).
    """
    _obs._sinks.clear()
    _obs._local_sinks.set(())
    with _obs._local_lock:
        _obs._n_local = 0


def _run_item(
    item: WorkItem,
    instances: Dict[str, Any],
    policy: ExecPolicy,
    base_attempt: int,
) -> _Row:
    """Execute one item under the policy; returns its finished row.

    Each attempt runs under a fresh :func:`repro.obs.capture`; a failed
    attempt's snapshot is *discarded* so retried items contribute exactly
    one attempt's worth of counters — the same as a fault-free run.
    Injected faults fire before any task work (inside the deadline scope),
    so a struck attempt leaves no trace at all.

    Latency telemetry rides in the successful attempt's snapshot as
    ``runner.*`` histograms (``runner.item_ns`` per-item wall time;
    ``runner.retry_ns``/``runner.timeout_ns`` for the attempts that were
    retried away) — stripped by ``canonical_report_view`` like every other
    ``runner.*`` name, so clean and chaos runs still compare equal.
    """
    from .. import obs

    attempt = base_attempt
    lost_attempts: List[Tuple[str, int]] = []  # (hist name, wasted ns)
    while True:
        with obs.capture() as registry:
            t_attempt = time.perf_counter_ns()
            try:
                with time_limit(
                    policy.deadline, label=f"item {item.index} ({item.task})"
                ):
                    if policy.faults is not None:
                        policy.faults.fire(item.index, attempt, policy.deadline)
                    instance = item.materialize(instances)
                    value = TASKS[item.task](instance, **item.kwargs)
                obs.observe("runner.item_ns", time.perf_counter_ns() - t_attempt)
                for hist_name, wasted_ns in lost_attempts:
                    obs.observe(hist_name, wasted_ns)
                return (item.index, "ok", value, None, attempt, registry.snapshot())
            except Exception as exc:  # noqa: BLE001 — contained per item
                wasted_ns = time.perf_counter_ns() - t_attempt
                detail = traceback.format_exception_only(type(exc), exc)[-1].strip()
                transient = policy.retry.is_transient(exc)
                timed_out = isinstance(exc, ItemTimeout)
        if transient and (attempt - base_attempt) < policy.retry.max_retries:
            lost_attempts.append((
                "runner.timeout_ns" if timed_out else "runner.retry_ns",
                wasted_ns,
            ))
            attempt += 1
            continue
        status = "failed" if transient else "error"
        return (item.index, status, None, detail, attempt, {})


def _execute_chunk(
    items: Sequence[WorkItem],
    policy: Optional[ExecPolicy] = None,
    base_attempt: int = 1,
    on_row: Optional[Callable[[_Row], None]] = None,
) -> List[_Row]:
    """Run one chunk; returns finished rows in item order.

    This is the single execution path for the serial loop, the pool
    workers, and every degradation rung — which is precisely why their
    counter totals agree.  The chunk materializes each instance group once;
    all items of the group share its warm
    :class:`~repro.offline.feascache.FeasibilityCache`.  ``on_row`` (serial
    path only) streams each row the moment it finishes, which is what makes
    an interrupted chunk's completed items durable in the journal.
    """
    if policy is None:
        policy = ExecPolicy()
    rows: List[_Row] = []
    instances: Dict[str, Any] = {}
    for item in items:
        row = _run_item(item, instances, policy, base_attempt)
        rows.append(row)
        if on_row is not None:
            on_row(row)
    return rows


def _default_context(start_method: Optional[str]):
    if start_method is not None:
        return multiprocessing.get_context(start_method)
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def _crash_row(item: WorkItem, attempts: int) -> _Row:
    return (
        item.index,
        "crashed",
        None,
        f"WorkerCrash: worker process died while running item "
        f"{item.index} ({item.task})",
        attempts,
        {},
    )


def _isolated_retry(
    chunk: Sequence[WorkItem],
    mp_context,
    policy: ExecPolicy,
    degradations: List[Tuple[str, str]],
) -> Dict[int, _Row]:
    """Degradation rungs below a broken pool; see the module docstring.

    First each *group* of the dead chunk is re-run whole in a fresh
    single-worker pool (``base_attempt=2``): innocent groups — and groups
    whose injected crash struck attempt 1 — recover with the exact warm-
    cache counter pattern of a clean run.  A group whose fresh pool breaks
    again holds a genuine crasher: its items re-run one per pool
    (``base_attempt=3``) so exactly the killer is blamed and its mates
    still recover.  If pools cannot be created at all (fork failure), the
    remaining work runs in-process — with ``sigkill`` faults demoted, since
    an in-process SIGKILL would take the parent down.
    """
    rows: Dict[int, _Row] = {}
    serial = False

    def run_serial(items: Sequence[WorkItem], base_attempt: int) -> None:
        for row in _execute_chunk(items, policy.without_kills(), base_attempt):
            rows[row[0]] = row

    def run_pooled(
        items: Sequence[WorkItem], base_attempt: int
    ) -> Optional[List[_Row]]:
        """One fresh single-worker pool; None means the pool broke."""
        nonlocal serial
        pool = None
        try:
            pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=1, mp_context=mp_context, initializer=_init_worker
            )
            return pool.submit(_execute_chunk, items, policy, base_attempt).result()
        except BrokenProcessPool:
            return None
        except OSError:
            # Couldn't even stand a pool up (fork/resource exhaustion):
            # last rung — run the rest of the ladder in-process.
            degradations.append(("isolated", "serial"))
            serial = True
            run_serial(items, base_attempt)
            return list()  # handled; nothing further to do for these items
        finally:
            if pool is not None:
                pool.shutdown(wait=False)

    for group in chunk_items(chunk, 1):  # chunksize=1 splits at group bounds
        if serial:
            run_serial(group, 2)
            continue
        group_rows = run_pooled(group, base_attempt=2)
        if group_rows is None:
            # The group still kills its worker: isolate item by item.
            for item in group:
                if serial:
                    run_serial((item,), 3)
                    continue
                item_rows = run_pooled((item,), base_attempt=3)
                if item_rows is None:
                    rows[item.index] = _crash_row(item, attempts=3)
        else:
            for row in group_rows:
                rows[row[0]] = row
    return rows


class _ResultStream:
    """Streams item results to ``on_result`` exactly once each.

    ``ordered=True`` buffers completed chunks until every earlier chunk has
    been flushed (plan order); ``ordered=False`` forwards chunks in
    completion order.  Within a chunk, items always stream in plan order.
    Journal-restored items are emitted by the final flush, in plan order.
    """

    def __init__(
        self,
        on_result: Optional[Callable[["ItemResult"], None]],
        ordered: bool,
    ) -> None:
        self._on_result = on_result
        self._ordered = ordered
        self._pending: Dict[int, List[ItemResult]] = {}
        self._next_chunk = 0
        self.emitted: Set[int] = set()

    def chunk_done(self, chunk_index: int, results: List[ItemResult]) -> None:
        if self._on_result is None:
            return
        if not self._ordered:
            self._emit(results)
            return
        self._pending[chunk_index] = results
        while self._next_chunk in self._pending:
            self._emit(self._pending.pop(self._next_chunk))
            self._next_chunk += 1

    def flush_remaining(self, results: Sequence["ItemResult"]) -> None:
        """Emit whatever never streamed (resumed/retried/cancelled), in plan order."""
        if self._on_result is None:
            return
        self._emit([r for r in results if r.index not in self.emitted])

    def _emit(self, results: List["ItemResult"]) -> None:
        for result in results:
            if result.index not in self.emitted:
                self.emitted.add(result.index)
                self._on_result(result)


def run_sweep(
    plan: Union[SweepPlan, SweepShard],
    n_jobs: int = 1,
    chunksize: int = 1,
    start_method: Optional[str] = None,
    on_result: Optional[Callable[[ItemResult], None]] = None,
    ordered: bool = True,
    item_timeout: Optional[float] = None,
    retry: Union[RetryPolicy, int, None] = None,
    faults: Optional[FaultPlan] = None,
    journal: Optional[str] = None,
    resume: bool = False,
    progress: Union[bool, Callable[[SweepProgress], None], None] = None,
    progress_interval: float = 1.0,
) -> SweepReport:
    """Execute ``plan`` on ``n_jobs`` processes; see the module contract.

    ``on_result`` streams item results as chunks finish — in plan order
    when ``ordered=True``, in completion order when ``ordered=False``.  The
    returned report is identical (and in plan order) either way.

    ``item_timeout`` is the per-item deadline in seconds; ``retry`` a
    :class:`~repro.runner.faults.RetryPolicy` (or an int budget of
    transient retries); ``faults`` an injected chaos plan.  ``journal``
    names a durable JSONL result journal; with ``resume=True`` an existing
    journal's settled groups are restored instead of re-run (a journal for
    a different plan — or a different shard of the same plan — raises
    :class:`~repro.runner.journal.JournalMismatch`).

    ``plan`` may also be a :class:`~repro.runner.plan.SweepShard` from
    :meth:`SweepPlan.shard(k, n) <repro.runner.plan.SweepPlan.shard>`:
    the run executes just that shard's items (keeping their parent-plan
    indices, so ``faults`` and journals speak parent-global indices) and
    stamps the shard identity into the journal header for
    :func:`~repro.runner.merge.merge_journals`.

    ``progress`` opts into live telemetry: ``True`` emits periodic
    ``runner.progress`` obs events (ambient sinks only, at most one per
    ``progress_interval`` seconds plus a final sample); a callable is
    additionally invoked with each :class:`SweepProgress` sample — the
    hook behind the ``repro sweep --progress`` ticker.  Progress never
    touches the merged report registry, so enabling it cannot perturb the
    determinism contract.
    """
    if n_jobs < 1:
        raise ValueError("n_jobs must be >= 1")
    if isinstance(retry, int):
        retry = RetryPolicy(max_retries=retry)
    policy = ExecPolicy(
        deadline=item_timeout, retry=retry or RetryPolicy(), faults=faults
    )
    t0 = time.perf_counter()
    items_by_index = {item.index: item for item in plan}
    interrupted = False
    stream = _ResultStream(on_result, ordered)
    degradations: List[Tuple[str, str]] = []
    tracker: Optional[_ProgressTracker] = None

    results_by_index: Dict[int, ItemResult] = {}
    snapshots_by_index: Dict[int, Dict[str, Any]] = {}

    # -- journal: restore settled groups, open for append --------------------
    # A SweepShard carries its parent identity; an unsharded plan journals
    # as shard (0, 1) of itself.  Stamping both into the header is what
    # lets merge_journals() and shard-aware resume validate without the
    # original plan object in hand.
    shard_id: Tuple[int, int] = getattr(plan, "shard_id", (0, 1))
    parent_items: int = getattr(plan, "plan_items", len(plan))
    journal_obj: Optional[Journal] = None
    resumed_records: Dict[int, JournalRecord] = {}
    journal_dropped = 0
    if journal is not None:
        fingerprint = plan.fingerprint()
        header = None
        if resume and os.path.exists(journal):
            try:
                header, records, journal_dropped = read_journal(journal)
            except JournalError:
                header, records = None, {}
            if header is not None:
                # Journal.append_to below re-validates the fingerprint and
                # raises JournalMismatch before any restored result is used.
                settled = {
                    idx: rec
                    for idx, rec in records.items()
                    if rec.settled
                    and idx in items_by_index
                    and items_by_index[idx].task == rec.task
                }
                members: Dict[str, List[int]] = {}
                for item in plan:
                    members.setdefault(item.group, []).append(item.index)
                whole = {
                    group
                    for group, idxs in members.items()
                    if all(i in settled for i in idxs)
                }
                resumed_records = {
                    idx: rec
                    for idx, rec in settled.items()
                    if items_by_index[idx].group in whole
                }
        if header is not None:
            journal_obj = Journal.append_to(journal, fingerprint, shard=shard_id)
        else:
            journal_obj = Journal.create(
                journal,
                fingerprint,
                len(plan),
                shard=shard_id,
                plan_items=parent_items,
            )

    def record_row(row: _Row) -> None:
        """Make one finished row durable the moment the parent learns it."""
        if journal_obj is None:
            return
        index = row[0]
        corrupt = faults is not None and faults.should("corrupt", index, 1)
        journal_obj.append_item(
            index=index,
            task=items_by_index[index].task,
            status=row[1],
            value=row[2],
            error=row[3],
            attempts=row[4],
            snapshot=row[5],
            corrupt=corrupt,
        )

    def absorb(rows: Sequence[_Row]) -> List[ItemResult]:
        out = []
        for index, status, value, error, attempts, snapshot in rows:
            item = items_by_index[index]
            result = ItemResult(
                index, item.task, item.group, status, value, error, attempts
            )
            results_by_index[index] = result
            snapshots_by_index[index] = snapshot
            out.append(result)
        if tracker is not None and out:
            tracker.tick(results_by_index)
        return out

    for index, rec in resumed_records.items():
        item = items_by_index[index]
        results_by_index[index] = ItemResult(
            index, item.task, item.group, rec.status,
            rec.value, rec.error, rec.attempts,
        )
        snapshots_by_index[index] = rec.snapshot

    pending = [item for item in plan if item.index not in resumed_records]
    chunks = chunk_items(pending, chunksize) if pending else []
    n_worker_crashes = 0

    if progress:
        tracker = _ProgressTracker(
            total=len(plan),
            resumed=len(resumed_records),
            callback=progress if callable(progress) else None,
            interval=progress_interval,
        )

    # -- execution ------------------------------------------------------------
    try:
        if n_jobs == 1:
            for ci, chunk in enumerate(chunks):
                streamed: List[_Row] = []

                def on_row(row: _Row, _acc: List[_Row] = streamed) -> None:
                    _acc.append(row)
                    record_row(row)

                try:
                    rows = _execute_chunk(chunk, policy, on_row=on_row)
                except KeyboardInterrupt:
                    # Completed items of the cut-short chunk are already
                    # journaled and kept; the rest become "cancelled".
                    interrupted = True
                    absorb(streamed)
                    break
                stream.chunk_done(ci, absorb(rows))
        else:
            mp_context = _default_context(start_method)
            broken_chunks: List[int] = []
            try:
                pool = concurrent.futures.ProcessPoolExecutor(
                    max_workers=n_jobs,
                    mp_context=mp_context,
                    initializer=_init_worker,
                )
            except OSError:
                # Can't stand up a pool at all: degrade straight to serial.
                degradations.append(("pool", "serial"))
                serial_policy = policy.without_kills()
                for ci, chunk in enumerate(chunks):
                    try:
                        rows = _execute_chunk(chunk, serial_policy, on_row=record_row)
                    except KeyboardInterrupt:
                        interrupted = True
                        break
                    stream.chunk_done(ci, absorb(rows))
                pool = None
            if pool is not None:
                try:
                    futures = {
                        pool.submit(_execute_chunk, chunk, policy): ci
                        for ci, chunk in enumerate(chunks)
                    }
                    try:
                        for future in concurrent.futures.as_completed(futures):
                            ci = futures[future]
                            try:
                                rows = future.result()
                            except BrokenProcessPool:
                                broken_chunks.append(ci)
                                continue
                            except concurrent.futures.CancelledError:
                                continue
                            for row in rows:
                                record_row(row)
                            stream.chunk_done(ci, absorb(rows))
                    except KeyboardInterrupt:
                        # Report partial results instead of hanging on the join.
                        interrupted = True
                        pool.shutdown(wait=False, cancel_futures=True)
                finally:
                    if not interrupted:
                        pool.shutdown(wait=True)
                if broken_chunks and not interrupted:
                    # The pool died under these chunks: walk the degradation
                    # ladder so exactly the killers are blamed and every
                    # innocent item recovers its clean-run outcome.
                    degradations.append(("pool", "isolated"))
                    for ci in sorted(broken_chunks):
                        rows_by_index = _isolated_retry(
                            chunks[ci], mp_context, policy, degradations
                        )
                        ordered_rows = [
                            rows_by_index[i] for i in sorted(rows_by_index)
                        ]
                        for row in ordered_rows:
                            record_row(row)
                        absorb(ordered_rows)
                        n_worker_crashes += 1
    finally:
        if journal_obj is not None:
            journal_obj.close()  # flush + fsync: interrupted runs resume too

    # -- deterministic assembly (plan order throughout) -----------------------
    results: List[ItemResult] = []
    for item in plan:
        result = results_by_index.get(item.index)
        if result is None:
            result = ItemResult(
                item.index, item.task, item.group, "cancelled",
                None, "sweep interrupted",
            )
        results.append(result)

    registry = Registry()
    for item in plan:
        snapshot = snapshots_by_index.get(item.index)
        if snapshot:
            merge_snapshot_into(registry, snapshot)

    n_errors = sum(1 for r in results if r.status == "error")
    n_failed = sum(1 for r in results if r.status == "failed")
    n_crashed = sum(1 for r in results if r.status == "crashed")
    n_cancelled = sum(1 for r in results if r.status == "cancelled")
    n_retries = sum(
        r.attempts - 1
        for r in results
        if r.index not in resumed_records and r.status != "cancelled"
    )
    bookkeeping = [
        ("runner.items", len(plan.items)),
        ("runner.chunks", len(chunks)),
        ("runner.errors", n_errors),
        ("runner.task_errors", n_errors),
        ("runner.failed", n_failed),
        ("runner.crashes", n_crashed),
        ("runner.cancelled", n_cancelled),
        ("runner.retries", n_retries),
        ("runner.worker_crashes", n_worker_crashes),
        ("runner.resumed", len(resumed_records)),
        ("runner.journal_dropped", journal_dropped),
    ]
    for name, count in bookkeeping:
        if count:
            registry.on_counter(name, count, {})
    for source, target in degradations:
        registry.on_event("runner.degraded", {"from": source, "to": target}, "")

    if n_jobs != 1:
        # Ambient sinks saw none of the workers' streams: replay the merged
        # totals so `repro stats`/`--trace` see serial-identical totals.
        replay_into_ambient(registry.snapshot())
    else:
        # Serial: the raw stream already reached ambient sinks; replay only
        # what this run did not execute (journal-restored items) and top up
        # the runner's own bookkeeping so both paths report it identically.
        if resumed_records and _obs.enabled():
            restored = Registry()
            for index in sorted(resumed_records):
                if snapshots_by_index.get(index):
                    merge_snapshot_into(restored, snapshots_by_index[index])
            replay_into_ambient(restored.snapshot())
        for name, count in bookkeeping:
            if count:
                _obs.incr(name, count)

    if tracker is not None:
        tracker.tick(results_by_index, force=True)

    stream.flush_remaining(results)

    return SweepReport(
        results=tuple(results),
        registry=registry,
        n_jobs=n_jobs,
        n_chunks=len(chunks),
        chunksize=chunksize,
        wall_seconds=time.perf_counter() - t0,
        interrupted=interrupted,
        resumed=len(resumed_records),
        shard=shard_id if shard_id != (0, 1) else None,
    )
