"""Failure semantics for sweeps: deadlines, retries, and fault injection.

Three pieces, all picklable so they travel to pool workers:

* :func:`time_limit` — a POSIX ``SIGALRM`` per-item deadline.  A task that
  outlives its budget raises :class:`ItemTimeout` *inside the worker*, so a
  pathological probe (a degenerate LP, a runaway search) cannot stall the
  whole sweep.  On platforms without ``SIGALRM`` (or off the main thread)
  the limit degrades to unenforced — documented, never wrong.
* :class:`RetryPolicy` — bounded retries for *transient* failures
  (:class:`TransientError`, :class:`ItemTimeout`, interpreter-level
  ``OSError``).  Deterministic task exceptions (a ``ValueError`` from bad
  input) are never retried — retrying them cannot change the answer.
  Exhausted items are quarantined as ``"failed"`` records instead of
  poisoning the sweep.
* :class:`FaultPlan` — seeded, deterministic chaos: named faults
  (``sigkill``, ``hang``, ``transient``, ``corrupt``) pinned to
  ``(item index, attempt)`` pairs.  Because faults key on the *attempt*
  number, an injected failure strikes exactly once and the recovery
  machinery (retry, isolated re-run, journal resume) is exercised
  end-to-end; because injection happens *before* any task work, a failed
  attempt leaves no trace in the merged counters — which is what makes
  chaos runs byte-comparable to fault-free runs (see
  ``docs/ARCHITECTURE.md`` § Failure model).

Fault indices are **parent-plan-global**: a :class:`~repro.runner.plan.SweepShard`
keeps its items' original plan indices, so the same ``FaultPlan`` spec
(``sigkill:2``) strikes the same logical item whether the plan runs whole
or as ``--shard k/n`` on another host — chaos specs need no per-shard
translation, and a fault aimed at an item another shard owns simply never
fires there.
"""

from __future__ import annotations

import hashlib
import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Sequence, Tuple

__all__ = [
    "FAULT_KINDS",
    "Fault",
    "FaultPlan",
    "ItemTimeout",
    "RetryPolicy",
    "TransientError",
    "time_limit",
]


class TransientError(RuntimeError):
    """A failure worth retrying: the same attempt may succeed next time."""


class ItemTimeout(TransientError):
    """An item exceeded its per-item deadline (see :func:`time_limit`)."""


def _deadline_enforceable() -> bool:
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


@contextmanager
def time_limit(seconds: Optional[float], label: str = "item") -> Iterator[None]:
    """Raise :class:`ItemTimeout` if the block runs longer than ``seconds``.

    ``SIGALRM``-based: the handler interrupts pure-Python execution (and
    ``time.sleep``) at the next bytecode boundary, which covers every hang
    this codebase can produce — solver loops, LP probes, injected sleeps.
    A C extension that never yields the GIL is out of reach; that case is
    handled one level up by the pool's crash containment.  With
    ``seconds=None``, off the main thread, or without ``SIGALRM`` the block
    runs unguarded.

    Limits nest: an inner limit (the advisory-LP deadline inside a sweep
    item's deadline) is clamped to whatever the outer one has left, and the
    outer timer is re-armed with its remaining budget on exit — so the
    tighter deadline always wins and the outer one is never silently lost.
    """
    if seconds is None or not _deadline_enforceable():
        yield
        return

    def _on_alarm(signum, frame):  # pragma: no cover - exercised via raise
        raise ItemTimeout(f"{label} exceeded the {seconds:g}s deadline")

    outer_remaining = signal.getitimer(signal.ITIMER_REAL)[0]
    effective = min(seconds, outer_remaining) if outer_remaining else seconds
    previous = signal.signal(signal.SIGALRM, _on_alarm)
    t0 = time.monotonic()
    signal.setitimer(signal.ITIMER_REAL, effective)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)
        if outer_remaining:
            elapsed = time.monotonic() - t0
            signal.setitimer(
                signal.ITIMER_REAL, max(outer_remaining - elapsed, 1e-3)
            )


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry budget for transient failures.

    ``max_retries`` is the number of *additional* attempts after the first
    (so an item runs at most ``1 + max_retries`` times per execution).
    ``retry_errors=True`` widens the transient set to every exception —
    useful against genuinely flaky tasks, but it re-runs deterministic
    failures too, so it is off by default.
    """

    max_retries: int = 2
    retry_errors: bool = False

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")

    def is_transient(self, exc: BaseException) -> bool:
        if isinstance(exc, (TransientError, OSError)):
            return True
        return self.retry_errors and isinstance(exc, Exception)


#: The injectable fault kinds, in severity order.
FAULT_KINDS = ("sigkill", "hang", "transient", "corrupt")


@dataclass(frozen=True)
class Fault:
    """One injected fault: ``kind`` strikes item ``index`` on ``attempt``."""

    kind: str
    index: int
    attempt: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}")
        if self.attempt < 1:
            raise ValueError("attempt numbers are 1-based")


class FaultPlan:
    """A deterministic set of injected faults for chaos testing.

    Injection points (named after where the runner consults the plan):

    * ``sigkill`` — the worker process kills itself (``SIGKILL``) before
      touching the item: simulates the OOM killer.  Exercises pool
      breakage, isolated blame, and crash records.
    * ``hang`` — the item sleeps past its deadline: exercises
      :func:`time_limit` and timeout retries.
    * ``transient`` — raises :class:`TransientError`: exercises
      :class:`RetryPolicy`.
    * ``corrupt`` — the *parent* truncates the item's journal record as it
      is written: simulates a crash mid-append.  Exercises the journal's
      checksum validation and prefix recovery on resume.

    All faults fire *before task work starts* (or, for ``corrupt``, outside
    task execution entirely), so a struck attempt contributes nothing to
    the merged counters — the determinism argument depends on this.
    """

    def __init__(
        self, faults: Sequence[Fault] = (), hang_seconds: float = 2.0
    ) -> None:
        self.faults = tuple(faults)
        self.hang_seconds = hang_seconds
        self._table: Dict[Tuple[str, int, int], Fault] = {
            (f.kind, f.index, f.attempt): f for f in self.faults
        }

    def __repr__(self) -> str:
        return f"FaultPlan({list(self.faults)!r})"

    def __eq__(self, other) -> bool:
        return isinstance(other, FaultPlan) and self.faults == other.faults

    def should(self, kind: str, index: int, attempt: int = 1) -> bool:
        return (kind, index, attempt) in self._table

    def without_kills(self) -> "FaultPlan":
        """The same plan with ``sigkill`` demoted to ``transient``.

        Used when the degradation ladder falls back to in-process
        execution: a self-``SIGKILL`` there would take the parent down.
        """
        return FaultPlan(
            tuple(
                Fault("transient", f.index, f.attempt)
                if f.kind == "sigkill"
                else f
                for f in self.faults
            ),
            self.hang_seconds,
        )

    def fire(
        self, index: int, attempt: int, deadline: Optional[float] = None
    ) -> None:
        """Consult the plan at an item's start; called inside the executor.

        Must run inside the item's :func:`time_limit` scope so an injected
        hang is cut off by the deadline like a real one.
        """
        if self.should("sigkill", index, attempt):
            os.kill(os.getpid(), signal.SIGKILL)
        if self.should("hang", index, attempt):
            # Outlast the deadline when one is set; otherwise a bounded
            # stall (a deadline-less sweep must still terminate).
            time.sleep(deadline * 4 if deadline else self.hang_seconds)
        if self.should("transient", index, attempt):
            raise TransientError(
                f"injected transient fault (item {index}, attempt {attempt})"
            )

    # -- construction --------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``--chaos`` spec: ``kind:index[@attempt],...``.

        Examples: ``"sigkill:2,transient:4"``, ``"hang:0@2"``.  The form
        ``"seed:S[:rate]"`` instead samples a random plan at resolve time —
        see :meth:`sample`, which callers invoke with the plan size.
        """
        faults = []
        for part in filter(None, (p.strip() for p in spec.split(","))):
            kind, _, rest = part.partition(":")
            if not rest:
                raise ValueError(f"bad fault spec {part!r}: expected kind:index")
            index_s, _, attempt_s = rest.partition("@")
            try:
                faults.append(
                    Fault(kind, int(index_s), int(attempt_s) if attempt_s else 1)
                )
            except ValueError as exc:
                raise ValueError(f"bad fault spec {part!r}: {exc}") from None
        return cls(faults)

    @classmethod
    def sample(
        cls,
        n_items: int,
        seed: int,
        rate: float = 0.1,
        kinds: Sequence[str] = ("transient", "hang"),
    ) -> "FaultPlan":
        """A seeded random plan: each item struck with probability ``rate``.

        SHA-256 driven (never the salted builtin ``hash``), so the same
        ``(n_items, seed, rate, kinds)`` yields the same plan in every
        process on every platform — chaos runs stay reproducible.
        """
        faults = []
        for index in range(n_items):
            digest = hashlib.sha256(
                f"repro.faults:{seed}:{index}".encode()
            ).digest()
            u = int.from_bytes(digest[:8], "big") / 2**64
            if u < rate:
                kind = kinds[int.from_bytes(digest[8:12], "big") % len(kinds)]
                faults.append(Fault(kind, index))
        return cls(faults)
