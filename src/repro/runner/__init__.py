"""Deterministic process-pool fan-out for sweeps (the batching layer).

Every empirical result in this repo — competitive-ratio profiles,
differential verification, corpus re-checks — is a batch of independent
``(instance, task)`` work items.  This package runs such batches across
worker processes with one hard guarantee: **parallel and serial runs are
bit-identical** — same results, same order, same merged observability
counter totals — for any worker count and any chunking.

    from repro.runner import SweepPlan, run_sweep

    plan = SweepPlan.competitive(
        policies=["edf", "firstfit"], families=["uniform", "agreeable"],
        n=30, seeds=50, root_seed=7,
    )
    report = run_sweep(plan, n_jobs=4, chunksize=4)
    report.values()                      # in plan order, k-independent
    report.registry.counters             # merged obs totals, k-independent

How the guarantee is kept (details in ``docs/ARCHITECTURE.md``):

* seeds split deterministically from a root seed (:func:`~repro.runner.plan.split_seed`),
* chunk boundaries depend only on the plan and ``chunksize``,
* items sharing an instance are grouped into the same chunk, so warm
  :class:`~repro.offline.feascache.FeasibilityCache` hits are scheduling-independent,
* worker snapshots merge in chunk order, never completion order.

``n_jobs=1`` is a true serial fast path: no pool, no pickling.  The CLI
front-end is ``repro sweep``.
"""

from .merge import merge_snapshot_into, merge_snapshots, replay_into_ambient
from .plan import (
    FAMILIES,
    InstanceSpec,
    SweepPlan,
    WorkItem,
    instance_key,
    split_seed,
)
from .pool import ItemResult, SweepReport, WorkerCrash, run_sweep
from .tasks import POLICIES, TASKS, register_task

__all__ = [
    "FAMILIES",
    "InstanceSpec",
    "ItemResult",
    "POLICIES",
    "SweepPlan",
    "SweepReport",
    "TASKS",
    "WorkItem",
    "WorkerCrash",
    "instance_key",
    "merge_snapshot_into",
    "merge_snapshots",
    "register_task",
    "replay_into_ambient",
    "run_sweep",
    "split_seed",
]
