"""Deterministic, crash-only process-pool fan-out for sweeps.

Every empirical result in this repo — competitive-ratio profiles,
differential verification, corpus re-checks — is a batch of independent
``(instance, task)`` work items.  This package runs such batches across
worker processes with one hard guarantee: **parallel and serial runs are
bit-identical** — same results, same order, same merged observability
counter totals — for any worker count and any chunking.

    from repro.runner import SweepPlan, run_sweep

    plan = SweepPlan.competitive(
        policies=["edf", "firstfit"], families=["uniform", "agreeable"],
        n=30, seeds=50, root_seed=7,
    )
    report = run_sweep(plan, n_jobs=4, chunksize=4)
    report.values()                      # in plan order, k-independent
    report.registry.counters             # merged obs totals, k-independent

How the guarantee is kept (details in ``docs/ARCHITECTURE.md``):

* seeds split deterministically from a root seed (:func:`~repro.runner.plan.split_seed`),
* chunk boundaries depend only on the plan and ``chunksize``,
* items sharing an instance are grouped into the same chunk, so warm
  :class:`~repro.offline.feascache.FeasibilityCache` hits are scheduling-independent,
* per-item snapshots merge in plan order, never completion order.

The guarantee extends through failures — *crash-only* operation:

* per-item deadlines (:func:`~repro.runner.faults.time_limit`) and bounded
  :class:`~repro.runner.faults.RetryPolicy` retries quarantine flaky items
  as ``"failed"`` records instead of stalling or poisoning the sweep,
* dead workers degrade pool → per-group pool → per-item pool → in-process,
  blaming exactly the crasher (:class:`~repro.runner.pool.WorkerCrash`),
* with ``journal=`` every outcome lands in a checksummed JSONL journal
  (:mod:`repro.runner.journal`) the moment it completes; ``resume=True``
  (or :func:`~repro.runner.journal.resume`) restores settled groups and
  re-runs the rest, converging to the clean report byte-for-byte,
* a seeded :class:`~repro.runner.faults.FaultPlan` injects SIGKILLs,
  hangs, transient errors, and torn journal writes for chaos testing
  (``repro sweep --chaos``); :func:`~repro.runner.merge.canonical_report_view`
  is the equivalence judge.

The guarantee also extends across hosts — *sharded* operation:
:meth:`SweepPlan.shard(k, n) <repro.runner.plan.SweepPlan.shard>` cuts a
plan into ``n`` disjoint, group-preserving
:class:`~repro.runner.plan.SweepShard`\\s (a pure function of the plan, so
every host computes the same partition), each shard journals under its own
``(k, n)`` identity, and :func:`~repro.runner.merge.merge_journals` folds
the N journals back into one report byte-identical to the unsharded run —
``repro sweep ... --shard k/n`` plus ``repro sweep merge j*.jsonl``.

``n_jobs=1`` is a true serial fast path: no pool, no pickling.  The CLI
front-end is ``repro sweep``.
"""

from .faults import (
    FAULT_KINDS,
    Fault,
    FaultPlan,
    ItemTimeout,
    RetryPolicy,
    TransientError,
    time_limit,
)
from .journal import (
    Journal,
    JournalError,
    JournalMismatch,
    JournalRecord,
    journal_status,
    read_journal,
    resume,
)
from .merge import (
    MergeError,
    canonical_report_view,
    merge_journals,
    merge_snapshot_into,
    merge_snapshots,
    replay_into_ambient,
)
from .plan import (
    FAMILIES,
    InstanceSpec,
    SweepPlan,
    SweepShard,
    WorkItem,
    chunk_items,
    instance_key,
    split_seed,
)
from .pool import (
    ExecPolicy,
    ItemResult,
    SweepProgress,
    SweepReport,
    WorkerCrash,
    run_sweep,
)
from .tasks import POLICIES, TASKS, register_task

__all__ = [
    "FAMILIES",
    "FAULT_KINDS",
    "ExecPolicy",
    "Fault",
    "FaultPlan",
    "InstanceSpec",
    "ItemResult",
    "ItemTimeout",
    "Journal",
    "JournalError",
    "JournalMismatch",
    "JournalRecord",
    "MergeError",
    "POLICIES",
    "RetryPolicy",
    "SweepPlan",
    "SweepProgress",
    "SweepReport",
    "SweepShard",
    "TASKS",
    "TransientError",
    "WorkItem",
    "WorkerCrash",
    "canonical_report_view",
    "chunk_items",
    "instance_key",
    "journal_status",
    "merge_journals",
    "merge_snapshot_into",
    "merge_snapshots",
    "read_journal",
    "register_task",
    "replay_into_ambient",
    "resume",
    "run_sweep",
    "split_seed",
    "time_limit",
]
