"""Deterministic sweep plans: seed splitting, work items, grouped chunks.

A :class:`SweepPlan` is an ordered list of :class:`WorkItem`\\ s, each naming
a registered task (:mod:`repro.runner.tasks`) and the instance it operates
on — either a generator :class:`InstanceSpec` (cheap to ship to a worker,
materialized there) or an inline :class:`~repro.model.instance.Instance`.

Three properties make plans safe to parallelize:

* **Seed splitting** — :func:`split_seed` derives child seeds from a root
  seed SeedSequence-style (SHA-256 of ``root:index``), so a plan built from
  one root seed assigns every item an independent, reproducible stream that
  does not depend on execution order, worker count, or platform hash
  randomization.
* **Stable grouping** — every item has a ``group`` key derived from its
  instance content (never from the salted builtin ``hash``).  Items sharing
  a group share one materialized instance — and therefore one warm
  :class:`~repro.offline.feascache.FeasibilityCache` — inside a worker.
* **Group-preserving chunking** — :meth:`SweepPlan.chunks` packs whole
  groups into chunks of at least ``chunksize`` items and never splits a
  group across chunks.  Chunk boundaries are a function of the plan and
  ``chunksize`` alone (never of the worker count), which is what makes
  merged observability counters bit-identical for every ``n_jobs``.
* **Group-preserving sharding** — :meth:`SweepPlan.shard` cuts the plan
  into ``n`` disjoint :class:`SweepShard`\\ s for multi-host fan-out.  The
  partition is a pure function of the plan and ``(k, n)`` (every host
  computes the same split), never splits a group, and keeps parent-plan
  item indices — so per-shard journals can later be folded back into one
  canonical report by :func:`repro.runner.merge.merge_journals`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..generators import (
    agreeable_instance,
    laminar_random,
    loose_instance,
    tight_instance,
    uniform_random_instance,
)
from ..model.instance import Instance

__all__ = [
    "FAMILIES",
    "InstanceSpec",
    "SweepPlan",
    "SweepShard",
    "WorkItem",
    "chunk_items",
    "instance_key",
    "split_seed",
]

#: Picklable-by-name instance families usable in an :class:`InstanceSpec`.
#: Each maker takes ``(n, seed, **params)`` and returns an
#: :class:`~repro.model.instance.Instance`.
FAMILIES = {
    "uniform": lambda n, seed, **kw: uniform_random_instance(n, seed=seed, **kw),
    "loose": lambda n, seed, alpha="1/2", **kw: loose_instance(
        n, Fraction(alpha), seed=seed, **kw
    ),
    "tight": lambda n, seed, alpha="1/2", **kw: tight_instance(
        n, Fraction(alpha), seed=seed, **kw
    ),
    "agreeable": lambda n, seed, **kw: agreeable_instance(n, seed=seed, **kw),
    "laminar": lambda n, seed, **kw: laminar_random(n, seed=seed, **kw),
}


def split_seed(root_seed: int, index: int) -> int:
    """Deterministic child seed ``index`` of ``root_seed``.

    SHA-256 based (not the salted builtin ``hash``), so the same plan built
    in any process on any platform yields the same seeds.  Returns a
    non-negative 63-bit integer, valid for :mod:`random` and numpy alike.
    """
    digest = hashlib.sha256(f"repro.runner:{root_seed}:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def instance_key(instance: Instance) -> str:
    """Content-derived stable key for an inline instance (grouping only)."""
    h = hashlib.sha256()
    for j in instance:
        h.update(f"{j.id}|{j.release}|{j.processing}|{j.deadline}|{j.label};".encode())
    return "inline:" + h.hexdigest()[:16]


@dataclass(frozen=True)
class InstanceSpec:
    """A picklable recipe for a generated instance: ``FAMILIES[family](n, seed)``."""

    family: str
    n: int
    seed: int
    #: extra generator kwargs as sorted ``(name, value)`` pairs (picklable)
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            raise ValueError(
                f"unknown family {self.family!r}; known: {sorted(FAMILIES)}"
            )

    def build(self) -> Instance:
        return FAMILIES[self.family](self.n, self.seed, **dict(self.params))

    @property
    def key(self) -> str:
        """Stable grouping key (plain field dump, no salted hashing)."""
        extra = ",".join(f"{k}={v}" for k, v in self.params)
        return f"spec:{self.family}:n={self.n}:seed={self.seed}:{extra}"


@dataclass(frozen=True)
class WorkItem:
    """One unit of sweep work: a task applied to one instance.

    Exactly one of ``spec`` / ``instance`` is set.  ``params`` are keyword
    arguments for the task (sorted tuple pairs, so items stay hashable and
    picklable).  ``group`` keys items that share a materialized instance.
    """

    index: int
    task: str
    spec: Optional[InstanceSpec] = None
    instance: Optional[Instance] = None
    params: Tuple[Tuple[str, Any], ...] = ()
    group: str = ""

    def __post_init__(self) -> None:
        if (self.spec is None) == (self.instance is None):
            raise ValueError("exactly one of spec/instance must be given")
        if not self.group:
            key = self.spec.key if self.spec else instance_key(self.instance)
            object.__setattr__(self, "group", key)

    def materialize(self, table: Dict[str, Instance]) -> Instance:
        """The item's instance, shared through ``table`` by group key."""
        got = table.get(self.group)
        if got is None:
            got = self.instance if self.instance is not None else self.spec.build()
            table[self.group] = got
        return got

    @property
    def kwargs(self) -> Dict[str, Any]:
        return dict(self.params)


def chunk_items(
    items: Sequence[WorkItem], chunksize: int = 1
) -> List[Tuple[WorkItem, ...]]:
    """Group-preserving chunks of at least ``chunksize`` items.

    Consecutive items of the same group always land in the same chunk.
    Shared by :meth:`SweepPlan.chunks` and the journal-resume path (which
    chunks only the *pending* items — skipping settled groups keeps the
    remaining groups whole, so the rule still holds).
    """
    if chunksize < 1:
        raise ValueError("chunksize must be >= 1")
    chunks: List[Tuple[WorkItem, ...]] = []
    current: List[WorkItem] = []
    for item in items:
        if (
            current
            and len(current) >= chunksize
            and item.group != current[-1].group
        ):
            chunks.append(tuple(current))
            current = []
        current.append(item)
    if current:
        chunks.append(tuple(current))
    return chunks


@dataclass(frozen=True)
class SweepPlan:
    """An ordered, immutable batch of work items."""

    items: Tuple[WorkItem, ...]

    def __post_init__(self) -> None:
        for expected, item in enumerate(self.items):
            if item.index != expected:
                raise ValueError(
                    f"item {expected} carries index {item.index}; plans must "
                    "be densely indexed in order"
                )

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    def chunks(self, chunksize: int = 1) -> List[Tuple[WorkItem, ...]]:
        """Group-preserving chunks of at least ``chunksize`` items.

        Consecutive items of the same group always land in the same chunk
        (so they share one warm instance/cache in a worker, and cache
        counters cannot depend on how chunks are distributed).  The split is
        a pure function of the plan and ``chunksize`` — never of ``n_jobs``.
        """
        return chunk_items(self.items, chunksize)

    def fingerprint(self) -> str:
        """SHA-256 identity of the plan's work content.

        Covers every item's index, task, group key (instance content or
        generator recipe), and task parameters — everything that determines
        what a sweep computes.  The journal header pins this value so a
        resume cannot silently apply another plan's results.
        """
        h = hashlib.sha256()
        for item in self.items:
            h.update(
                f"{item.index}|{item.task}|{item.group}|{item.params!r}\n".encode()
            )
        return h.hexdigest()

    def shard(self, k: int, n: int) -> "SweepShard":
        """Deterministic, group-preserving shard ``k`` of ``n``.

        Groups are numbered in first-appearance (plan) order, and group
        ``g`` lands on shard ``g % n``; items keep their parent-plan
        indices and canonical order.  The partition is a **pure function
        of the plan** and ``(k, n)`` — every host that builds the same
        plan computes the same split, with no coordination — and it never
        splits a group, so each shard reproduces exactly the warm-cache
        counter pattern its items have in the unsharded run.  That
        invariant is what makes :func:`repro.runner.merge.merge_journals`
        byte-identical to a single-host sweep.
        """
        if n < 1:
            raise ValueError("shard count must be >= 1")
        if not 0 <= k < n:
            raise ValueError(
                f"shard index must satisfy 0 <= k < n; got shard {k}/{n}"
            )
        ordinal: Dict[str, int] = {}
        for item in self.items:
            ordinal.setdefault(item.group, len(ordinal))
        selected = tuple(
            item for item in self.items if ordinal[item.group] % n == k
        )
        return SweepShard(selected, k, n, self.fingerprint(), len(self.items))

    # -- builders ------------------------------------------------------------

    @classmethod
    def build(
        cls,
        entries: Iterable[Tuple[str, Union[InstanceSpec, Instance], Dict[str, Any]]],
    ) -> "SweepPlan":
        """Plan from ``(task, spec_or_instance, task_kwargs)`` triples."""
        items: List[WorkItem] = []
        for index, (task, target, kwargs) in enumerate(entries):
            params = tuple(sorted(kwargs.items()))
            if isinstance(target, InstanceSpec):
                items.append(WorkItem(index, task, spec=target, params=params))
            else:
                items.append(WorkItem(index, task, instance=target, params=params))
        return cls(tuple(items))

    @classmethod
    def competitive(
        cls,
        policies: Sequence[str],
        families: Sequence[str],
        n: int = 30,
        seeds: Union[int, Sequence[int]] = 5,
        root_seed: int = 0,
        family_params: Optional[Dict[str, Dict[str, Any]]] = None,
    ) -> "SweepPlan":
        """Ratio sweep: every policy on every seeded family instance.

        ``seeds`` is either an explicit seed list or a count — a count is
        expanded with :func:`split_seed` from ``root_seed``.  Items are
        ordered family → seed → policy, so all policies of one instance sit
        in one group (one materialization, shared feasibility cache).
        """
        if isinstance(seeds, int):
            seed_list = [split_seed(root_seed, i) for i in range(seeds)]
        else:
            seed_list = list(seeds)
        entries = []
        for family in families:
            params = dict((family_params or {}).get(family, {}))
            for seed in seed_list:
                spec = InstanceSpec(family, n, seed, tuple(sorted(params.items())))
                for policy in policies:
                    entries.append(
                        ("ratio_sample", spec, {"policy": policy, "family": family})
                    )
        return cls.build(entries)

    @classmethod
    def differential(
        cls,
        targets: Sequence[Union[InstanceSpec, Instance]],
        speeds: Sequence[Any] = ("1",),
        use_lp: bool = True,
        lp_deadline: Optional[float] = None,
    ) -> "SweepPlan":
        """Differential verification of each target at each speed.

        ``lp_deadline`` bounds the advisory LP leg of every probe (seconds);
        a stalled LP records a timeout leg instead of blocking the item.
        """
        entries = []
        for target in targets:
            for speed in speeds:
                params: Dict[str, Any] = {"speed": str(speed), "use_lp": use_lp}
                if lp_deadline is not None:
                    params["lp_deadline"] = lp_deadline
                entries.append(("differential_optimum", target, params))
        return cls.build(entries)

    @classmethod
    def corpus(cls, corpus_dir: str) -> "SweepPlan":
        """Re-verify a golden corpus directory (see ``tests/data/corpus``).

        Each ``expectations.json`` case becomes one item checking the
        certified optimum (or unsatisfiability) against the golden value.
        """
        import json
        import os

        from ..model.io import load

        with open(
            os.path.join(corpus_dir, "expectations.json"), "r", encoding="utf-8"
        ) as fh:
            cases = json.load(fh)["cases"]
        entries = []
        for case in cases:
            instance = load(os.path.join(corpus_dir, case["file"]))
            entries.append(
                (
                    "corpus_case",
                    instance,
                    {
                        "name": case["file"],
                        "speed": case["speed"],
                        "expect_optimum": case.get("optimum"),
                        "unsat": bool(case.get("unsat")),
                    },
                )
            )
        return cls.build(entries)


@dataclass(frozen=True)
class SweepShard:
    """Shard ``k`` of ``n`` of a parent plan (see :meth:`SweepPlan.shard`).

    Items keep their **parent-plan indices** and canonical order — results,
    journals, and :class:`~repro.runner.faults.FaultPlan` indices all speak
    the parent's index space, so one fault spec or one merged report covers
    every shard uniformly.  :meth:`fingerprint` returns the *parent* plan's
    fingerprint: a shard journal is identified by the pair
    ``(parent fingerprint, shard identity)``, which is what both the resume
    path and :func:`repro.runner.merge.merge_journals` validate.

    A shard runs anywhere a plan does: ``run_sweep(plan.shard(k, n), ...)``.
    """

    items: Tuple[WorkItem, ...]
    shard_index: int
    shard_count: int
    plan_fingerprint: str
    #: item count of the parent plan (shards of it may be smaller)
    plan_items: int

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    @property
    def shard_id(self) -> Tuple[int, int]:
        """``(k, n)`` — this shard's identity within the parent plan."""
        return (self.shard_index, self.shard_count)

    def chunks(self, chunksize: int = 1) -> List[Tuple[WorkItem, ...]]:
        """Group-preserving chunks of the shard (see :meth:`SweepPlan.chunks`)."""
        return chunk_items(self.items, chunksize)

    def fingerprint(self) -> str:
        """The **parent** plan's fingerprint (shard identity travels separately)."""
        return self.plan_fingerprint
