"""Deterministic merging of worker observability snapshots.

Each chunk executes under its own :func:`repro.obs.capture` — in a worker
process or inline on the serial path — and ships back the registry's
:meth:`~repro.obs.sinks.Registry.snapshot` dict.  The parent folds those
snapshots into one :class:`~repro.obs.sinks.Registry` **in chunk order**
(never completion order), so:

* counters and event counts sum to exactly the serial totals for any
  worker count and any chunking,
* gauges keep last-write-wins semantics in plan order,
* span statistics aggregate (count/total/max/errors) — counts are
  deterministic, nanosecond totals are genuine worker wall time.

:func:`replay_into_ambient` additionally re-emits the merged numbers into
whatever sinks the parent process has attached (``repro stats``'s registry,
a ``--trace`` JSONL stream), so observability consumers keep working when
the work itself happened in other processes.  Counters, gauges, and event
counts replay faithfully (events as ``replayed=True`` emissions, one per
occurrence); the workers' per-event attributes stay worker-local.

:func:`merge_journals` is the multi-host half of the same story: it folds
the journals of N :meth:`~repro.runner.plan.SweepPlan.shard` runs — any
mix of clean, chaos-struck, and resumed — into one canonical
:class:`~repro.runner.pool.SweepReport` whose results, counters, and obs
replay are byte-identical to the unsharded run's.  Journals that cannot
merge soundly (foreign fingerprint, duplicate/missing/overlapping shards,
torn tails, unsettled items) are rejected with a precise
:class:`MergeError` naming exactly what disagrees.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Sequence

from ..obs import core as _obs
from ..obs.sinks import Registry
from .journal import JournalError, JournalRecord, read_journal

__all__ = [
    "MergeError",
    "canonical_report_view",
    "merge_journals",
    "merge_snapshot_into",
    "merge_snapshots",
    "replay_into_ambient",
]


class MergeError(JournalError):
    """The given journals cannot be merged into one sound report."""


def merge_snapshot_into(registry: Registry, snapshot: Dict[str, Any]) -> Registry:
    """Fold one chunk snapshot into ``registry`` (see module docstring)."""
    for name, value in snapshot.get("counters", {}).items():
        registry.on_counter(name, value, {})
    for name, value in snapshot.get("gauges", {}).items():
        registry.on_gauge(name, value, {})
    for name, count in snapshot.get("events", {}).items():
        with registry._lock:
            registry.events[name] = registry.events.get(name, 0) + count
    for path, stat in snapshot.get("spans", {}).items():
        registry.on_span_agg(path, stat)
    for name, hist_snap in snapshot.get("hists", {}).items():
        # Histogram merges are exact (integer buckets, exact sums), so the
        # fold is order-independent — the distributions in a merged report
        # are bit-identical for any worker count and any shard split.
        registry.on_hist(name, hist_snap)
    return registry


def merge_snapshots(snapshots: Iterable[Dict[str, Any]]) -> Registry:
    """A fresh registry holding the fold of ``snapshots`` in the given order."""
    registry = Registry()
    for snapshot in snapshots:
        merge_snapshot_into(registry, snapshot)
    return registry


def canonical_report_view(snapshot: Any) -> Dict[str, Any]:
    """The determinism-comparable core of a ``SweepReport.snapshot()``.

    Accepts either the snapshot dict or a ``SweepReport``-like object (its
    ``snapshot()`` is taken), so merged and live reports compare directly:
    ``canonical_report_view(merge_journals(paths))``.

    Two sweep runs of the same plan are *equivalent* iff their canonical
    views are equal — this is what the chaos suite and the CI chaos job
    compare, byte for byte, between a fault-free serial run and a
    faulted/resumed parallel run.  The view keeps every task-level fact
    (per-item status/value/error, all task counters, gauges, event counts)
    and strips only what legitimately varies between equivalent runs:

    * ``runner.*`` counters/events/histograms — the runner's own
      bookkeeping (chunk counts, retries, crash/degradation accounting,
      item/retry/timeout latencies) describes *how* the work got done,
      not *what* was computed,
    * span timing and wall-clock fields — genuine wall time,
    * the *values* of ``*_ns`` timing histograms — their observation
      counts are deterministic and are kept, the nanoseconds are not
      (mirroring how spans reduce to ``span_counts``); every other
      histogram holds deterministic algorithmic values and is kept in
      full,
    * per-item ``attempts`` — a retried item is still the same result.
    """
    if hasattr(snapshot, "snapshot"):
        snapshot = snapshot.snapshot()

    def keep(name: str) -> bool:
        return not name.startswith("runner.")

    return {
        "results": [
            {
                "index": r["index"],
                "task": r["task"],
                "status": r["status"],
                "value": r["value"],
                "error": r.get("error"),
            }
            for r in snapshot.get("results", [])
        ],
        "counters": {
            k: v for k, v in snapshot.get("counters", {}).items() if keep(k)
        },
        "gauges": {
            k: v for k, v in snapshot.get("gauges", {}).items() if keep(k)
        },
        "events": {
            k: v for k, v in snapshot.get("events", {}).items() if keep(k)
        },
        "span_counts": {
            path: {"count": s["count"], "errors": s["errors"]}
            for path, s in snapshot.get("spans", {}).items()
        },
        "hists": {
            name: (
                {"count": h["count"]} if name.endswith("_ns") else h
            )
            for name, h in snapshot.get("hists", {}).items()
            if keep(name)
        },
    }


def replay_into_ambient(snapshot: Dict[str, Any]) -> None:
    """Re-emit a merged snapshot into the parent's attached obs sinks."""
    if not _obs.enabled():
        return
    for name, value in snapshot.get("counters", {}).items():
        _obs.incr(name, value)
    for name, value in snapshot.get("gauges", {}).items():
        _obs.gauge(name, value)
    for name, count in snapshot.get("events", {}).items():
        # One emission per occurrence, so ambient event *counts* match the
        # serial path exactly; the workers' per-event attrs stay worker-local.
        for _ in range(count):
            _obs.event(name, replayed=True)
    for name, hist_snap in snapshot.get("hists", {}).items():
        # Whole distributions forward in one call; ambient registries end
        # up with the same histograms as the serial path's raw stream.
        _obs.hist_snapshot(name, hist_snap)
    for path, stat in snapshot.get("spans", {}).items():
        # Individual span records stayed worker-local; forward the
        # aggregates so trace files and ambient registries still see where
        # worker wall time went (``repro trace`` hotspots on sweep traces).
        _obs.span_agg(path, stat)


def merge_journals(paths: Sequence[str], plan: Any = None) -> Any:
    """Fold N shard journals into one canonical ``SweepReport``.

    ``paths`` name the journals of the shards of **one** parent plan —
    produced by ``run_sweep(plan.shard(k, n), journal=...)`` on any mix of
    hosts, in any order, each possibly chaos-struck and resumed.  The
    merged report's results (plan order), counters, gauges, event counts,
    and ambient obs replay are byte-identical to the unsharded run's:
    ``canonical_report_view(merge_journals(paths)) ==
    canonical_report_view(clean_run.snapshot())``.

    ``plan`` is optional — the journals carry everything needed (parent
    fingerprint, shard identity, parent item count, per-item outcomes).
    When given, it is cross-checked against the headers and used to
    restore per-result group keys.

    Soundness is enforced before anything is folded; each violation
    raises :class:`MergeError` naming the offending journal and exactly
    what disagrees:

    * a missing/corrupt header, or a journal of a foreign plan
      (expected vs. found fingerprints reported),
    * inconsistent shard counts, a duplicate shard, missing shards,
    * overlapping item indices between journals,
    * a torn tail (the shard must be resumed to completion first),
    * uncovered or unsettled items (``failed``/``crashed``/``cancelled``
      records mean the shard needs a ``--resume`` pass).
    """
    from .pool import ItemResult, SweepReport

    paths = list(paths)
    if not paths:
        raise MergeError("nothing to merge: no journal paths given")
    expected_fp: Optional[str] = plan.fingerprint() if plan is not None else None
    fp_source = "the plan" if plan is not None else paths[0]
    shard_count: Optional[int] = None
    plan_items: Optional[int] = None
    by_shard: Dict[int, Any] = {}
    for path in paths:
        header, records, dropped = read_journal(path)
        if header is None:
            raise MergeError(f"{path}: missing or corrupt journal header")
        fp = header.get("plan")
        k, n = tuple(header.get("shard") or (0, 1))
        if expected_fp is None:
            expected_fp = fp
        if fp != expected_fp:
            raise MergeError(
                f"{path}: journal of a foreign plan: expected fingerprint "
                f"{expected_fp!r} (from {fp_source}), found {fp!r} "
                f"(shard {k}/{n})"
            )
        if shard_count is None:
            shard_count = n
        if n != shard_count:
            raise MergeError(
                f"{path}: inconsistent shard count: this journal says "
                f"shard {k}/{n}, earlier journals say a count of {shard_count}"
            )
        header_items = int(header.get("plan_items", header.get("n_items", 0)))
        if plan_items is None:
            plan_items = header_items
        if header_items != plan_items:
            raise MergeError(
                f"{path}: inconsistent parent plan size: this journal says "
                f"{header_items} items, earlier journals say {plan_items}"
            )
        if k in by_shard:
            raise MergeError(
                f"{path}: duplicate shard {k}/{n}: already merged from "
                f"{by_shard[k][0]}"
            )
        if dropped:
            raise MergeError(
                f"{path}: torn tail ({dropped} corrupt trailing line(s)); "
                f"re-run shard {k}/{n} with --resume to complete it before "
                f"merging"
            )
        by_shard[k] = (path, records)
    missing = sorted(set(range(shard_count)) - set(by_shard))
    if missing:
        raise MergeError(
            f"missing shard(s) {missing} of a {shard_count}-shard sweep: "
            f"only shards {sorted(by_shard)} were given"
        )
    if plan is not None and plan_items != len(plan.items):
        raise MergeError(
            f"journals describe a {plan_items}-item plan but the given plan "
            f"has {len(plan.items)} items"
        )
    owner: Dict[int, str] = {}
    merged: Dict[int, JournalRecord] = {}
    for k in sorted(by_shard):
        path, records = by_shard[k]
        for index, record in records.items():
            if index in owner:
                raise MergeError(
                    f"overlapping shards: item {index} appears in both "
                    f"{owner[index]} and {path}"
                )
            owner[index] = path
            merged[index] = record
    stray = sorted(set(merged) - set(range(plan_items)))
    if stray:
        raise MergeError(
            f"item index(es) {stray[:10]} lie outside the parent plan "
            f"(plan_items = {plan_items})"
        )
    absent = sorted(set(range(plan_items)) - set(merged))
    if absent:
        raise MergeError(
            f"incomplete merge: item(s) {absent[:10]} never completed in any "
            f"shard; re-run the owning shard(s) with --resume first"
        )
    unsettled = sorted(i for i, record in merged.items() if not record.settled)
    if unsettled:
        statuses = {i: merged[i].status for i in unsettled[:10]}
        raise MergeError(
            f"unsettled item(s) {statuses}: re-run the owning shard(s) with "
            f"--resume until every item is ok/error, then merge"
        )
    groups = (
        {item.index: item.group for item in plan.items}
        if plan is not None
        else {}
    )
    results = tuple(
        ItemResult(
            index,
            merged[index].task,
            groups.get(index, ""),
            merged[index].status,
            merged[index].value,
            merged[index].error,
            merged[index].attempts,
        )
        for index in range(plan_items)
    )
    registry = Registry()
    for index in range(plan_items):
        if merged[index].snapshot:
            merge_snapshot_into(registry, merged[index].snapshot)
    # The same ambient replay a parallel run performs: `repro stats` /
    # `--trace` consumers see totals identical to the unsharded sweep.
    replay_into_ambient(registry.snapshot())
    return SweepReport(
        results=results,
        registry=registry,
        n_jobs=0,  # merged from journals, not executed here
        n_chunks=shard_count,
        chunksize=0,
        # Merging is bookkeeping over already-paid-for work; wall time is
        # the caller's concern (the benchmark gate times it externally).
        wall_seconds=0.0,
    )
