"""Deterministic merging of worker observability snapshots.

Each chunk executes under its own :func:`repro.obs.capture` — in a worker
process or inline on the serial path — and ships back the registry's
:meth:`~repro.obs.sinks.Registry.snapshot` dict.  The parent folds those
snapshots into one :class:`~repro.obs.sinks.Registry` **in chunk order**
(never completion order), so:

* counters and event counts sum to exactly the serial totals for any
  worker count and any chunking,
* gauges keep last-write-wins semantics in plan order,
* span statistics aggregate (count/total/max/errors) — counts are
  deterministic, nanosecond totals are genuine worker wall time.

:func:`replay_into_ambient` additionally re-emits the merged numbers into
whatever sinks the parent process has attached (``repro stats``'s registry,
a ``--trace`` JSONL stream), so observability consumers keep working when
the work itself happened in other processes.  Counters, gauges, and event
counts replay faithfully (events as ``replayed=True`` emissions, one per
occurrence); the workers' per-event attributes stay worker-local.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable

from ..obs import core as _obs
from ..obs.sinks import Registry, SpanStat

__all__ = [
    "canonical_report_view",
    "merge_snapshot_into",
    "merge_snapshots",
    "replay_into_ambient",
]


def merge_snapshot_into(registry: Registry, snapshot: Dict[str, Any]) -> Registry:
    """Fold one chunk snapshot into ``registry`` (see module docstring)."""
    for name, value in snapshot.get("counters", {}).items():
        registry.on_counter(name, value, {})
    for name, value in snapshot.get("gauges", {}).items():
        registry.on_gauge(name, value, {})
    for name, count in snapshot.get("events", {}).items():
        with registry._lock:
            registry.events[name] = registry.events.get(name, 0) + count
    for path, stat in snapshot.get("spans", {}).items():
        with registry._lock:
            agg = registry.spans.get(path)
            if agg is None:
                agg = registry.spans[path] = SpanStat()
            agg.count += stat["count"]
            agg.total_ns += stat["total_ns"]
            agg.max_ns = max(agg.max_ns, stat["max_ns"])
            agg.errors += stat["errors"]
    return registry


def merge_snapshots(snapshots: Iterable[Dict[str, Any]]) -> Registry:
    """A fresh registry holding the fold of ``snapshots`` in the given order."""
    registry = Registry()
    for snapshot in snapshots:
        merge_snapshot_into(registry, snapshot)
    return registry


def canonical_report_view(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """The determinism-comparable core of a ``SweepReport.snapshot()``.

    Two sweep runs of the same plan are *equivalent* iff their canonical
    views are equal — this is what the chaos suite and the CI chaos job
    compare, byte for byte, between a fault-free serial run and a
    faulted/resumed parallel run.  The view keeps every task-level fact
    (per-item status/value/error, all task counters, gauges, event counts)
    and strips only what legitimately varies between equivalent runs:

    * ``runner.*`` counters/events — the runner's own bookkeeping (chunk
      counts, retries, crash/degradation accounting) describes *how* the
      work got done, not *what* was computed,
    * span timing and wall-clock fields — genuine wall time,
    * per-item ``attempts`` — a retried item is still the same result.
    """
    def keep(name: str) -> bool:
        return not name.startswith("runner.")

    return {
        "results": [
            {
                "index": r["index"],
                "task": r["task"],
                "status": r["status"],
                "value": r["value"],
                "error": r.get("error"),
            }
            for r in snapshot.get("results", [])
        ],
        "counters": {
            k: v for k, v in snapshot.get("counters", {}).items() if keep(k)
        },
        "gauges": {
            k: v for k, v in snapshot.get("gauges", {}).items() if keep(k)
        },
        "events": {
            k: v for k, v in snapshot.get("events", {}).items() if keep(k)
        },
        "span_counts": {
            path: {"count": s["count"], "errors": s["errors"]}
            for path, s in snapshot.get("spans", {}).items()
        },
    }


def replay_into_ambient(snapshot: Dict[str, Any]) -> None:
    """Re-emit a merged snapshot into the parent's attached obs sinks."""
    if not _obs.enabled():
        return
    for name, value in snapshot.get("counters", {}).items():
        _obs.incr(name, value)
    for name, value in snapshot.get("gauges", {}).items():
        _obs.gauge(name, value)
    for name, count in snapshot.get("events", {}).items():
        # One emission per occurrence, so ambient event *counts* match the
        # serial path exactly; the workers' per-event attrs stay worker-local.
        for _ in range(count):
            _obs.event(name, replayed=True)
