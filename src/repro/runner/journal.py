"""Durable sweep journal: append-only, checksummed, resumable.

A journal makes a sweep *crash-only*: every completed item is appended to
a JSONL file the moment the parent learns its outcome, so a killed or
Ctrl-C'd run can be resumed from whatever prefix survived — nothing is
ever recomputed that was already paid for, and nothing half-written is
ever trusted.

Format (one JSON object per line):

* line 1 — a ``header`` record carrying the journal format version, the
  plan's SHA-256 :meth:`~repro.runner.plan.SweepPlan.fingerprint`, the
  item count, the shard identity ``(k, n)`` (``(0, 1)`` for an unsharded
  sweep), and the parent plan's total item count.  Resume refuses a
  journal whose fingerprint **or shard identity** does not match the plan
  being run (:class:`JournalMismatch`, reporting expected vs. found for
  both) — a stale journal silently applied to a different sweep, or a
  shard journal applied to a sibling shard, would be a correctness bug,
  not a convenience.
* one ``item`` record per completed item: index, task, status, error,
  attempt count, the item's obs snapshot, and its result value.  Values
  are pickled (base64) rather than JSON-coerced: results round-trip
  **byte-identically** (``Fraction`` stays ``Fraction``, dataclasses stay
  dataclasses), which is what lets a resumed report equal the
  uninterrupted one.  A journal is a local, trusted resume artifact — the
  same trust boundary as the process pool's own pickle stream — not an
  interchange format.

Every record ends with a ``check`` field: SHA-256 (truncated) over the
record's canonical JSON.  The reader verifies each line and **stops at the
first bad record**: an append-only file corrupts only at its tail (a crash
mid-write), so the valid prefix is exactly the trustworthy part.  Dropped
records are simply re-run on resume.

Resume skips *settled groups*, not settled items: items of one group share
a warm :class:`~repro.offline.feascache.FeasibilityCache` inside a worker,
so replaying only the missing half of a group from a cold cache would
shift cache counters away from the clean run.  Re-running incomplete
groups whole reproduces the exact hit/miss pattern — the determinism proof
in ``docs/ARCHITECTURE.md`` § Failure model leans on this.

Durability contract
-------------------

What survives which failure, and why:

* **Process kill** (SIGKILL, OOM, crash): every *appended* record survives
  — each append is one ``write`` of one line, flushed to the OS
  immediately, so the kernel owns the bytes before the next item starts.
  The tail record may be torn (the process died mid-``write``); the
  prefix-validating reader drops it and resume re-runs that item.
* **Machine crash** (power loss, kernel panic): every record up to the
  last explicit :meth:`Journal.sync` (``fsync``) survives.  The runner
  syncs on interrupt/cancel paths and on close; between syncs, records
  are flushed but not forced to media — a deliberate trade (per-item
  ``fsync`` would serialize the sweep on disk latency) that loses at most
  the since-last-sync suffix, which resume recomputes.
* **Freshly created journals** are findable after a machine crash: both
  :meth:`Journal.create` and :meth:`Journal.append_to`'s torn-tail
  rewrite fsync the **parent directory** after creating/replacing the
  file, so the directory entry itself is durable — without this, a
  crash shortly after creation could leave a correct-but-unreachable
  file (the classic create-then-crash anomaly).

Acknowledgement rule for consumers (the serve daemon's queue): a sweep is
*accepted* only after its spec file and journal entry are written and the
directory fsynced — whatever is acknowledged is durable, whatever is not
durable was never acknowledged.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import time
from dataclasses import dataclass
from typing import Any, Dict, IO, Optional, Tuple

__all__ = [
    "JOURNAL_VERSION",
    "Journal",
    "JournalError",
    "JournalMismatch",
    "JournalRecord",
    "journal_status",
    "read_journal",
    "resume",
]

JOURNAL_VERSION = 1


class JournalError(RuntimeError):
    """The journal file is unusable (bad header, wrong version)."""


class JournalMismatch(JournalError):
    """The journal belongs to a different plan than the one being run."""


def _identity(fingerprint: Optional[str], shard: Tuple[int, int]) -> str:
    """Human-readable sweep identity: plan fingerprint + ``k/n`` shard."""
    k, n = shard
    return f"plan {fingerprint!r} shard {k}/{n}"


def _fsync_dir(path: str) -> None:
    """fsync the directory containing ``path`` (durable directory entry).

    Creating or replacing a file makes its *name* durable only once the
    parent directory's metadata reaches disk; ``fsync`` on the file alone
    does not cover that.  Best-effort on platforms whose directories
    cannot be opened for reading (the data fsync still happened).
    """
    parent = os.path.dirname(os.path.abspath(path))
    try:
        fd = os.open(parent, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _checksum(payload: Dict[str, Any]) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def _encode_value(value: Any) -> Optional[str]:
    if value is None:
        return None
    return base64.b64encode(pickle.dumps(value)).decode("ascii")


def _decode_value(blob: Optional[str]) -> Any:
    if blob is None:
        return None
    return pickle.loads(base64.b64decode(blob))


@dataclass(frozen=True)
class JournalRecord:
    """One journaled item outcome (the durable twin of an ``ItemResult``)."""

    index: int
    task: str
    status: str
    value: Any
    error: Optional[str]
    attempts: int
    snapshot: Dict[str, Any]
    #: Wall-clock append time (``time.time()``); ``None`` in journals
    #: written before obs v2.  Only :func:`journal_status` consumes it —
    #: resume and merge ignore wall time entirely.
    t: Optional[float] = None

    @property
    def settled(self) -> bool:
        """True if re-running could not improve the outcome.

        ``ok`` is done; ``error`` is a deterministic task exception that
        would reproduce.  ``failed``/``crashed`` stay *unsettled* so a
        resume retries them — the crash-only story: whatever the fault,
        run the sweep again and it converges to the clean report.
        """
        return self.status in ("ok", "error")


class Journal:
    """Single-writer append handle for a sweep journal.

    The parent process is the only writer (workers ship rows back over the
    pool's result channel), so appends need no cross-process locking; each
    record is one ``write`` of one line, flushed immediately so the file
    is complete up to the last finished item even if the parent is killed
    next instruction.
    """

    def __init__(self, path: str, fh: IO[str]) -> None:
        self.path = path
        self._fh = fh

    # -- opening -------------------------------------------------------------

    @classmethod
    def create(
        cls,
        path: str,
        plan_fingerprint: str,
        n_items: int,
        shard: Tuple[int, int] = (0, 1),
        plan_items: Optional[int] = None,
    ) -> "Journal":
        """Start a fresh journal (truncates any previous file at ``path``).

        ``shard`` is the sweep's shard identity ``(k, n)`` — ``(0, 1)``
        for an unsharded run — and ``plan_items`` the *parent* plan's item
        count (defaults to ``n_items``); both are stamped into the header
        so resume and :func:`~repro.runner.merge.merge_journals` can
        validate journals without access to the original plan object.

        The header is fsynced and the parent directory entry made durable
        before returning (see *Durability contract* in the module
        docstring): once ``create`` returns, the journal survives a
        machine-level crash, not just a process kill.
        """
        k, n = shard
        fh = open(path, "w", encoding="utf-8")
        journal = cls(path, fh)
        journal._append(
            {
                "kind": "header",
                "version": JOURNAL_VERSION,
                "plan": plan_fingerprint,
                "n_items": n_items,
                "shard": [int(k), int(n)],
                "plan_items": int(n_items if plan_items is None else plan_items),
            }
        )
        journal.sync()
        _fsync_dir(path)
        return journal

    @classmethod
    def append_to(
        cls,
        path: str,
        plan_fingerprint: str,
        shard: Tuple[int, int] = (0, 1),
    ) -> "Journal":
        """Open an existing journal for appending (resume path).

        Validates the header against ``plan_fingerprint`` *and* the shard
        identity first — the error reports expected vs. found for both, so
        a resume pointed at the wrong journal (stale plan, sibling shard)
        names exactly what disagrees.  Also cuts any torn tail off the
        file: records appended *after* a corrupt line would be invisible
        to the prefix-validating reader, so the invalid suffix must go
        before new outcomes land.
        """
        header, _, dropped = read_journal(path)
        if header is None:
            raise JournalError(f"{path}: missing or corrupt journal header")
        found = (header.get("plan"), tuple(header.get("shard") or (0, 1)))
        expected = (plan_fingerprint, tuple(shard))
        if found != expected:
            raise JournalMismatch(
                f"{path}: journal belongs to a different sweep: expected "
                f"{_identity(*expected)}, found {_identity(*found)}"
            )
        if dropped:
            with open(path, "r", encoding="utf-8") as fh:
                lines = fh.readlines()
            with open(path, "w", encoding="utf-8") as fh:
                fh.writelines(lines[: len(lines) - dropped])
                fh.flush()
                os.fsync(fh.fileno())
            # The truncate-rewrite replaced the file's contents in place;
            # make the (possibly re-created) directory entry durable too.
            _fsync_dir(path)
        return cls(path, open(path, "a", encoding="utf-8"))

    # -- writing -------------------------------------------------------------

    def _append(self, payload: Dict[str, Any], corrupt: bool = False) -> None:
        payload = dict(payload)
        payload["check"] = _checksum(payload)
        line = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        if corrupt:
            # Fault injection: simulate the parent dying mid-append — the
            # record loses its tail (including the checksum) on disk.
            line = line[: max(1, len(line) - 12)]
        self._fh.write(line + "\n")
        self._fh.flush()

    def append_item(
        self,
        index: int,
        task: str,
        status: str,
        value: Any,
        error: Optional[str],
        attempts: int,
        snapshot: Dict[str, Any],
        corrupt: bool = False,
    ) -> None:
        """Append one completed item; ``corrupt=True`` injects a torn write."""
        self._append(
            {
                "kind": "item",
                "index": index,
                "task": task,
                "status": status,
                "value": _encode_value(value),
                "error": error,
                "attempts": attempts,
                "snapshot": snapshot,
                # Wall-clock stamp for `repro sweep status` throughput/ETA;
                # deliberately excluded from every determinism comparison.
                "t": round(time.time(), 3),
            },
            corrupt=corrupt,
        )

    def sync(self) -> None:
        """Flush and fsync — called before returning an interrupted report."""
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        try:
            self.sync()
        finally:
            self._fh.close()


def read_journal(
    path: str,
) -> Tuple[Optional[Dict[str, Any]], Dict[int, JournalRecord], int]:
    """Load a journal: ``(header, records by index, dropped line count)``.

    Validation is prefix-based: reading stops at the first record whose
    checksum (or JSON) does not verify, and every line after it is counted
    as dropped.  If the same index appears twice (a resumed run appended a
    fresh outcome), the **last** record wins.  A missing file yields
    ``(None, {}, 0)``.
    """
    if not os.path.exists(path):
        return None, {}, 0
    header: Optional[Dict[str, Any]] = None
    records: Dict[int, JournalRecord] = {}
    dropped = 0
    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.readlines()
    for lineno, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
            check = payload.pop("check")
            if check != _checksum(payload):
                raise ValueError("checksum mismatch")
            kind = payload["kind"]
            if kind == "header":
                if payload.get("version") != JOURNAL_VERSION:
                    raise JournalError(
                        f"{path}: unsupported journal version "
                        f"{payload.get('version')!r}"
                    )
                header = payload
            elif kind == "item":
                records[payload["index"]] = JournalRecord(
                    index=payload["index"],
                    task=payload["task"],
                    status=payload["status"],
                    value=_decode_value(payload["value"]),
                    error=payload["error"],
                    attempts=payload["attempts"],
                    snapshot=payload["snapshot"],
                    t=payload.get("t"),
                )
            else:
                raise ValueError(f"unknown record kind {kind!r}")
        except JournalError:
            raise
        except Exception:
            # Torn tail (crash mid-append) or bit rot: the valid prefix is
            # the trustworthy part — drop this line and everything after.
            dropped += len(lines) - lineno
            break
    return header, records, dropped


def journal_status(path: str) -> Dict[str, Any]:
    """Live progress of a sweep, read from its journal alone.

    The primitive behind ``repro sweep status <journal.jsonl>`` (and the
    future serve daemon's sweep-status endpoint): no plan object, no
    running process — just the durable file.  Returns a JSON-safe dict
    with the shard identity, per-status counts, retry total, how many
    items remain, and — when the item records carry wall-clock stamps —
    the observed throughput and an ETA for the remainder.

    Raises :class:`JournalError` if the file is missing or its header is
    unreadable; a torn tail is fine (reported in ``dropped``).
    """
    header, records, dropped = read_journal(path)
    if header is None:
        raise JournalError(f"{path}: missing or corrupt journal header")
    shard = [int(x) for x in (header.get("shard") or (0, 1))]
    shard_items = int(header.get("n_items", 0))
    plan_items = int(header.get("plan_items", shard_items))
    by_status: Dict[str, int] = {}
    retries = 0
    for record in records.values():
        by_status[record.status] = by_status.get(record.status, 0) + 1
        retries += max(0, record.attempts - 1)
    settled = sum(1 for r in records.values() if r.settled)
    remaining = max(0, shard_items - settled)
    stamps = sorted(r.t for r in records.values() if r.t is not None)
    elapsed = stamps[-1] - stamps[0] if len(stamps) >= 2 else None
    rate = len(stamps) / elapsed if elapsed else None
    return {
        "path": path,
        "plan": header.get("plan"),
        "shard": shard,
        "shard_items": shard_items,
        "plan_items": plan_items,
        "records": len(records),
        "settled": settled,
        "remaining": remaining,
        "by_status": dict(sorted(by_status.items())),
        "retries": retries,
        "dropped": dropped,
        "complete": remaining == 0 and not dropped,
        "elapsed_seconds": None if elapsed is None else round(elapsed, 3),
        "rate": None if rate is None else round(rate, 3),
        "eta_seconds": (
            None if rate is None else round(remaining / rate, 1)
        ),
    }


def resume(plan, journal: str, **kwargs) -> Any:
    """Resume a journaled sweep: ``run_sweep(plan, journal=…, resume=True)``.

    Settled groups are restored from the journal; everything else —
    never-run, failed, crashed, or torn-record items — is (re)executed.
    The merged report and counters provably equal the uninterrupted run's
    (``tests/test_chaos.py`` pins this for every journal prefix).
    """
    from .pool import run_sweep

    return run_sweep(plan, journal=journal, resume=True, **kwargs)
