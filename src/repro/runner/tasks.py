"""The sweep task registry: picklable-by-name work functions.

Process pools ship work by pickling, and lambdas/closures do not pickle —
so every task a :class:`~repro.runner.plan.WorkItem` can name lives here (or
is added via :func:`register_task`) and is referenced by its string name.
Each task takes the materialized instance plus the item's keyword params and
returns plain picklable data (numbers, strings, dataclasses of those).

Tasks run inside a worker's :func:`repro.obs.capture` scope, so anything
they count through the obs layer lands in the item snapshot and is merged
back into the parent's registry.

Tasks must be **idempotent and deterministic**: the crash-only runner may
execute the same item more than once — transient retries, a re-run after a
worker crash, a journal resume re-running an unsettled group — and keeps
exactly one outcome.  A task that mutated external state per call would
make retried runs diverge from clean ones.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Callable, Dict

from ..model.instance import Instance

__all__ = ["TASKS", "POLICIES", "register_task", "resolve_policy"]


def _policies() -> Dict[str, Callable]:
    from ..online.edf import EDF, NonPreemptiveEDF
    from ..online.llf import LLF
    from ..online.nonmigratory import BestFitEDF, EmptiestFitEDF, FirstFitEDF

    return {
        "edf": EDF,
        "llf": LLF,
        "npedf": NonPreemptiveEDF,
        "firstfit": FirstFitEDF,
        "bestfit": BestFitEDF,
        "emptiestfit": EmptiestFitEDF,
    }


#: Online policies sweepable by name (mirrors the CLI's policy table).
POLICIES = _policies()


def resolve_policy(name: str) -> Callable:
    try:
        return POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; known: {sorted(POLICIES)}"
        ) from None


def task_ratio_sample(instance: Instance, *, policy: str, family: str = "") -> Dict[str, Any]:
    """One competitive-ratio sample: ``machines(policy) / OPT`` on one instance.

    Returns ``None``-bearing dict for degenerate instances (empty or OPT 0)
    so aggregators can skip them exactly like the serial sweep does.
    """
    from ..offline.optimum import migratory_optimum
    from ..online.engine import min_machines

    if len(instance) == 0:
        return {"policy": policy, "family": family, "ratio": None}
    m = migratory_optimum(instance)
    if m == 0:
        return {"policy": policy, "family": family, "ratio": None}
    cls = resolve_policy(policy)
    k = min_machines(lambda _: cls(), instance)
    return {
        "policy": policy,
        "family": family,
        "m": m,
        "k": k,
        "ratio": Fraction(k, m),
    }


def task_certified_optimum(
    instance: Instance, *, speed: str = "1", backend: str = "auto"
) -> Dict[str, Any]:
    """Certified optimum of one instance; unsat instances report ``optimum=None``.

    ``backend`` is resolved before the solve and the concrete name is
    recorded in the result, so sweep snapshots say which kernel actually
    answered (``auto`` resolves identically in every worker of a run).
    """
    from ..offline.flow import resolve_backend
    from ..verify import Unsatisfiable, certified_optimum

    resolved = resolve_backend(backend)
    try:
        co = certified_optimum(instance, Fraction(speed), backend=resolved)
    except Unsatisfiable:
        return {"optimum": None, "unsat": True, "backend": resolved}
    return {"optimum": co.machines, "unsat": False, "backend": resolved}


def task_min_machines(instance: Instance, *, policy: str, speed: str = "1") -> int:
    """Minimum machine count at which the named policy succeeds."""
    from ..online.engine import min_machines

    cls = resolve_policy(policy)
    return min_machines(lambda _: cls(), instance, speed=Fraction(speed))


def task_differential_optimum(
    instance: Instance,
    *,
    speed: str = "1",
    use_lp: bool = True,
    backends=None,
    lp_deadline: float = None,
):
    """Differential cross-check at the certified optimum (records tuple).

    ``lp_deadline`` bounds the advisory LP leg per probe; a pathological LP
    shows up as a ``("timeout", …)`` leg in the record's timings instead of
    eating the whole item deadline.
    """
    from ..offline.flow import available_backends
    from ..verify.differential import differential_optimum

    report = differential_optimum(
        instance,
        Fraction(speed),
        backends=backends or available_backends(),
        use_lp=use_lp,
        lp_deadline=lp_deadline,
    )
    return report.records


def task_corpus_case(
    instance: Instance,
    *,
    name: str,
    speed: str = "1",
    expect_optimum=None,
    unsat: bool = False,
) -> Dict[str, Any]:
    """Re-verify one golden-corpus case against its expectation."""
    from ..verify import Unsatisfiable, certified_optimum, check_certificate

    result: Dict[str, Any] = {"name": name, "speed": speed, "ok": False}
    try:
        co = certified_optimum(instance, Fraction(speed))
    except Unsatisfiable as exc:
        result["unsat"] = True
        result["ok"] = unsat and check_certificate(instance, exc.certificate).ok
        return result
    result["optimum"] = co.machines
    checks = [check_certificate(instance, co.feasible).ok]
    if co.infeasible is not None:
        checks.append(check_certificate(instance, co.infeasible).ok)
    result["ok"] = (
        not unsat
        and (expect_optimum is None or co.machines == expect_optimum)
        and all(checks)
    )
    return result


#: Name → callable registry used by the pool workers.
TASKS: Dict[str, Callable[..., Any]] = {
    "ratio_sample": task_ratio_sample,
    "certified_optimum": task_certified_optimum,
    "min_machines": task_min_machines,
    "differential_optimum": task_differential_optimum,
    "corpus_case": task_corpus_case,
}


def register_task(name: str, fn: Callable[..., Any]) -> Callable[..., Any]:
    """Register a custom task (must be a module-level, picklable function).

    With the default fork start method workers inherit the parent's
    registry, so tests and scripts may register tasks at runtime; under
    spawn the registration must happen at import time of a module the
    worker also imports.
    """
    TASKS[name] = fn
    return fn
