"""Substrate: event-driven online simulation engine and classic policies."""

from .base import EngineError, InfeasibleOnline, JobState, Policy
from .edf import EDF, NonPreemptiveEDF, stable_machine_assignment
from .engine import OnlineEngine, min_machines, simulate, succeeds
from .doubling import (
    DoublingPolicy,
    FirstFitAssigner,
    LaminarAssigner,
    run_doubling,
)
from .llf import LLF
from .nonmigratory import (
    BestFitEDF,
    CommitAtReleasePolicy,
    DeferredEDF,
    EmptiestFitEDF,
    FirstFitEDF,
    SeededRandomFit,
    local_edf_feasible,
    machine_workload,
)

__all__ = [
    "EngineError",
    "InfeasibleOnline",
    "JobState",
    "Policy",
    "EDF",
    "NonPreemptiveEDF",
    "stable_machine_assignment",
    "OnlineEngine",
    "min_machines",
    "simulate",
    "succeeds",
    "LLF",
    "DoublingPolicy",
    "FirstFitAssigner",
    "LaminarAssigner",
    "run_doubling",
    "SeededRandomFit",
    "DeferredEDF",
    "BestFitEDF",
    "CommitAtReleasePolicy",
    "EmptiestFitEDF",
    "FirstFitEDF",
    "local_edf_feasible",
    "machine_workload",
]
