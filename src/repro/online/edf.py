"""Earliest Deadline First — the classic migratory baseline.

Phillips et al. showed EDF has competitive ratio ``Ω(Δ)`` for machine
minimization (it is the weak baseline the paper contrasts with LLF), but it
is *optimal* for α-loose instances up to the factor of Theorem 13:
EDF on ``m/(1−α)²`` machines schedules any α-loose instance feasibly, and on
agreeable instances it never preempts a started job (Corollary 1).
"""

from __future__ import annotations

from typing import Dict, Sequence

from .base import JobState, Policy
from .engine import OnlineEngine


def stable_machine_assignment(
    engine: OnlineEngine, chosen_ids: Sequence[int]
) -> Dict[int, int]:
    """Map chosen jobs to machines, keeping already-running jobs in place.

    Keeps migrations and preemptions at representation minimum: a job that
    was running in the previous slice and is chosen again stays on its
    machine; the rest fill the free machines in index order.
    """
    previous = getattr(engine, "_running", {})
    job_to_machine = {job_id: machine for machine, job_id in previous.items()}
    selection: Dict[int, int] = {}
    unplaced = []
    for job_id in chosen_ids:
        machine = job_to_machine.get(job_id)
        if machine is not None and machine < engine.machines and machine not in selection:
            selection[machine] = job_id
        else:
            unplaced.append(job_id)
    free = (m for m in range(engine.machines) if m not in selection)
    for job_id in unplaced:
        machine = next(free)
        selection[machine] = job_id
    return selection


class EDF(Policy):
    """Migratory EDF: run the ``k`` unfinished jobs with earliest deadlines."""

    migratory = True

    def select(self, engine: OnlineEngine) -> Dict[int, int]:
        active = sorted(
            engine.active_jobs(), key=lambda s: (s.job.deadline, s.job.id)
        )
        chosen = [s.job.id for s in active[: engine.machines]]
        return stable_machine_assignment(engine, chosen)


class NonPreemptiveEDF(Policy):
    """EDF that never preempts a started job.

    On agreeable instances plain EDF already has this property (Corollary 1);
    this policy enforces it on arbitrary instances, yielding the
    non-preemptive baseline used in Section 6.  Started jobs keep their
    machine; free machines take the unstarted active jobs with the earliest
    deadlines.  Non-preemptive schedules are trivially non-migratory.
    """

    migratory = False

    def select(self, engine: OnlineEngine) -> Dict[int, int]:
        selection: Dict[int, int] = {}
        busy_jobs = set()
        for state in engine.active_jobs():
            if state.started_at is not None and state.remaining > 0:
                machine = state.committed
                if machine is None:  # pragma: no cover - bound at first start
                    raise RuntimeError("started job without commitment")
                selection[machine] = state.job.id
                busy_jobs.add(state.job.id)
        waiting = sorted(
            (
                s
                for s in engine.active_jobs()
                if s.job.id not in busy_jobs and s.started_at is None
            ),
            key=lambda s: (s.job.deadline, s.job.id),
        )
        free = [m for m in range(engine.machines) if m not in selection]
        for machine, state in zip(free, waiting):
            selection[machine] = state.job.id
        return selection
