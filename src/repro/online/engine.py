"""Event-driven continuous-time simulator for online machine minimization.

The engine advances the clock from event to event; between events every
machine processes one fixed job at the machine speed.  Events are:

* job releases (known in advance only to the engine, not the policy),
* job completions,
* deadlines of unfinished jobs (so misses are detected at the exact time),
* policy wake-ups (:meth:`~repro.online.base.Policy.next_wakeup`),
* explicit ``run_until`` horizons requested by a driver.

The engine supports **incremental driving**: adaptive adversaries (Lemma 2,
Lemma 9) interleave ``release()`` / ``run_until()`` calls with inspection of
policy commitments and remaining processing times.  ``simulate()`` is the
batch convenience wrapper used by everything else.

All time arithmetic is exact (:class:`fractions.Fraction`).
"""

from __future__ import annotations

import heapq
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..model.instance import Instance
from ..model.intervals import Numeric, to_fraction
from ..model.job import Job
from ..model.schedule import Schedule, Segment
from ..obs import core as _obs
from .base import EngineError, InfeasibleOnline, JobState, Policy

_MAX_EVENTS_FACTOR = 2000  # safety valve against pathological policies


class TraceEvent:
    """One decision point of a traced run (see ``OnlineEngine(trace=True)``)."""

    __slots__ = ("time", "running", "admitted", "completed", "missed")

    def __init__(self, time, running, admitted, completed, missed):
        self.time = time
        self.running = running  # machine -> job_id at this decision point
        self.admitted = admitted  # job ids released at this instant
        self.completed = completed  # job ids finished at slice end
        self.missed = missed  # job ids missed at slice end

    def __repr__(self):  # pragma: no cover - debugging aid
        return (f"TraceEvent(t={self.time}, running={self.running}, "
                f"+{self.admitted} ✓{self.completed} ✗{self.missed})")


class OnlineEngine:
    """Simulates a :class:`Policy` on ``machines`` speed-``speed`` machines."""

    def __init__(
        self,
        policy: Policy,
        machines: int,
        speed: Numeric = 1,
        on_miss: str = "record",
        trace: bool = False,
        migration_cost: Numeric = 0,
    ) -> None:
        if machines < 0:
            raise ValueError("machine count must be non-negative")
        if on_miss not in ("record", "raise"):
            raise ValueError("on_miss must be 'record' or 'raise'")
        self.policy = policy
        self.machines = machines
        self.speed = to_fraction(speed)
        self.on_miss = on_miss
        #: extra work a job incurs each time it resumes on a new machine
        #: (the practical overhead the paper's non-migratory model avoids)
        self.migration_cost = to_fraction(migration_cost)
        if self.migration_cost < 0:
            raise ValueError("migration cost must be non-negative")
        self.time: Fraction = Fraction(0)
        self._started = False
        self.jobs: Dict[int, JobState] = {}
        self._pending: List[Tuple[Fraction, int]] = []  # (release, job_id) heap
        #: released, unfinished, unmissed jobs (the hot set; see active_jobs)
        self._active: Dict[int, JobState] = {}
        #: (deadline, job_id) heap over active jobs, with lazy deletion
        self._deadlines: List[Tuple[Fraction, int]] = []
        self.segments: List[Segment] = []
        self.missed_jobs: List[int] = []
        self._event_budget = 10_000
        #: running map chosen at the current decision point
        self._running: Dict[int, int] = {}
        #: machine → ids of jobs committed to it (kept by commit/binding);
        #: with _job_seq this answers machine_jobs in O(jobs on machine)
        #: instead of the O(all jobs) scan it replaced
        self._machine_index: Dict[int, Set[int]] = {}
        #: job id → insertion rank, so index-backed listings keep the exact
        #: enumeration order of the old full scans (self.jobs is ordered)
        self._job_seq: Dict[int, int] = {}
        #: machines that ever got a commitment or processed work
        self._ever_used: Set[int] = set()
        #: decision-point log when constructed with ``trace=True``
        self.trace: Optional[List[TraceEvent]] = [] if trace else None

    # -- driver API ----------------------------------------------------------

    def release(self, jobs: Iterable[Job]) -> None:
        """Add jobs to the simulation (releases must not lie in the past)."""
        for job in jobs:
            if job.id in self.jobs:
                raise EngineError(f"job id {job.id} released twice")
            if self._started and job.release < self.time:
                raise EngineError(
                    f"job {job.id} released at {job.release} < current time {self.time}"
                )
            self._job_seq[job.id] = len(self.jobs)
            self.jobs[job.id] = JobState(job=job, remaining=job.processing)
            heapq.heappush(self._pending, (job.release, job.id))
            self._event_budget += _MAX_EVENTS_FACTOR
        if not self._started and self._pending:
            self.time = min(self.time, self._pending[0][0])
        # jobs released at or before the current time become visible (and
        # are offered to the policy for commitment) immediately
        if self._pending and self._pending[0][0] <= self.time:
            self._admit_releases()

    def run_until(self, horizon: Numeric) -> None:
        """Advance the simulation to exactly ``horizon``."""
        horizon = to_fraction(horizon)
        if horizon < self.time:
            raise EngineError(f"cannot run backwards to {horizon}")
        while self.time < horizon:
            self._step(limit=horizon)
        self._started = True
        # settle: admit releases due exactly at the horizon and check misses,
        # so drivers (adversaries) observe commitments made at this instant
        self._admit_releases()
        self._check_misses()

    def run_to_completion(self) -> None:
        """Advance until no active jobs or pending releases remain."""
        while self._pending or self._active:
            self._step(limit=None)

    # -- inspection API (used by policies and adversaries) ---------------------

    def active_jobs(self) -> List[JobState]:
        """Released, unfinished, unmissed jobs at the current time."""
        return list(self._active.values())

    def state_of(self, job_id: int) -> JobState:
        return self.jobs[job_id]

    def remaining(self, job_id: int) -> Fraction:
        return self.jobs[job_id].remaining

    def committed_machine(self, job_id: int) -> Optional[int]:
        return self.jobs[job_id].committed

    def _bind(self, job_id: int, machine: int) -> None:
        """Record a commitment in the machine index (idempotent)."""
        bucket = self._machine_index.get(machine)
        if bucket is None:
            bucket = self._machine_index[machine] = set()
        bucket.add(job_id)
        self._ever_used.add(machine)

    def machine_jobs(self, machine: int) -> List[JobState]:
        """Jobs committed to ``machine`` (finished ones included).

        Served from the commitment index in O(jobs on the machine); the
        enumeration order matches the old full scan (release order).
        """
        if _obs.enabled():
            _obs.incr("engine.machine_queries")
        ids = self._machine_index.get(machine)
        if not ids:
            return []
        return [self.jobs[i] for i in sorted(ids, key=self._job_seq.__getitem__)]

    def machine_active_jobs(self, machine: int) -> List[JobState]:
        if _obs.enabled():
            _obs.incr("engine.machine_queries")
        ids = self._machine_index.get(machine)
        if not ids:
            return []
        return [
            self.jobs[i]
            for i in sorted(ids, key=self._job_seq.__getitem__)
            if i in self._active
        ]

    @property
    def used_machines(self) -> Set[int]:
        """Machines that have a commitment or ever processed a job."""
        if _obs.enabled():
            _obs.incr("engine.machine_queries")
        return set(self._ever_used)

    def schedule(self) -> Schedule:
        return Schedule(self.segments)

    def poll_selection(self) -> Dict[int, int]:
        """Evaluate the policy's selection at the current instant.

        Advances no time but applies the selection's side effects — in
        particular, first-processing machine *bindings* of non-migratory
        policies.  Drivers use this to observe commitments that would
        otherwise only materialize in the next step (e.g. a procrastinating
        policy binding exactly at ``a_j``).
        """
        self._admit_releases()
        self._check_misses()
        return self._validated_selection()

    # -- policy API ------------------------------------------------------------

    def commit(self, job_id: int, machine: int) -> None:
        """Bind a job to a machine (how non-migratory policies choose)."""
        if not (0 <= machine < self.machines):
            raise EngineError(f"machine {machine} out of range 0..{self.machines - 1}")
        state = self.jobs[job_id]
        if state.committed is not None and state.committed != machine:
            raise EngineError(
                f"job {job_id} already committed to machine {state.committed}"
            )
        state.committed = machine
        self._bind(job_id, machine)

    def add_machines(self, count: int = 1) -> int:
        """Open additional machines; returns the new machine count."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self.machines += count
        if count:
            _obs.incr("engine.machines_opened", count)
        return self.machines

    # -- core loop ---------------------------------------------------------------

    def _admit_releases(self) -> None:
        """Move pending jobs whose release time has come; fire on_release."""
        batch: List[JobState] = []
        while self._pending and self._pending[0][0] <= self.time:
            _, job_id = heapq.heappop(self._pending)
            state = self.jobs[job_id]
            self._active[job_id] = state
            heapq.heappush(self._deadlines, (state.job.deadline, job_id))
            batch.append(state)
        if batch:
            self.policy.on_release(self, batch)
            _obs.incr("engine.releases", len(batch))
        self._last_admitted = tuple(s.job.id for s in batch)

    def _check_misses(self) -> None:
        while self._deadlines and self._deadlines[0][0] <= self.time:
            _, job_id = heapq.heappop(self._deadlines)
            state = self.jobs[job_id]
            if state.finished or state.missed:
                continue  # stale heap entry
            if state.remaining > 0:
                state.missed = True
                self._active.pop(job_id, None)
                self.missed_jobs.append(job_id)
                if self.on_miss == "raise":
                    raise InfeasibleOnline(
                        f"job {job_id} missed deadline {state.job.deadline} "
                        f"with {state.remaining} work left"
                    )

    def _validated_selection(self) -> Dict[int, int]:
        selection = self.policy.select(self)
        seen_jobs: Set[int] = set()
        for machine, job_id in selection.items():
            if not (0 <= machine < self.machines):
                raise EngineError(f"selection uses machine {machine} out of range")
            if job_id in seen_jobs:
                raise EngineError(f"job {job_id} selected on two machines")
            seen_jobs.add(job_id)
            state = self.jobs.get(job_id)
            if state is None:
                raise EngineError(f"selection references unknown job {job_id}")
            if state.job.release > self.time:
                raise EngineError(f"job {job_id} selected before its release")
            if not state.active or state.remaining <= 0:
                raise EngineError(f"job {job_id} selected but not runnable")
            if state.committed is not None and state.committed != machine:
                raise EngineError(
                    f"job {job_id} committed to machine {state.committed}, "
                    f"selected on {machine}"
                )
            if not self.policy.migratory and state.committed is None:
                # first processing binds the job for non-migratory policies
                state.committed = machine
                self._bind(job_id, machine)
        return selection

    def _next_event(self, selection: Dict[int, int], limit: Optional[Fraction]) -> Fraction:
        candidates: List[Fraction] = []
        if self._pending:
            candidates.append(self._pending[0][0])
        for machine, job_id in selection.items():
            state = self.jobs[job_id]
            candidates.append(self.time + state.remaining / self.speed)
        while self._deadlines and (
            self.jobs[self._deadlines[0][1]].finished
            or self.jobs[self._deadlines[0][1]].missed
        ):
            heapq.heappop(self._deadlines)  # drop stale entries
        if self._deadlines and self._deadlines[0][0] > self.time:
            candidates.append(self._deadlines[0][0])
        wake = self.policy.next_wakeup(self)
        if wake is not None:
            wake = to_fraction(wake)
            if wake > self.time:
                candidates.append(wake)
        if limit is not None:
            candidates.append(limit)
        future = [c for c in candidates if c > self.time]
        if not future:
            raise EngineError("engine stalled: no future events")
        return min(future)

    def _step(self, limit: Optional[Fraction]) -> None:
        """Process one inter-event slice of time."""
        self._started = True
        self._event_budget -= 1
        if self._event_budget <= 0:
            raise EngineError("event budget exhausted; policy may be thrashing")
        if not self._pending and not self.jobs:
            if limit is not None:
                self.time = limit
            return
        if self._pending and not self.active_jobs() and self._pending[0][0] > self.time:
            # nothing runnable: jump to the next release (bounded by limit)
            target = self._pending[0][0]
            self.time = min(target, limit) if limit is not None else target
        self._admit_releases()
        self._check_misses()
        selection = self._validated_selection()
        prev_running = self._running
        self._running = dict(selection)
        # migration penalties land when a job resumes on a different machine
        migrations = 0
        for machine, job_id in selection.items():
            state = self.jobs[job_id]
            if state.last_machine is not None and state.last_machine != machine:
                state.migration_count += 1
                migrations += 1
                if self.migration_cost > 0:
                    state.remaining += self.migration_cost
                    state.overhead += self.migration_cost
            state.last_machine = machine
        if _obs.enabled():
            _obs.incr("engine.steps")
            if migrations:
                _obs.incr("engine.migrations", migrations)
            # Preempted: ran at the previous decision point, still has work
            # and a live deadline, but lost its machine at this one.
            selected = set(selection.values())
            preempted = sum(
                1 for jid in prev_running.values()
                if jid not in selected and jid in self._active
            )
            if preempted:
                _obs.incr("engine.preemptions", preempted)
        if not selection and not self._pending and not self.active_jobs():
            # nothing left to do in this slice
            if limit is not None:
                self.time = limit
            return
        if limit is not None and self.time >= limit:
            return
        nxt = self._next_event(selection, limit)
        if limit is not None and nxt > limit:
            nxt = limit  # never process past an explicit horizon
        for machine, job_id in selection.items():
            state = self.jobs[job_id]
            self.segments.append(Segment(job_id, machine, self.time, nxt))
            if state.started_at is None:
                state.started_at = self.time
            state.machines.add(machine)
            self._ever_used.add(machine)
            state.remaining -= (nxt - self.time) * self.speed
            if state.remaining < 0:
                # completion strictly inside the slice is impossible: the
                # completion time was an event candidate, so nxt ≤ finish.
                raise EngineError("negative remaining work")  # pragma: no cover
        start_time = self.time
        self.time = nxt
        completed = []
        for machine, job_id in selection.items():
            state = self.jobs[job_id]
            if state.remaining == 0 and not state.finished:
                state.finished_at = self.time
                self._active.pop(job_id, None)
                completed.append(job_id)
        missed_before = len(self.missed_jobs)
        self._check_misses()
        newly_missed = tuple(self.missed_jobs[missed_before:])
        admitted = getattr(self, "_last_admitted", ())
        if self.trace is not None:
            self.trace.append(
                TraceEvent(
                    time=start_time,
                    running=dict(selection),
                    admitted=admitted,
                    completed=tuple(completed),
                    missed=newly_missed,
                )
            )
            self._last_admitted = ()
        if _obs.enabled():
            if completed:
                _obs.incr("engine.completions", len(completed))
            if newly_missed:
                _obs.incr("engine.misses", len(newly_missed))
            _obs.event(
                "engine.decision",
                t=str(start_time),
                machines=len(selection),
                admitted=len(admitted),
                completed=len(completed),
                missed=len(newly_missed),
            )


def simulate(
    policy: Policy,
    instance: Instance,
    machines: int,
    speed: Numeric = 1,
    on_miss: str = "record",
) -> OnlineEngine:
    """Run ``policy`` on a static instance to completion; returns the engine."""
    engine = OnlineEngine(policy, machines=machines, speed=speed, on_miss=on_miss)
    with _obs.span("engine.simulate", policy=type(policy).__name__,
                   machines=machines, n=len(instance)):
        engine.release(instance)
        engine.run_to_completion()
    return engine


def succeeds(policy: Policy, instance: Instance, machines: int, speed: Numeric = 1) -> bool:
    """True iff the policy schedules the instance with no deadline miss."""
    try:
        engine = simulate(policy, instance, machines, speed, on_miss="raise")
    except InfeasibleOnline:
        return False
    except EngineError:
        return False
    return not engine.missed_jobs


def min_machines(
    policy_factory,
    instance: Instance,
    lo: int = 1,
    hi: Optional[int] = None,
    speed: Numeric = 1,
) -> int:
    """Least machine count at which ``policy_factory(k)`` succeeds.

    Assumes success is monotone in the machine count (true for every policy
    in this repo); performs binary search with a geometric upper-bound scan.
    A fresh policy instance is created per trial via ``policy_factory(k)``.
    """
    if len(instance) == 0:
        return 0
    if hi is None:
        hi = max(lo, 1)
        while not succeeds(policy_factory(hi), instance, hi, speed):
            hi *= 2
            if hi > 4 * len(instance) + 64:
                raise RuntimeError("policy does not succeed at any sane machine count")
    lo = max(1, lo)
    while lo < hi:
        mid = (lo + hi) // 2
        if succeeds(policy_factory(mid), instance, mid, speed):
            hi = mid
        else:
            lo = mid + 1
    return lo
