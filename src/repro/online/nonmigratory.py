"""Non-migratory online policies: commit-at-release + machine-local EDF.

The paper's model (Section 2) requires each job to be processed by exactly
one machine.  Every non-migratory policy here commits the machine at release
time and then runs preemptive EDF *locally* on each machine, which is
optimal per machine once the partition is fixed.

Admission is decided by an exact machine-local feasibility oracle: a set of
released jobs with remaining work is EDF-feasible on a speed-``s`` machine
iff for every deadline ``d``, the remaining work of jobs due by ``d`` fits
in ``s · (d − t)``.  (All candidate jobs are already released, so this
classical condition is exact.)
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from ..model.intervals import Numeric, to_fraction
from ..model.job import Job
from .base import EngineError, JobState, Policy
from .engine import OnlineEngine


def local_edf_feasible(
    t: Fraction,
    workload: Sequence[Tuple[Fraction, Fraction]],
    speed: Fraction,
) -> bool:
    """Feasibility of released work on one machine from time ``t``.

    ``workload`` is a list of ``(deadline, remaining_work)`` pairs, all
    released by ``t``.  EDF meets all deadlines iff for every deadline ``d``:
    ``Σ_{d_i ≤ d} remaining_i ≤ speed · (d − t)``.
    """
    acc = Fraction(0)
    for deadline, work in sorted(workload):
        acc += work
        if acc > speed * (deadline - t):
            return False
    return True


def machine_workload(engine: OnlineEngine, machine: int) -> List[Tuple[Fraction, Fraction]]:
    """(deadline, remaining) of the active jobs committed to ``machine``."""
    return [
        (s.job.deadline, s.remaining)
        for s in engine.machine_active_jobs(machine)
        if s.remaining > 0
    ]


class CommitAtReleasePolicy(Policy):
    """Shared scaffolding: commit on release, run machine-local EDF."""

    migratory = False

    def on_release(self, engine: OnlineEngine, jobs: Sequence[JobState]) -> None:
        for state in sorted(jobs, key=lambda s: (s.job.deadline, s.job.id)):
            machine = self.choose_machine(engine, state)
            if machine is None:
                machine = self.fallback_machine(engine, state)
            engine.commit(state.job.id, machine)

    def choose_machine(self, engine: OnlineEngine, state: JobState) -> Optional[int]:
        """Return a machine for the job, or ``None`` if no machine admits it."""
        raise NotImplementedError

    def fallback_machine(self, engine: OnlineEngine, state: JobState) -> int:
        """Where to put a job no machine admits (least-loaded by work)."""
        loads = [Fraction(0)] * engine.machines
        for s in engine.jobs.values():
            if s.committed is not None and s.active:
                loads[s.committed] += s.remaining
        return min(range(engine.machines), key=lambda m: (loads[m], m))

    def select(self, engine: OnlineEngine) -> Dict[int, int]:
        selection: Dict[int, int] = {}
        for machine in range(engine.machines):
            candidates = engine.machine_active_jobs(machine)
            runnable = [s for s in candidates if s.remaining > 0]
            if runnable:
                best = min(runnable, key=lambda s: (s.job.deadline, s.job.id))
                selection[machine] = best.job.id
        return selection


class FirstFitEDF(CommitAtReleasePolicy):
    """Commit to the lowest-index machine whose local EDF stays feasible."""

    def choose_machine(self, engine: OnlineEngine, state: JobState) -> Optional[int]:
        t = engine.time
        for machine in range(engine.machines):
            workload = machine_workload(engine, machine)
            workload.append((state.job.deadline, state.remaining))
            if local_edf_feasible(t, workload, engine.speed):
                return machine
        return None


class BestFitEDF(CommitAtReleasePolicy):
    """Commit to the feasible machine with the most committed work (tightest fit)."""

    def choose_machine(self, engine: OnlineEngine, state: JobState) -> Optional[int]:
        t = engine.time
        best_machine: Optional[int] = None
        best_load = Fraction(-1)
        for machine in range(engine.machines):
            workload = machine_workload(engine, machine)
            load = sum((w for _, w in workload), Fraction(0))
            workload.append((state.job.deadline, state.remaining))
            if local_edf_feasible(t, workload, engine.speed):
                if load > best_load:
                    best_load = load
                    best_machine = machine
        return best_machine


class DeferredEDF(Policy):
    """Procrastinating non-migratory policy: commits only at ``a_j``.

    The paper's lower-bound argument observes that *any* non-migratory
    algorithm must bind a job to a machine by its latest start time
    ``a_j = r_j + ℓ_j``.  This policy defers exactly that long (the engine
    binds a job at its first processing), so it exercises the adversary's
    deferred-commitment path: no machine information exists at release time.

    Started jobs run machine-local EDF; an unstarted job is placed on a free
    machine only once its laxity hits zero (then it runs continuously).
    """

    migratory = False

    def select(self, engine: OnlineEngine) -> Dict[int, int]:
        t = engine.time
        selection: Dict[int, int] = {}
        committed = []
        urgent = []
        for state in engine.active_jobs():
            if state.committed is not None:
                committed.append(state)
            elif state.laxity_at(t) <= 0:
                urgent.append(state)
        by_machine: Dict[int, List[JobState]] = {}
        for state in committed:
            by_machine.setdefault(state.committed, []).append(state)
        for machine, states in by_machine.items():
            best = min(states, key=lambda s: (s.job.deadline, s.job.id))
            selection[machine] = best.job.id
        free = (m for m in range(engine.machines) if m not in selection)
        for state in sorted(urgent, key=lambda s: (s.job.deadline, s.job.id)):
            machine = next(free, None)
            if machine is None:
                break  # no machine left: the job will miss (lazy is risky)
            selection[machine] = state.job.id
        return selection

    def next_wakeup(self, engine: OnlineEngine):
        """Wake at the next latest-start time of an uncommitted job."""
        t = engine.time
        starts = [
            t + s.laxity_at(t)
            for s in engine.active_jobs()
            if s.committed is None and s.laxity_at(t) > 0
        ]
        return min(starts) if starts else None


class SeededRandomFit(CommitAtReleasePolicy):
    """Commit to a uniformly random *feasible* machine (seeded).

    Used to probe the Lemma 2 adversary against arbitrary (rather than
    greedy) commitment behaviour: the lower bound holds for every
    deterministic algorithm, and a seeded random policy is deterministic
    once the seed is fixed.
    """

    def __init__(self, seed: int = 0) -> None:
        import random

        self._rng = random.Random(seed)

    def choose_machine(self, engine: OnlineEngine, state: JobState) -> Optional[int]:
        t = engine.time
        feasible = []
        for machine in range(engine.machines):
            workload = machine_workload(engine, machine)
            workload.append((state.job.deadline, state.remaining))
            if local_edf_feasible(t, workload, engine.speed):
                feasible.append(machine)
        if not feasible:
            return None
        return self._rng.choice(feasible)


class EmptiestFitEDF(CommitAtReleasePolicy):
    """Commit to the feasible machine with the least committed work.

    A spreading policy: it is the natural worst case for the Lemma 2
    adversary, which punishes algorithms for scattering jobs over machines.
    """

    def choose_machine(self, engine: OnlineEngine, state: JobState) -> Optional[int]:
        t = engine.time
        best_machine: Optional[int] = None
        best_load: Optional[Fraction] = None
        for machine in range(engine.machines):
            workload = machine_workload(engine, machine)
            load = sum((w for _, w in workload), Fraction(0))
            workload.append((state.job.deadline, state.remaining))
            if local_edf_feasible(t, workload, engine.speed):
                if best_load is None or load < best_load:
                    best_load = load
                    best_machine = machine
        return best_machine
