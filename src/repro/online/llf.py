"""Least Laxity First — the strong migratory baseline of Phillips et al.

LLF runs, at every point in time, the ``k`` unfinished jobs of smallest
laxity ``ℓ_j(t) = d_j − t − p_j(t)``.  Phillips et al. proved LLF is
``O(log Δ)``-competitive for machine minimization, versus EDF's ``Ω(Δ)``;
experiment E-BL reproduces this separation.

A running job's laxity is constant while it runs (deadline and remaining
work both recede), while a waiting job's laxity falls at unit rate.  A
priority inversion can therefore appear strictly between releases and
completions; :meth:`LLF.next_wakeup` computes the earliest crossover time in
closed form so the event-driven engine never misses a swap.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from .base import JobState, Policy
from .edf import stable_machine_assignment
from .engine import OnlineEngine


class LLF(Policy):
    """Migratory Least Laxity First with exact crossover wake-ups."""

    migratory = True

    def _ranked(self, engine: OnlineEngine) -> List[Tuple[Fraction, int, JobState]]:
        t = engine.time
        return sorted(
            ((s.laxity_at(t), s.job.id, s) for s in engine.active_jobs()),
            key=lambda item: (item[0], item[1]),
        )

    def select(self, engine: OnlineEngine) -> Dict[int, int]:
        ranked = self._ranked(engine)
        chosen = [s.job.id for _, _, s in ranked[: engine.machines]]
        return stable_machine_assignment(engine, chosen)

    def next_wakeup(self, engine: OnlineEngine) -> Optional[Fraction]:
        """Earliest future time a waiting job's laxity undercuts a running one.

        Running jobs keep laxity constant; a waiting job's laxity decreases
        at rate one.  The first inversion with the *largest* running laxity
        happens after exactly ``ℓ_wait(t) − max ℓ_run(t)`` time units (only
        relevant when all machines are busy and someone waits).
        """
        ranked = self._ranked(engine)
        k = engine.machines
        if len(ranked) <= k or k == 0:
            return None
        max_running_laxity = ranked[k - 1][0]
        min_waiting_laxity = ranked[k][0]
        gap = min_waiting_laxity - max_running_laxity
        wakeups = []
        if gap > 0:
            wakeups.append(engine.time + gap)
        # Safety wake-up: a waiting job whose laxity reaches zero must start
        # immediately; with laxity ties (gap == 0) the id tie-break holds the
        # current choice until then (continuous-time LLF is ill-defined under
        # ties; this is the standard deterministic discretization).
        for laxity, _, _ in ranked[k:]:
            if laxity > 0:
                wakeups.append(engine.time + laxity)
                break  # ranked by laxity: the first positive one is minimal
        future = [w for w in wakeups if w > engine.time]
        return min(future) if future else None
