"""Online guess-and-double for the unknown optimum ``m``.

Section 2 of the paper: *"Throughout this paper we assume that the optimum
number of machines is known to the online algorithm.  It has been shown in
[4] that we can do so at the loss of a small constant factor."*  This module
makes that reduction executable.

The wrapper maintains a guess ``μ`` and a *phase* — a dedicated machine
range of size ``budget_fn(μ)`` managed by a fresh per-phase assigner.  When
the assigner rejects a job (its phase budget cannot absorb it), the guess
doubles and a new phase opens; committed jobs never move (the schedule stays
non-migratory).  Since phase sizes grow geometrically, the total machine
count is at most ``Σ_{i ≤ log₂ m̂} budget_fn(2^i) ≤ 2·budget_fn(2·m̂)`` for
linear budgets, i.e. a constant factor over the known-``m`` algorithm.

Two assigners are provided:

* :class:`FirstFitAssigner` — the general-purpose EDF-admission first fit,
* :class:`LaminarAssigner` — the Section 5 budget scheme, scoped per phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..model.instance import paper_order_key
from ..model.job import Job
from .base import EngineError, JobState, Policy
from .engine import OnlineEngine
from .nonmigratory import local_edf_feasible


class PhaseAssigner:
    """Assignment logic for one phase's machine range."""

    def assign(
        self, engine: OnlineEngine, state: JobState, machines: Sequence[int]
    ) -> Optional[int]:
        """Return a machine from ``machines`` or ``None`` to reject."""
        raise NotImplementedError


class FirstFitAssigner(PhaseAssigner):
    """EDF-admission first fit within the phase's machine range."""

    def assign(self, engine, state, machines):
        t = engine.time
        for machine in machines:
            workload = [
                (s.job.deadline, s.remaining)
                for s in engine.machine_active_jobs(machine)
                if s.remaining > 0
            ]
            workload.append((state.job.deadline, state.remaining))
            if local_edf_feasible(t, workload, engine.speed):
                return machine
        return None


class LaminarAssigner(PhaseAssigner):
    """The Section 5.1 budget scheme scoped to one phase.

    Identical logic to :class:`~repro.core.laminar.LaminarBudgetPolicy` but
    returning ``None`` instead of raising when every budget is exhausted,
    so the doubling wrapper can move to the next phase.
    """

    def __init__(self) -> None:
        self._assigned: Dict[int, List[Job]] = {}
        self._charged: Dict[Tuple[int, int], Fraction] = {}

    def assign(self, engine, state, machines):
        from ..core.laminar import _chain_key, _min_by_domination

        job = state.job
        m_prime = len(machines)
        responsibles: List[Tuple[Job, int]] = []
        for machine in machines:
            intersecting = [
                j
                for j in self._assigned.get(machine, [])
                if j.interval.intersects(job.interval)
            ]
            if not intersecting:
                self._assigned.setdefault(machine, []).append(job)
                return machine
            responsibles.append((_min_by_domination(intersecting), machine))
        responsibles.sort(key=lambda item: _chain_key(item[0]))
        for i, (candidate, machine) in enumerate(responsibles, start=1):
            budget = candidate.laxity / m_prime
            used = self._charged.get((candidate.id, i), Fraction(0))
            if budget - used >= job.window:
                self._charged[(candidate.id, i)] = used + job.window
                self._assigned.setdefault(machine, []).append(job)
                return machine
        return None


@dataclass
class Phase:
    guess: int
    offset: int
    size: int
    assigner: PhaseAssigner

    @property
    def machines(self) -> range:
        return range(self.offset, self.offset + self.size)


class DoublingPolicy(Policy):
    """Guess-and-double wrapper around a per-phase assigner.

    ``assigner_factory(guess)`` builds the phase assigner; ``budget_fn(μ)``
    maps the guess to the phase's machine count (default: identity, i.e. the
    wrapped algorithm uses ``f(μ) = μ`` machines when the optimum is ``μ``).
    """

    migratory = False

    def __init__(
        self,
        assigner_factory: Callable[[int], PhaseAssigner] = lambda mu: FirstFitAssigner(),
        budget_fn: Callable[[int], int] = lambda mu: mu,
        initial_guess: int = 1,
    ) -> None:
        self.assigner_factory = assigner_factory
        self.budget_fn = budget_fn
        self.initial_guess = initial_guess
        self.phases: List[Phase] = []

    # -- phases ---------------------------------------------------------------

    def _open_phase(self, engine: OnlineEngine) -> Phase:
        guess = self.phases[-1].guess * 2 if self.phases else self.initial_guess
        size = max(1, self.budget_fn(guess))
        offset = self.phases[-1].offset + self.phases[-1].size if self.phases else 0
        needed = offset + size - engine.machines
        if needed > 0:
            engine.add_machines(needed)
        phase = Phase(guess, offset, size, self.assigner_factory(guess))
        self.phases.append(phase)
        return phase

    @property
    def current_guess(self) -> int:
        return self.phases[-1].guess if self.phases else 0

    @property
    def total_machines_opened(self) -> int:
        return sum(p.size for p in self.phases)

    # -- policy interface -------------------------------------------------------

    def on_release(self, engine: OnlineEngine, jobs: Sequence[JobState]) -> None:
        for state in sorted(jobs, key=lambda s: paper_order_key(s.job)):
            machine = self._assign(engine, state)
            engine.commit(state.job.id, machine)

    def _assign(self, engine: OnlineEngine, state: JobState) -> int:
        if not self.phases:
            self._open_phase(engine)
        # try the newest phase first: older phases are considered full
        machine = self.phases[-1].assigner.assign(
            engine, state, list(self.phases[-1].machines)
        )
        while machine is None:
            phase = self._open_phase(engine)
            machine = phase.assigner.assign(engine, state, list(phase.machines))
            if machine is None and phase.guess > 4 * len(engine.jobs) + 8:
                raise EngineError(
                    "doubling diverged: assigner rejects a job even on a "
                    "phase larger than the trivial bound"
                )
        return machine

    def select(self, engine: OnlineEngine) -> Dict[int, int]:
        selection: Dict[int, int] = {}
        for machine in range(engine.machines):
            runnable = [
                s for s in engine.machine_active_jobs(machine) if s.remaining > 0
            ]
            if runnable:
                best = min(runnable, key=lambda s: (s.job.deadline, s.job.id))
                selection[machine] = best.job.id
        return selection


def run_doubling(instance, assigner_factory=None, budget_fn=None) -> Tuple[OnlineEngine, DoublingPolicy]:
    """Convenience: simulate the doubling wrapper on an instance.

    The engine starts with a single machine; the wrapper opens more on
    demand.  Returns ``(engine, policy)`` so callers can inspect phases.
    """
    from .engine import OnlineEngine as _Engine

    kwargs = {}
    if assigner_factory is not None:
        kwargs["assigner_factory"] = assigner_factory
    if budget_fn is not None:
        kwargs["budget_fn"] = budget_fn
    policy = DoublingPolicy(**kwargs)
    engine = _Engine(policy, machines=1)
    engine.release(instance)
    engine.run_to_completion()
    return engine, policy
