"""Core types for the online scheduling engine.

An online algorithm is a :class:`Policy`.  The engine owns the clock and the
machine/job bookkeeping; the policy is consulted

* when jobs are released (``on_release``) — this is where non-migratory
  policies *commit* jobs to machines (Section 2 of the paper: a job must be
  committed by its latest start time ``a_j``; all policies in this repo
  commit at release, which only strengthens the lower-bound experiments),
* at every decision point (``select``) — returning which committed/eligible
  job each machine should process until the next event,
* optionally, to request extra wake-ups (``next_wakeup``) — e.g. LLF laxity
  crossovers or MediumFit start times.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

from ..model.job import Job

if TYPE_CHECKING:  # pragma: no cover
    from .engine import OnlineEngine


class EngineError(RuntimeError):
    """A policy violated an engine invariant (e.g. migrated a committed job)."""


class InfeasibleOnline(RuntimeError):
    """Raised in ``on_miss='raise'`` mode when a deadline is missed."""


@dataclass
class JobState:
    """Mutable per-job bookkeeping inside the engine."""

    job: Job
    remaining: Fraction
    #: machine the job is committed to (non-migratory), if any
    committed: Optional[int] = None
    #: first time the job was ever processed
    started_at: Optional[Fraction] = None
    finished_at: Optional[Fraction] = None
    missed: bool = False
    #: machines that ever processed the job (for migration accounting)
    machines: set = field(default_factory=set)
    #: machine that processed the job most recently
    last_machine: Optional[int] = None
    #: number of migrations suffered (changes of processing machine)
    migration_count: int = 0
    #: extra work added by migration penalties (engine migration_cost)
    overhead: Fraction = Fraction(0)

    @property
    def finished(self) -> bool:
        return self.finished_at is not None

    @property
    def active(self) -> bool:
        """Released, not finished, not (yet) missed."""
        return not self.finished and not self.missed

    def laxity_at(self, t: Fraction) -> Fraction:
        return self.job.deadline - t - self.remaining


class Policy(ABC):
    """Base class for online scheduling policies.

    ``migratory`` declares whether the policy is allowed to migrate jobs;
    the engine enforces non-migration for policies that declare it.
    """

    #: May a preempted job resume on a different machine?
    migratory: bool = True

    def on_release(self, engine: "OnlineEngine", jobs: Sequence[JobState]) -> None:
        """Hook invoked when ``jobs`` become available (same release time).

        Non-migratory policies typically call ``engine.commit(job_id, machine)``
        here.  Default: no commitment (jobs bind at first processing).
        """

    @abstractmethod
    def select(self, engine: "OnlineEngine") -> Dict[int, int]:
        """Return ``{machine_index: job_id}`` to process until the next event.

        Machines absent from the mapping idle.  Jobs must be active; each job
        may appear at most once; non-migratory policies may only map a job to
        its committed machine.
        """

    def next_wakeup(self, engine: "OnlineEngine") -> Optional[Fraction]:
        """An extra decision time strictly after ``engine.time``, if needed."""
        return None

    @property
    def name(self) -> str:
        return type(self).__name__
