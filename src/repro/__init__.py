"""repro — reproduction of Chen, Megow, Schewior (SPAA 2016):
"The Power of Migration in Online Machine Minimization".

The package is layered:

* :mod:`repro.model` — exact jobs, instances, intervals, schedules,
* :mod:`repro.offline` — exact offline optima (flow-based migratory,
  branch-and-bound non-migratory) and the Theorem 1 workload bounds,
* :mod:`repro.online` — the event-driven online engine plus EDF/LLF and
  non-migratory first-fit baselines,
* :mod:`repro.core` — the paper's algorithms (loose/agreeable/laminar) and
  executable adversaries (Lemma 2 migration gap, Lemma 9 agreeable bound),
* :mod:`repro.generators` — seeded workload generators per instance class,
* :mod:`repro.analysis` — metrics, ASCII Gantt (Figure 1), report tables.
"""

from .model import Instance, Job, Schedule, Segment
from .offline import migratory_optimum, optimal_migratory_schedule
from .online import EDF, LLF, FirstFitEDF, min_machines, simulate
from .verify import certified_optimum, certify
from .core import (
    AgreeableAlgorithm,
    LaminarAlgorithm,
    LooseAlgorithm,
    MediumFit,
    classify,
    dispatch,
)
from .core.adversary import AgreeableAdversary, MigrationGapAdversary

__version__ = "1.0.0"

__all__ = [
    "Instance",
    "Job",
    "Schedule",
    "Segment",
    "migratory_optimum",
    "optimal_migratory_schedule",
    "certify",
    "certified_optimum",
    "EDF",
    "LLF",
    "FirstFitEDF",
    "min_machines",
    "simulate",
    "AgreeableAlgorithm",
    "LaminarAlgorithm",
    "LooseAlgorithm",
    "MediumFit",
    "classify",
    "dispatch",
    "AgreeableAdversary",
    "MigrationGapAdversary",
    "__version__",
]
