"""Command-line interface.

Subcommands (``python -m repro <cmd> …`` or the ``repro`` entry point):

* ``generate``  — write a seeded instance of any class to JSON
* ``classify``  — name the structure of an instance (loose/agreeable/…)
* ``opt``       — exact migratory optimum (optionally non-migratory bounds)
* ``solve``     — schedule with the dispatcher or a named paper algorithm
* ``simulate``  — run a classic online policy at a fixed machine count
* ``gantt``     — render a schedule JSON as an ASCII chart
* ``adversary`` — run the Lemma 2 or Lemma 9 adversary against a policy
* ``verify``    — certified feasibility verdicts and backend cross-checks
* ``stats``     — one-shot observability report (counters + span timings +
  latency histogram quantiles); ``--prom`` renders the snapshot in
  Prometheus text exposition format
* ``trace``     — post-hoc analysis of a ``--trace`` JSONL file: hotspot
  table (self vs. cumulative span time), folded stacks for
  flamegraph.pl/speedscope, and ``trace diff a.jsonl b.jsonl``
* ``sweep``     — parallel seeded sweeps (ratio / differential / corpus)
  across worker processes, bit-identical to the serial run; ``--shard k/n``
  runs one group-preserving shard for multi-host fan-out,
  ``sweep merge j0.jsonl j1.jsonl …`` folds the shard journals back into
  the canonical unsharded report, ``--progress`` renders a live stderr
  ticker, and ``sweep status journal.jsonl`` reports a run's progress
  from its durable journal alone

Every subcommand accepts ``--trace OUT.jsonl``: the run's full span/counter
event stream (see :mod:`repro.obs`) is written as JSON lines for offline
analysis.
"""

from __future__ import annotations

import argparse
import sys
from fractions import Fraction

from . import obs
from .analysis.gantt import render_gantt, render_witness
from .analysis.profile import grid_winner, load_profile
from .analysis.svg import save_svg
from .core.adversary.agreeable_lb import AgreeableAdversary
from .core.adversary.migration_gap import MigrationGapAdversary
from .core.agreeable import AgreeableAlgorithm
from .core.laminar import LaminarAlgorithm
from .core.loose import LooseAlgorithm
from .core.splitter import classify, dispatch
from .generators import (
    agreeable_instance,
    laminar_random,
    loose_instance,
    tight_instance,
    uniform_random_instance,
)
from .model import Instance, Schedule
from .model.io import InstanceFormatError, load, save
from .offline.flow import BACKENDS, DEFAULT_BACKEND, resolve_backend
from .offline.nonmigratory import nonmigratory_optimum_bounds
from .offline.optimum import migratory_optimum
from .verify import (
    Unsatisfiable,
    certified_optimum,
    certify,
    check_certificate,
    differential_optimum,
)
from .online.edf import EDF, NonPreemptiveEDF
from .online.engine import min_machines, simulate
from .online.llf import LLF
from .online.nonmigratory import BestFitEDF, EmptiestFitEDF, FirstFitEDF

POLICIES = {
    "edf": EDF,
    "llf": LLF,
    "npedf": NonPreemptiveEDF,
    "firstfit": FirstFitEDF,
    "bestfit": BestFitEDF,
    "emptiestfit": EmptiestFitEDF,
}

GENERATORS = {
    "uniform": lambda args: uniform_random_instance(args.n, seed=args.seed),
    "loose": lambda args: loose_instance(args.n, Fraction(args.alpha), seed=args.seed),
    "tight": lambda args: tight_instance(args.n, Fraction(args.alpha), seed=args.seed),
    "agreeable": lambda args: agreeable_instance(args.n, seed=args.seed),
    "laminar": lambda args: laminar_random(args.n, seed=args.seed),
}


def _load_instance(path: str) -> Instance:
    try:
        obj = load(path)
    except InstanceFormatError as exc:
        raise SystemExit(str(exc)) from None
    if not isinstance(obj, Instance):
        raise SystemExit(f"{path} does not contain an instance")
    return obj


def cmd_generate(args) -> int:
    instance = GENERATORS[args.kind](args)
    save(instance, args.output)
    print(f"wrote {len(instance)}-job {args.kind} instance to {args.output}")
    return 0


def cmd_classify(args) -> int:
    instance = _load_instance(args.instance)
    kind = classify(instance)
    print(f"n = {len(instance)}")
    print(f"class = {kind}")
    print(f"max density = {float(instance.max_density):.3f}")
    print(f"agreeable = {instance.is_agreeable()}, laminar = {instance.is_laminar()}")
    return 0


def cmd_opt(args) -> int:
    instance = _load_instance(args.instance)
    m = migratory_optimum(instance, backend=args.backend)
    print(f"migratory optimum: {m}")
    if args.nonmigratory:
        lo, hi = nonmigratory_optimum_bounds(instance, exact_threshold=args.exact_threshold)
        kind = "exact" if lo == hi else "bounds"
        print(f"non-migratory optimum ({kind}): [{lo}, {hi}]")
    return 0


def cmd_solve(args) -> int:
    instance = _load_instance(args.instance)
    if args.algorithm == "auto":
        result = dispatch(instance)
        schedule, machines, name = result.schedule, result.machines, result.algorithm
        print(f"class = {result.instance_class}; guarantee: {result.guarantee}")
    elif args.algorithm == "loose":
        alpha = instance.max_density
        run = LooseAlgorithm(alpha).run(instance)
        schedule, machines, name = run.schedule, run.machines, "LooseAlgorithm"
    elif args.algorithm == "agreeable":
        run = AgreeableAlgorithm().run(instance)
        schedule, machines, name = run.schedule, run.machines, "AgreeableAlgorithm"
    elif args.algorithm == "laminar":
        run = LaminarAlgorithm().run(instance)
        schedule, machines, name = run.schedule, run.machines, "LaminarAlgorithm"
    else:
        raise SystemExit(f"unknown algorithm {args.algorithm}")
    report = schedule.verify(instance)
    print(f"{name}: {machines} machines, feasible = {report.feasible}, "
          f"migrations = {report.migrations}, preemptions = {report.preemptions}")
    if not report.feasible:
        return 1
    if args.output:
        save(schedule, args.output)
        print(f"schedule written to {args.output}")
    return 0


def cmd_simulate(args) -> int:
    instance = _load_instance(args.instance)
    policy_cls = POLICIES[args.policy]
    if args.machines is None:
        k = min_machines(lambda k: policy_cls(), instance)
        print(f"minimum machines for {args.policy}: {k}")
        return 0
    engine = simulate(policy_cls(), instance, machines=args.machines,
                      speed=Fraction(args.speed))
    print(f"{args.policy} on {args.machines} machines (speed {args.speed}): "
          f"missed = {engine.missed_jobs or 'none'}")
    if args.gantt:
        print(render_gantt(engine.schedule(), width=args.width))
    return 1 if engine.missed_jobs else 0


def cmd_gantt(args) -> int:
    obj = load(args.schedule)
    if not isinstance(obj, Schedule):
        raise SystemExit(f"{args.schedule} does not contain a schedule")
    print(render_gantt(obj, width=args.width))
    return 0


def cmd_svg(args) -> int:
    obj = load(args.schedule)
    if not isinstance(obj, Schedule):
        raise SystemExit(f"{args.schedule} does not contain a schedule")
    save_svg(obj, args.output, width=args.width, title=args.title)
    print(f"SVG written to {args.output}")
    return 0


def cmd_profile(args) -> int:
    import json as _json

    from .offline.feascache import cache_for

    instance = _load_instance(args.instance)
    network = None
    if args.network:
        sparse = cache_for(instance).tables
        full = cache_for(instance, sparsify=False).tables
        n = len(instance)
        network = {
            "intervals_elementary": sparse.elementary_count,
            "intervals_kept": len(sparse.intervals),
            "intervals_dropped": sparse.dropped,
            "intervals_merged": sparse.merged,
            "nodes_before": 2 + n + full.elementary_count,
            "nodes_after": sparse.n_nodes,
            "edges_before": full.n_edges,
            "edges_after": sparse.n_edges,
        }
    times, density = load_profile(instance, samples=args.samples)
    winner = grid_winner(instance)
    bound = winner["bound"]
    peak = max(density) if len(density) else 0.0
    if args.json:
        window = winner["window"]
        payload = {
            "instance": args.instance,
            "n": len(instance),
            "samples": args.samples,
            "peak_density": float(peak),
            "lower_bound": bound,
            "grid_winner": {
                "start": str(window[0]) if window else None,
                "end": str(window[1]) if window else None,
                "grid_density": winner["grid_density"],
                **winner["grid"],
            },
            **({"network": network} if network else {}),
        }
        print(_json.dumps(payload, indent=2))
        return 0
    print(f"n = {len(instance)}, mandatory-load peak = {peak:.2f}, "
          f"certified lower bound on m = {bound}")
    if network:
        print("feasibility network (event-interval sparsification):")
        print(f"  intervals: {network['intervals_elementary']} elementary → "
              f"{network['intervals_kept']} kept "
              f"({network['intervals_dropped']} dropped, "
              f"{network['intervals_merged']} merged)")
        print(f"  nodes:     {network['nodes_before']} → {network['nodes_after']}")
        print(f"  edges:     {network['edges_before']} → {network['edges_after']}")
    # ASCII sparkline of the load profile
    blocks = " ▁▂▃▄▅▆▇█"
    if peak > 0:
        line = "".join(
            blocks[min(8, int(d / peak * 8))] for d in density[:: max(1, len(density) // args.width)]
        )
        print(line)
    return 0


def cmd_realtime(args) -> int:
    import json as _json

    from .realtime import PeriodicTask, TaskSet, provisioning_report

    with open(args.taskset, "r", encoding="utf-8") as fh:
        spec = _json.load(fh)
    ts = TaskSet()
    for item in spec["tasks"]:
        ts.add(PeriodicTask(
            wcet=Fraction(str(item["wcet"])),
            period=Fraction(str(item["period"])),
            deadline=Fraction(str(item["deadline"])) if "deadline" in item else None,
            phase=Fraction(str(item.get("phase", 0))),
            name=item.get("name", ""),
        ))
    report = provisioning_report(ts, horizon=args.horizon)
    print(f"tasks = {report.n_tasks}, jobs = {report.n_jobs}, "
          f"U = {report.utilization:.3f} (⌈U⌉ = {report.utilization_bound})")
    print(f"migratory optimum = {report.migratory_opt}")
    print(f"recommended (non-migratory, {report.algorithm} on "
          f"{report.instance_class} class) = {report.recommended_machines} "
          f"machines ({report.overhead:.2f}× the optimum)")
    return 0


def cmd_verify(args) -> int:
    """Certified verdicts: check schedules, certify optima, cross-check backends."""
    import json as _json

    instance = _load_instance(args.instance)
    speed = Fraction(args.speed)
    exit_code = 0

    if args.schedule:
        obj = load(args.schedule)
        if not isinstance(obj, Schedule):
            raise SystemExit(f"{args.schedule} does not contain a schedule")
        report = obj.verify(instance, speed, machines=args.m)
        bound = f" on ≤ {args.m} machines" if args.m is not None else ""
        print(f"schedule{bound}: feasible = {report.feasible}, "
              f"machines used = {report.machines_used}, "
              f"migrations = {report.migrations}")
        for violation in report.violations[:10]:
            print(f"  violation: {violation}")
        return 0 if report.feasible else 1

    if args.m is not None:
        cert = certify(instance, args.m, speed, backend=args.backend, check=False)
        result = check_certificate(instance, cert)
        print(cert.describe(instance) if cert.kind == "infeasible" else cert.describe())
        print(f"certificate check: {'ok' if result.ok else 'FAILED'}")
        for reason in result.reasons[:10]:
            print(f"  {reason}")
        exit_code = 0 if result.ok else 1
        if args.output and result.ok:
            with open(args.output, "w", encoding="utf-8") as fh:
                _json.dump(cert.to_dict(), fh, indent=2)
            print(f"certificate written to {args.output}")
        return exit_code

    try:
        co = certified_optimum(instance, speed, backend=args.backend)
    except Unsatisfiable as exc:
        print("infeasible at every machine count")
        print("  " + exc.certificate.describe(instance))
        return 0
    print(co.describe(instance))
    if args.differential:
        report = differential_optimum(instance, speed)
        print(report.summary())
        for failure in report.failures[:10]:
            print(f"  {failure}")
        exit_code = 0 if report.ok else 1
    if args.output:
        payload = {
            "optimum": co.machines,
            "feasible": co.feasible.to_dict(),
            **({"infeasible": co.infeasible.to_dict()} if co.infeasible else {}),
        }
        with open(args.output, "w", encoding="utf-8") as fh:
            _json.dump(payload, fh, indent=2)
        print(f"certificates written to {args.output}")
    return exit_code


def cmd_stats(args) -> int:
    """One-shot observability report: counters and span timings for a run."""
    import json as _json

    instance = _load_instance(args.instance)
    speed = Fraction(args.speed)
    backend = resolve_backend(args.backend)
    with obs.capture() as registry:
        try:
            co = certified_optimum(instance, speed, backend=backend)
            headline = f"certified optimum: {co.machines}"
            optimum = co.machines
        except Unsatisfiable:
            headline = "infeasible at every machine count"
            optimum = None
        if args.policy and optimum:
            engine = simulate(POLICIES[args.policy](), instance,
                              machines=optimum, speed=speed)
            headline += (
                f"; {args.policy} at m={optimum}: "
                f"missed = {engine.missed_jobs or 'none'}"
            )
    if args.prom:
        print(obs.render_prometheus(registry.snapshot()), end="")
        return 0
    from .offline import kernel as _kernel

    kernel_info = _kernel.build_info() if backend == "dinic_c" else None
    if args.json:
        payload = {
            "instance": args.instance,
            "speed": str(speed),
            "backend": backend,
            "backend_requested": args.backend,
            **({"kernel": kernel_info} if kernel_info else {}),
            "optimum": optimum,
            "hist_quantiles": registry.hist_quantiles(),
            **registry.snapshot(),
        }
        print(_json.dumps(payload, indent=2))
        return 0
    print(headline)
    note = f" (requested {args.backend})" if args.backend != backend else ""
    print(f"backend: {backend}{note}")
    if kernel_info and "path" in kernel_info:
        hit = "cache hit" if kernel_info["cache_hit"] else "compiled"
        print(f"kernel: {hit} via {kernel_info['compiler'] or 'cached object'} "
              f"at {kernel_info['path']}")
    print(registry.summary())
    return 0


def cmd_trace(args) -> int:
    """Analyze (or diff) JSONL trace files written by ``--trace``."""
    import json as _json

    files = list(args.files)
    mode = "analyze"
    if files and files[0] in ("analyze", "diff"):
        mode = files.pop(0)

    if mode == "diff":
        if len(files) != 2:
            raise SystemExit(
                "trace diff expects exactly two trace files: "
                "repro trace diff before.jsonl after.jsonl"
            )
        before, after = obs.load_trace(files[0]), obs.load_trace(files[1])
        if args.json:
            print(_json.dumps(
                obs.diff_traces(before, after, top=args.top), indent=2
            ))
        else:
            print(obs.render_diff(before, after, top=args.top))
        return 0

    if len(files) != 1:
        raise SystemExit(
            "trace expects one trace file (or 'diff A B'): "
            "repro trace run.jsonl"
        )
    summary = obs.load_trace(files[0])
    if args.folded:
        folded = obs.folded_stacks(summary)
        if args.folded == "-":
            print(folded)
        else:
            with open(args.folded, "w", encoding="utf-8") as fh:
                fh.write(folded + ("\n" if folded else ""))
    if args.json:
        print(_json.dumps({
            "file": files[0],
            "records": summary.records,
            "skipped": summary.skipped,
            "hotspots": obs.hotspots(summary, top=args.top),
            "counters": summary.counters,
            "events": summary.events,
        }, indent=2))
        return 0
    print(f"{files[0]}: {summary.records} records"
          + (f" ({summary.skipped} skipped)" if summary.skipped else ""))
    print(obs.render_hotspots(summary, top=args.top))
    if args.folded and args.folded != "-":
        print(f"folded stacks written to {args.folded}")
    return 0


def cmd_sweep(args) -> int:
    """Deterministic parallel sweeps over seeded instance batches."""
    import json as _json

    from .analysis.competitive import profiles_from_samples
    from .analysis.report import print_table
    from .runner import (
        FAMILIES,
        FaultPlan,
        InstanceSpec,
        JournalError,
        SweepPlan,
        journal_status,
        merge_journals,
        run_sweep,
        split_seed,
    )
    from .runner.tasks import POLICIES as SWEEP_POLICIES
    from .verify.differential import DifferentialReport

    if args.kind == "status":
        # Progress of a journaled sweep, from the durable file alone — no
        # plan flags, no running process required.
        if len(args.journals) != 1:
            raise SystemExit(
                "sweep status expects exactly one journal, e.g. "
                "repro sweep status journal.jsonl"
            )
        try:
            status = journal_status(args.journals[0])
        except JournalError as exc:
            raise SystemExit(str(exc))
        if args.json:
            print(_json.dumps(status, indent=2))
            return 0 if status["complete"] else 1
        k, n = status["shard"]
        shard_note = f" (shard {k}/{n} of a {status['plan_items']}-item plan)" \
            if (k, n) != (0, 1) else ""
        print(f"journal: {status['path']}{shard_note}")
        print(f"plan fingerprint: {status['plan']}")
        by_status = ", ".join(
            f"{count} {name}" for name, count in status["by_status"].items()
        ) or "none"
        print(f"items: {status['settled']}/{status['shard_items']} settled "
              f"({by_status}), {status['remaining']} remaining")
        if status["retries"]:
            print(f"retries: {status['retries']}")
        if status["dropped"]:
            print(f"torn tail: {status['dropped']} corrupt trailing line(s) "
                  f"(resume will heal them)")
        if status["rate"] is not None:
            eta = (f", eta ~{status['eta_seconds']:.0f}s"
                   if status["remaining"] else "")
            print(f"throughput: {status['rate']:.1f} items/s over "
                  f"{status['elapsed_seconds']:.1f}s{eta}")
        print("state: " + ("complete" if status["complete"]
                           else "incomplete (resume with --resume)"))
        return 0 if status["complete"] else 1

    if args.kind == "merge":
        # Fold N shard journals into the canonical unsharded report.  The
        # journals are self-describing (fingerprint, shard identity, parent
        # item count), so no plan flags are needed — or allowed.
        if not args.journals:
            raise SystemExit(
                "sweep merge requires at least one shard journal, e.g. "
                "repro sweep merge shard0.jsonl shard1.jsonl shard2.jsonl"
            )
        if args.shard:
            raise SystemExit("--shard does not apply to 'sweep merge'")
        try:
            report = merge_journals(args.journals)
        except JournalError as exc:
            raise SystemExit(str(exc))
        if args.snapshot:
            with open(args.snapshot, "w", encoding="utf-8") as fh:
                _json.dump(report.snapshot(), fh, indent=2)
        if args.prom:
            with open(args.prom, "w", encoding="utf-8") as fh:
                fh.write(obs.render_prometheus(report.snapshot()))
        if args.json:
            print(_json.dumps(report.snapshot(), indent=2))
        elif report.results and all(
            r.task == "ratio_sample" for r in report.results
        ):
            profiles = profiles_from_samples(report.values())
            print_table(
                f"repro sweep merge ({len(args.journals)} shard journal(s))",
                ["policy", "family", "samples", "worst", "avg", "median"],
                [p.row() for p in profiles],
            )
            print()
            print(report.summary())
        else:
            print(report.summary())
        return 0 if report.ok else 1

    if args.journals:
        raise SystemExit(
            "positional journal arguments only apply to 'sweep merge' "
            "and 'sweep status'"
        )
    if args.resume and not args.journal:
        raise SystemExit("--resume requires --journal")

    policies = [p for p in args.policies.split(",") if p]
    families = [f for f in args.families.split(",") if f]
    for policy in policies:
        if policy not in SWEEP_POLICIES:
            raise SystemExit(f"unknown policy {policy!r}; known: {sorted(SWEEP_POLICIES)}")
    for family in families:
        if family not in FAMILIES:
            raise SystemExit(f"unknown family {family!r}; known: {sorted(FAMILIES)}")

    if args.kind == "ratio":
        plan = SweepPlan.competitive(
            policies=policies,
            families=families,
            n=args.n,
            seeds=args.seeds,
            root_seed=args.root_seed,
        )
    elif args.kind == "differential":
        specs = [
            InstanceSpec(family, args.n, split_seed(args.root_seed, i))
            for family in families
            for i in range(args.seeds)
        ]
        plan = SweepPlan.differential(
            specs,
            speeds=[s for s in args.speeds.split(",") if s],
            use_lp=not args.no_lp,
            lp_deadline=args.item_timeout,
        )
    elif args.kind == "corpus":
        plan = SweepPlan.corpus(args.dir)
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown sweep kind {args.kind}")

    if args.shard:
        try:
            k_text, n_text = args.shard.split("/", 1)
            k, n = int(k_text), int(n_text)
        except ValueError:
            raise SystemExit(
                f"--shard expects K/N (e.g. 1/3); got {args.shard!r}"
            )
        try:
            plan = plan.shard(k, n)
        except ValueError as exc:
            raise SystemExit(str(exc))

    faults = None
    if args.chaos:
        try:
            faults = FaultPlan.parse(args.chaos)
        except ValueError as exc:
            raise SystemExit(str(exc))

    ticker = None
    if args.progress:
        def ticker(sample) -> None:
            sys.stderr.write("\r" + sample.render() + "\x1b[K")
            sys.stderr.flush()

    # SIGTERM behaves like Ctrl-C: run_sweep's interrupt path flushes and
    # fsyncs the journal and reports the cut-short items as "cancelled",
    # so a supervisor's polite kill never leaves a torn journal tail.
    import signal as _signal

    def _sigterm(signum, frame):
        raise KeyboardInterrupt

    old_sigterm = None
    try:
        old_sigterm = _signal.signal(_signal.SIGTERM, _sigterm)
    except ValueError:
        pass  # not the main thread (embedded use): keep default behavior

    try:
        report = run_sweep(
            plan,
            n_jobs=args.workers,
            chunksize=args.chunksize,
            item_timeout=args.item_timeout,
            retry=args.retries,
            faults=faults,
            journal=args.journal,
            resume=args.resume,
            progress=ticker,
            progress_interval=0.2 if args.progress else 1.0,
        )
    except KeyboardInterrupt:
        # The interrupt landed outside run_sweep's own catch (e.g. between
        # chunks on the serial path) — the journal is already synced by its
        # finally; report the cancellation instead of a traceback.
        print("sweep interrupted; journal flushed"
              + (f": {args.journal} (re-run with --resume)" if args.journal
                 else ""))
        return 130
    finally:
        if old_sigterm is not None:
            _signal.signal(_signal.SIGTERM, old_sigterm)
        if ticker is not None:
            sys.stderr.write("\n")
            sys.stderr.flush()

    if args.snapshot:
        with open(args.snapshot, "w", encoding="utf-8") as fh:
            _json.dump(report.snapshot(), fh, indent=2)
    if args.prom:
        with open(args.prom, "w", encoding="utf-8") as fh:
            fh.write(obs.render_prometheus(report.snapshot()))

    exit_code = 0 if report.ok else 1
    if args.json:
        print(_json.dumps(report.snapshot(), indent=2))
    elif args.kind == "ratio":
        profiles = profiles_from_samples(report.values())
        print_table(
            f"repro sweep ratio (n={args.n}, seeds={args.seeds}, "
            f"workers={args.workers})",
            ["policy", "family", "samples", "worst", "avg", "median"],
            [p.row() for p in profiles],
        )
        print()
        print(report.summary())
    elif args.kind == "differential":
        diff = DifferentialReport(
            tuple(rec for records in report.values() for rec in records)
        )
        print(diff.summary())
        for failure in diff.failures[:10]:
            print(f"  {failure}")
        print(report.summary())
        exit_code = exit_code or (0 if diff.ok else 1)
    else:  # corpus
        rows = [
            (v["name"], v["speed"], v.get("optimum", "-"), v["ok"])
            for v in report.values()
        ]
        print_table(
            f"repro sweep corpus ({args.dir})",
            ["case", "speed", "optimum", "ok"],
            rows,
        )
        print()
        print(report.summary())
        if not all(v["ok"] for v in report.values()):
            exit_code = 1
    bad_items = report.errors + report.failed + report.crashes + report.cancelled
    for bad in bad_items[:10]:
        print(f"  item {bad.index} [{bad.task}] {bad.status}: {bad.error}")
    if bad_items and args.journal:
        print(f"  journal: {args.journal} (re-run with --resume to retry)")
    return exit_code


def cmd_serve(args) -> int:
    """Run the crash-only scheduling daemon (see ``repro.serve``)."""
    from .serve import ServeDaemon

    daemon = ServeDaemon(
        journal_dir=args.journal_dir,
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_queue=args.max_queue,
        request_timeout=args.request_timeout,
        sweep_workers=args.sweep_workers,
        max_body=args.max_body,
    )
    return daemon.run()


def cmd_adversary(args) -> int:
    policy_cls = POLICIES[args.policy]
    if args.kind == "migration-gap":
        adv = MigrationGapAdversary(policy_cls(), machines=args.k + 3)
        res = adv.run(args.k)
        print(f"forced {res.machines_forced} machines with {res.n_jobs} jobs "
              f"(policy: {args.policy})")
        rep = res.offline_witness().verify(res.instance)
        print(f"offline witness: feasible = {rep.feasible} on "
              f"{rep.machines_used} machines")
        if args.gantt:
            print(render_witness(res.node, width=args.width))
        if args.output:
            save(res.instance, args.output)
            print(f"instance written to {args.output}")
        return 0
    if args.kind == "agreeable":
        adv = AgreeableAdversary(policy_cls(), m=args.m, machines=args.machines)
        res = adv.run(max_rounds=args.rounds)
        print(f"capacity {args.machines}/{args.m} = "
              f"{args.machines / args.m:.3f}: "
              f"{'MISSED a deadline' if res.missed else 'survived'} "
              f"after {res.rounds_played} rounds")
        if args.output:
            save(res.instance, args.output)
            print(f"instance written to {args.output}")
        return 0
    raise SystemExit(f"unknown adversary {args.kind}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Online machine minimization: algorithms, optima, and "
        "adversaries from Chen–Megow–Schewior (SPAA 2016).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Shared by every subcommand: stream the run's observability events.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--trace",
        metavar="OUT.jsonl",
        default=None,
        help="write the run's span/counter event stream as JSON lines",
    )

    def add_parser(name, **kwargs):
        return sub.add_parser(name, parents=[common], **kwargs)

    p = add_parser("generate", help="generate a seeded instance")
    p.add_argument("kind", choices=sorted(GENERATORS))
    p.add_argument("-n", type=int, default=30)
    p.add_argument("--alpha", default="1/2", help="looseness for loose/tight")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(func=cmd_generate)

    p = add_parser("classify", help="classify an instance JSON")
    p.add_argument("instance")
    p.set_defaults(func=cmd_classify)

    p = add_parser("opt", help="exact optima of an instance")
    p.add_argument("instance")
    p.add_argument("--backend", default=DEFAULT_BACKEND,
                   choices=["auto", *sorted(BACKENDS)])
    p.add_argument("--nonmigratory", action="store_true")
    p.add_argument("--exact-threshold", type=int, default=14)
    p.set_defaults(func=cmd_opt)

    p = add_parser("solve", help="schedule with a paper algorithm")
    p.add_argument("instance")
    p.add_argument("--algorithm", default="auto",
                   choices=["auto", "loose", "agreeable", "laminar"])
    p.add_argument("-o", "--output")
    p.set_defaults(func=cmd_solve)

    p = add_parser("simulate", help="run a classic online policy")
    p.add_argument("instance")
    p.add_argument("--policy", default="edf", choices=sorted(POLICIES))
    p.add_argument("--machines", type=int, default=None,
                   help="fixed machine count (omit to search the minimum)")
    p.add_argument("--speed", default="1")
    p.add_argument("--gantt", action="store_true")
    p.add_argument("--width", type=int, default=100)
    p.set_defaults(func=cmd_simulate)

    p = add_parser("gantt", help="render a schedule JSON")
    p.add_argument("schedule")
    p.add_argument("--width", type=int, default=100)
    p.set_defaults(func=cmd_gantt)

    p = add_parser("svg", help="render a schedule JSON to SVG")
    p.add_argument("schedule")
    p.add_argument("-o", "--output", required=True)
    p.add_argument("--width", type=int, default=900)
    p.add_argument("--title", default="")
    p.set_defaults(func=cmd_svg)

    p = add_parser("profile", help="mandatory-load profile of an instance")
    p.add_argument("--network", action="store_true",
                   help="also report feasibility-network size before/after "
                        "event-interval sparsification")
    p.add_argument("instance")
    p.add_argument("--samples", type=int, default=256)
    p.add_argument("--width", type=int, default=80)
    p.add_argument("--json", action="store_true",
                   help="emit the profile (incl. the grid-winner window) as JSON")
    p.set_defaults(func=cmd_profile)

    p = add_parser("realtime", help="provision machines for a task set JSON")
    p.add_argument("taskset", help='JSON: {"tasks": [{"wcet": 1, "period": 4, ...}]}')
    p.add_argument("--horizon", type=int, default=None)
    p.set_defaults(func=cmd_realtime)

    p = add_parser(
        "verify",
        help="certified feasibility verdicts and backend cross-checks",
    )
    p.add_argument("instance")
    p.add_argument("--m", type=int, default=None,
                   help="certify at this machine count (default: certified optimum)")
    p.add_argument("--speed", default="1")
    p.add_argument("--backend", default=DEFAULT_BACKEND,
                   choices=["auto", *sorted(BACKENDS)])
    p.add_argument("--schedule",
                   help="verify this schedule JSON against the instance instead")
    p.add_argument("--differential", action="store_true",
                   help="cross-check dinic vs networkx vs LP at OPT and OPT−1")
    p.add_argument("-o", "--output", help="write the certificate(s) as JSON")
    p.set_defaults(func=cmd_verify)

    p = add_parser(
        "stats",
        help="one-shot observability report (counters + span timings)",
    )
    p.add_argument("instance")
    p.add_argument("--speed", default="1")
    p.add_argument("--backend", default=DEFAULT_BACKEND,
                   choices=["auto", *sorted(BACKENDS)])
    p.add_argument("--policy", default=None, choices=sorted(POLICIES),
                   help="also simulate this policy at the optimum "
                        "(adds engine.* counters)")
    p.add_argument("--json", action="store_true",
                   help="emit the counter/span snapshot as JSON")
    p.add_argument("--prom", action="store_true",
                   help="emit the snapshot in Prometheus text exposition "
                        "format (counters, gauges, histograms, span totals)")
    p.set_defaults(func=cmd_stats)

    p = add_parser(
        "trace",
        help="analyze a --trace JSONL file (hotspots, folded stacks, diffs)",
    )
    p.add_argument("files", nargs="+", metavar="FILE",
                   help="trace file; or 'analyze FILE'; or 'diff A B' for a "
                        "before/after comparison")
    p.add_argument("--top", type=int, default=20,
                   help="rows in the hotspot/diff table (default 20)")
    p.add_argument("--folded", metavar="OUT.txt", default=None,
                   help="write folded stacks (flamegraph.pl/speedscope "
                        "input) to this file ('-' for stdout)")
    p.add_argument("--json", action="store_true",
                   help="emit the hotspot rows (or diff rows) as JSON")
    p.set_defaults(func=cmd_trace)

    p = add_parser(
        "sweep",
        help="deterministic parallel sweep (process-pool fan-out)",
    )
    p.add_argument("kind",
                   choices=["ratio", "differential", "corpus", "merge",
                            "status"])
    p.add_argument("journals", nargs="*", metavar="JOURNAL",
                   help="shard journals to fold ('merge' kind), or the one "
                        "journal to report on ('status' kind)")
    p.add_argument("--shard", metavar="K/N", default=None,
                   help="run only the deterministic, group-preserving shard "
                        "K of N (0 <= K < N); every host computes the same "
                        "partition, journals stamp the shard identity, and "
                        "'sweep merge' folds the journals back together")
    p.add_argument("--policies", default="edf,firstfit",
                   help="comma-separated policy names (ratio sweeps)")
    p.add_argument("--families", default="uniform",
                   help="comma-separated instance families")
    p.add_argument("-n", type=int, default=30, help="jobs per instance")
    p.add_argument("--seeds", type=int, default=5,
                   help="seed count (split deterministically from --root-seed)")
    p.add_argument("--root-seed", type=int, default=0)
    p.add_argument("--speeds", default="1",
                   help="comma-separated speeds (differential sweeps)")
    p.add_argument("--no-lp", action="store_true",
                   help="skip the advisory LP leg (differential sweeps)")
    p.add_argument("--dir", default="tests/data/corpus",
                   help="corpus directory (corpus sweeps)")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes (1 = serial fast path, no pool)")
    p.add_argument("--chunksize", type=int, default=4,
                   help="minimum items per worker chunk (groups never split)")
    p.add_argument("--json", action="store_true",
                   help="emit results + merged counter snapshot as JSON")
    p.add_argument("--snapshot", metavar="OUT.json",
                   help="also write the merged snapshot to this file")
    p.add_argument("--prom", metavar="OUT.prom", default=None,
                   help="also write the merged snapshot in Prometheus text "
                        "exposition format to this file")
    p.add_argument("--progress", action="store_true",
                   help="render a live single-line progress ticker "
                        "(done/failed/retried counts, throughput, ETA) on "
                        "stderr while the sweep runs")
    p.add_argument("--journal", metavar="OUT.jsonl", default=None,
                   help="append every completed item to this durable, "
                        "checksummed journal as the sweep runs")
    p.add_argument("--resume", action="store_true",
                   help="restore settled groups from --journal and run only "
                        "the rest (requires --journal)")
    p.add_argument("--retries", type=int, default=None, metavar="K",
                   help="transient-failure retry budget per item "
                        "(default 2; exhausted items are quarantined as "
                        "'failed', not fatal)")
    p.add_argument("--item-timeout", type=float, default=None, metavar="SEC",
                   help="per-item deadline in seconds (timeouts are "
                        "transient: retried, then quarantined); also bounds "
                        "the advisory LP leg of differential sweeps")
    p.add_argument("--chaos", metavar="SPEC", default=None,
                   help="inject deterministic faults for chaos testing, "
                        "e.g. 'sigkill:2,transient:4,hang:0@1' "
                        "(kind:item-index[@attempt])")
    p.set_defaults(func=cmd_sweep)

    p = add_parser(
        "serve",
        help="run the crash-only HTTP scheduling daemon",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8123,
                   help="TCP port (0 binds an ephemeral port; the daemon "
                        "prints the bound address on startup)")
    p.add_argument("--workers", type=int, default=4,
                   help="compute threads for certify/optimum requests")
    p.add_argument("--journal-dir", default="serve-journal",
                   help="durable queue directory: sweep specs, item "
                        "journals, and finished reports live here; a "
                        "restarted daemon resumes every unfinished sweep "
                        "it finds")
    p.add_argument("--max-queue", type=int, default=8,
                   help="pending-sweep bound; a full queue answers 429 "
                        "with Retry-After instead of growing a backlog")
    p.add_argument("--request-timeout", type=float, default=10.0,
                   metavar="SEC",
                   help="per-request deadline; overruns answer 503 with "
                        "Retry-After while the computation finishes in "
                        "the background and warms the cache")
    p.add_argument("--sweep-workers", type=int, default=1,
                   help="max worker processes per sweep (specs may ask "
                        "for fewer)")
    p.add_argument("--max-body", type=int, default=1_000_000,
                   help="request body size bound in bytes (413 beyond)")
    p.set_defaults(func=cmd_serve)

    p = add_parser("adversary", help="run a lower-bound adversary")
    p.add_argument("kind", choices=["migration-gap", "agreeable"])
    p.add_argument("--policy", default="firstfit", choices=sorted(POLICIES))
    p.add_argument("--k", type=int, default=5, help="migration-gap depth")
    p.add_argument("--m", type=int, default=40, help="agreeable: optimum m")
    p.add_argument("--machines", type=int, default=44,
                   help="agreeable: the policy's machine budget")
    p.add_argument("--rounds", type=int, default=15)
    p.add_argument("--gantt", action="store_true")
    p.add_argument("--width", type=int, default=100)
    p.add_argument("-o", "--output")
    p.set_defaults(func=cmd_adversary)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    trace_path = getattr(args, "trace", None)
    if not trace_path:
        return args.func(args)
    sink = obs.attach(obs.JsonlSink(trace_path))
    try:
        return args.func(args)
    finally:
        obs.detach(sink)
        sink.close()


if __name__ == "__main__":
    sys.exit(main())
