"""A flat-buffer integer Dinic max-flow kernel for the feasibility core.

Horn's feasibility test (``flow.py``) is the inner loop of every experiment:
``migratory_optimum`` binary-searches it, and the analysis layer calls that
optimum for every sampled instance.  Earlier revisions stored the graph in
Python lists of lists; this module keeps the graph in flat preallocated
buffers so a probe is allocation-free and snapshots are single ``memcpy``s:

* :class:`Dinic` — max-flow on CSR adjacency.  Capacities live in one flat
  ``array('q')`` buffer (``cap``; the reverse edge of edge ``e`` is
  ``e ^ 1``), and per-node edge lists are a classic head/edge-list CSR pair
  (``_head`` offsets into ``_elist``, kept as plain lists because the inner
  loops do nothing but index them).  Blocking
  flows are found by an iterative DFS with current-arc pointers (no
  recursion limits at scale); the per-phase ``level``/``it`` scratch
  buffers are preallocated once and reset by slice copies.  An optional
  numpy-vectorized BFS (``kernel="np"``) builds the level graph with array
  operations over zero-copy views of the same buffers — bit-identical
  levels, hence bit-identical flows.  A compiled kernel (``kernel="c"``,
  lazily built by :mod:`repro.offline.kernel`) runs the whole phase loop
  natively over the *same* capacity buffer, zero-copy, mirroring the
  Python loop step for step so its flows are bit-identical too.
* :class:`FeasibilityNetwork` — the ``source → job → interval → sink``
  network specialized to the job/interval bipartite structure.  Edge ids
  are *arithmetic*: sink arc of interval ``k`` is ``2k``, and each job's
  source arc and window arcs occupy one contiguous block of even ids, so
  the solver needs no per-job edge lists at all.  Each ``solve`` starts
  with a greedy pass over that layout which is exactly a blocking flow on
  the depth-3 level graph (every augmenting path in the first Dinic phase
  is ``s → job → interval → t``); Dinic then only reroutes the remainder.
  Sink capacities ``m·|E_k|`` are *grown in place*, so a solved flow at
  ``m`` machines warm-starts the probe at any ``m' > m``.

Snapshots (:meth:`FeasibilityNetwork.snapshot` / ``restore``) capture the
capacity buffer as immutable ``bytes`` (one ``memcpy``); ``restore`` copies
them back into the live buffer through a ``memoryview`` without allocating
a new array, which makes the warm start usable inside a *binary* search,
whose probe sequence is not monotone.

Everything is integral: callers scale rational data by the common
denominator (see ``feascache.FeasibilityCache.scale_for``), so
``flow == total demand`` is an exact feasibility verdict.
"""

from __future__ import annotations

import time
from array import array
from bisect import bisect_left
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs import core as _obs
from . import kernel as _ckernel

#: Level-graph kernels accepted by :meth:`Dinic.max_flow`.
KERNELS = ("py", "np", "c")

_EMPTY_I = array("i")


def _np():
    """Import numpy lazily; the ``"np"`` kernel is strictly opt-in."""
    import numpy

    return numpy


class Dinic:
    """Integer max-flow on flat CSR buffers.

    Edges are stored in pairs: ``add_edge`` appends the forward edge at an
    even index ``e`` and its reverse (capacity 0) at ``e ^ 1``; the flow on
    ``e`` is therefore ``cap[e ^ 1]`` as long as callers only ever *grow*
    forward capacities (the warm-start contract).

    The graph is built with :meth:`add_edge` and frozen by :meth:`finalize`
    (called automatically by the first solve), which packs ``cap`` into a
    flat ``array('q')`` and builds the CSR adjacency.  After finalization
    the topology is fixed; only capacities may change.
    """

    __slots__ = (
        "n", "to", "cap", "_head", "_elist",
        "_level", "_it", "_minus1", "_np_csr", "_c_csr",
    )

    def __init__(self, n_nodes: int) -> None:
        self.n = n_nodes
        self.to: List[int] = []          # packed to array('i') by finalize
        self.cap: List[int] = []         # packed to array('q') by finalize
        self._head: Optional[array] = None
        self._elist: Optional[array] = None
        self._np_csr = None
        self._c_csr = None

    # -- construction ---------------------------------------------------------

    def add_edge(self, u: int, v: int, capacity: int) -> int:
        """Add ``u → v`` with the given capacity; returns the edge id."""
        if self._head is not None:
            raise RuntimeError("graph is finalized; capacities only may change")
        e = len(self.to)
        self.to.append(v)
        self.cap.append(capacity)
        self.to.append(u)
        self.cap.append(0)
        return e

    @property
    def frozen(self) -> bool:
        return self._head is not None

    @classmethod
    def from_csr(
        cls, n_nodes: int, to: List[int], cap: array,
        head: List[int], elist: List[int],
    ) -> "Dinic":
        """A solver over prebuilt CSR structure (already finalized).

        ``to``/``head``/``elist`` are immutable after finalization, so they
        can be *shared* between solvers over the same topology (different
        speeds, different kernels) — only ``cap`` and the scratch buffers
        are private.
        """
        d = cls(n_nodes)
        d.to = to
        d.cap = cap
        d._head, d._elist = head, elist
        d._level = [-1] * n_nodes
        d._minus1 = [-1] * n_nodes
        d._it = head[:n_nodes]
        return d

    def finalize(self) -> None:
        """Freeze the edge set and build the CSR adjacency.

        Idempotent.  The capacity buffer is packed into a flat ``array('q')``
        (so snapshots are single ``memcpy``s and numpy can view it zero-copy)
        while the static topology — ``to``, the ``head`` offsets, and the
        ``elist`` edge ids — stays in plain Python lists: list indexing skips
        the per-access ``int`` boxing of ``array`` and the DFS/BFS inner
        loops do nothing but index these.  Also preallocates the per-phase
        scratch buffers (``level``, current-arc pointers, and the ``-1``
        reset template) so every subsequent probe is allocation-free.
        """
        if self._head is not None:
            return
        n, m = self.n, len(self.to)
        to = self.to
        cap = array("q", self.cap)
        # Counting sort of edge ids by tail node: head[u] .. head[u+1] are
        # the positions of u's incident edge ids inside elist.
        counts = [0] * (n + 1)
        for e in range(m):
            counts[to[e ^ 1] + 1] += 1
        for u in range(n):
            counts[u + 1] += counts[u]
        head = counts
        fill = head[:n]
        elist = [0] * m
        for e in range(m):
            u = to[e ^ 1]
            elist[fill[u]] = e
            fill[u] += 1
        self.cap = cap
        self._head, self._elist = head, elist
        self._level = [-1] * n
        self._minus1 = [-1] * n
        self._it = head[:n]

    # -- introspection --------------------------------------------------------

    def edge_flow(self, e: int) -> int:
        """Flow currently routed through forward edge ``e``."""
        return self.cap[e ^ 1]

    def residual_reachable(self, s: int) -> List[bool]:
        """Nodes reachable from ``s`` through positive-residual edges.

        After :meth:`max_flow` has terminated this is the source side of a
        minimum cut (max-flow/min-cut duality): every edge leaving the
        returned set is saturated.  The reachable set is the unique
        *minimal* source side over all minimum cuts, so it does not depend
        on which maximum flow the solver happened to find.
        """
        self.finalize()
        seen = [False] * self.n
        seen[s] = True
        stack = [s]
        to, cap, head, elist = self.to, self.cap, self._head, self._elist
        while stack:
            u = stack.pop()
            for e in elist[head[u] : head[u + 1]]:
                v = to[e]
                if cap[e] and not seen[v]:
                    seen[v] = True
                    stack.append(v)
        return seen

    # -- the kernel -----------------------------------------------------------

    def _bfs_py(self, s: int, t: int) -> List[int]:
        """Level graph over the residual network (pure-stdlib kernel)."""
        level = self._level
        level[:] = self._minus1
        level[s] = 0
        to, cap, head, elist = self.to, self.cap, self._head, self._elist
        frontier = [s]
        depth = 0
        while frontier:
            depth += 1
            nxt: List[int] = []
            push = nxt.append
            for u in frontier:
                for e in elist[head[u] : head[u + 1]]:
                    if cap[e]:
                        v = to[e]
                        if level[v] < 0:
                            level[v] = depth
                            push(v)
            if level[t] >= 0:
                # Deeper levels cannot lie on a shortest s→t path; the DFS
                # only follows level+1 arcs, so stop expanding here.
                break
            frontier = nxt
        return level

    def _bfs_np(self, s: int, t: int) -> List[int]:
        """Level graph via vectorized frontier expansion (numpy kernel).

        Computes exactly the BFS distances of :meth:`_bfs_py` (levels are
        shortest-path distances, unique by definition), so the blocking-flow
        DFS — and therefore the resulting flow — is bit-identical across
        kernels.  Reads ``cap`` through a zero-copy view of the live buffer.
        """
        np = _np()
        if self._np_csr is None:
            head = np.asarray(self._head, dtype=np.int64)
            elist = np.asarray(self._elist, dtype=np.int64)
            to = np.asarray(self.to, dtype=np.int64)
            self._np_csr = (head, elist, to)
        head, elist, to = self._np_csr
        cap = np.frombuffer(self.cap, dtype=np.int64)
        level = np.full(self.n, -1, dtype=np.int64)
        level[s] = 0
        frontier = np.array([s], dtype=np.int64)
        depth = 0
        while frontier.size:
            depth += 1
            starts = head[frontier]
            counts = head[frontier + 1] - starts
            total = int(counts.sum())
            if not total:
                break
            ends = np.cumsum(counts)
            # Concatenated [head[u], head[u+1]) ranges without a Python loop.
            idx = np.arange(total, dtype=np.int64) + np.repeat(
                starts - (ends - counts), counts
            )
            eids = elist[idx]
            vs = to[eids]
            fresh = vs[(cap[eids] > 0) & (level[vs] < 0)]
            if not fresh.size:
                break
            level[fresh] = depth
            if level[t] >= 0:
                break
            frontier = np.unique(fresh)
        out = self._level
        out[:] = level.tolist()
        return out

    def _csr_c(self) -> Tuple[array, array, array]:
        """The CSR topology as int32 arrays for the compiled kernel.

        Built once per solver (feasibility networks on the compiled path
        share theirs through ``NetworkTables.topology_c`` instead); list
        topologies are copied, array topologies passed through zero-copy.
        """
        if self._c_csr is None:
            to = self.to if isinstance(self.to, array) else array("i", self.to)
            head = (self._head if isinstance(self._head, array)
                    else array("i", self._head))
            elist = (self._elist if isinstance(self._elist, array)
                     else array("i", self._elist))
            self._c_csr = (to, head, elist)
        return self._c_csr

    def _max_flow_c(self, s: int, t: int, limit: Optional[int]) -> int:
        """The ``"c"`` kernel: one native call covers every phase.

        Counters come back from the kernel's stats block, so the pinned
        ``dinic.*`` counter snapshots are identical across kernels.
        """
        ck = _ckernel.load()
        to, head, elist = self._csr_c()
        climit = -1 if limit is None else limit
        if not _obs.enabled():
            return ck.max_flow(self.n, to, head, elist, self.cap, s, t, climit)
        t0 = time.perf_counter_ns()
        stats = array("q", (0, 0, 0))
        added = ck.max_flow(
            self.n, to, head, elist, self.cap, s, t, climit, stats
        )
        dt = time.perf_counter_ns() - t0
        _obs.incr("dinic.bfs_phases", stats[0])
        _obs.incr("dinic.aug_paths", stats[1])
        _obs.incr("dinic.retreats", stats[2])
        _obs.incr("dinic.flow_pushed", added)
        _obs.observe("dinic.max_flow_ns", dt)
        _obs.observe("dinic.max_flow_c_ns", dt)
        _obs.observe("dinic.phases_per_call", stats[0])
        _obs.observe("dinic.flow_per_call", added)
        return added

    def max_flow(self, s: int, t: int, kernel: str = "py",
                 limit: Optional[int] = None) -> int:
        """Push a maximum flow from ``s`` to ``t``; returns the amount *added*.

        Starting from the current residual capacities, so repeated calls
        after capacity increases implement a warm start.  ``kernel``
        selects the level-graph build: ``"py"`` (pure stdlib, default),
        ``"np"`` (numpy-vectorized BFS, identical results), or ``"c"``
        (the compiled kernel of :mod:`repro.offline.kernel`, which runs
        BFS *and* the blocking-flow DFS natively — identical results).

        ``limit`` is an optional *known upper bound* on the flow still
        missing (e.g. the unmet demand in a feasibility probe).  Once the
        added flow reaches it the routine returns immediately — the bound
        certifies maximality, so the final disconnection BFS is skipped.
        """
        self.finalize()
        if kernel not in KERNELS:
            raise ValueError(f"unknown kernel {kernel!r}; expected one of {KERNELS}")
        if limit is not None and limit <= 0:
            return 0
        if kernel == "c":
            return self._max_flow_c(s, t, limit)
        bfs = self._bfs_np if kernel == "np" else self._bfs_py
        to, cap, head, elist = self.to, self.cap, self._head, self._elist
        it = self._it
        added = 0
        # Local accumulators: the inner loops stay free of any obs calls;
        # one guarded flush happens at the single return point below.
        phases = paths = retreats = 0
        t0 = time.perf_counter_ns() if _obs.enabled() else 0
        while True:
            phases += 1
            level = bfs(s, t)
            if level[t] < 0:
                if _obs.enabled():
                    dt = time.perf_counter_ns() - t0
                    _obs.incr("dinic.bfs_phases", phases)
                    _obs.incr("dinic.aug_paths", paths)
                    _obs.incr("dinic.retreats", retreats)
                    _obs.incr("dinic.flow_pushed", added)
                    _obs.observe("dinic.max_flow_ns", dt)
                    _obs.observe("dinic.max_flow_%s_ns" % kernel, dt)
                    _obs.observe("dinic.phases_per_call", phases)
                    _obs.observe("dinic.flow_per_call", added)
                return added
            # Blocking flow: iterative DFS with current-arc pointers into
            # the CSR edge list (allocation-free: `it` is reset in place).
            it[:] = head[: self.n]
            path: List[int] = []  # edge ids from s to the current node
            u = s
            while True:
                if u == t:
                    paths += 1
                    aug = min(cap[e] for e in path)
                    added += aug
                    for e in path:
                        cap[e] -= aug
                        cap[e ^ 1] += aug
                    if limit is not None and added >= limit:
                        if _obs.enabled():
                            dt = time.perf_counter_ns() - t0
                            _obs.incr("dinic.bfs_phases", phases)
                            _obs.incr("dinic.aug_paths", paths)
                            _obs.incr("dinic.retreats", retreats)
                            _obs.incr("dinic.flow_pushed", added)
                            _obs.observe("dinic.max_flow_ns", dt)
                            _obs.observe("dinic.max_flow_%s_ns" % kernel, dt)
                            _obs.observe("dinic.phases_per_call", phases)
                            _obs.observe("dinic.flow_per_call", added)
                        return added
                    # Retreat to the shallowest saturated edge.
                    cut = next(i for i, e in enumerate(path) if not cap[e])
                    del path[cut + 1 :]
                    e = path.pop()
                    u = to[e ^ 1]
                    it[u] += 1
                    continue
                i = it[u]
                end = head[u + 1]
                lu = level[u] + 1
                e = -1
                while i < end:
                    e = elist[i]
                    v = to[e]
                    if cap[e] and level[v] == lu:
                        break
                    i += 1
                it[u] = i
                if i < end:
                    path.append(e)
                    u = v
                elif path:
                    retreats += 1
                    level[u] = -1  # dead end: prune from this phase
                    e = path.pop()
                    u = to[e ^ 1]
                    it[u] += 1
                else:
                    break  # source exhausted: blocking flow complete


def _feasibility_topology(
    n: int, n_iv: int, k0s: Sequence[int], k1s: Sequence[int],
    srcs: Sequence[int],
) -> Tuple[List[int], List[int], List[int]]:
    """Build the shared CSR topology ``(to, head, elist)`` arithmetically.

    The feasibility network's edge layout is fully determined by the job
    window table, so both the edge targets and the CSR adjacency can be
    written directly — node degrees are known in closed form (source: one
    arc per job; sink: one per interval; job: source arc + window arcs;
    interval: sink arc + one per covering job), which skips the generic
    counting sort of :meth:`Dinic.finalize`.  The produced ``elist`` holds
    each node's incident edge ids in ascending order, exactly what the
    counting sort yields.
    """
    if n:
        last = n - 1
        e2 = srcs[last] + 2 * (1 + k1s[last] - k0s[last])
    else:
        e2 = 2 * n_iv
    base_iv = 2 + n
    to = [0] * e2
    cover = [0] * (n_iv + 1)
    for k in range(n_iv):
        ks = 2 * k
        to[ks] = 1  # SINK
        to[ks + 1] = base_iv + k
    for idx in range(n):
        jn = 2 + idx
        e = srcs[idx]
        to[e] = jn  # to[e + 1] stays 0 == SOURCE
        k0, k1 = k0s[idx], k1s[idx]
        cover[k0] += 1
        cover[k1] -= 1
        for k in range(k0, k1):
            e += 2
            to[e] = base_iv + k
            to[e + 1] = jn
    n_nodes = base_iv + n_iv
    head = [0] * (n_nodes + 1)
    head[1] = n                 # source's arcs
    head[2] = n + n_iv          # sink's (reverse) arcs
    for idx in range(n):
        head[3 + idx] = head[2 + idx] + 1 + k1s[idx] - k0s[idx]
    running = 0
    for k in range(n_iv):
        running += cover[k]
        head[base_iv + k + 1] = head[base_iv + k] + 1 + running
    elist = [0] * e2
    for idx in range(n):
        elist[idx] = srcs[idx]          # source list (head[0] == 0)
    p = head[1]
    for k in range(n_iv):
        elist[p + k] = 2 * k + 1        # sink list
    ivfill = head[base_iv : base_iv + n_iv]
    for k in range(n_iv):
        elist[ivfill[k]] = 2 * k        # each interval list starts with its sink arc
        ivfill[k] += 1
    for idx in range(n):
        p = head[2 + idx]
        e = srcs[idx]
        elist[p] = e + 1                # reverse source arc heads the job list
        p += 1
        for k in range(k0s[idx], k1s[idx]):
            e += 2
            elist[p] = e
            p += 1
            elist[ivfill[k]] = e + 1    # reverse window arc on the interval
            ivfill[k] += 1
    return to, head, elist


def _feasibility_topology_c(
    ck, n: int, n_iv: int, k0s: array, k1s: array, srcs: array,
) -> Tuple[array, array, array]:
    """:func:`_feasibility_topology` built natively, as int32 arrays.

    Byte-for-byte the same ``(to, head, elist)`` contents (pinned by
    ``tests/test_kernel.py``); arrays instead of lists so the compiled
    kernel reads them zero-copy.  The interpreted kernels can index them
    too, but each kernel keeps its own cached topology representation
    (``NetworkTables.topology`` vs ``topology_c``) so neither pays the
    other's access cost.
    """
    if n:
        last = n - 1
        e2 = srcs[last] + 2 * (1 + k1s[last] - k0s[last])
    else:
        e2 = 2 * n_iv
    return ck.build_topology(n, n_iv, k0s, k1s, srcs, e2, 2 + n + n_iv)


class FeasibilityNetwork:
    """Horn's feasibility network with in-place machine-count scaling.

    Nodes: ``0`` source, ``1`` sink, then one per job, then one per
    interval (the *sparsified* interval list when fed by the cache).
    Built once per ``(instance, speed)`` with the sink arcs at ``m = 0``;
    :meth:`set_machines` grows them to ``m · |E_k|``.

    The edge layout is arithmetic, so no per-edge Python structures
    survive construction:

    * interval ``k``'s sink arc is edge ``2k``;
    * job ``idx``'s source arc is ``_src[idx]`` and its window arcs are the
      contiguous even ids ``_src[idx] + 2 .. _src[idx] + 2(k1−k0)``, arc
      ``i`` feeding interval ``k0 + i``.

    ``intervals`` and ``scale`` come from the caller (typically the
    per-instance cache) so the Fraction arithmetic happens exactly once;
    job → interval ranges are resolved through O(1) dict lookups on the
    interval endpoints (every job's release starts, and deadline ends, a
    kept interval) instead of per-job Fraction bisection.
    """

    SOURCE = 0
    SINK = 1

    __slots__ = (
        "dinic",
        "kernel",
        "iv_caps",
        "job_ids",
        "total_demand",
        "machines",
        "flow",
        "_k0",
        "_k1",
        "_src",
        "_edf",
        "_ck",
        "_cap_mv",
        "n_nodes",
        "n_edges",
    )

    def __init__(
        self,
        instance,
        speed: Fraction,
        intervals: Sequence[Tuple[Fraction, Fraction]],
        scale: int,
        kernel: str = "py",
        tables=None,
    ) -> None:
        n = len(instance)
        n_iv = len(intervals)
        # The compiled kernel is resolved once per network; an explicit
        # kernel="c" request raises KernelUnavailable here (the "auto"
        # backend checks availability before ever asking for "c").
        ck = _ckernel.load() if kernel == "c" else None
        if tables is not None:
            # Integer fast path: all Fraction arithmetic happened once, in
            # the cache's table sweep.  ``speed·scale`` is an integer
            # multiple of ``base_scale`` by the scale_for contract, so every
            # capacity is two int multiplications away.
            sp = speed * scale
            base = tables.base_scale
            if sp.denominator != 1 or sp.numerator % base:
                raise ValueError(
                    "scale incompatible with tables; use cache.scale_for(speed)"
                )
            lenfac = sp.numerator // base       # len_base → interval capacity
            demfac = scale // base              # demand_base → demand
            demand_base = tables.demand_base
            k0s, k1s, srcs = tables.k0, tables.k1, tables.src
            edf = tables.edf
            total = tables.total_demand_base * demfac
            if ck is not None:
                # Compiled build: topology, capacity scaling, and the cold
                # fill all happen natively over the shared int32/int64
                # buffers — identical contents to the Python build.
                iv_caps = ck.scale_caps(tables.len_base, lenfac)
                if tables.topology_c is None:
                    tables.topology_c = _feasibility_topology_c(
                        ck, n, n_iv, k0s, k1s, srcs
                    )
                to_l, head, elist = tables.topology_c
                cap_arr = array("q", bytes(8 * len(to_l)))
                ck.fill_caps(
                    n, k0s, k1s, srcs, demand_base, demfac, iv_caps, cap_arr
                )
                dinic = Dinic.from_csr(2 + n + n_iv, to_l, cap_arr, head, elist)
                dinic._c_csr = (to_l, head, elist)
            else:
                iv_caps = [lb * lenfac for lb in tables.len_base]
                if tables.topology is None:
                    tables.topology = _feasibility_topology(n, n_iv, k0s, k1s, srcs)
                to_l, head, elist = tables.topology
                cap_arr = array("q", bytes(8 * len(to_l)))
                for idx in range(n):
                    e = srcs[idx]
                    cap_arr[e] = demand_base[idx] * demfac
                    e += 2
                    for k in range(k0s[idx], k1s[idx]):
                        cap_arr[e] = iv_caps[k]
                        e += 2
                dinic = Dinic.from_csr(2 + n + n_iv, to_l, cap_arr, head, elist)
        else:
            # Stand-alone path (no cache): compute the tables inline.
            dinic = Dinic(2 + n + n_iv)
            # One exact multiplication per interval; job→interval arcs reuse
            # it (a job cannot self-parallelize, so its per-interval cap
            # equals the interval's unit capacity).
            sp = speed * scale
            if sp.denominator == 1:
                spi = sp.numerator
                iv_caps = [int((b - a) * spi) for a, b in intervals]
            else:
                iv_caps = [int((b - a) * sp) for a, b in intervals]
            add_edge = dinic.add_edge
            for k in range(n_iv):
                add_edge(2 + n + k, self.SINK, 0)  # sink arc of interval k == 2k
            # Every job's release starts an interval and every deadline ends
            # one (dropping empty intervals cannot erase a boundary inside a
            # live window), so ranges are O(1) dict lookups.
            start_at = {a: k for k, (a, _) in enumerate(intervals)}
            end_at = {b: k for k, (_, b) in enumerate(intervals)}
            k0s = array("i", bytes(4 * n)) if n else _EMPTY_I
            k1s = array("i", bytes(4 * n)) if n else _EMPTY_I
            srcs = array("i", bytes(4 * n)) if n else _EMPTY_I
            total = 0
            for idx, job in enumerate(instance):
                demand = int(job.processing * scale)
                total += demand
                k0 = start_at[job.release]
                k1 = end_at[job.deadline] + 1
                k0s[idx] = k0
                k1s[idx] = k1
                srcs[idx] = add_edge(self.SOURCE, 2 + idx, demand)
                jn = 2 + idx
                for k in range(k0, k1):
                    add_edge(jn, 2 + n + k, iv_caps[k])
            edf = array("i", sorted(range(n), key=lambda i: (k1s[i], k0s[i], i)))
            dinic.finalize()
            if ck is not None:
                # The stand-alone build keeps the generic list construction;
                # only the per-interval capacities move to the int64 layout
                # the native grow/greedy entry points read.
                iv_caps = array("q", iv_caps)
        self.dinic = dinic
        self.kernel = kernel
        self._ck = ck
        self.iv_caps = iv_caps
        self.job_ids = [job.id for job in instance]
        self.total_demand = total
        self.machines = 0
        self.flow = 0
        self._k0, self._k1, self._src = k0s, k1s, srcs
        self._edf = edf
        self._cap_mv = memoryview(dinic.cap)
        self.n_nodes = dinic.n
        self.n_edges = len(dinic.to) // 2
        if _obs.enabled():
            _obs.incr("network.nodes", self.n_nodes)
            _obs.incr("network.edges", self.n_edges)

    # -- warm-started probing -------------------------------------------------

    def set_machines(self, m: int) -> None:
        """Retarget the sink capacities to ``m`` machines, in place.

        Growing is a pure capacity bump on the sink arcs (the residual flow
        stays valid and maximal-so-far, which is the warm start).  Shrinking
        *drains*: excess flow on over-capacity intervals is pushed back to
        the source, leaving a valid (no longer maximum) flow that the next
        :meth:`solve` completes — far cheaper than re-solving from scratch
        when the binary search steps downward, because the greedy pass skips
        every job that stayed saturated.
        """
        delta = m - self.machines
        if delta > 0:
            if self._ck is not None:
                self._ck.grow_sinks(delta, self.iv_caps, self.dinic.cap)
            else:
                cap = self.dinic.cap
                for k, c in enumerate(self.iv_caps):
                    cap[2 * k] += delta * c
        elif delta < 0:
            self._drain(-delta)
        self.machines = m

    def _drain(self, delta: int) -> None:
        """Shrink every sink capacity by ``delta`` machines, evicting flow.

        For interval ``k`` the sink arc loses ``delta·|E_k|`` capacity:
        residual headroom absorbs what it can; the remainder must come out
        of routed flow, so it is pulled back along the interval's incoming
        job arcs (their reverse arcs hold the per-arc flow) and off those
        jobs' source arcs.  The result is a *valid* flow saturating no sink
        arc beyond its new capacity; conservation guarantees the walk always
        finds enough incoming flow (``excess = f_k − m'·|E_k| ≤ f_k``).
        """
        dinic = self.dinic
        cap = dinic.cap
        to, head, elist = dinic.to, dinic._head, dinic._elist
        n = len(self.job_ids)
        srcs = self._src
        drained = 0
        for k, c in enumerate(self.iv_caps):
            cut = delta * c
            ks = 2 * k
            avail = cap[ks]
            if avail >= cut:
                cap[ks] = avail - cut
                continue
            excess = cut - avail
            cap[ks] = 0
            cap[ks + 1] -= excess
            drained += excess
            node = 2 + n + k
            for i in range(head[node], head[node + 1]):
                e = elist[i]
                # Odd ids incident to an interval node are exactly the
                # reverse window arcs; cap[e] is the forward arc's flow.
                if e & 1 and cap[e]:
                    take = cap[e] if cap[e] < excess else excess
                    cap[e] -= take
                    cap[e - 1] += take
                    se = srcs[to[e] - 2]  # that job's source arc
                    cap[se] += take
                    cap[se + 1] -= take
                    excess -= take
                    if not excess:
                        break
        self.flow -= drained
        if _obs.enabled() and drained:
            _obs.incr("dinic.flow_drained", drained)

    def _greedy_blocking(self) -> int:
        """A blocking flow on the depth-3 level graph, by direct layout walk.

        Every augmenting path of the *first* Dinic phase has the shape
        ``s → job → interval → t``; pushing greedily along the arithmetic
        edge layout (each job's intervals left to right) saturates, for
        every such path, its source, window, or sink arc — exactly a
        blocking flow — in one allocation-free O(E) pass with no path
        bookkeeping.  Dinic afterwards only reroutes.

        Jobs are visited in EDF order (deadline ascending, then release,
        then canonical index): any fixed order yields a blocking flow, but
        earliest-deadline-first with leftmost filling is near-optimal for
        this interval-structured network, so the rerouting left for Dinic
        — the expensive part of an infeasibility proof — is minimal.

        On the compiled kernel the identical pass (same EDF order, same
        left-to-right fill) runs natively; the pinned
        ``dinic.greedy_pushed`` counters agree across kernels.
        """
        if self._ck is not None:
            return self._ck.greedy_blocking(
                len(self.job_ids), self._edf, self._k0, self._k1,
                self._src, self.dinic.cap,
            )
        cap = self.dinic.cap
        k0s, k1s, srcs = self._k0, self._k1, self._src
        pushed = 0
        for idx in self._edf:
            se = srcs[idx]
            resid = cap[se]
            if not resid:
                continue
            sent = 0
            e = se + 2
            for k in range(k0s[idx], k1s[idx]):
                r = cap[e]
                if r:
                    ks = 2 * k
                    room = cap[ks]
                    if room:
                        push = resid
                        if r < push:
                            push = r
                        if room < push:
                            push = room
                        cap[e] = r - push
                        cap[e + 1] += push  # forward ids are even: e^1 == e+1
                        cap[ks] = room - push
                        cap[ks + 1] += push
                        resid -= push
                        sent += push
                        if not resid:
                            break
                e += 2
            if sent:
                cap[se] = resid
                cap[se + 1] += sent
                pushed += sent
        return pushed

    def solve(self) -> int:
        """Continue the max flow on the current residual; returns the total.

        Two fast exits keep probes cheap: when the greedy blocking pass
        alone saturates the demand the Dinic loop never runs, and when it
        does run it stops as soon as the residual demand is met (``limit``)
        instead of paying a final disconnection BFS.  Either way the
        network carries a *maximum* flow on return (saturated demand is a
        maximality certificate; otherwise Dinic ran to disconnection).
        """
        if not _obs.enabled():
            remaining = self.total_demand - self.flow
            if remaining:
                remaining -= self._greedy_blocking()
                if remaining:
                    remaining -= self.dinic.max_flow(
                        self.SOURCE, self.SINK, self.kernel, limit=remaining
                    )
                self.flow = self.total_demand - remaining
            return self.flow
        with _obs.span("dinic.solve", m=self.machines, kernel=self.kernel,
                       jobs=len(self.job_ids), intervals=len(self.iv_caps)):
            remaining = self.total_demand - self.flow
            if remaining:
                greedy = self._greedy_blocking()
                _obs.incr("dinic.greedy_pushed", greedy)
                remaining -= greedy
                if remaining:
                    remaining -= self.dinic.max_flow(
                        self.SOURCE, self.SINK, self.kernel, limit=remaining
                    )
                self.flow = self.total_demand - remaining
        return self.flow

    @property
    def feasible(self) -> bool:
        return self.flow == self.total_demand

    def snapshot(self) -> Tuple[int, bytes, int]:
        """Copy-on-write state: ``(machines, capacity bytes, flow)``.

        The capacity buffer is captured as immutable ``bytes`` (a single
        ``memcpy``); snapshots can be restored any number of times and are
        never copied again.
        """
        return (self.machines, self.dinic.cap.tobytes(), self.flow)

    def restore(self, state: Tuple[int, bytes, int]) -> None:
        """Copy a snapshot back into the live buffer (no new allocation)."""
        self.machines, blob, self.flow = state
        self._cap_mv[:] = memoryview(blob).cast("q")

    # -- extraction -----------------------------------------------------------

    def min_cut(self) -> Tuple[List[int], List[int]]:
        """Source side of a minimum cut as ``(job_ids, interval_indices)``.

        Meaningful only while the network carries a *maximum* flow (the
        cache's invariant after :meth:`solve`).  When the flow falls short of
        the total demand, the cut witnesses Theorem 1's overloaded-interval
        characterization: with ``S`` the returned jobs and ``I`` the union of
        the returned elementary intervals, every admissible ``job → interval``
        arc leaving the set is saturated, so

            Σ_{j ∈ S} (p_j − s·(|I(j)| − |I(j) ∩ I|))  >  m · s · |I|,

        i.e. the mandatory work of ``S`` inside ``I`` exceeds the machine
        capacity — a solver-independent proof of infeasibility at ``m``.
        """
        seen = self.dinic.residual_reachable(self.SOURCE)
        n = len(self.job_ids)
        jobs = [jid for idx, jid in enumerate(self.job_ids) if seen[2 + idx]]
        ivs = [k for k in range(len(self.iv_caps)) if seen[2 + n + k]]
        return jobs, ivs

    def work_by_job(self, speed: Fraction, scale: int) -> Dict[int, Dict[int, Fraction]]:
        """``work[job_id][k]`` — machine time per (sparsified) interval."""
        cap = self.dinic.cap
        k0s, k1s, srcs = self._k0, self._k1, self._src
        work: Dict[int, Dict[int, Fraction]] = {}
        denom = scale * speed
        for idx, job_id in enumerate(self.job_ids):
            row: Dict[int, Fraction] = {}
            e = srcs[idx] + 2
            for k in range(k0s[idx], k1s[idx]):
                amount = cap[e ^ 1]  # flow on the forward edge, in work units
                if amount:
                    row[k] = amount / denom
                e += 2
            work[job_id] = row
        return work
