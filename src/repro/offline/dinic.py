"""A dedicated integer Dinic max-flow solver for the feasibility core.

Horn's feasibility test (``flow.py``) is the inner loop of every experiment:
``migratory_optimum`` binary-searches it, and the analysis layer calls that
optimum for every sampled instance.  The generic ``networkx`` solver pays
for per-node hashing, ``dict``-of-``dict`` adjacency, and graph construction
on every probe.  This module replaces it on the hot path with

* :class:`Dinic` — max-flow on flat parallel arrays (``to`` / ``cap`` /
  per-node edge lists), reverse edge of edge ``e`` is ``e ^ 1``, blocking
  flows found by an iterative DFS (no recursion limits at scale);
* :class:`FeasibilityNetwork` — the ``source → job → interval → sink``
  network specialized to the job/interval bipartite structure: interval
  capacities are computed once, a job's interval range is located by
  bisection (every release/deadline is an event point), and the ``m·|E_k|``
  sink capacities can be *grown in place*, so a solved flow at ``m``
  machines warm-starts the probe at any ``m' > m`` (capacities only grow —
  the previous flow stays feasible and Dinic continues on the residual).

Snapshots (:meth:`FeasibilityNetwork.snapshot` / ``restore``) make the
warm start usable inside a *binary* search, whose probe sequence is not
monotone: restoring the nearest snapshot below the target ``m`` replaces a
from-scratch rebuild with one array copy.

Everything is integral: callers scale rational data by the common
denominator (see ``flow._common_scale``), so ``flow == total demand`` is an
exact feasibility verdict.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from fractions import Fraction
from typing import Dict, List, Sequence, Tuple

from ..obs import core as _obs


class Dinic:
    """Integer max-flow on flat adjacency arrays.

    Edges are stored in pairs: ``add_edge`` appends the forward edge at an
    even index ``e`` and its reverse (capacity 0) at ``e ^ 1``; the flow on
    ``e`` is therefore ``cap[e ^ 1]`` as long as callers only ever *grow*
    forward capacities (the warm-start contract).
    """

    __slots__ = ("n", "to", "cap", "adj")

    def __init__(self, n_nodes: int) -> None:
        self.n = n_nodes
        self.to: List[int] = []
        self.cap: List[int] = []
        self.adj: List[List[int]] = [[] for _ in range(n_nodes)]

    def add_edge(self, u: int, v: int, capacity: int) -> int:
        """Add ``u → v`` with the given capacity; returns the edge id."""
        e = len(self.to)
        self.to.append(v)
        self.cap.append(capacity)
        self.adj[u].append(e)
        self.to.append(u)
        self.cap.append(0)
        self.adj[v].append(e + 1)
        return e

    def edge_flow(self, e: int) -> int:
        """Flow currently routed through forward edge ``e``."""
        return self.cap[e ^ 1]

    def residual_reachable(self, s: int) -> List[bool]:
        """Nodes reachable from ``s`` through positive-residual edges.

        After :meth:`max_flow` has terminated this is the source side of a
        minimum cut (max-flow/min-cut duality): every edge leaving the
        returned set is saturated.
        """
        seen = [False] * self.n
        seen[s] = True
        stack = [s]
        to, cap, adj = self.to, self.cap, self.adj
        while stack:
            u = stack.pop()
            for e in adj[u]:
                v = to[e]
                if cap[e] and not seen[v]:
                    seen[v] = True
                    stack.append(v)
        return seen

    def max_flow(self, s: int, t: int) -> int:
        """Push a maximum flow from ``s`` to ``t``; returns the amount *added*.

        Starting from the current residual capacities, so repeated calls
        after capacity increases implement a warm start.
        """
        to, cap, adj = self.to, self.cap, self.adj
        added = 0
        # Local accumulators: the inner loops stay free of any obs calls;
        # one guarded flush happens at the single return point below.
        phases = paths = retreats = 0
        while True:
            # BFS: level graph over the residual network.
            phases += 1
            level = [-1] * self.n
            level[s] = 0
            queue = deque((s,))
            while queue:
                u = queue.popleft()
                lu = level[u] + 1
                for e in adj[u]:
                    v = to[e]
                    if cap[e] and level[v] < 0:
                        level[v] = lu
                        queue.append(v)
            if level[t] < 0:
                if _obs.enabled():
                    _obs.incr("dinic.bfs_phases", phases)
                    _obs.incr("dinic.aug_paths", paths)
                    _obs.incr("dinic.retreats", retreats)
                    _obs.incr("dinic.flow_pushed", added)
                return added
            # Blocking flow: iterative DFS with current-arc pointers.
            it = [0] * self.n
            path: List[int] = []  # edge ids from s to the current node
            u = s
            while True:
                if u == t:
                    paths += 1
                    aug = min(cap[e] for e in path)
                    added += aug
                    for e in path:
                        cap[e] -= aug
                        cap[e ^ 1] += aug
                    # Retreat to the shallowest saturated edge.
                    cut = next(i for i, e in enumerate(path) if not cap[e])
                    del path[cut + 1 :]
                    e = path.pop()
                    u = to[e ^ 1]
                    it[u] += 1
                    continue
                edges = adj[u]
                i = it[u]
                lu = level[u] + 1
                advanced = False
                while i < len(edges):
                    e = edges[i]
                    v = to[e]
                    if cap[e] and level[v] == lu:
                        advanced = True
                        break
                    i += 1
                it[u] = i
                if advanced:
                    path.append(e)
                    u = v
                elif path:
                    retreats += 1
                    level[u] = -1  # dead end: prune from this phase
                    e = path.pop()
                    u = to[e ^ 1]
                    it[u] += 1
                else:
                    break  # source exhausted: blocking flow complete


class FeasibilityNetwork:
    """Horn's feasibility network with in-place machine-count scaling.

    Nodes: ``0`` source, ``1`` sink, then one per job, then one per
    elementary interval.  Built once per ``(instance, speed)`` with the sink
    arcs at ``m = 0``; :meth:`set_machines` grows them to ``m · |E_k|``.
    ``intervals`` and ``scale`` come from the caller (typically the
    per-instance cache) so the Fraction arithmetic happens exactly once.
    """

    SOURCE = 0
    SINK = 1

    __slots__ = (
        "dinic",
        "iv_caps",
        "sink_edges",
        "source_edges",
        "job_edges",
        "job_ids",
        "total_demand",
        "machines",
        "flow",
    )

    def __init__(
        self,
        instance,
        speed: Fraction,
        intervals: Sequence[Tuple[Fraction, Fraction]],
        scale: int,
    ) -> None:
        n = len(instance)
        n_iv = len(intervals)
        dinic = Dinic(2 + n + n_iv)
        # One exact multiplication per interval; job→interval arcs reuse it
        # (a job cannot self-parallelize, so its per-interval cap equals the
        # interval's unit capacity).
        iv_caps = [int((b - a) * speed * scale) for a, b in intervals]
        self.sink_edges = [
            dinic.add_edge(2 + n + k, self.SINK, 0) for k in range(n_iv)
        ]
        starts = [a for a, _ in intervals]
        self.source_edges: List[int] = []
        self.job_edges: List[List[Tuple[int, int]]] = []  # per job: (edge, k)
        self.job_ids: List[int] = []
        total = 0
        for idx, job in enumerate(instance):
            demand = int(job.processing * scale)
            total += demand
            self.source_edges.append(dinic.add_edge(self.SOURCE, 2 + idx, demand))
            # Every release/deadline is an event point, so the intervals
            # inside [r_j, d_j) are exactly a contiguous bisected range.
            k0 = bisect_left(starts, job.release)
            k1 = bisect_left(starts, job.deadline)
            self.job_edges.append(
                [
                    (dinic.add_edge(2 + idx, 2 + n + k, iv_caps[k]), k)
                    for k in range(k0, k1)
                ]
            )
            self.job_ids.append(job.id)
        self.dinic = dinic
        self.iv_caps = iv_caps
        self.total_demand = total
        self.machines = 0
        self.flow = 0

    # -- warm-started probing -------------------------------------------------

    def set_machines(self, m: int) -> None:
        """Grow sink capacities to ``m`` machines (``m ≥`` current)."""
        delta = m - self.machines
        if delta < 0:
            raise ValueError("capacities only grow; restore a snapshot instead")
        if delta:
            cap = self.dinic.cap
            for e, c in zip(self.sink_edges, self.iv_caps):
                cap[e] += delta * c
            self.machines = m
        # delta == 0: nothing to do — the flow already matches this m.

    def solve(self) -> int:
        """Continue the max flow on the current residual; returns the total."""
        if not _obs.enabled():
            self.flow += self.dinic.max_flow(self.SOURCE, self.SINK)
            return self.flow
        with _obs.span("dinic.solve", m=self.machines,
                       jobs=len(self.job_ids), intervals=len(self.iv_caps)):
            self.flow += self.dinic.max_flow(self.SOURCE, self.SINK)
        return self.flow

    @property
    def feasible(self) -> bool:
        return self.flow == self.total_demand

    def snapshot(self) -> Tuple[int, List[int], int]:
        """Cheap copyable state: ``(machines, capacities, flow)``."""
        return (self.machines, list(self.dinic.cap), self.flow)

    def restore(self, state: Tuple[int, List[int], int]) -> None:
        self.machines, cap, self.flow = state
        self.dinic.cap = list(cap)

    # -- extraction -----------------------------------------------------------

    def min_cut(self) -> Tuple[List[int], List[int]]:
        """Source side of a minimum cut as ``(job_ids, interval_indices)``.

        Meaningful only while the network carries a *maximum* flow (the
        cache's invariant after :meth:`solve`).  When the flow falls short of
        the total demand, the cut witnesses Theorem 1's overloaded-interval
        characterization: with ``S`` the returned jobs and ``I`` the union of
        the returned elementary intervals, every admissible ``job → interval``
        arc leaving the set is saturated, so

            Σ_{j ∈ S} (p_j − s·(|I(j)| − |I(j) ∩ I|))  >  m · s · |I|,

        i.e. the mandatory work of ``S`` inside ``I`` exceeds the machine
        capacity — a solver-independent proof of infeasibility at ``m``.
        """
        seen = self.dinic.residual_reachable(self.SOURCE)
        n = len(self.job_ids)
        jobs = [jid for idx, jid in enumerate(self.job_ids) if seen[2 + idx]]
        ivs = [k for k in range(len(self.iv_caps)) if seen[2 + n + k]]
        return jobs, ivs

    def work_by_job(self, speed: Fraction, scale: int) -> Dict[int, Dict[int, Fraction]]:
        """``work[job_id][k]`` — machine time per elementary interval."""
        cap = self.dinic.cap
        work: Dict[int, Dict[int, Fraction]] = {}
        for job_id, edges in zip(self.job_ids, self.job_edges):
            row: Dict[int, Fraction] = {}
            for e, k in edges:
                amount = cap[e ^ 1]  # flow on the forward edge, in work units
                if amount:
                    row[k] = Fraction(amount, scale) / speed
            work[job_id] = row
        return work
