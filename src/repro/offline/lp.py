"""Independent LP formulation of migratory feasibility (differential oracle).

The flow solver in :mod:`repro.offline.flow` is the primary exact method.
This module solves the *same* feasibility question as a linear program with
``scipy.optimize.linprog`` (HiGHS): variables ``x[j,k]`` = machine time job
``j`` receives in elementary interval ``k``, constraints

* ``Σ_k x[j,k] = p_j``                         (work completion)
* ``0 ≤ x[j,k] ≤ |E_k|``                       (no self-parallelism)
* ``Σ_j x[j,k] ≤ m·|E_k|``                     (machine capacity)
* ``x[j,k] = 0`` when ``E_k ⊄ [r_j, d_j)``     (window)

Being float-based it is *not* used by any experiment; it exists to
differential-test the flow solver (``tests/test_lp_crosscheck.py``): the two
independent implementations must agree on feasibility for every random
instance, up to an explicit tolerance band around the feasibility boundary.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Tuple

import numpy as np
from scipy.optimize import linprog

from ..model.instance import Instance
from ..model.intervals import Numeric, to_fraction
from .flow import _event_intervals


def lp_feasible(
    instance: Instance, m: int, speed: Numeric = 1, tol: float = 1e-9
) -> Optional[bool]:
    """LP verdict on feasibility; ``None`` if the solver fails.

    Maximizes total scheduled work under the relaxed constraints; feasible
    iff the optimum reaches ``Σ_j p_j`` (within ``tol`` relative slack).
    """
    if len(instance) == 0:
        return True
    if m <= 0:
        return False
    speed = float(to_fraction(speed))
    intervals = _event_intervals(instance)
    jobs = list(instance)
    n, K = len(jobs), len(intervals)
    # variable index (j, k) → j*K + k, only for admissible pairs
    var_of = {}
    for j_idx, job in enumerate(jobs):
        for k, (a, b) in enumerate(intervals):
            if job.release <= a and b <= job.deadline:
                var_of[(j_idx, k)] = len(var_of)
    nv = len(var_of)
    if nv == 0:
        return False
    lengths = [float(b - a) for a, b in intervals]
    # objective: maximize total work == minimize -sum x (work = x * speed)
    c = -np.ones(nv)
    # capacity constraints per interval: Σ_j x[j,k] ≤ m·len_k
    a_ub_rows: List[np.ndarray] = []
    b_ub: List[float] = []
    for k in range(K):
        row = np.zeros(nv)
        hit = False
        for j_idx in range(n):
            idx = var_of.get((j_idx, k))
            if idx is not None:
                row[idx] = 1.0
                hit = True
        if hit:
            a_ub_rows.append(row)
            b_ub.append(m * lengths[k])
    # per-job work cap: Σ_k x[j,k]·speed ≤ p_j  (maximization drives equality)
    for j_idx, job in enumerate(jobs):
        row = np.zeros(nv)
        for k in range(K):
            idx = var_of.get((j_idx, k))
            if idx is not None:
                row[idx] = speed
        a_ub_rows.append(row)
        b_ub.append(float(job.processing))
    bounds = [None] * nv
    for (j_idx, k), idx in var_of.items():
        bounds[idx] = (0.0, lengths[k])
    result = linprog(
        c,
        A_ub=np.vstack(a_ub_rows),
        b_ub=np.array(b_ub),
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        return None
    total_work = -result.fun * speed
    needed = float(sum(float(j.processing) for j in jobs))
    return bool(total_work >= needed * (1 - tol) - tol)
