"""Exact offline migratory feasibility via maximum flow.

The preemptive migratory machine-minimization problem is solvable offline in
polynomial time (Horn's classic flow formulation, referenced in Section 1 of
the paper).  For a candidate machine count ``m``:

* split the time axis at the release/deadline event points into elementary
  intervals ``E_1, …, E_K``;
* build the network ``source → job → interval → sink`` with capacities
  ``p_j``, ``|E_k|`` (a job cannot self-parallelize within an interval) and
  ``m·|E_k|`` (machine capacity);
* the instance is feasible on ``m`` unit-speed machines iff the max flow
  saturates all source arcs, i.e. equals ``Σ_j p_j``.

All rational data is scaled by the common denominator so the flow problem is
*integral* and the answer is exact.  A feasible flow is turned into an
explicit migratory :class:`~repro.model.schedule.Schedule` by McNaughton's
wrap-around rule inside each elementary interval.

Four interchangeable solver backends answer the flow question (the default
``"auto"`` resolves to the fastest one available — see
:func:`resolve_backend`):

* ``"dinic"`` — the flat-array solver in :mod:`repro.offline.dinic`, fed by
  the per-instance memo in :mod:`repro.offline.feascache` (event intervals,
  scales, and verdicts are computed once per instance; feasibility probes
  warm-start each other);
* ``"dinic_np"`` — the same solver with a numpy-vectorized BFS level build
  (bit-identical levels, hence bit-identical flows); opt-in and
  differential-tested against the pure-stdlib kernel;
* ``"dinic_c"`` — the compiled kernel of :mod:`repro.offline.kernel`: the
  whole blocking-flow loop (plus the greedy pass, topology build, and
  warm-start capacity updates) runs natively over the same zero-copy
  buffers, bit-identical again; lazily compiled at first use and
  unavailable (gracefully) when no C compiler or cached build exists;
* ``"networkx"`` — the original generic ``nx.maximum_flow`` formulation,
  kept as an independent implementation for differential testing and as the
  baseline in ``benchmarks/bench_scale.py``.

All backends consume the *sparsified* event intervals by default (zero-
demand elementary intervals dropped before the network is built — see
:mod:`repro.offline.feascache`); ``sparsify=False`` rebuilds over the full
elementary structure, with provably identical results.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from ..model.instance import Instance
from ..model.intervals import Numeric, to_fraction
from ..model.schedule import Schedule, Segment
from .feascache import cache_for

_SOURCE = "s"
_SINK = "t"

#: Solver backends accepted by :func:`max_flow_assignment` and friends.
BACKENDS = ("dinic", "dinic_np", "dinic_c", "networkx")

#: ``"auto"`` resolves to the fastest kernel available in this process
#: (``dinic_c`` → ``dinic_np`` → ``dinic``); see :func:`resolve_backend`.
DEFAULT_BACKEND = "auto"

#: Dinic-family backends and the level-graph kernel each one selects.
_DINIC_KERNELS = {"dinic": "py", "dinic_np": "np", "dinic_c": "c"}

#: Inverse map: kernel name → backend name (used by the auto resolution).
_KERNEL_BACKENDS = {"py": "dinic", "np": "dinic_np", "c": "dinic_c"}


def _check_backend(backend: str) -> None:
    if backend not in BACKENDS and backend != "auto":
        raise ValueError(
            f"unknown flow backend {backend!r}; expected one of "
            f"{BACKENDS + ('auto',)}"
        )


def resolve_backend(backend: str = DEFAULT_BACKEND) -> str:
    """The concrete backend a request will run on.

    ``"auto"`` picks the fastest kernel usable in this process, probing the
    ladder ``dinic_c`` (compiled; needs a C compiler or a warm build cache)
    → ``dinic_np`` (numpy BFS) → ``dinic`` (pure stdlib).  All three
    produce bit-identical flows, so the choice is invisible except in
    speed; the resolved name is what result metadata and obs spans record.
    Concrete names pass through unchanged (after validation) — including
    ``dinic_c`` on a host that cannot provide it, which then raises
    :class:`~repro.offline.kernel.KernelUnavailable` at first use rather
    than silently degrading an explicit request.
    """
    if backend == "auto":
        from .kernel import best_kernel

        return _KERNEL_BACKENDS[best_kernel()]
    _check_backend(backend)
    return backend


def available_backends() -> Tuple[str, ...]:
    """The subset of :data:`BACKENDS` usable in this process.

    Only ``dinic_c`` is conditional (it needs a C compiler or a warm build
    cache, and honors the ``REPRO_DINIC_C=off`` escape hatch); this is the
    default backend set of the differential harness, so cross-checks run
    everywhere without configuration.
    """
    from .kernel import available

    return tuple(b for b in BACKENDS if b != "dinic_c" or available())


def _event_intervals(instance: Instance) -> List[Tuple[Fraction, Fraction]]:
    """Elementary intervals between consecutive release/deadline events.

    Memoized per instance — instances are immutable, so the structure is
    computed at most once no matter how many probes ask for it.
    """
    return cache_for(instance).intervals


def _common_scale(instance: Instance, extra: Sequence[Fraction] = ()) -> int:
    """LCM of all denominators appearing in the instance (and ``extra``).

    The instance part is memoized per instance; only the (tiny) ``extra``
    fold-in is recomputed.
    """
    scale = cache_for(instance).base_scale
    for x in extra:
        d = x.denominator
        scale = scale * d // math.gcd(scale, d)
    return scale


def _build_network(
    instance: Instance,
    m: int,
    speed: Fraction,
    intervals: List[Tuple[Fraction, Fraction]],
    scale: int,
) -> nx.DiGraph:
    graph = nx.DiGraph()
    for k, (a, b) in enumerate(intervals):
        cap = int((b - a) * speed * scale)
        graph.add_edge(("iv", k), _SINK, capacity=m * cap)
    for job in instance:
        graph.add_edge(_SOURCE, ("job", job.id), capacity=int(job.processing * scale))
        for k, (a, b) in enumerate(intervals):
            if job.release <= a and b <= job.deadline:
                graph.add_edge(
                    ("job", job.id), ("iv", k), capacity=int((b - a) * speed * scale)
                )
    return graph


def _scaled_inputs(
    instance: Instance, speed: Fraction, sparsify: bool = True
) -> Tuple[List[Tuple[Fraction, Fraction]], int]:
    """Memoized ``(network intervals, scale)`` for one ``(instance, speed)``.

    The interval list is the one the networks are built over (sparsified by
    default).  Capacities ``(b−a)·speed·scale`` and ``p_j·scale`` must be
    integral: take the LCM of all data denominators and one extra factor of
    ``speed.denominator`` (the LCM alone does not guarantee divisibility of
    the *product* of two fractional factors).
    """
    cache = cache_for(instance, sparsify=sparsify)
    return cache.network_intervals, cache.scale_for(speed)


def max_flow_assignment(
    instance: Instance,
    m: int,
    speed: Numeric = 1,
    backend: str = DEFAULT_BACKEND,
    sparsify: bool = True,
) -> Tuple[bool, Dict[int, Dict[int, Fraction]], List[Tuple[Fraction, Fraction]]]:
    """Solve the feasibility flow for ``m`` speed-``speed`` machines.

    Returns ``(feasible, work, intervals)`` where ``work[job_id][k]`` is the
    amount of *machine time* job ``job_id`` spends in interval ``k`` of the
    returned interval list in a maximum flow (work equals machine time
    times speed).  The interval list is the (sparsified, by default) event
    structure the network was built over.
    """
    backend = resolve_backend(backend)
    if len(instance) == 0:
        return True, {}, []
    if m <= 0:
        return False, {}, []
    speed = to_fraction(speed)
    intervals, scale = _scaled_inputs(instance, speed, sparsify)
    kernel = _DINIC_KERNELS.get(backend)
    if kernel is not None:
        cache = cache_for(instance, sparsify=sparsify)
        network = cache.solved_network(m, speed, kernel)
        return network.feasible, network.work_by_job(speed, scale), intervals
    graph = _build_network(instance, m, speed, intervals, scale)
    total = sum(int(j.processing * scale) for j in instance)
    flow_value, flow_dict = nx.maximum_flow(
        graph, _SOURCE, _SINK, flow_func=nx.algorithms.flow.dinitz
    )
    feasible = flow_value == total
    work: Dict[int, Dict[int, Fraction]] = {}
    for job in instance:
        row: Dict[int, Fraction] = {}
        for node, amount in flow_dict.get(("job", job.id), {}).items():
            if amount > 0 and isinstance(node, tuple) and node[0] == "iv":
                # amount is work in scaled units; machine time = work / speed
                row[node[1]] = Fraction(amount, scale) / speed
        work[job.id] = row
    return feasible, work, intervals


def migratory_feasible(
    instance: Instance,
    m: int,
    speed: Numeric = 1,
    backend: str = DEFAULT_BACKEND,
    sparsify: bool = True,
) -> bool:
    """Exact test: does a feasible migratory schedule on ``m`` machines exist?

    The dinic backends answer through the per-instance cache: repeated
    probes on the same instance reuse the built network, warm-start from
    each other's residual flows, and memoize ``(m, speed)`` verdicts.
    """
    backend = resolve_backend(backend)
    kernel = _DINIC_KERNELS.get(backend)
    if kernel is not None:
        if len(instance) == 0:
            return True
        if m <= 0:
            return False
        return cache_for(instance, sparsify=sparsify).feasible(
            m, to_fraction(speed), kernel
        )
    feasible, _, _ = max_flow_assignment(
        instance, m, speed, backend=backend, sparsify=sparsify
    )
    return feasible


def mcnaughton(
    pieces: Sequence[Tuple[int, Fraction]],
    start: Fraction,
    end: Fraction,
    m: int,
    machine_offset: int = 0,
) -> List[Segment]:
    """McNaughton's wrap-around rule for one elementary interval.

    ``pieces`` are ``(job_id, machine_time)`` with each piece at most
    ``end − start`` and total at most ``m (end − start)``.  Pieces are laid
    out on a virtual timeline of length ``m (end − start)`` and wrapped onto
    machines; a wrapped piece becomes two non-overlapping segments on two
    machines (this is where migration enters).
    """
    length = end - start
    if length <= 0:
        raise ValueError("empty elementary interval")
    segments: List[Segment] = []
    machine = 0
    cursor = start
    for job_id, amount in pieces:
        if amount <= 0:
            continue
        if amount > length:
            raise ValueError(f"piece of job {job_id} exceeds interval length")
        remaining = amount
        while remaining > 0:
            if machine >= m:
                raise ValueError("pieces exceed machine capacity")
            room = end - cursor
            take = min(room, remaining)
            if take > 0:
                segments.append(
                    Segment(job_id, machine + machine_offset, cursor, cursor + take)
                )
            cursor += take
            remaining -= take
            if cursor == end:
                machine += 1
                cursor = start
    return segments


def schedule_from_work(
    work: Dict[int, Dict[int, Fraction]],
    intervals: Sequence[Tuple[Fraction, Fraction]],
    m: int,
) -> Schedule:
    """Turn a feasible flow's work map into an explicit migratory schedule.

    Within each elementary interval, jobs are sorted by decreasing machine
    time before the wrap-around so that a job split across the wrap boundary
    never overlaps itself (its piece is at most the interval length).
    """
    segments: List[Segment] = []
    per_interval: Dict[int, List[Tuple[int, Fraction]]] = {}
    for job_id, row in work.items():
        for k, amount in row.items():
            per_interval.setdefault(k, []).append((job_id, amount))
    for k, pieces in per_interval.items():
        a, b = intervals[k]
        pieces.sort(key=lambda item: (-item[1], item[0]))
        segments.extend(mcnaughton(pieces, a, b, m))
    return Schedule(segments)


def migratory_schedule(
    instance: Instance,
    m: int,
    speed: Numeric = 1,
    backend: str = DEFAULT_BACKEND,
    sparsify: bool = True,
) -> Optional[Schedule]:
    """An explicit feasible migratory schedule on ``m`` machines, or ``None``."""
    feasible, work, intervals = max_flow_assignment(
        instance, m, speed, backend=backend, sparsify=sparsify
    )
    if not feasible:
        return None
    return schedule_from_work(work, intervals, m)


def networkx_min_cut(
    instance: Instance, m: int, speed: Numeric = 1, sparsify: bool = True
) -> Tuple[List[int], List[int]]:
    """Source side of a minimum cut of the networkx-built feasibility network.

    Returns ``(job_ids, interval_indices)`` — the independent counterpart of
    :meth:`repro.offline.dinic.FeasibilityNetwork.min_cut`, used to extract
    Theorem 1 overloaded-interval witnesses from the networkx backend.
    """
    if len(instance) == 0 or m <= 0:
        # No network to cut: every job (with its whole window) is a witness.
        return [j.id for j in instance], []
    speed = to_fraction(speed)
    intervals, scale = _scaled_inputs(instance, speed, sparsify)
    graph = _build_network(instance, m, speed, intervals, scale)
    _, (reachable, _) = nx.minimum_cut(
        graph, _SOURCE, _SINK, flow_func=nx.algorithms.flow.dinitz
    )
    jobs = sorted(node[1] for node in reachable
                  if isinstance(node, tuple) and node[0] == "job")
    ivs = sorted(node[1] for node in reachable
                 if isinstance(node, tuple) and node[0] == "iv")
    return jobs, ivs
