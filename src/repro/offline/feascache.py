"""Per-instance memoization for the feasibility core.

Every analysis entry point (``analysis.metrics``, ``analysis.competitive``,
``analysis.search``, ``offline.nonmigratory``, ``realtime.analysis``)
bottoms out in the same two primitives: the elementary-interval structure of
an instance and the feasibility verdict at some ``(m, speed)``.  Before this
module each caller recomputed both from scratch — the binary search in
``migratory_optimum`` alone re-derived the event intervals and the common
denominator on *every* probe.

:class:`FeasibilityCache` hangs off the :class:`~repro.model.instance.Instance`
itself (instances are immutable, so nothing can invalidate the memo):

* ``intervals`` / ``base_scale`` — computed once per instance,
* ``verdicts`` — resolved ``(m, speed) → feasible`` answers, shared by every
  caller that probes the same instance,
* per-speed :class:`~repro.offline.dinic.FeasibilityNetwork` solvers with
  snapshot/restore, so a binary search's non-monotone probe sequence costs
  one network build plus warm-started residual pushes (capacities only grow
  with ``m``; a probe below the solver's current state restores the nearest
  snapshot instead of rebuilding).

``stats`` counts probes/hits so tests can pin the ``O(log(hi − lo))``
probe-complexity contract and the cross-caller cache behaviour.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, replace
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from ..model.instance import Instance
from ..obs import core as _obs
from .dinic import FeasibilityNetwork


@dataclass
class CacheStats:
    """Counters for the cache's observable behaviour (used by tests).

    Every increment is mirrored to the ``cache.*`` counters of
    :mod:`repro.obs` when a sink is attached, so the same numbers are
    available both on the cache object and in captured traces.
    """

    probes: int = 0  # feasibility questions answered by a flow computation
    verdict_hits: int = 0  # answered from the (m, speed) memo
    network_builds: int = 0  # cold FeasibilityNetwork constructions
    restores: int = 0  # snapshot restores (probe below current m)

    def bump(self, field_name: str) -> None:
        """Increment one counter, mirroring it to the obs layer."""
        setattr(self, field_name, getattr(self, field_name) + 1)
        _obs.incr("cache." + field_name)

    def snapshot(self) -> "CacheStats":
        """An immutable-by-convention copy (carried on certificates)."""
        return replace(self)

    def as_dict(self) -> Dict[str, int]:
        return asdict(self)


class _SpeedState:
    """Incremental solver state for one ``(instance, speed)`` pair."""

    __slots__ = ("network", "snapshots")

    def __init__(self, network: FeasibilityNetwork) -> None:
        self.network = network
        # m → (machines, cap[], flow); always contains the m = 0 base state.
        self.snapshots: Dict[int, Tuple[int, List[int], int]] = {
            0: network.snapshot()
        }


class FeasibilityCache:
    """Instance-lifetime memo for Horn's feasibility flow."""

    __slots__ = ("instance", "_intervals", "_base_scale", "_verdicts",
                 "_speed_states", "stats")

    def __init__(self, instance: Instance) -> None:
        self.instance = instance
        self._intervals: Optional[List[Tuple[Fraction, Fraction]]] = None
        self._base_scale: Optional[int] = None
        self._verdicts: Dict[Tuple[int, Fraction], bool] = {}
        self._speed_states: Dict[Fraction, _SpeedState] = {}
        self.stats = CacheStats()

    # -- memoized instance structure -----------------------------------------

    @property
    def intervals(self) -> List[Tuple[Fraction, Fraction]]:
        """Elementary intervals between consecutive release/deadline events."""
        if self._intervals is None:
            points = sorted(
                {j.release for j in self.instance}
                | {j.deadline for j in self.instance}
            )
            self._intervals = [
                (a, b) for a, b in zip(points, points[1:]) if b > a
            ]
        return self._intervals

    @property
    def base_scale(self) -> int:
        """LCM of all denominators appearing in the instance data."""
        if self._base_scale is None:
            scale = 1
            for j in self.instance:
                for d in (
                    j.release.denominator,
                    j.deadline.denominator,
                    j.processing.denominator,
                ):
                    scale = scale * d // math.gcd(scale, d)
            self._base_scale = scale
        return self._base_scale

    def scale_for(self, speed: Fraction) -> int:
        """Scale making both ``p_j`` and ``(b − a)·speed`` integral.

        ``lcm(base, q) · q`` for ``speed = p/q`` — the extra factor of ``q``
        guarantees divisibility of the *product* of two fractional factors
        (matches ``flow._common_scale(instance, extra=[speed]) · q``).
        """
        q = speed.denominator
        base = self.base_scale
        return (base * q // math.gcd(base, q)) * q

    # -- incremental feasibility ----------------------------------------------

    def network_for(self, speed: Fraction) -> FeasibilityNetwork:
        """The warm solver for this speed (built on first use)."""
        return self._state_for(speed).network

    def _state_for(self, speed: Fraction) -> _SpeedState:
        state = self._speed_states.get(speed)
        if state is None:
            network = FeasibilityNetwork(
                self.instance, speed, self.intervals, self.scale_for(speed)
            )
            state = _SpeedState(network)
            self._speed_states[speed] = state
            self.stats.bump("network_builds")
        return state

    def solved_network(self, m: int, speed: Fraction) -> FeasibilityNetwork:
        """The speed's network holding a maximum flow at exactly ``m``.

        Invariant: outside this method the network always carries a maximum
        flow for its current machine count, and every probed ``m`` has a
        post-solve snapshot.  A request above the current state grows the
        sink capacities in place and continues on the residual; a request
        below restores the nearest snapshot at or below ``m`` (the ``m = 0``
        base always exists) instead of rebuilding.
        """
        state = self._state_for(speed)
        network = state.network
        if m != network.machines:
            exact = state.snapshots.get(m)
            if exact is not None:
                # This m was probed before: restoring is a pure array copy.
                network.restore(exact)
                self.stats.bump("restores")
            elif m < network.machines:
                best = max(mm for mm in state.snapshots if mm <= m)
                network.restore(state.snapshots[best])
                self.stats.bump("restores")
        if m != network.machines:
            network.set_machines(m)
            network.solve()
            state.snapshots[m] = network.snapshot()
            self.stats.bump("probes")
            self._verdicts[(m, speed)] = network.feasible
        return network

    def feasible(self, m: int, speed: Fraction) -> bool:
        """Memoized feasibility verdict, warm-starting across probes."""
        if len(self.instance) == 0:
            return True
        if m <= 0:
            return False
        cached = self._verdicts.get((m, speed))
        if cached is not None:
            self.stats.bump("verdict_hits")
            return cached
        return self.solved_network(m, speed).feasible


def cache_for(instance: Instance) -> FeasibilityCache:
    """The instance's cache, created on first request.

    The cache lives in a slot on the (immutable) instance, so it shares the
    instance's lifetime exactly: no global registry, no id-reuse hazards,
    and equal-but-distinct instances keep independent solvers.
    """
    cache = instance._feas_cache
    if cache is None:
        cache = FeasibilityCache(instance)
        object.__setattr__(instance, "_feas_cache", cache)
    return cache
