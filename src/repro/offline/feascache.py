"""Per-instance memoization for the feasibility core.

Every analysis entry point (``analysis.metrics``, ``analysis.competitive``,
``analysis.search``, ``offline.nonmigratory``, ``realtime.analysis``)
bottoms out in the same two primitives: the elementary-interval structure of
an instance and the feasibility verdict at some ``(m, speed)``.  Before this
module each caller recomputed both from scratch — the binary search in
``migratory_optimum`` alone re-derived the event intervals and the common
denominator on *every* probe.

:class:`FeasibilityCache` hangs off the :class:`~repro.model.instance.Instance`
itself (instances are immutable, so nothing can invalidate the memo):

* ``intervals`` / ``base_scale`` — computed once per instance,
* ``tables`` — the speed-independent *integer* form of the network inputs
  (:class:`NetworkTables`): sparsified event intervals, per-job interval
  ranges, base-scaled lengths and demands, the EDF probe order, and — after
  the first build — the shared CSR topology, so a second speed (or kernel)
  costs one capacity array instead of a graph construction,
* ``verdicts`` — resolved ``(m, speed, kernel)`` answers, shared by every
  caller that probes the same instance,
* per-``(speed, kernel)`` :class:`~repro.offline.dinic.FeasibilityNetwork`
  solvers with snapshot/restore, so a binary search's non-monotone probe
  sequence costs one network build plus warm-started residual pushes
  (growing ``m`` only bumps sink capacities; shrinking drains the excess
  flow in place; revisiting a probed ``m`` restores its snapshot).

Sparsification (the default) drops elementary intervals whose live-job set
is empty — they carry no job arc, so no flow can ever enter them — and
merges time-adjacent intervals with *identical* live-job sets before the
network is built.  Verdicts, maximum flows on the surviving arcs, work
maps, schedules, and residual-reachability min cuts are provably unchanged:
a dropped interval is invisible to every augmenting path, and with valid
jobs (``p > 0`` and ``d ≥ r + p``) every event point strictly changes the
live set, so the merge rule is a safety net that currently never fires
(``merged == 0``; it would engage if interval construction ever added
non-event grid points).  The reduction is surfaced through the
``network.intervals_*`` obs counters and ``repro profile --network``.

``stats`` counts probes/hits so tests can pin the ``O(log(hi − lo))``
probe-complexity contract and the cross-caller cache behaviour.
"""

from __future__ import annotations

import math
import time
from array import array
from dataclasses import asdict, dataclass, replace
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from ..model.instance import Instance
from ..obs import core as _obs
from .dinic import FeasibilityNetwork

_EMPTY_I = array("i")
_EMPTY_Q = array("q")


@dataclass
class CacheStats:
    """Counters for the cache's observable behaviour (used by tests).

    Every increment is mirrored to the ``cache.*`` counters of
    :mod:`repro.obs` when a sink is attached, so the same numbers are
    available both on the cache object and in captured traces.
    """

    probes: int = 0  # feasibility questions answered by a flow computation
    verdict_hits: int = 0  # answered from the (m, speed) memo
    network_builds: int = 0  # cold FeasibilityNetwork constructions
    restores: int = 0  # snapshot restores (probe below current m)

    def bump(self, field_name: str) -> None:
        """Increment one counter, mirroring it to the obs layer."""
        setattr(self, field_name, getattr(self, field_name) + 1)
        _obs.incr("cache." + field_name)

    def snapshot(self) -> "CacheStats":
        """An immutable-by-convention copy (carried on certificates)."""
        return replace(self)

    def as_dict(self) -> Dict[str, int]:
        return asdict(self)


class NetworkTables:
    """Speed-independent integer form of the feasibility-network inputs.

    Everything here is derived once per ``(instance, sparsify)`` pair; per
    speed only two integer multipliers remain (``base_scale → scale`` for
    demands, ``· speed`` for capacities), so a network build is pure integer
    array work.  ``topology`` starts ``None`` and is filled by the first
    :class:`~repro.offline.dinic.FeasibilityNetwork` build with the shared
    immutable CSR arrays ``(to, head, elist)``; later builds (other speeds,
    the numpy kernel) reuse them and only allocate a capacity array.
    """

    __slots__ = (
        "intervals",       # kept (a, b) Fraction pairs fed to the network
        "len_base",        # per kept interval: (b − a) · base_scale, int
        "demand_base",     # per job: p_j · base_scale, int
        "k0", "k1",        # per job: kept-interval window [k0, k1)
        "src",             # per job: source edge id (layout arithmetic)
        "edf",             # job indices sorted by (k1, k0, idx)
        "n_nodes", "n_edges",
        "elementary_count", "dropped", "merged",  # sparsification outcome
        "max_live",        # window concurrency (max live-set size)
        "zero_laxity_max",  # max concurrency among zero-laxity jobs
        "total_demand_base",
        "base_scale",
        "topology",        # None | (to, head, elist) as plain lists
        "topology_c",      # None | the same CSR as int32 arrays ("c" kernel)
    )


def _build_tables(
    instance: Instance,
    elementary: List[Tuple[Fraction, Fraction]],
    base_scale: int,
    sparsify: bool,
) -> NetworkTables:
    """One integer sweep: live counts, sparsification, and job tables.

    The sweep indexes jobs into the elementary intervals through O(1)
    endpoint lookups (every release starts an elementary interval and every
    deadline ends one, by construction of the event points) — no per-job
    Fraction bisection survives into the per-probe path.
    """
    t = NetworkTables()
    n = len(instance)
    m_el = len(elementary)
    t.elementary_count = m_el
    t.base_scale = base_scale
    t.topology = None
    t.topology_c = None
    if n == 0:
        t.intervals = []
        t.len_base = _EMPTY_Q
        t.demand_base = _EMPTY_Q
        t.k0 = t.k1 = t.src = t.edf = _EMPTY_I
        t.n_nodes, t.n_edges = 2, 0
        t.dropped = t.merged = 0
        t.max_live = t.zero_laxity_max = 0
        t.total_demand_base = 0
        return t

    # Work in base-scaled *integer* coordinates throughout: a point ``p``
    # becomes ``p.numerator · (base_scale // p.denominator)`` (exact by the
    # LCM property).  Integer dict keys avoid Fraction.__hash__ — which
    # computes a modular inverse per call — on the hot cold-build path.
    base = base_scale
    pts_int = [
        a.numerator * (base // a.denominator) for a, _ in elementary
    ]
    last = elementary[-1][1]
    pts_int.append(last.numerator * (base // last.denominator))
    start_index = {pi: k for k, pi in enumerate(pts_int)}
    len_el = [pts_int[k + 1] - pts_int[k] for k in range(m_el)]

    live = [0] * (m_el + 1)   # live-count diff array over elementary intervals
    zl = [0] * (m_el + 1)     # same, restricted to zero-laxity jobs
    events = [0] * (m_el + 1)  # how many jobs start or end at each point
    demand_base = array("q", bytes(8 * n))
    i0s = array("i", bytes(4 * n))
    i1s = array("i", bytes(4 * n))
    for idx, job in enumerate(instance):
        p = job.processing
        d = p.numerator * (base // p.denominator)
        demand_base[idx] = d
        r, dl = job.release, job.deadline
        i0 = start_index[r.numerator * (base // r.denominator)]
        i1 = start_index[dl.numerator * (base // dl.denominator)]
        i0s[idx] = i0
        i1s[idx] = i1
        live[i0] += 1
        live[i1] -= 1
        events[i0] += 1
        events[i1] += 1
        if pts_int[i1] - pts_int[i0] == d:  # window length == processing
            zl[i0] += 1
            zl[i1] -= 1

    kept: List[Tuple[Fraction, Fraction]] = []
    len_base: List[int] = []
    newindex = array("i", bytes(4 * m_el)) if m_el else _EMPTY_I
    dropped = merged = 0
    cur = zcur = max_live = zl_max = 0
    kept_end = -1  # base-scaled end of the last *kept* interval
    for k in range(m_el):
        cur += live[k]
        zcur += zl[k]
        if cur > max_live:
            max_live = cur
        if zcur > zl_max:
            zl_max = zcur
        if sparsify and cur == 0:
            dropped += 1  # no live job: no arc can ever reach this interval
            newindex[k] = -1
            continue
        a, b = elementary[k]
        # Merge with the previous kept interval iff time-adjacent and the
        # live set is identical across the boundary — i.e. no job starts or
        # ends at ``a``.  Elementary endpoints are exactly the event points,
        # so with valid jobs this never fires; kept as a safety net for any
        # future interval construction that adds non-event points.
        if sparsify and kept_end == pts_int[k] and not events[k]:
            merged += 1
            kept[-1] = (kept[-1][0], b)
            len_base[-1] += len_el[k]
            newindex[k] = len(kept) - 1
        else:
            newindex[k] = len(kept)
            kept.append((a, b))
            len_base.append(len_el[k])
        kept_end = pts_int[k + 1]

    k0s = array("i", bytes(4 * n))
    k1s = array("i", bytes(4 * n))
    srcs = array("i", bytes(4 * n))
    acc = 2 * len(kept)  # sink arcs occupy edge ids [0, 2K)
    for idx in range(n):
        # A job is live throughout [i0, i1), so both boundary elementary
        # intervals are kept and already mapped.
        k0 = newindex[i0s[idx]]
        k1 = newindex[i1s[idx] - 1] + 1
        k0s[idx] = k0
        k1s[idx] = k1
        srcs[idx] = acc
        acc += 2 * (1 + k1 - k0)  # source arc + window arcs, paired ids

    t.intervals = kept
    t.len_base = array("q", len_base)
    t.demand_base = demand_base
    t.k0, t.k1, t.src = k0s, k1s, srcs
    t.edf = array("i", sorted(range(n), key=lambda i: (k1s[i], k0s[i], i)))
    t.n_nodes = 2 + n + len(kept)
    t.n_edges = acc // 2
    t.dropped, t.merged = dropped, merged
    t.max_live = max_live
    t.zero_laxity_max = zl_max
    t.total_demand_base = sum(demand_base)
    return t


class _SpeedState:
    """Incremental solver state for one ``(instance, speed, kernel)`` triple."""

    __slots__ = ("network", "snapshots")

    def __init__(self, network: FeasibilityNetwork) -> None:
        self.network = network
        # m → (machines, cap bytes, flow); always contains the m = 0 base.
        # Snapshots are immutable bytes (copy-on-write: captured by one
        # memcpy, restored in place, never copied again).
        self.snapshots: Dict[int, Tuple[int, bytes, int]] = {
            0: network.snapshot()
        }


class FeasibilityCache:
    """Instance-lifetime memo for Horn's feasibility flow."""

    __slots__ = ("instance", "sparsify", "_intervals", "_base_scale",
                 "_tables", "_verdicts", "_speed_states", "stats")

    def __init__(self, instance: Instance, sparsify: bool = True) -> None:
        self.instance = instance
        self.sparsify = sparsify
        self._intervals: Optional[List[Tuple[Fraction, Fraction]]] = None
        self._base_scale: Optional[int] = None
        self._tables: Optional[NetworkTables] = None
        self._verdicts: Dict[Tuple[int, Fraction, str], bool] = {}
        self._speed_states: Dict[Tuple[Fraction, str], _SpeedState] = {}
        self.stats = CacheStats()

    # -- memoized instance structure -----------------------------------------

    @property
    def intervals(self) -> List[Tuple[Fraction, Fraction]]:
        """Elementary intervals between consecutive release/deadline events.

        Always the *unsparsified* event structure — the stable coordinate
        system of the workload characterization.  The (possibly smaller)
        interval list actually fed to the network is
        :attr:`network_intervals`.
        """
        if self._intervals is None:
            # Deduplicate and sort via exact base-scaled integer keys: the
            # map p ↦ p·base_scale is strictly monotone and injective, so
            # the point order is identical to sorting the Fractions — minus
            # Fraction.__hash__/__lt__ on every comparison.
            base = self.base_scale
            uniq: Dict[int, Fraction] = {}
            for j in self.instance:
                for p in (j.release, j.deadline):
                    uniq[p.numerator * (base // p.denominator)] = p
            # Keys are unique and the map is injective, so consecutive
            # points are strictly increasing — no ``b > a`` filter needed.
            points = [uniq[key] for key in sorted(uniq)]
            self._intervals = list(zip(points, points[1:]))
        return self._intervals

    @property
    def base_scale(self) -> int:
        """LCM of all denominators appearing in the instance data."""
        if self._base_scale is None:
            scale = 1
            for j in self.instance:
                for d in (
                    j.release.denominator,
                    j.deadline.denominator,
                    j.processing.denominator,
                ):
                    scale = scale * d // math.gcd(scale, d)
            self._base_scale = scale
        return self._base_scale

    @property
    def tables(self) -> NetworkTables:
        """The integer network tables (built on first use)."""
        if self._tables is None:
            self._tables = _build_tables(
                self.instance, self.intervals, self.base_scale, self.sparsify
            )
        return self._tables

    @property
    def network_intervals(self) -> List[Tuple[Fraction, Fraction]]:
        """The interval list the networks are built over (sparsified here)."""
        return self.tables.intervals

    @property
    def window_concurrency(self) -> int:
        """Max number of job windows alive at once (free sweep byproduct)."""
        return self.tables.max_live

    @property
    def zero_laxity_concurrency(self) -> int:
        """Max overlap among zero-laxity windows (free sweep byproduct)."""
        return self.tables.zero_laxity_max

    @property
    def total_work(self) -> Fraction:
        """``Σ_j p_j`` from the integer tables."""
        return Fraction(self.tables.total_demand_base, self.base_scale)

    @property
    def span_length(self) -> Fraction:
        """Length of the event span (0 for an empty instance)."""
        intervals = self.intervals
        if not intervals:
            return Fraction(0)
        return intervals[-1][1] - intervals[0][0]

    def scale_for(self, speed: Fraction) -> int:
        """Scale making both ``p_j`` and ``(b − a)·speed`` integral.

        ``lcm(base, q) · q`` for ``speed = p/q`` — the extra factor of ``q``
        guarantees divisibility of the *product* of two fractional factors
        (matches ``flow._common_scale(instance, extra=[speed]) · q``).
        """
        q = speed.denominator
        base = self.base_scale
        return (base * q // math.gcd(base, q)) * q

    # -- incremental feasibility ----------------------------------------------

    def network_for(self, speed: Fraction, kernel: str = "py") -> FeasibilityNetwork:
        """The warm solver for this speed/kernel (built on first use)."""
        return self._state_for(speed, kernel).network

    def _state_for(self, speed: Fraction, kernel: str = "py") -> _SpeedState:
        key = (speed, kernel)
        state = self._speed_states.get(key)
        if state is None:
            tables = self.tables
            network = FeasibilityNetwork(
                self.instance, speed, tables.intervals, self.scale_for(speed),
                kernel=kernel, tables=tables,
            )
            state = _SpeedState(network)
            self._speed_states[key] = state
            self.stats.bump("network_builds")
            if _obs.enabled():
                _obs.incr("network.intervals_merged", tables.merged)
                _obs.incr("network.intervals_dropped", tables.dropped)
                _obs.gauge("network.intervals_elementary", tables.elementary_count)
                _obs.gauge("network.intervals_kept", len(tables.intervals))
        return state

    def solved_network(
        self, m: int, speed: Fraction, kernel: str = "py"
    ) -> FeasibilityNetwork:
        """The speed's network holding a maximum flow at exactly ``m``.

        Invariant: outside this method the network always carries a maximum
        flow for its current machine count, and every probed ``m`` has a
        post-solve snapshot.  A request above the current state grows the
        sink capacities in place and continues on the residual; a request
        below an already-probed ``m`` restores its snapshot (pure memcpy);
        a *new* ``m`` below the current state drains the excess flow in
        place (:meth:`~repro.offline.dinic.FeasibilityNetwork.set_machines`)
        so the re-solve only re-places the evicted work.
        """
        state = self._state_for(speed, kernel)
        network = state.network
        if m != network.machines:
            exact = state.snapshots.get(m)
            if exact is not None:
                # This m was probed before: restoring is a pure memcpy into
                # the live buffer (the snapshot bytes stay shared).
                network.restore(exact)
                self.stats.bump("restores")
        if m != network.machines:
            if _obs.enabled():
                t0 = time.perf_counter_ns()
                network.set_machines(m)
                network.solve()
                _obs.observe("feascache.probe_ns", time.perf_counter_ns() - t0)
                _obs.observe("feascache.probe_m", m)
            else:
                network.set_machines(m)
                network.solve()
            state.snapshots[m] = network.snapshot()
            self.stats.bump("probes")
            self._verdicts[(m, speed, kernel)] = network.feasible
        return network

    def feasible(self, m: int, speed: Fraction, kernel: str = "py") -> bool:
        """Memoized feasibility verdict, warm-starting across probes."""
        if len(self.instance) == 0:
            return True
        if m <= 0:
            return False
        cached = self._verdicts.get((m, speed, kernel))
        if cached is not None:
            self.stats.bump("verdict_hits")
            return cached
        return self.solved_network(m, speed, kernel).feasible


def cache_for(instance: Instance, sparsify: bool = True) -> FeasibilityCache:
    """The instance's cache, created on first request.

    Caches live in a slot on the (immutable) instance, so they share the
    instance's lifetime exactly: no global registry, no id-reuse hazards,
    and equal-but-distinct instances keep independent solvers.  The
    sparsified (default) and unsparsified caches are independent entries —
    the unsparsified one exists for differential tests and ``sparsify=False``
    escape hatches.
    """
    caches = instance._feas_cache
    if caches is None:
        caches = {}
        object.__setattr__(instance, "_feas_cache", caches)
    cache = caches.get(sparsify)
    if cache is None:
        cache = FeasibilityCache(instance, sparsify=sparsify)
        caches[sparsify] = cache
    return cache
