"""Exact optimal machine counts (migratory) via flow + binary search."""

from __future__ import annotations

from typing import Optional, Tuple

from ..model.instance import Instance
from ..model.intervals import Numeric, to_fraction
from ..model.schedule import Schedule
from ..obs import core as _obs
from .feascache import cache_for
from .flow import (
    DEFAULT_BACKEND,
    _DINIC_KERNELS,
    migratory_feasible,
    migratory_schedule,
    resolve_backend,
    schedule_from_work,
)
from .workload import scaled_lower_bound


def window_concurrency(instance: Instance) -> int:
    """Max number of windows alive at once — a feasible machine count.

    With this many machines every active job can run during its entire
    window, so it always upper-bounds the migratory optimum.  Answered from
    the per-instance cache: the value is a free byproduct of the interval
    sweep that also sparsifies the feasibility network.
    """
    return cache_for(instance).window_concurrency


def migratory_optimum(
    instance: Instance,
    speed: Numeric = 1,
    backend: str = DEFAULT_BACKEND,
    sparsify: bool = True,
) -> int:
    """The exact minimum number of speed-``speed`` machines (migratory).

    Binary search over the flow feasibility test between the speed-scaled
    workload lower bound and the window-concurrency upper bound.  With the
    default dinic backend the search is *incremental*: the per-instance
    cache builds the flow network once, probes warm-start from each other's
    residual flows (sink capacities only grow with ``m``), and resolved
    ``(m, speed)`` verdicts are memoized, so repeated calls on the same
    instance — the common pattern across the analysis layer — cost nothing.

    Raises :class:`ValueError` when no machine count is feasible (a job with
    ``p_j / speed > d_j − r_j`` cannot finish at any ``m`` because it cannot
    self-parallelize; only possible for ``speed < 1``).
    """
    if len(instance) == 0:
        return 0
    # Resolve "auto" once, up front: every probe of the search runs on the
    # same kernel and the search span records the concrete backend.
    backend = resolve_backend(backend)
    speed = to_fraction(speed)
    if speed <= 0:
        raise ValueError("speed must be positive")
    if speed < 1 and any(j.processing > speed * j.window for j in instance):
        raise ValueError(
            "infeasible at every machine count: a job's window is shorter "
            f"than its processing time at speed {speed}"
        )
    lo = max(1, scaled_lower_bound(instance, speed))
    hi = max(lo, window_concurrency(instance))

    def probe(m: int, kind: str) -> bool:
        _obs.incr("search.probes")
        _obs.observe("search.probe_m", m)
        with _obs.span("optimum.probe", m=m, kind=kind):
            return migratory_feasible(
                instance, m, speed, backend=backend, sparsify=sparsify
            )

    with _obs.span("optimum.search", n=len(instance), speed=str(speed),
                   backend=backend):
        _obs.gauge("search.lower_bound_start", lo)
        _obs.gauge("search.upper_bound_start", hi)
        # Window concurrency is feasible at unit speed; for slower machines
        # grow geometrically until a feasible count is found (the guard above
        # ensures one exists).
        while not probe(hi, "expand"):
            _obs.incr("search.expansions")
            lo = hi + 1
            hi *= 2
        while lo < hi:
            mid = (lo + hi) // 2
            if probe(mid, "bisect"):
                hi = mid
            else:
                lo = mid + 1
        _obs.gauge("search.optimum", lo)
    return lo


def optimal_migratory_schedule(
    instance: Instance,
    speed: Numeric = 1,
    backend: str = DEFAULT_BACKEND,
    sparsify: bool = True,
) -> Tuple[int, Optional[Schedule]]:
    """``(OPT, schedule)`` for the migratory problem.

    With the dinic backends the binary search leaves the per-instance cache
    holding a solved snapshot at the optimum, so the schedule is extracted
    straight from that residual flow — no fresh feasibility solve (pinned by
    a :class:`~repro.offline.feascache.CacheStats` regression test).  The
    networkx backend stays a deliberately independent implementation and
    re-solves at the optimum.
    """
    backend = resolve_backend(backend)
    m = migratory_optimum(instance, speed, backend=backend, sparsify=sparsify)
    if m == 0:
        return 0, Schedule([])
    kernel = _DINIC_KERNELS.get(backend)
    if kernel is not None:
        speed = to_fraction(speed)
        cache = cache_for(instance, sparsify=sparsify)
        with _obs.span("optimum.extract_schedule", m=m):
            # snapshot restore, no probe
            network = cache.solved_network(m, speed, kernel)
            work = network.work_by_job(speed, cache.scale_for(speed))
            return m, schedule_from_work(work, cache.network_intervals, m)
    return m, migratory_schedule(
        instance, m, speed, backend=backend, sparsify=sparsify
    )
