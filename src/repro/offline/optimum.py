"""Exact optimal machine counts (migratory) via flow + binary search."""

from __future__ import annotations

from fractions import Fraction
from math import ceil
from typing import Optional, Tuple

from ..model.instance import Instance
from ..model.intervals import Numeric
from ..model.schedule import Schedule
from .flow import migratory_feasible, migratory_schedule
from .workload import trivial_lower_bounds


def window_concurrency(instance: Instance) -> int:
    """Max number of windows alive at once — a feasible machine count.

    With this many machines every active job can run during its entire
    window, so it always upper-bounds the migratory optimum.
    """
    events = []
    for j in instance:
        events.append((j.release, 1))
        events.append((j.deadline, -1))
    events.sort()
    best = cur = 0
    for _, delta in events:
        cur += delta
        best = max(best, cur)
    return best


def migratory_optimum(instance: Instance, speed: Numeric = 1) -> int:
    """The exact minimum number of speed-``speed`` machines (migratory).

    Binary search over the flow feasibility test between the workload lower
    bound and the window-concurrency upper bound.
    """
    if len(instance) == 0:
        return 0
    lo = max(1, trivial_lower_bounds(instance)) if speed == 1 else 1
    hi = max(lo, window_concurrency(instance))
    # Window concurrency is feasible at unit speed; for slower machines grow
    # geometrically until a feasible count is found.
    while not migratory_feasible(instance, hi, speed):
        lo = hi + 1
        hi *= 2
    while lo < hi:
        mid = (lo + hi) // 2
        if migratory_feasible(instance, mid, speed):
            hi = mid
        else:
            lo = mid + 1
    return lo


def optimal_migratory_schedule(
    instance: Instance, speed: Numeric = 1
) -> Tuple[int, Optional[Schedule]]:
    """``(OPT, schedule)`` for the migratory problem."""
    m = migratory_optimum(instance, speed)
    if m == 0:
        return 0, Schedule([])
    return m, migratory_schedule(instance, m, speed)
