"""Constructive migration elimination (the Theorem 2 direction).

Theorem 2 (Kalyanasundaram–Pruhs [7]) guarantees that any migratory
schedule on ``m`` machines can be turned into a non-migratory one on
``6m − 5`` machines.  Their construction is not part of the supplied paper;
this module provides a *heuristic* constructive converter with the same
interface, whose measured blow-up is compared against the ``6m − 5``
guarantee in experiment E-T2 (it is far smaller in practice):

1. anchor every job to the machine where the input schedule processes it
   longest (majority machine),
2. greedily repair: for each machine in index order, keep the anchored jobs
   that remain single-machine feasible (EDF oracle) and spill the rest,
3. place spilled jobs by first fit, opening fresh machines as needed.

The output is always feasible and non-migratory; only its machine count is
heuristic.  The exact statement validation (``OPT_nonmig ≤ 6m−5``) uses the
branch-and-bound optimum in :mod:`repro.offline.nonmigratory`.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Tuple

from ..model.instance import Instance
from ..model.job import Job
from ..model.schedule import Schedule
from .nonmigratory import (
    schedule_from_assignment,
    single_machine_feasible,
)


def majority_machine(schedule: Schedule, job_id: int) -> int:
    """The machine on which the job receives the most processing."""
    totals: Dict[int, Fraction] = {}
    for seg in schedule.job_segments(job_id):
        totals[seg.machine] = totals.get(seg.machine, Fraction(0)) + seg.length
    if not totals:
        raise ValueError(f"job {job_id} does not appear in the schedule")
    return max(totals.items(), key=lambda kv: (kv[1], -kv[0]))[0]


def eliminate_migration(
    instance: Instance, schedule: Schedule
) -> Tuple[int, Schedule]:
    """Turn a feasible migratory schedule into a non-migratory one.

    Returns ``(machines, schedule)``; the result is verified-feasible and
    non-migratory by construction (per-machine EDF over a fixed partition).
    """
    report = schedule.verify(instance)
    if not report.feasible:
        raise ValueError("input schedule is infeasible")

    anchored: Dict[int, List[Job]] = {}
    for job in instance:
        anchored.setdefault(majority_machine(schedule, job.id), []).append(job)

    assignment: Dict[int, int] = {}
    kept: Dict[int, List[Job]] = {}
    spilled: List[Job] = []
    for machine in sorted(anchored):
        bucket: List[Job] = []
        # EDF order gives the repair a deterministic, sensible priority:
        # keep urgent jobs on their anchor, spill the flexible ones
        for job in sorted(anchored[machine], key=lambda j: (j.deadline, j.id)):
            if single_machine_feasible(bucket + [job]):
                bucket.append(job)
                assignment[job.id] = machine
            else:
                spilled.append(job)
        kept[machine] = bucket

    machines: List[List[Job]] = [kept.get(m, []) for m in sorted(kept)]
    remap = {old: new for new, old in enumerate(sorted(kept))}
    assignment = {job_id: remap[m] for job_id, m in assignment.items()}
    for job in sorted(spilled, key=lambda j: (j.release, j.deadline, j.id)):
        placed = False
        for idx, bucket in enumerate(machines):
            if single_machine_feasible(bucket + [job]):
                bucket.append(job)
                assignment[job.id] = idx
                placed = True
                break
        if not placed:
            machines.append([job])
            assignment[job.id] = len(machines) - 1

    result = schedule_from_assignment(instance, assignment)
    return len(machines), result


def theorem2_blowup(instance: Instance, schedule: Schedule) -> Tuple[int, int, Fraction]:
    """``(m_in, m_out, ratio)`` of the migration-elimination converter."""
    m_in = schedule.machines_used
    m_out, _ = eliminate_migration(instance, schedule)
    return m_in, m_out, Fraction(m_out, max(m_in, 1))
