"""Substrate: exact offline optima (migratory flow, non-migratory search)."""

from .lp import lp_feasible
from .nonpreemptive import (
    exact_np_optimum,
    np_first_fit,
    single_machine_np_feasible,
    single_machine_np_schedule,
)
from .migration_elimination import eliminate_migration, majority_machine, theorem2_blowup
from .dinic import Dinic, FeasibilityNetwork
from .feascache import CacheStats, FeasibilityCache, cache_for
from .flow import (
    BACKENDS,
    DEFAULT_BACKEND,
    available_backends,
    max_flow_assignment,
    mcnaughton,
    migratory_feasible,
    migratory_schedule,
    networkx_min_cut,
    resolve_backend,
    schedule_from_work,
)
from .nonmigratory import (
    edf_single_machine_schedule,
    exact_nonmigratory_optimum,
    first_fit_assignment,
    first_fit_nonmigratory,
    nonmigratory_optimum_bounds,
    schedule_from_assignment,
    single_machine_feasible,
)
from .optimum import migratory_optimum, optimal_migratory_schedule, window_concurrency
from .workload import (
    best_single_interval,
    contribution,
    density,
    greedy_union_lower_bound,
    machines_bound,
    scaled_lower_bound,
    single_interval_lower_bound,
    total_contribution,
    trivial_lower_bounds,
)

__all__ = [
    "Dinic",
    "FeasibilityNetwork",
    "CacheStats",
    "FeasibilityCache",
    "cache_for",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "available_backends",
    "resolve_backend",
    "scaled_lower_bound",
    "lp_feasible",
    "exact_np_optimum",
    "np_first_fit",
    "single_machine_np_feasible",
    "single_machine_np_schedule",
    "eliminate_migration",
    "majority_machine",
    "theorem2_blowup",
    "max_flow_assignment",
    "mcnaughton",
    "migratory_feasible",
    "migratory_schedule",
    "networkx_min_cut",
    "schedule_from_work",
    "edf_single_machine_schedule",
    "exact_nonmigratory_optimum",
    "first_fit_assignment",
    "first_fit_nonmigratory",
    "nonmigratory_optimum_bounds",
    "schedule_from_assignment",
    "single_machine_feasible",
    "migratory_optimum",
    "optimal_migratory_schedule",
    "window_concurrency",
    "best_single_interval",
    "contribution",
    "density",
    "greedy_union_lower_bound",
    "machines_bound",
    "single_interval_lower_bound",
    "total_contribution",
    "trivial_lower_bounds",
]
