"""The compiled Dinic kernel: lazy codegen build with graceful fallback.

Public surface:

* :func:`load` — the process-wide :class:`~repro.offline.kernel.abi.DinicCKernel`
  (compiled on first use, then dlopen'ed from the content-addressed cache);
  raises :class:`KernelUnavailable` when it cannot be provided.
* :func:`available` — ``True`` iff :func:`load` would succeed (memoized,
  including the negative answer).
* :func:`best_kernel` — the fastest usable level-graph kernel name for
  :meth:`repro.offline.dinic.Dinic.max_flow`: ``"c"`` when the compiled
  kernel loads, else ``"np"`` when numpy imports, else ``"py"``.  This is
  the resolution ladder behind ``backend="auto"``.
* :func:`build_info` — how the kernel was provided (cache hit, compiler,
  object path, content key), surfaced by ``repro stats``.
* :func:`reset` — drop the memoized state (tests flip the env knobs).

Nothing here touches the obs layer: kernel loading happens lazily inside
whatever probe runs first, and emitting counters there would make pinned
counter snapshots depend on load order.  Build provenance is exposed as
plain data via :func:`build_info` instead.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .abi import DinicCKernel
from .build import (
    CACHE_ENV,
    CC_ENV,
    DISABLE_ENV,
    BuildResult,
    KernelUnavailable,
    cache_root,
    disabled,
    ensure_built,
    find_compiler,
)

__all__ = [
    "DinicCKernel",
    "KernelUnavailable",
    "available",
    "best_kernel",
    "build_info",
    "load",
    "reset",
    "CACHE_ENV",
    "CC_ENV",
    "DISABLE_ENV",
]

_kernel: Optional[DinicCKernel] = None
_build: Optional[BuildResult] = None
_error: Optional[KernelUnavailable] = None
_best: Optional[str] = None


def load() -> DinicCKernel:
    """The process-wide compiled kernel (built/loaded on first call).

    The outcome is memoized either way: a failed load raises the *same*
    :class:`KernelUnavailable` on every later call without re-probing the
    filesystem (call :func:`reset` after changing the env knobs).
    """
    global _kernel, _build, _error
    if _kernel is not None:
        return _kernel
    if _error is not None:
        raise _error
    try:
        result = ensure_built()
        kernel = DinicCKernel(str(result.path))
    except KernelUnavailable as exc:
        _error = exc
        raise
    except OSError as exc:  # corrupt cached object: treat as unavailable
        _error = KernelUnavailable(f"cached kernel failed to load: {exc}")
        raise _error from exc
    _kernel, _build = kernel, result
    return kernel


def available() -> bool:
    """Whether the compiled kernel can be used in this process."""
    try:
        load()
    except KernelUnavailable:
        return False
    return True


def best_kernel() -> str:
    """The fastest usable kernel name: ``"c"`` → ``"np"`` → ``"py"``."""
    global _best
    if _best is None:
        if available():
            _best = "c"
        else:
            try:
                import numpy  # noqa: F401
            except ImportError:
                _best = "py"
            else:
                _best = "np"
    return _best


def build_info() -> Dict[str, Any]:
    """Provenance of the compiled kernel for ``repro stats`` and debugging."""
    info: Dict[str, Any] = {
        "available": available(),
        "disabled": disabled(),
        "cache_dir": str(cache_root()),
    }
    if _build is not None:
        info.update(
            cache_hit=_build.cache_hit,
            compiler=_build.compiler,
            path=str(_build.path),
            key=_build.key,
        )
    elif _error is not None:
        info["error"] = str(_error)
    return info


def reset() -> None:
    """Forget the memoized kernel/verdict (after env-knob changes in tests)."""
    global _kernel, _build, _error, _best
    _kernel = _build = _error = _best = None
