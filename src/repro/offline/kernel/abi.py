"""ctypes bindings over the compiled kernel: zero-copy on the live buffers.

Every exported function takes raw buffer addresses obtained from
``array.buffer_info()`` — no marshalling, no copies.  That is what keeps
the warm-start machinery intact across kernels: the C code mutates the
*same* ``array('q')`` capacity buffer that ``FeasibilityNetwork``
snapshots (``cap.tobytes()``), restores (memoryview slice assignment, in
place), and drains, so a probe may freely mix compiled and interpreted
steps on one network.

The address of an ``array``'s buffer is stable for the lifetime of the
object as long as its *length* never changes — the solver's contract after
``finalize()`` (topology frozen, only capacity values change) — so
addresses are taken per call without pinning.
"""

from __future__ import annotations

import ctypes
from array import array
from typing import Optional, Tuple

_I64 = ctypes.c_int64
_I32 = ctypes.c_int32
_PTR = ctypes.c_void_p


def _addr(buf: array) -> Optional[int]:
    """Base address of an array's buffer (NULL for an empty array)."""
    if len(buf) == 0:
        return None
    return buf.buffer_info()[0]


class DinicCKernel:
    """The loaded shared object with typed entry points.

    Thin by design: argument validation lives on the Python callers (which
    own the layout invariants); this class only guards the buffer typecodes
    so a mis-wired caller fails loudly instead of corrupting memory.
    """

    __slots__ = ("lib", "path", "_max_flow", "_greedy", "_topology",
                 "_scale_caps", "_fill_caps", "_grow_sinks")

    def __init__(self, path: str) -> None:
        lib = ctypes.CDLL(str(path))
        self.lib = lib
        self.path = str(path)
        f = lib.repro_dinic_max_flow
        f.restype = _I64
        f.argtypes = (_I32, _PTR, _PTR, _PTR, _PTR, _I32, _I32, _I64, _PTR)
        self._max_flow = f
        f = lib.repro_greedy_blocking
        f.restype = _I64
        f.argtypes = (_I32, _PTR, _PTR, _PTR, _PTR, _PTR)
        self._greedy = f
        f = lib.repro_build_topology
        f.restype = _I32
        f.argtypes = (_I32, _I32, _PTR, _PTR, _PTR, _PTR, _PTR, _PTR)
        self._topology = f
        f = lib.repro_scale_caps
        f.restype = None
        f.argtypes = (_I32, _PTR, _I64, _PTR)
        self._scale_caps = f
        f = lib.repro_fill_caps
        f.restype = None
        f.argtypes = (_I32, _PTR, _PTR, _PTR, _PTR, _I64, _PTR, _PTR)
        self._fill_caps = f
        f = lib.repro_grow_sinks
        f.restype = None
        f.argtypes = (_I32, _I64, _PTR, _PTR)
        self._grow_sinks = f

    # -- entry points ---------------------------------------------------------

    def max_flow(
        self, n: int, to: array, head: array, elist: array, cap: array,
        s: int, t: int, limit: int, stats: Optional[array] = None,
    ) -> int:
        """Flow added from ``s`` to ``t`` on the current residual.

        ``limit < 0`` runs to disconnection; ``stats`` (an ``array('q')``
        of length >= 3) receives ``(phases, paths, retreats)`` when given.
        """
        if to.typecode != "i" or head.typecode != "i" or elist.typecode != "i":
            raise TypeError("CSR topology buffers must be array('i')")
        if cap.typecode != "q":
            raise TypeError("capacity buffer must be array('q')")
        added = self._max_flow(
            n, _addr(to), _addr(head), _addr(elist), _addr(cap),
            s, t, limit, _addr(stats) if stats is not None else None,
        )
        if added < 0:
            raise MemoryError("dinic_c: scratch allocation failed")
        return added

    def greedy_blocking(
        self, n_jobs: int, edf: array, k0: array, k1: array, src: array,
        cap: array,
    ) -> int:
        """The EDF greedy blocking pass; returns the flow pushed."""
        if cap.typecode != "q":
            raise TypeError("capacity buffer must be array('q')")
        return self._greedy(
            n_jobs, _addr(edf), _addr(k0), _addr(k1), _addr(src), _addr(cap)
        )

    def build_topology(
        self, n_jobs: int, n_iv: int, k0: array, k1: array, src: array,
        n_edges2: int, n_nodes: int,
    ) -> Tuple[array, array, array]:
        """The arithmetic CSR topology as fresh int32 arrays.

        ``n_edges2`` is the paired edge count ``2 * n_edges`` (the length
        of ``to``/``elist``); ``n_nodes`` sizes ``head``.
        """
        to = array("i", bytes(4 * n_edges2))
        head = array("i", bytes(4 * (n_nodes + 1)))
        elist = array("i", bytes(4 * n_edges2))
        rc = self._topology(
            n_jobs, n_iv, _addr(k0), _addr(k1), _addr(src),
            _addr(to), _addr(head), _addr(elist),
        )
        if rc != 0:
            raise MemoryError("dinic_c: topology scratch allocation failed")
        return to, head, elist

    def scale_caps(self, len_base: array, lenfac: int) -> array:
        """Per-interval unit capacities ``len_base[k] * lenfac`` (int64)."""
        n_iv = len(len_base)
        iv_caps = array("q", bytes(8 * n_iv))
        self._scale_caps(n_iv, _addr(len_base), lenfac, _addr(iv_caps))
        return iv_caps

    def fill_caps(
        self, n_jobs: int, k0: array, k1: array, src: array,
        demand_base: array, demfac: int, iv_caps: array, cap: array,
    ) -> None:
        """Cold capacity fill (source demands + window arcs) into ``cap``."""
        if cap.typecode != "q":
            raise TypeError("capacity buffer must be array('q')")
        self._fill_caps(
            n_jobs, _addr(k0), _addr(k1), _addr(src),
            _addr(demand_base), demfac, _addr(iv_caps), _addr(cap),
        )

    def grow_sinks(self, delta: int, iv_caps: array, cap: array) -> None:
        """Grow every sink arc by ``delta`` machines' worth of capacity."""
        self._grow_sinks(len(iv_caps), delta, _addr(iv_caps), _addr(cap))
