"""Lazy, content-addressed build of the compiled Dinic kernel.

The shared object is compiled at most once per *source content*: the cache
directory is keyed by :func:`repro.offline.kernel.codegen.source_hash`, so
editing the generated C (or bumping the ABI) lands in a fresh directory and
stale objects are simply never looked at again.  A warm cache needs **no
compiler at all** — the hit path is a single ``dlopen`` — which is what
makes the lazy build safe to ship on the default backend path.

Environment knobs:

* ``REPRO_KERNEL_CACHE`` — override the cache root (used by tests and
  sandboxed CI); default is the platform user cache dir
  (``$XDG_CACHE_HOME``/``~/.cache``/``~/Library/Caches``) under
  ``repro/kernels``.
* ``REPRO_CC`` — compiler override.  When set it is authoritative: if it
  cannot be found the build fails instead of silently falling back to
  another compiler.
* ``REPRO_DINIC_C`` — set to ``off``/``0``/``false`` to disable the
  compiled kernel entirely (exercised by the no-compiler CI leg; the
  ``auto`` backend then resolves to the fastest interpreted kernel).

Builds are concurrency-safe: compilation goes to a unique temporary file
inside the cache directory and is published with an atomic ``os.replace``,
so racing processes at worst compile twice and one wins.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional

from .codegen import C_SOURCE, source_hash

CACHE_ENV = "REPRO_KERNEL_CACHE"
CC_ENV = "REPRO_CC"
DISABLE_ENV = "REPRO_DINIC_C"

#: Tried in order when ``REPRO_CC`` is unset.
DEFAULT_COMPILERS = ("cc", "gcc", "clang")

CFLAGS = ("-O2", "-fPIC", "-shared")


class KernelUnavailable(RuntimeError):
    """The compiled kernel cannot be provided (no compiler, disabled, …).

    Raised by :func:`ensure_built` / :func:`repro.offline.kernel.load`;
    callers on the ``auto`` path catch it and fall back to the interpreted
    kernels, so it only escapes when ``backend="dinic_c"`` was requested
    explicitly.
    """


@dataclass(frozen=True)
class BuildResult:
    """Where the shared object lives and how it got there."""

    path: Path
    cache_hit: bool          # True: loaded from cache, no compiler invoked
    compiler: Optional[str]  # the compiler used (None on a cache hit)
    key: str                 # content hash of (source, ABI version)


def disabled() -> bool:
    """True when ``REPRO_DINIC_C`` explicitly turns the kernel off."""
    return os.environ.get(DISABLE_ENV, "").strip().lower() in ("off", "0", "false", "no")


def cache_root() -> Path:
    """The build-cache root (not created until a build needs it)."""
    override = os.environ.get(CACHE_ENV)
    if override:
        return Path(override)
    if sys.platform == "darwin":
        base = Path.home() / "Library" / "Caches"
    else:
        xdg = os.environ.get("XDG_CACHE_HOME")
        base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "kernels"


def find_compiler() -> Optional[str]:
    """The C compiler to use, or ``None`` when none is available.

    ``REPRO_CC`` is authoritative when set: a bad value yields ``None``
    rather than a silent fallback, so misconfiguration is loud.
    """
    override = os.environ.get(CC_ENV)
    if override:
        return override if shutil.which(override) else None
    for cc in DEFAULT_COMPILERS:
        if shutil.which(cc):
            return cc
    return None


def _object_paths(key: str) -> tuple:
    cache_dir = cache_root() / key[:24]
    return cache_dir, cache_dir / "dinic_c.so", cache_dir / "dinic_c.c"


def ensure_built() -> BuildResult:
    """Return the cached shared object, compiling it first if needed.

    Raises :class:`KernelUnavailable` when the kernel is disabled, no
    compiler exists and the cache is cold, or the compile itself fails.
    """
    if disabled():
        raise KernelUnavailable(
            f"compiled dinic kernel disabled via {DISABLE_ENV}="
            f"{os.environ.get(DISABLE_ENV)!r}"
        )
    key = source_hash()
    cache_dir, so_path, src_path = _object_paths(key)
    if so_path.exists():
        return BuildResult(so_path, cache_hit=True, compiler=None, key=key)
    cc = find_compiler()
    if cc is None:
        raise KernelUnavailable(
            "no C compiler found (tried $REPRO_CC, then "
            + ", ".join(DEFAULT_COMPILERS)
            + ") and no cached build exists under " + str(cache_dir)
        )
    cache_dir.mkdir(parents=True, exist_ok=True)
    src_path.write_text(C_SOURCE, encoding="utf-8")
    fd, tmp_name = tempfile.mkstemp(
        prefix=".dinic_c-", suffix=".so", dir=str(cache_dir)
    )
    os.close(fd)
    try:
        cmd: List[str] = [cc, *CFLAGS, "-o", tmp_name, str(src_path)]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            raise KernelUnavailable(
                f"kernel compile failed ({' '.join(cmd)}):\n{proc.stderr.strip()}"
            )
        # Atomic publish: racing builders at worst compile twice; the
        # replace makes exactly one object visible and never a torn file.
        os.replace(tmp_name, so_path)
    finally:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)
    return BuildResult(so_path, cache_hit=False, compiler=cc, key=key)
