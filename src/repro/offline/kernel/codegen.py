"""The C source of the compiled Dinic kernel, as a Python string.

The kernel is *generated* rather than shipped as a source file on disk so
the build cache can be content-addressed: the cache key is a hash over this
string plus :data:`ABI_VERSION`, which means an edit here (or an ABI bump)
transparently invalidates every stale shared object without any version
bookkeeping.  See :mod:`repro.offline.kernel.build`.

The C code mirrors the pure-Python reference in
:mod:`repro.offline.dinic` **step for step** — the depth-synchronized BFS
(the whole frontier of the depth that reaches ``t`` is finished before the
search stops), the iterative current-arc DFS, the retreat to the
shallowest saturated edge after an augment, and the dead-end
``level[u] = -1`` pruning — so the flows it produces are bit-identical to
the ``py``/``np`` kernels, not merely maximum.  The differential suites
(``tests/test_kernel.py``, ``tests/test_sparsify.py``) pin that equality
byte for byte.

Buffer ABI (shared with the Python side, all zero-copy):

* ``cap`` — the live ``array('q')`` capacity buffer (int64).  The reverse
  edge of ``e`` is ``e ^ 1``; forward edges are even.  This is the *same*
  buffer ``FeasibilityNetwork`` snapshots, restores, and drains.
* ``to`` / ``head`` / ``elist`` — the immutable CSR topology as int32
  arrays (``head`` offsets into ``elist``; ``elist[head[u]:head[u+1]]``
  are node ``u``'s incident edge ids in ascending order).
* Job tables (``k0``/``k1``/``src``/``edf``) — int32; base-scaled lengths,
  demands, and interval capacities — int64.
"""

from __future__ import annotations

import hashlib

#: Bump when the exported symbols or their signatures change; part of the
#: build-cache key, so old shared objects are never dlopen'ed into a new ABI.
ABI_VERSION = 1

C_SOURCE = r"""
/* Flat-CSR blocking-flow Dinic core for the feasibility network.
 *
 * Mirrors repro/offline/dinic.py exactly (BFS depth synchronization, DFS
 * current-arc pointers, retreat and pruning rules) so flows, residual
 * capacities, and min cuts are bit-identical to the Python kernels.
 *
 * Conventions: node/edge ids are int32, capacities int64; the reverse edge
 * of e is e ^ 1 and forward edges are even.  All buffers are caller-owned;
 * the only allocations are per-call scratch (freed before returning).
 */
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#if defined(_WIN32)
#  define API __declspec(dllexport)
#else
#  define API __attribute__((visibility("default")))
#endif

/* Max flow added on the current residual from s to t.
 *
 * limit >= 0 is a known upper bound on the missing flow: once the added
 * flow reaches it the routine returns immediately (the bound certifies
 * maximality); limit < 0 means run to disconnection.  stats (optional,
 * may be NULL) receives {bfs phases, augmenting paths, retreats}.
 * Returns -1 on allocation failure. */
API int64_t repro_dinic_max_flow(
    int32_t n, const int32_t *to, const int32_t *head, const int32_t *elist,
    int64_t *cap, int32_t s, int32_t t, int64_t limit, int64_t *stats)
{
    int32_t *scratch = (int32_t *)malloc(4 * (size_t)n * sizeof(int32_t));
    int32_t *level, *it, *queue, *path;
    int64_t added = 0, phases = 0, paths = 0, retreats = 0;

    if (!scratch)
        return -1;
    level = scratch;
    it = scratch + n;
    queue = scratch + 2 * (size_t)n;
    path = scratch + 3 * (size_t)n;

    for (;;) {
        int32_t qhead = 0, qtail = 1, depth = 0, plen = 0, u;
        phases += 1;
        /* Level graph: depth-synchronized BFS.  The whole frontier at the
         * depth that reaches t is labeled before the loop stops, exactly
         * like the Python _bfs_py, so levels are identical. */
        memset(level, -1, (size_t)n * sizeof(int32_t));
        level[s] = 0;
        queue[0] = s;
        while (qhead < qtail) {
            int32_t frontier_end = qtail;
            depth += 1;
            while (qhead < frontier_end) {
                int32_t i, end;
                u = queue[qhead++];
                end = head[u + 1];
                for (i = head[u]; i < end; i++) {
                    int32_t e = elist[i];
                    if (cap[e]) {
                        int32_t v = to[e];
                        if (level[v] < 0) {
                            level[v] = depth;
                            queue[qtail++] = v;
                        }
                    }
                }
            }
            if (level[t] >= 0)
                break;
        }
        if (level[t] < 0)
            break;
        /* Blocking flow: iterative DFS with current-arc pointers. */
        memcpy(it, head, (size_t)n * sizeof(int32_t));
        u = s;
        for (;;) {
            int32_t i, end, lu, e, v;
            if (u == t) {
                int64_t aug;
                int32_t cut;
                if (!plen)
                    goto done;  /* degenerate s == t */
                paths += 1;
                aug = cap[path[0]];
                for (i = 1; i < plen; i++)
                    if (cap[path[i]] < aug)
                        aug = cap[path[i]];
                added += aug;
                for (i = 0; i < plen; i++) {
                    e = path[i];
                    cap[e] -= aug;
                    cap[e ^ 1] += aug;
                }
                if (limit >= 0 && added >= limit)
                    goto done;
                /* Retreat to the shallowest saturated edge. */
                cut = 0;
                while (cap[path[cut]])
                    cut++;
                e = path[cut];     /* del path[cut+1:]; e = path.pop() */
                plen = cut;
                u = to[e ^ 1];
                it[u] += 1;
                continue;
            }
            i = it[u];
            end = head[u + 1];
            lu = level[u] + 1;
            e = -1;
            v = -1;
            while (i < end) {
                e = elist[i];
                v = to[e];
                if (cap[e] && level[v] == lu)
                    break;
                i += 1;
            }
            it[u] = i;
            if (i < end) {
                path[plen++] = e;
                u = v;
            } else if (plen) {
                retreats += 1;
                level[u] = -1;  /* dead end: prune from this phase */
                e = path[--plen];
                u = to[e ^ 1];
                it[u] += 1;
            } else {
                break;  /* source exhausted: blocking flow complete */
            }
        }
    }
done:
    if (stats) {
        stats[0] = phases;
        stats[1] = paths;
        stats[2] = retreats;
    }
    free(scratch);
    return added;
}

/* The EDF greedy blocking pass of FeasibilityNetwork._greedy_blocking:
 * for each job in edf order, push source residual left to right through
 * its window arcs into the sink arcs (sink arc of interval k is edge 2k;
 * job idx's source arc is src[idx], window arcs the following even ids).
 * Returns the total flow pushed. */
API int64_t repro_greedy_blocking(
    int32_t n_jobs, const int32_t *edf, const int32_t *k0, const int32_t *k1,
    const int32_t *src, int64_t *cap)
{
    int64_t pushed = 0;
    int32_t j;
    for (j = 0; j < n_jobs; j++) {
        int32_t idx = edf[j];
        int32_t se = src[idx];
        int64_t resid = cap[se];
        int64_t sent = 0;
        int64_t e;
        int32_t k, kend;
        if (!resid)
            continue;
        e = (int64_t)se + 2;
        kend = k1[idx];
        for (k = k0[idx]; k < kend; k++, e += 2) {
            int64_t r = cap[e];
            if (r) {
                int64_t ks = 2 * (int64_t)k;
                int64_t room = cap[ks];
                if (room) {
                    int64_t push = resid;
                    if (r < push)
                        push = r;
                    if (room < push)
                        push = room;
                    cap[e] = r - push;
                    cap[e + 1] += push;  /* forward ids are even: e^1 == e+1 */
                    cap[ks] = room - push;
                    cap[ks + 1] += push;
                    resid -= push;
                    sent += push;
                    if (!resid)
                        break;
                }
            }
        }
        if (sent) {
            cap[se] = resid;
            cap[se + 1] += sent;
            pushed += sent;
        }
    }
    return pushed;
}

/* The arithmetic CSR topology of _feasibility_topology: fills the
 * caller-allocated (and zero-initialized) to/head/elist buffers.  Sizes:
 * to[n_edges2], head[2 + n_jobs + n_iv + 1], elist[n_edges2] where
 * n_edges2 = src[n_jobs-1] + 2*(1 + k1[n_jobs-1] - k0[n_jobs-1]) (or
 * 2*n_iv for an empty instance).  Returns 0, or -1 on allocation failure. */
API int32_t repro_build_topology(
    int32_t n_jobs, int32_t n_iv, const int32_t *k0, const int32_t *k1,
    const int32_t *src, int32_t *to, int32_t *head, int32_t *elist)
{
    int32_t base_iv = 2 + n_jobs;
    int32_t *cover = (int32_t *)calloc((size_t)n_iv + 1, sizeof(int32_t));
    int32_t *ivfill = (int32_t *)malloc(((size_t)n_iv + 1) * sizeof(int32_t));
    int32_t idx, k, p, running;
    if (!cover || !ivfill) {
        free(cover);
        free(ivfill);
        return -1;
    }
    for (k = 0; k < n_iv; k++) {
        to[2 * k] = 1;  /* SINK */
        to[2 * k + 1] = base_iv + k;
    }
    for (idx = 0; idx < n_jobs; idx++) {
        int32_t jn = 2 + idx;
        int32_t e = src[idx];
        int32_t a = k0[idx], b = k1[idx];
        to[e] = jn;  /* to[e + 1] stays 0 == SOURCE */
        cover[a] += 1;
        cover[b] -= 1;
        for (k = a; k < b; k++) {
            e += 2;
            to[e] = base_iv + k;
            to[e + 1] = jn;
        }
    }
    head[0] = 0;
    head[1] = n_jobs;          /* source's arcs */
    head[2] = n_jobs + n_iv;   /* sink's (reverse) arcs */
    for (idx = 0; idx < n_jobs; idx++)
        head[3 + idx] = head[2 + idx] + 1 + k1[idx] - k0[idx];
    running = 0;
    for (k = 0; k < n_iv; k++) {
        running += cover[k];
        head[base_iv + k + 1] = head[base_iv + k] + 1 + running;
    }
    for (idx = 0; idx < n_jobs; idx++)
        elist[idx] = src[idx];            /* source list (head[0] == 0) */
    p = head[1];
    for (k = 0; k < n_iv; k++)
        elist[p + k] = 2 * k + 1;         /* sink list */
    for (k = 0; k < n_iv; k++) {
        ivfill[k] = head[base_iv + k];
        elist[ivfill[k]] = 2 * k;  /* interval lists start with the sink arc */
        ivfill[k] += 1;
    }
    for (idx = 0; idx < n_jobs; idx++) {
        int32_t e = src[idx];
        int32_t b = k1[idx];
        p = head[2 + idx];
        elist[p] = e + 1;          /* reverse source arc heads the job list */
        p += 1;
        for (k = k0[idx]; k < b; k++) {
            e += 2;
            elist[p] = e;
            p += 1;
            elist[ivfill[k]] = e + 1;  /* reverse window arc on the interval */
            ivfill[k] += 1;
        }
    }
    free(cover);
    free(ivfill);
    return 0;
}

/* iv_caps[k] = len_base[k] * lenfac  (per-interval unit capacity). */
API void repro_scale_caps(
    int32_t n_iv, const int64_t *len_base, int64_t lenfac, int64_t *iv_caps)
{
    int32_t k;
    for (k = 0; k < n_iv; k++)
        iv_caps[k] = len_base[k] * lenfac;
}

/* The cold capacity fill of FeasibilityNetwork.__init__ (tables path):
 * source arcs carry demand_base * demfac, window arcs the interval's unit
 * capacity.  Sink arcs stay 0 (m = 0); cap must be zero-initialized. */
API void repro_fill_caps(
    int32_t n_jobs, const int32_t *k0, const int32_t *k1, const int32_t *src,
    const int64_t *demand_base, int64_t demfac, const int64_t *iv_caps,
    int64_t *cap)
{
    int32_t idx, k;
    for (idx = 0; idx < n_jobs; idx++) {
        int64_t e = src[idx];
        int32_t b = k1[idx];
        cap[e] = demand_base[idx] * demfac;
        e += 2;
        for (k = k0[idx]; k < b; k++) {
            cap[e] = iv_caps[k];
            e += 2;
        }
    }
}

/* The warm-start grow of set_machines: sink arc of interval k gains
 * delta machines' worth of capacity. */
API void repro_grow_sinks(
    int32_t n_iv, int64_t delta, const int64_t *iv_caps, int64_t *cap)
{
    int32_t k;
    for (k = 0; k < n_iv; k++)
        cap[2 * (int64_t)k] += delta * iv_caps[k];
}
"""


def source_hash() -> str:
    """Content hash keying the build cache (source + ABI version)."""
    h = hashlib.sha256()
    h.update(b"repro-dinic-c-abi-%d\n" % ABI_VERSION)
    h.update(C_SOURCE.encode("utf-8"))
    return h.hexdigest()
