"""The workload characterization of the optimum (Theorem 1).

For a finite union of intervals ``I`` the *contribution* of job ``j`` is

    C(j, I) = max(0, |I ∩ I(j)| − ℓ_j),

the least processing ``j`` must receive inside ``I`` in any feasible
schedule (at most ``ℓ_j`` of the overlap can be idled away).  Theorem 1
states that the optimal machine count is exactly

    m = max_I ceil( C(S, I) / |I| ).

The maximum over *all* finite unions is the LP dual of the feasibility flow,
so this module offers:

* exact contributions for arbitrary unions,
* the classical single-interval bound (max density over all event-point
  interval pairs),
* a greedy union-improvement pass that grows a union by any interval that
  raises its density — this often certifies the optimum directly and is the
  form of bound used in the paper's MediumFit analysis (Lemma 8).
"""

from __future__ import annotations

from fractions import Fraction
from math import ceil
from typing import Iterable, List, Optional, Tuple

from ..model.instance import Instance
from ..model.intervals import Interval, IntervalUnion, Numeric, to_fraction
from ..model.job import Job
from .feascache import cache_for


def contribution(job: Job, region: IntervalUnion) -> Fraction:
    """``C(j, I) = max(0, |I ∩ I(j)| − ℓ_j)``."""
    overlap = region.intersect_interval(job.interval).length
    return max(Fraction(0), overlap - job.laxity)


def total_contribution(instance: Instance, region: IntervalUnion) -> Fraction:
    """``C(S, I) = Σ_j C(j, I)``."""
    return sum((contribution(j, region) for j in instance), Fraction(0))


def density(instance: Instance, region: IntervalUnion) -> Fraction:
    """``C(S, I) / |I|`` (zero for an empty region)."""
    length = region.length
    if length == 0:
        return Fraction(0)
    return total_contribution(instance, region) / length


def machines_bound(instance: Instance, region: IntervalUnion) -> int:
    """``ceil(C(S, I)/|I|)`` — a valid lower bound on OPT for any region."""
    d = density(instance, region)
    return ceil(d) if d > 0 else 0


def _candidate_points(instance: Instance) -> List[Fraction]:
    """Endpoints at which contributions have their breakpoints.

    ``C(j, [a,b))`` is piecewise linear in ``a`` and ``b`` with breakpoints
    at ``r_j``, ``d_j``, ``r_j + ℓ_j`` and ``d_j − ℓ_j``.  Restricting the
    search to these endpoints keeps every produced bound *valid* (any
    interval gives a lower bound by Theorem 1); experiment E-T1 measures how
    often the restriction is also tight against the exact flow optimum.
    """
    pts = set()
    for j in instance:
        pts.update((j.release, j.deadline, j.latest_start, j.earliest_finish))
    return sorted(pts)


def best_single_interval(
    instance: Instance,
) -> Tuple[Fraction, Optional[Interval]]:
    """Max density over single candidate intervals, with an argmax witness."""
    points = _candidate_points(instance)
    best = Fraction(0)
    witness: Optional[Interval] = None
    for i, a in enumerate(points):
        for b in points[i + 1 :]:
            region = IntervalUnion.single(a, b)
            d = density(instance, region)
            if d > best:
                best = d
                witness = Interval(a, b)
    return best, witness


def single_interval_lower_bound(instance: Instance) -> int:
    """``max ceil(C(S,[a,b))/(b−a))`` over candidate single intervals."""
    best, _ = best_single_interval(instance)
    return ceil(best) if best > 0 else 0


def greedy_union_lower_bound(
    instance: Instance, max_rounds: int = 8
) -> Tuple[int, IntervalUnion]:
    """Grow a union greedily by any candidate interval that raises density.

    Starting from the best single interval, repeatedly add the candidate
    interval whose inclusion maximizes the resulting density, stopping when
    no addition improves it.  Returns ``(bound, union)``; the bound is always
    a valid lower bound on OPT by Theorem 1.
    """
    best, witness = best_single_interval(instance)
    if witness is None:
        return 0, IntervalUnion.empty()
    region = IntervalUnion([witness])
    points = _candidate_points(instance)
    candidates = [
        Interval(a, b) for i, a in enumerate(points) for b in points[i + 1 :]
    ]
    for _ in range(max_rounds):
        current = density(instance, region)
        best_gain = current
        best_region: Optional[IntervalUnion] = None
        for cand in candidates:
            extended = region.union(IntervalUnion([cand]))
            if extended == region:
                continue
            d = density(instance, extended)
            if d > best_gain:
                best_gain = d
                best_region = extended
        if best_region is None:
            break
        region = best_region
    d = density(instance, region)
    return (ceil(d) if d > 0 else 0), region


def trivial_lower_bounds(instance: Instance) -> int:
    """Cheap combination: span density and zero-laxity window concurrency."""
    if len(instance) == 0:
        return 0
    span = instance.span
    span_density = (
        ceil(instance.total_work / span.length) if span.length > 0 else 0
    )
    return max(1, span_density, instance.zero_laxity_concurrency())


def scaled_lower_bound(instance: Instance, speed: Numeric = 1) -> int:
    """Speed-aware trivial lower bound on the speed-``speed`` optimum.

    The span-density component scales exactly: ``m`` speed-``s`` machines
    provide ``m·s·|span|`` work capacity, so ``m ≥ ⌈W / (s·|span|)⌉``.  The
    zero-laxity-concurrency component does **not** scale as ``⌈c/s⌉`` for
    ``s > 1``: a fast machine can interleave several ex-zero-laxity jobs'
    (now sub-window) mandatory work inside one window, so concurrency is
    only a valid bound when ``s ≤ 1`` (where a zero-laxity job still needs
    its whole window).  At ``speed == 1`` this coincides with
    :func:`trivial_lower_bounds`.
    """
    if len(instance) == 0:
        return 0
    speed = to_fraction(speed)
    # Both components come from the per-instance cache's integer tables
    # (semantically identical to instance.total_work / instance.span /
    # instance.zero_laxity_concurrency, but computed once per instance).
    cache = cache_for(instance)
    span_length = cache.span_length
    bound = 1
    if span_length > 0:
        bound = max(bound, ceil(cache.total_work / (speed * span_length)))
    if speed <= 1:
        bound = max(bound, cache.zero_laxity_concurrency)
    return bound
