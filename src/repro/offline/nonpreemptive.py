"""Exact offline *non-preemptive* scheduling (related-work substrate).

Section 1 of the paper contrasts its preemptive non-migratory model with
the fully non-preemptive one studied by Saha [11], where no ``f(m)``
competitive bound exists and ``O(log Δ)`` is the answer.  To measure that
regime honestly we need exact non-preemptive optima:

* :func:`single_machine_np_feasible` — subset DP over earliest completion
  times: ``ECT(S) = min_{j∈S} max(r_j, ECT(S∖{j})) + p_j`` subject to the
  deadline, the classic ``O(2ⁿ·n)`` exact oracle for one machine,
* :func:`single_machine_np_schedule` — an explicit witness sequence,
* :func:`exact_np_optimum` — branch and bound over machine partitions with
  the DP as the per-machine oracle (intended for ``n ≲ 12``),
* :func:`np_first_fit` — the greedy upper bound for larger instances.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from ..model.instance import Instance
from ..model.job import Job
from ..model.schedule import Schedule, Segment

_INFEASIBLE = None


def _ect_table(jobs: Sequence[Job]) -> List[Optional[Fraction]]:
    """Earliest completion time for every subset (None = infeasible)."""
    n = len(jobs)
    size = 1 << n
    ect: List[Optional[Fraction]] = [None] * size
    ect[0] = Fraction(0)  # empty set completes immediately
    for mask in range(1, size):
        best: Optional[Fraction] = None
        for j in range(n):
            bit = 1 << j
            if not mask & bit:
                continue
            prev = ect[mask ^ bit]
            if prev is None:
                continue
            job = jobs[j]
            start = max(job.release, prev)
            finish = start + job.processing
            if finish > job.deadline:
                continue
            if best is None or finish < best:
                best = finish
        ect[mask] = best
    return ect


def single_machine_np_feasible(jobs: Sequence[Job]) -> bool:
    """Exact non-preemptive single-machine feasibility (``n ≲ 18``)."""
    jobs = list(jobs)
    if not jobs:
        return True
    if len(jobs) > 18:
        raise ValueError("subset DP limited to 18 jobs per machine")
    table = _ect_table(jobs)
    return table[-1] is not None


def single_machine_np_schedule(
    jobs: Sequence[Job], machine: int = 0
) -> Optional[Schedule]:
    """An explicit feasible non-preemptive sequence, or ``None``."""
    jobs = list(jobs)
    if not jobs:
        return Schedule([])
    table = _ect_table(jobs)
    if table[-1] is None:
        return None
    # reconstruct: repeatedly find a job that can go last
    segments: List[Segment] = []
    mask = (1 << len(jobs)) - 1
    while mask:
        for j in range(len(jobs)):
            bit = 1 << j
            if not mask & bit:
                continue
            prev = table[mask ^ bit]
            if prev is None:
                continue
            job = jobs[j]
            start = max(job.release, prev)
            finish = start + job.processing
            if finish > job.deadline:
                continue
            if finish == table[mask]:
                segments.append(Segment(job.id, machine, start, finish))
                mask ^= bit
                break
        else:  # pragma: no cover - table consistency guarantees progress
            raise RuntimeError("DP reconstruction failed")
    return Schedule(segments)


def np_first_fit(instance: Instance) -> Tuple[int, Schedule]:
    """Greedy non-preemptive first fit (upper bound; any ``n``).

    Jobs in release order; each goes on the first machine where it can
    start by ``a_j`` after the machine's current last job; machines track
    only their frontier (no re-sequencing), so this is fast but loose.
    """
    frontiers: List[Fraction] = []
    segments: List[Segment] = []
    for job in sorted(instance, key=lambda j: (j.release, j.deadline, j.id)):
        placed = False
        for idx, free_at in enumerate(frontiers):
            start = max(job.release, free_at)
            if start + job.processing <= job.deadline:
                segments.append(Segment(job.id, idx, start, start + job.processing))
                frontiers[idx] = start + job.processing
                placed = True
                break
        if not placed:
            frontiers.append(job.release + job.processing)
            segments.append(
                Segment(job.id, len(frontiers) - 1, job.release,
                        job.release + job.processing)
            )
    return len(frontiers), Schedule(segments)


def exact_np_optimum(instance: Instance, node_limit: int = 500_000) -> int:
    """Exact non-preemptive optimum by branch and bound (``n ≲ 12``)."""
    jobs = sorted(instance, key=lambda j: (j.release, j.deadline, j.id))
    n = len(jobs)
    if n == 0:
        return 0
    best = np_first_fit(instance)[0]
    nodes = 0

    def recurse(i: int, machines: List[List[Job]]) -> None:
        nonlocal best, nodes
        nodes += 1
        if nodes > node_limit:
            raise RuntimeError("node limit exceeded in non-preemptive search")
        if len(machines) >= best:
            return
        if i == n:
            best = min(best, len(machines))
            return
        job = jobs[i]
        for bucket in machines:
            bucket.append(job)
            if single_machine_np_feasible(bucket):
                recurse(i + 1, machines)
            bucket.pop()
        machines.append([job])
        recurse(i + 1, machines)
        machines.pop()

    recurse(0, [])
    return best
