"""Offline non-migratory scheduling: oracles, heuristics, exact optimum.

A non-migratory schedule partitions the jobs over machines; a partition is
feasible iff every part is feasible on a *single* machine, and preemptive
EDF is an optimal single-machine policy.  This module provides:

* :func:`single_machine_feasible` — exact preemptive-EDF oracle (supports a
  machine speed, used by the speed-augmented black box of Section 4),
* :func:`edf_single_machine_schedule` — an explicit single-machine schedule,
* :func:`first_fit_assignment` — the classical first-fit upper bound,
* :func:`exact_nonmigratory_optimum` — branch-and-bound exact optimum for
  small instances (the problem is NP-hard; used to validate the *statement*
  of Theorem 2: non-migratory OPT ≤ 6m − 5).
"""

from __future__ import annotations

import heapq
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..model.instance import Instance
from ..model.intervals import Numeric, to_fraction
from ..model.job import Job
from ..model.schedule import Schedule, Segment
from .optimum import migratory_optimum, window_concurrency


def _edf_sweep(
    jobs: Sequence[Job], speed: Fraction, machine: int
) -> Optional[List[Segment]]:
    """Simulate preemptive EDF on one speed-``speed`` machine.

    Returns the segments if every deadline is met, otherwise ``None``.
    EDF is optimal for single-machine preemptive feasibility, so ``None``
    means the job set is infeasible on one machine at this speed.
    """
    if not jobs:
        return []
    order = sorted(jobs, key=lambda j: (j.release, j.deadline, j.id))
    n = len(order)
    remaining = {j.id: j.processing for j in order}  # work units
    ready: List[Tuple[Fraction, int, Job]] = []  # (deadline, id, job)
    segments: List[Segment] = []
    t = order[0].release
    idx = 0
    while idx < n or ready:
        while idx < n and order[idx].release <= t:
            j = order[idx]
            heapq.heappush(ready, (j.deadline, j.id, j))
            idx += 1
        if not ready:
            t = order[idx].release
            continue
        _, _, job = ready[0]
        finish = t + remaining[job.id] / speed
        end = min(finish, order[idx].release) if idx < n else finish
        if end > job.deadline:
            # The running job has the earliest deadline and no release
            # intervenes before `end`, so it misses its deadline.
            return None
        segments.append(Segment(job.id, machine, t, end))
        remaining[job.id] -= (end - t) * speed
        t = end
        if remaining[job.id] == 0:
            heapq.heappop(ready)
    return segments


def single_machine_feasible(jobs: Sequence[Job], speed: Numeric = 1) -> bool:
    """Exact single-machine preemptive feasibility at the given speed."""
    return _edf_sweep(list(jobs), to_fraction(speed), 0) is not None


def edf_single_machine_schedule(
    jobs: Sequence[Job], speed: Numeric = 1, machine: int = 0
) -> Optional[Schedule]:
    """Single-machine preemptive EDF schedule, or ``None`` if infeasible."""
    segs = _edf_sweep(list(jobs), to_fraction(speed), machine)
    if segs is None:
        return None
    return Schedule(segs)


def first_fit_assignment(
    instance: Instance,
    speed: Numeric = 1,
    order_key=None,
) -> Dict[int, int]:
    """First-fit partition: job → machine index.

    Jobs are considered in release order (or by ``order_key``); each goes to
    the lowest-index machine whose job set stays single-machine feasible.
    Always succeeds by opening new machines.
    """
    speed = to_fraction(speed)
    if order_key is None:
        order_key = lambda j: (j.release, j.deadline, j.id)
    machines: List[List[Job]] = []
    assignment: Dict[int, int] = {}
    for job in sorted(instance, key=order_key):
        placed = False
        for idx, bucket in enumerate(machines):
            if single_machine_feasible(bucket + [job], speed):
                bucket.append(job)
                assignment[job.id] = idx
                placed = True
                break
        if not placed:
            machines.append([job])
            assignment[job.id] = len(machines) - 1
    return assignment


def schedule_from_assignment(
    instance: Instance, assignment: Dict[int, int], speed: Numeric = 1
) -> Schedule:
    """Run per-machine EDF under a fixed partition; raises if infeasible."""
    speed = to_fraction(speed)
    buckets: Dict[int, List[Job]] = {}
    for job in instance:
        buckets.setdefault(assignment[job.id], []).append(job)
    segments: List[Segment] = []
    for machine, jobs in buckets.items():
        segs = _edf_sweep(jobs, speed, machine)
        if segs is None:
            raise ValueError(f"assignment infeasible on machine {machine}")
        segments.extend(segs)
    return Schedule(segments)


def first_fit_nonmigratory(
    instance: Instance, speed: Numeric = 1
) -> Tuple[int, Schedule]:
    """Machine count and schedule produced by offline first-fit."""
    assignment = first_fit_assignment(instance, speed)
    machines = 1 + max(assignment.values()) if assignment else 0
    return machines, schedule_from_assignment(instance, assignment, speed)


def exact_nonmigratory_optimum(
    instance: Instance, node_limit: int = 2_000_000
) -> int:
    """Exact non-migratory optimum by branch and bound.

    Branches on jobs in release order; a job may join any currently open
    machine whose set stays single-machine feasible, or open machine
    ``k + 1`` (symmetry breaking: machines are interchangeable).  Pruned by
    the best solution found so far (seeded with first-fit) and the migratory
    optimum as a lower bound.  Exponential — intended for ``n ≲ 16``.
    """
    jobs = sorted(instance, key=lambda j: (j.release, j.deadline, j.id))
    n = len(jobs)
    if n == 0:
        return 0
    best = first_fit_nonmigratory(instance)[0]
    lower = migratory_optimum(instance)
    if best == lower:
        return best
    nodes = 0

    def recurse(i: int, machines: List[List[Job]]) -> None:
        nonlocal best, nodes
        nodes += 1
        if nodes > node_limit:
            raise RuntimeError("node limit exceeded in exact search")
        if len(machines) >= best:
            return
        if i == n:
            best = min(best, len(machines))
            return
        if best == lower:
            return
        job = jobs[i]
        for bucket in machines:
            if single_machine_feasible(bucket + [job]):
                bucket.append(job)
                recurse(i + 1, machines)
                bucket.pop()
        machines.append([job])
        recurse(i + 1, machines)
        machines.pop()

    recurse(0, [])
    return best


def nonmigratory_optimum_bounds(
    instance: Instance, exact_threshold: int = 14
) -> Tuple[int, int]:
    """``(lower, upper)`` bounds on the non-migratory optimum.

    Exact when ``n`` is at most ``exact_threshold``; otherwise the migratory
    optimum lower-bounds and first-fit upper-bounds it.
    """
    if len(instance) <= exact_threshold:
        opt = exact_nonmigratory_optimum(instance)
        return opt, opt
    lower = migratory_optimum(instance)
    upper = first_fit_nonmigratory(instance)[0]
    return lower, upper
