#!/usr/bin/env python
"""Distill and diff benchmark trajectories.

The committed trajectory (``benchmarks/trajectory/BENCH_<k>.json``) is a
compact per-benchmark summary of a ``--benchmark-json`` artifact: mean,
stddev, rounds, plus the machine's CPU count so absolute numbers can be
read in context.  Two modes:

* ``--distill OUT``: write the compact trajectory for a raw artifact —
  how ``BENCH_4.json`` was produced::

      python tools/bench_diff.py raw.json --distill benchmarks/trajectory/BENCH_4.json

* default: diff a fresh raw artifact against a committed trajectory and
  exit 1 when any shared benchmark's mean regressed beyond ``--threshold``::

      python tools/bench_diff.py new-raw.json --baseline benchmarks/trajectory/BENCH_6.json

Since BENCH_6 this diff is a *blocking* CI gate.  Shared runners are
noisy and the committed baseline may have been recorded on different
hardware, so CI passes ``--threshold 5.0``: the gate exists to catch
algorithmic blowups (a probe going superlinear, a cache stopping to
hit), not 20% jitter.  Escape hatches, in order of preference:

1. **Ratchet** (the normal move after an intentional perf change, in
   either direction): re-run the bench-smoke pytest selection from
   ``.github/workflows/ci.yml`` with ``--benchmark-json=raw.json``,
   distill it to the *next* ``benchmarks/trajectory/BENCH_<k>.json``,
   and point the CI ``--baseline`` flag at it.  Keep the old file —
   the trajectory is the sequence, that's the point of it.
2. **Loosen**: bump ``--threshold`` in the CI step with a comment
   explaining why (e.g. a benchmark made intentionally heavier).
3. **Skip once**: re-run the job with the ``BENCH_DIFF_SKIP`` workflow
   variable set (Settings → Variables), or locally just don't pass
   ``--baseline``.  Use for runner incidents, not to land regressions.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def distill(raw: dict) -> dict:
    return {
        "schema": "repro-bench-trajectory/1",
        "cpu_count": os.cpu_count(),
        "benchmarks": {
            b["name"]: {
                "mean_s": round(b["stats"]["mean"], 6),
                "stddev_s": round(b["stats"]["stddev"], 6),
                "rounds": b["stats"]["rounds"],
            }
            for b in raw["benchmarks"]
        },
    }


def diff(raw: dict, baseline: dict, threshold: float) -> int:
    new = distill(raw)["benchmarks"]
    old = baseline["benchmarks"]
    shared = sorted(set(new) & set(old))
    regressions = []
    width = max((len(n) for n in shared), default=4)
    print(f"{'benchmark':<{width}}  {'old mean':>10}  {'new mean':>10}  ratio")
    for name in shared:
        ratio = new[name]["mean_s"] / old[name]["mean_s"] if old[name]["mean_s"] else 1.0
        flag = "  <-- regression" if ratio > threshold else ""
        print(
            f"{name:<{width}}  {old[name]['mean_s']:>10.4f}  "
            f"{new[name]['mean_s']:>10.4f}  {ratio:5.2f}x{flag}"
        )
        if ratio > threshold:
            regressions.append(name)
    for name in sorted(set(old) - set(new)):
        print(f"{name:<{width}}  missing from new run")
    for name in sorted(set(new) - set(old)):
        print(f"{name:<{width}}  not in baseline")
    if regressions:
        print(f"{len(regressions)} regression(s) beyond {threshold:.2f}x")
        return 1
    print(f"no regressions beyond {threshold:.2f}x across {len(shared)} benchmark(s)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("raw", help="pytest-benchmark --benchmark-json artifact")
    parser.add_argument("--baseline", help="committed trajectory to diff against")
    parser.add_argument("--distill", help="write the compact trajectory here instead")
    parser.add_argument("--threshold", type=float, default=1.5,
                        help="mean-ratio beyond which a benchmark counts as regressed")
    args = parser.parse_args(argv)
    with open(args.raw, encoding="utf-8") as fh:
        raw = json.load(fh)
    if args.distill:
        with open(args.distill, "w", encoding="utf-8") as fh:
            json.dump(distill(raw), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.distill} ({len(raw['benchmarks'])} benchmarks)")
        return 0
    if not args.baseline:
        parser.error("either --baseline or --distill is required")
    with open(args.baseline, encoding="utf-8") as fh:
        baseline = json.load(fh)
    return diff(raw, baseline, args.threshold)


if __name__ == "__main__":
    sys.exit(main())
