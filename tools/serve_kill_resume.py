#!/usr/bin/env python
"""CI kill-resume scenario for the ``repro serve`` daemon.

Drives the full crash-only story end to end against real processes:

1. start the daemon on an ephemeral port over ``--journal-dir``,
2. submit the sweep spec (JSON on the command line) and record the 202,
3. poll ``/v1/sweeps/{id}`` until a few items have settled, then SIGKILL
   the daemon mid-sweep — no drain, no warning,
4. restart the daemon over the same directory; it must re-own the sweep
   without being asked and finish it,
5. scrape ``/metrics`` (saved for the artifact upload), SIGTERM the
   daemon and require a clean exit 0 with the drain banner,
6. diff the finished report's ``canonical_report_view`` against an
   offline ``repro sweep`` snapshot of the same plan — byte-identical or
   the job fails.

Exit code 0 iff every step held.  Stdlib only; used by the ``serve`` CI
job but runnable locally::

    PYTHONPATH=src python tools/serve_kill_resume.py \
        --journal-dir serve-journal --offline-snapshot offline.json \
        --metrics-out serve-metrics.prom \
        '{"kind":"ratio","policies":["edf"],"families":["uniform"],"n":120,"seeds":25}'
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def log(message: str) -> None:
    print(f"serve-ci: {message}", flush=True)


def start_daemon(journal_dir: str, timeout: float = 30.0):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["PYTHONUNBUFFERED"] = "1"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--port", "0", "--journal-dir", journal_dir],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env, cwd=REPO,
    )
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        if "listening on" in line:
            url = line.strip().rsplit(" ", 1)[-1]
            log(f"daemon pid {proc.pid} on {url}")
            return proc, url
    proc.kill()
    raise SystemExit("daemon never printed its listening banner")


def http_json(method: str, url: str, payload=None, timeout: float = 15.0):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def poll(url: str, sweep_id: str, until, timeout: float, what: str):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, body = http_json("GET", f"{url}/v1/sweeps/{sweep_id}")
        if until(body):
            return body
        time.sleep(0.05)
    raise SystemExit(f"timed out after {timeout}s waiting for {what}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("spec", help="sweep spec as a JSON object")
    parser.add_argument("--journal-dir", required=True)
    parser.add_argument("--offline-snapshot", required=True,
                        help="snapshot JSON of the offline reference run")
    parser.add_argument("--metrics-out", required=True,
                        help="file to save the /metrics scrape to")
    parser.add_argument("--kill-after", type=int, default=3,
                        help="settled items before the SIGKILL lands")
    args = parser.parse_args(argv)
    spec = json.loads(args.spec)

    sys.path.insert(0, os.path.join(REPO, "src"))
    from repro.runner import canonical_report_view

    proc, url = start_daemon(args.journal_dir)
    status, body = http_json("POST", f"{url}/v1/sweeps", spec)
    if status != 202:
        raise SystemExit(f"submit returned {status}, wanted 202: {body}")
    sweep_id = body["id"]
    log(f"sweep {sweep_id} acknowledged (202)")

    def some_progress(body):
        if body.get("state") == "done":
            return True  # too fast to kill mid-run; still a valid scenario
        return body.get("progress", {}).get("settled", 0) >= args.kill_after

    poll(url, sweep_id, some_progress, 60, f"{args.kill_after} settled items")
    log("SIGKILL mid-sweep — no drain, no goodbye")
    proc.kill()
    proc.wait(timeout=30)

    proc2, url2 = start_daemon(args.journal_dir)
    done = poll(url2, sweep_id, lambda b: b.get("state") == "done",
                300, "the restarted daemon to finish the sweep")
    log("restarted daemon resumed the sweep to completion")

    with urllib.request.urlopen(f"{url2}/metrics", timeout=15) as resp:
        metrics = resp.read().decode("utf-8")
    with open(args.metrics_out, "w", encoding="utf-8") as fh:
        fh.write(metrics)
    if "repro_serve_requests_total" not in metrics:
        raise SystemExit("metrics scrape is missing the request counter")
    log(f"saved /metrics scrape to {args.metrics_out}")

    proc2.send_signal(signal.SIGTERM)
    out, _ = proc2.communicate(timeout=60)
    if proc2.returncode != 0:
        raise SystemExit(f"graceful drain exited {proc2.returncode}:\n{out}")
    if "drained, exiting" not in out:
        raise SystemExit(f"daemon exited 0 without the drain banner:\n{out}")
    log("SIGTERM drained cleanly, exit 0")

    with open(args.offline_snapshot, encoding="utf-8") as fh:
        offline = json.load(fh)
    if canonical_report_view(done["report"]) != canonical_report_view(offline):
        raise SystemExit(
            "kill-resume report diverged from the offline reference run"
        )
    log("canonical report is byte-identical to the offline sweep — PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
