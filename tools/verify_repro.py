"""One-shot verification of every headline claim (CI smoke).

Runs a condensed end-to-end check of each theorem's empirical content and
prints PASS/FAIL per claim; exits non-zero on any failure.  Much faster
than the full benchmark suite (~30 s) — the claims are the same, the
parameter grids are smaller.

    python tools/verify_repro.py
"""

from __future__ import annotations

import math
import sys
import time
from fractions import Fraction
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

FAILURES = []


def check(name: str, fn) -> None:
    start = time.time()
    try:
        fn()
        print(f"  PASS  {name}  ({time.time() - start:.1f}s)")
    except Exception as exc:  # noqa: BLE001 - report and continue
        FAILURES.append((name, exc))
        print(f"  FAIL  {name}: {exc}")


def t3_lower_bound() -> None:
    from repro.core.adversary.migration_gap import MigrationGapAdversary
    from repro.offline.optimum import migratory_optimum
    from repro.online.nonmigratory import FirstFitEDF

    adv = MigrationGapAdversary(FirstFitEDF(), machines=9)
    res = adv.run(6)
    assert res.machines_forced == 6, "adversary failed to force 6 machines"
    assert res.machines_forced >= math.log2(res.n_jobs) - 1
    rep = res.offline_witness().verify(res.instance)
    assert rep.feasible and rep.machines_used <= 3, "witness broken"
    assert migratory_optimum(res.instance) <= 3


def t5_loose() -> None:
    from repro.core.loose import LooseAlgorithm
    from repro.generators import loose_instance
    from repro.offline.optimum import migratory_optimum

    inst = loose_instance(40, Fraction(1, 3), seed=1)
    result = LooseAlgorithm(Fraction(1, 3)).run(inst)
    result.schedule.verify(inst).require_feasible()
    assert result.machines <= 8 * migratory_optimum(inst)


def t9_laminar() -> None:
    from repro.core.laminar import LaminarAlgorithm
    from repro.generators import laminar_random
    from repro.offline.optimum import migratory_optimum

    inst = laminar_random(30, seed=2)
    result = LaminarAlgorithm().run(inst)
    rep = result.schedule.verify(inst)
    assert rep.feasible and rep.is_non_migratory
    m = migratory_optimum(inst)
    assert result.machines <= 8 * m * (math.log2(max(m, 2)) + 1) + 8


def t12_agreeable() -> None:
    from repro.core.agreeable import AgreeableAlgorithm, optimal_alpha
    from repro.generators import agreeable_instance
    from repro.offline.optimum import migratory_optimum

    _, bound = optimal_alpha(5000)
    assert abs(float(bound) - 32.70) < 0.01, "the 32.70 constant is off"
    inst = agreeable_instance(40, seed=3)
    algo = AgreeableAlgorithm()
    result = algo.run(inst)
    rep = result.schedule.verify(inst)
    assert rep.feasible and rep.preemptions == 0
    assert result.machines <= algo.theorem12_bound(migratory_optimum(inst))


def t15_agreeable_lb() -> None:
    from repro.core.adversary.agreeable_lb import AgreeableAdversary
    from repro.online.edf import EDF

    dead = AgreeableAdversary(EDF(), m=40, machines=44).run(12)
    alive = AgreeableAdversary(EDF(), m=40, machines=60).run(12)
    assert dead.missed, "EDF survived below the 1.1010 threshold"
    assert not alive.missed, "EDF died with generous capacity"


def t1_characterization() -> None:
    from repro.generators import uniform_random_instance
    from repro.offline.optimum import migratory_optimum
    from repro.offline.workload import greedy_union_lower_bound

    tight = 0
    for seed in range(6):
        inst = uniform_random_instance(10, horizon=20, seed=seed)
        bound, _ = greedy_union_lower_bound(inst)
        opt = migratory_optimum(inst)
        assert bound <= opt
        tight += bound == opt
    assert tight >= 4, "the Theorem 1 certificate is rarely tight"


def t2_statement() -> None:
    from repro.generators import uniform_random_instance
    from repro.offline.nonmigratory import exact_nonmigratory_optimum
    from repro.offline.optimum import migratory_optimum

    for seed in range(4):
        inst = uniform_random_instance(9, horizon=12, seed=seed)
        m = migratory_optimum(inst)
        assert exact_nonmigratory_optimum(inst) <= 6 * m - 5


def baselines() -> None:
    from repro.generators import edf_trap_instance
    from repro.online.edf import EDF
    from repro.online.engine import min_machines
    from repro.online.llf import LLF

    inst = edf_trap_instance(10)
    assert min_machines(lambda k: EDF(), inst) == 10
    assert min_machines(lambda k: LLF(), inst) == 2


def np_regime() -> None:
    from repro.core.adversary.np_trap import NonPreemptiveTrapAdversary
    from repro.offline.nonpreemptive import exact_np_optimum
    from repro.online.edf import NonPreemptiveEDF

    adv = NonPreemptiveTrapAdversary(NonPreemptiveEDF(), machines=7)
    res = adv.run(5)
    assert res.machines_forced == 5
    assert exact_np_optimum(res.instance) <= 3


def main() -> int:
    print("verify_repro: condensed headline-claim checks\n")
    check("Theorem 3/4 + Figure 1 (Ω(log n) vs 3-machine witness)", t3_lower_bound)
    check("Theorem 5/6/8 (O(m) for α-loose)", t5_loose)
    check("Theorem 9/11 (O(m log m) for laminar)", t9_laminar)
    check("Theorem 12/14 + Lemma 8 (32.70·m for agreeable)", t12_agreeable)
    check("Theorem 15 + Lemma 9 ((6−2√6)·m threshold)", t15_agreeable_lb)
    check("Theorem 1 (workload characterization)", t1_characterization)
    check("Theorem 2 (6m−5 statement)", t2_statement)
    check("Related work: EDF Ω(Δ) vs LLF (trap family)", baselines)
    check("Related work: non-preemptive Ω(log Δ) (nesting trap)", np_regime)
    print()
    if FAILURES:
        print(f"{len(FAILURES)} claim(s) FAILED")
        return 1
    print("all headline claims verified")
    return 0


if __name__ == "__main__":
    sys.exit(main())
