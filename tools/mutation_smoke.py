#!/usr/bin/env python
"""Mutation smoke gate for the feasibility core, sharded runner, and obs hists.

Applies small, deterministic AST mutations (operator swaps, comparison
negations, min/max swaps) to the solver modules under ``src/repro/offline/``
— plus the sweep-sharding partition (``runner/plan.py::shard``), the
multi-journal merge (``runner/merge.py::merge_journals``), and the obs v2
histogram core (``obs/hist.py`` bucket/merge/quantile logic) — and re-runs
the kill-set tests for each mutant.  Every mutant must be *killed* — a
surviving mutant means the certificate layer would accept output from a
subtly broken solver (or the merge layer would accept an unsound shard
partition), which is exactly the failure mode those layers exist to
prevent.

A mutant that makes the tests hang counts as killed (the behavioral change
was detected); a mutant that fails to compile is skipped (nothing to test).

Usage:
    python tools/mutation_smoke.py [--max-mutants N] [--time-budget SECONDS]
                                   [--list] [--tests PATH ...]

Exit status: 0 iff every executed mutant was killed.
"""

from __future__ import annotations

import argparse
import ast
import copy
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

REPO = Path(__file__).resolve().parent.parent

#: file → function allowlist (None = every function in the file).  The
#: allowlist keeps mutation sites inside *semantics-critical* code: bounds
#: seeding and warm-start bookkeeping are deliberately excluded where a
#: mutation only degrades performance (an equivalent mutant for these tests).
TARGETS: Dict[str, Optional[Set[str]]] = {
    "src/repro/offline/dinic.py": None,
    "src/repro/offline/flow.py": {
        "mcnaughton",
        "schedule_from_work",
        "_build_network",
        "networkx_min_cut",
        "max_flow_assignment",
        "migratory_feasible",
    },
    "src/repro/offline/optimum.py": {"migratory_optimum"},
    # Sharded sweeps (ISSUE 7): a mutated partition (split group, skewed
    # round-robin) or merge validation (accepted duplicate/overlap/foreign
    # journal) must be caught by the sharding and merge kill-sets below.
    "src/repro/runner/plan.py": {"shard"},
    "src/repro/runner/merge.py": {"merge_journals"},
    # Obs v2 histograms (ISSUE 8): mutated bucket geometry, inexact merges,
    # or skewed quantiles would silently corrupt every latency report and
    # break the bit-identical sweep-merge invariant; tests/test_hist.py is
    # the kill-set.
    "src/repro/obs/hist.py": {
        "bucket_index",
        "bucket_bounds",
        "observe",
        "merge",
        "quantile",
    },
    # Compiled kernel (ISSUE 9): the ctypes ABI layer (buffer addresses,
    # error propagation, allocation sizes) and the build-cache publish
    # logic.  With ``auto`` resolving to ``dinic_c``, test_corpus alone no
    # longer exercises the python kernel — the explicit py-vs-c equality
    # checks in tests/test_kernel.py::TestKillSet keep both sides honest,
    # and TestBuildCache kills mutants that break the compile/cache path
    # (which would otherwise hide behind the graceful auto fallback).
    "src/repro/offline/kernel/abi.py": None,
    "src/repro/offline/kernel/build.py": {"ensure_built"},
    # Serve layer (ISSUE 10): the request router (a swapped comparison
    # routes certify traffic to the wrong handler or forgives trailing
    # slashes) and the queue's drain state machine (int-coded lifecycle
    # precisely so these comparisons are mutable sites — a mutant that
    # accepts submits while draining, or resurrects a stopped queue,
    # breaks the crash-only acknowledgement rule).  tests/test_serve.py's
    # routing/backpressure/drain classes are the kill-set.
    "src/repro/serve/app.py": {"dispatch", "_match", "handle"},
    "src/repro/serve/queue.py": {
        "submit",
        "_outcome",
        "_run",
        "begin_drain",
        "drain",
    },
}

#: The kill-set: fast, deterministic, certificate-backed.
DEFAULT_TESTS = [
    "tests/test_corpus.py",
    "tests/test_runner.py::TestSharding",
    "tests/test_chaos.py::TestMergeJournals",
    "tests/test_hist.py",
    "tests/test_kernel.py::TestKillSet",
    "tests/test_kernel.py::TestBuildCache",
    "tests/test_serve.py::TestRouting",
    "tests/test_serve.py::TestBackpressure",
    "tests/test_serve.py::TestSweepEndpoints",
    "tests/test_serve.py::TestDrainStateMachine",
]

COMPARE_SWAP = {
    ast.Lt: ast.GtE,
    ast.LtE: ast.Gt,
    ast.Gt: ast.LtE,
    ast.GtE: ast.Lt,
    ast.Eq: ast.NotEq,
    ast.NotEq: ast.Eq,
}
BINOP_SWAP = {ast.Add: ast.Sub, ast.Sub: ast.Add, ast.Mult: ast.Add, ast.BitXor: ast.BitOr}
NAME_SWAP = {"min": "max", "max": "min"}

#: Functions where ``==``/``!=`` swaps are excluded: Dinic's level check
#: (``level[v] == lu``) degenerates into plain DFS augmentation — slower but
#: still a maximum flow, i.e. an equivalent mutant for correctness tests.
NO_EQ_SWAP_FUNCS = {"max_flow"}

#: Functions where ``^``/``|`` swaps are excluded: ``work_by_job`` reads
#: ``cap[e ^ 1]`` only on *forward* (even) edge ids, where ``e ^ 1 == e | 1``
#: — a textbook equivalent mutant.
NO_XOR_SWAP_FUNCS = {"work_by_job"}


class Site:
    """One mutable AST location inside an allowlisted function."""

    __slots__ = ("path", "func", "lineno", "col", "node_kind", "detail")

    def __init__(self, path: str, func: str, lineno: int, col: int,
                 node_kind: str, detail: str) -> None:
        self.path = path
        self.func = func
        self.lineno = lineno
        self.col = col
        self.node_kind = node_kind
        self.detail = detail

    def label(self) -> str:
        return f"{self.path}:{self.lineno}:{self.col} [{self.func}] {self.detail}"


def _is_string_compare(node: ast.Compare) -> bool:
    """Skip ``backend == "dinic"``-style dispatch: swapping it just routes
    probes through the *other* (correct) backend — an equivalent mutant."""
    operands = [node.left, *node.comparators]
    return any(isinstance(o, ast.Constant) and isinstance(o.value, str) for o in operands)


def iter_sites(path: str, tree: ast.Module, allow: Optional[Set[str]]) -> Iterator[Site]:
    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if allow is not None and func.name not in allow:
            continue
        for node in ast.walk(func):
            if (
                isinstance(node, ast.BinOp)
                and type(node.op) in BINOP_SWAP
                and not (
                    func.name in NO_XOR_SWAP_FUNCS
                    and isinstance(node.op, ast.BitXor)
                )
            ):
                yield Site(path, func.name, node.lineno, node.col_offset,
                           "binop", type(node.op).__name__)
            elif (
                isinstance(node, ast.Compare)
                and len(node.ops) == 1
                and type(node.ops[0]) in COMPARE_SWAP
                and not _is_string_compare(node)
                and not (
                    func.name in NO_EQ_SWAP_FUNCS
                    and type(node.ops[0]) in (ast.Eq, ast.NotEq)
                )
            ):
                yield Site(path, func.name, node.lineno, node.col_offset,
                           "compare", type(node.ops[0]).__name__)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in NAME_SWAP
            ):
                yield Site(path, func.name, node.lineno, node.col_offset,
                           "minmax", node.func.id)


def mutate_source(source: str, site: Site) -> Optional[str]:
    """Re-parse, swap the node at the site, and unparse the mutated module."""
    tree = ast.parse(source)
    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if func.name != site.func:
            continue
        for node in ast.walk(func):
            if (getattr(node, "lineno", None), getattr(node, "col_offset", None)) != (
                site.lineno,
                site.col,
            ):
                continue
            # Nested expressions can share (lineno, col) — e.g. in
            # ``a * b / c`` the Div node starts at ``a`` too — so the op
            # kind must match the enumerated site, not just the position.
            if (
                site.node_kind == "binop"
                and isinstance(node, ast.BinOp)
                and type(node.op).__name__ == site.detail
            ):
                node.op = BINOP_SWAP[type(node.op)]()
                return ast.unparse(tree)
            if (
                site.node_kind == "compare"
                and isinstance(node, ast.Compare)
                and len(node.ops) == 1
                and type(node.ops[0]).__name__ == site.detail
            ):
                node.ops = [COMPARE_SWAP[type(node.ops[0])]()]
                return ast.unparse(tree)
            if site.node_kind == "minmax" and isinstance(node, ast.Call):
                node.func = ast.Name(id=NAME_SWAP[node.func.id], ctx=ast.Load())
                return ast.unparse(tree)
    return None


def run_tests(tests: List[str], timeout: float) -> str:
    """Returns 'killed', 'survived', or 'timeout' for the current tree."""
    try:
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", "-x", "-q", "--no-header", *tests],
            cwd=REPO,
            env={**dict(__import__("os").environ), "PYTHONPATH": str(REPO / "src")},
            capture_output=True,
            timeout=timeout,
        )
    except subprocess.TimeoutExpired:
        return "timeout"
    return "survived" if proc.returncode == 0 else "killed"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--max-mutants", type=int, default=14,
                        help="evenly-spaced sample of all enumerated sites")
    parser.add_argument("--time-budget", type=float, default=300.0,
                        help="stop (gracefully) after this many seconds")
    parser.add_argument("--per-mutant-timeout", type=float, default=None,
                        help="default: 2.5x the clean-run time (min 30s)")
    parser.add_argument("--tests", nargs="*", default=DEFAULT_TESTS)
    parser.add_argument("--list", action="store_true",
                        help="print every enumerated site and exit")
    args = parser.parse_args(argv)

    sites: List[Site] = []
    sources: Dict[str, str] = {}
    for rel, allow in TARGETS.items():
        source = (REPO / rel).read_text(encoding="utf-8")
        sources[rel] = source
        sites.extend(iter_sites(rel, ast.parse(source), allow))
    if args.list:
        for i, site in enumerate(sites):
            print(f"{i:4d}  {site.label()}")
        print(f"{len(sites)} sites total")
        return 0

    if args.max_mutants and args.max_mutants < len(sites):
        stride = len(sites) / args.max_mutants
        chosen = [sites[int(i * stride)] for i in range(args.max_mutants)]
    else:
        chosen = sites

    start = time.monotonic()
    print(f"sanity: running kill-set clean ({' '.join(args.tests)})")
    if run_tests(args.tests, args.time_budget) != "survived":
        print("FATAL: kill-set does not pass on the unmutated tree")
        return 2
    clean_time = time.monotonic() - start
    # A mutant that runs much longer than the clean suite has hung (e.g. an
    # unbounded search) — that *is* a behavioral detection, so cut it short.
    timeout = args.per_mutant_timeout or max(30.0, 2.5 * clean_time)
    print(f"clean run {clean_time:.0f}s; per-mutant timeout {timeout:.0f}s")

    survivors: List[Site] = []
    executed = 0
    for site in chosen:
        if time.monotonic() - start > args.time_budget:
            print(f"time budget exhausted after {executed}/{len(chosen)} mutants")
            break
        mutated = mutate_source(sources[site.path], site)
        if mutated is None:
            print(f"  skip (site vanished): {site.label()}")
            continue
        target = REPO / site.path
        try:
            target.write_text(mutated, encoding="utf-8")
            verdict = run_tests(args.tests, timeout)
        finally:
            target.write_text(sources[site.path], encoding="utf-8")
        executed += 1
        mark = {"killed": "✓ killed", "timeout": "✓ killed (hang)",
                "survived": "✗ SURVIVED"}[verdict]
        print(f"  {mark}: {site.label()}")
        if verdict == "survived":
            survivors.append(site)

    elapsed = time.monotonic() - start
    print(f"\n{executed} mutants in {elapsed:.0f}s: "
          f"{executed - len(survivors)} killed, {len(survivors)} survived")
    if survivors:
        print("surviving mutants (the certificate tests must be strengthened):")
        for site in survivors:
            print(f"  {site.label()}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
