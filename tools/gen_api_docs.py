"""Generate docs/API.md from the package's public surface.

Walks ``repro``'s subpackages, collects public names with their one-line
summaries (first docstring line), and writes a browsable index.  Run after
changing the public API:

    python tools/gen_api_docs.py
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

PACKAGES = [
    "repro.model",
    "repro.offline",
    "repro.offline.kernel",
    "repro.verify",
    "repro.online",
    "repro.core",
    "repro.core.adversary",
    "repro.generators",
    "repro.realtime",
    "repro.analysis",
    "repro.obs",
    "repro.runner",
    "repro.serve",
]


def _summary(obj) -> str:
    doc = inspect.getdoc(obj) or ""
    first = doc.split("\n", 1)[0].strip()
    return first


def _public_members(module):
    names = getattr(module, "__all__", None)
    if names is None:
        names = [n for n in vars(module) if not n.startswith("_")]
    for name in names:
        obj = getattr(module, name, None)
        if obj is None or inspect.ismodule(obj):
            continue
        yield name, obj


#: Hand-maintained tail: the CLI surface is not importable API, so it is
#: kept here and appended verbatim on every regeneration.
CLI_SECTION = [
    "## Command line (`python -m repro.cli`)",
    "",
    "| Command | Summary |",
    "|---|---|",
    "| `repro verify INSTANCE.json` | Certified optimum: prints the optimum"
    " with its feasible/infeasible witness pair, re-checked by exact"
    " arithmetic. |",
    "| `repro opt INSTANCE.json [--backend auto\\|dinic\\|dinic_np\\|dinic_c"
    "\\|networkx]` | Exact migratory/non-migratory optima; `auto` (default)"
    " picks the fastest available Dinic kernel, compiling the native one on"
    " first use. |",
    "| `repro verify INSTANCE.json --m M [--speed S] [--backend B]` |"
    " Certificate for the verdict at a fixed machine count;"
    " `-o CERT.json` archives it. |",
    "| `repro verify INSTANCE.json --schedule SCHED.json [--m M]` |"
    " Re-verify an archived schedule (optionally against a machine bound). |",
    "| `repro verify INSTANCE.json --differential` | Cross-examine the dinic,"
    " networkx, and LP answers on the same probes; exit 1 on any"
    " certified disagreement. |",
    "| `repro stats INSTANCE.json [--policy P] [--json]` | One-shot"
    " observability report: certified optimum plus the counter/gauge/span"
    " table and per-histogram p50/p90/p99/max latency columns captured"
    " while computing it (and simulating `P`, if given); reports the"
    " resolved backend and, for `dinic_c`, the kernel build-cache"
    " hit/compiler/path. |",
    "| `repro stats INSTANCE.json --prom` | The same run rendered in"
    " Prometheus text exposition format: counters, numeric gauges,"
    " histograms with cumulative `le` buckets, and span totals. |",
    "| `repro trace RUN.jsonl [--top N] [--folded OUT] [--json]` | Post-hoc"
    " analysis of a `--trace` file: span-tree hotspot table (self vs."
    " cumulative time) and folded stacks for flamegraph.pl/speedscope. |",
    "| `repro trace diff BEFORE.jsonl AFTER.jsonl` | Per-span-path"
    " self/cumulative/count deltas between two traces, biggest movers"
    " first. |",
    "| `repro profile INSTANCE.json --json` | Machine-readable load profile:"
    " peak density, certified lower bound, and the winning grid window. |",
    "| `repro sweep ratio\\|differential\\|corpus [--workers K]"
    " [--journal OUT.jsonl] [--resume] [--retries K] [--item-timeout SEC]"
    " [--chaos SPEC]` | Parallel sweep with crash-only durability: journal"
    " every completed item, resume a killed run from the journal, retry"
    " transient failures, deadline each item, or inject deterministic"
    " faults (`sigkill:2,transient:4@1`) for chaos testing. |",
    "| `repro sweep … --shard K/N --journal shardK.jsonl` | Run only the"
    " deterministic, group-preserving shard K of N for multi-host fan-out;"
    " the journal header carries the parent-plan fingerprint and the shard"
    " identity, and per-shard `--resume`/`--chaos` work unchanged. |",
    "| `repro sweep merge shard0.jsonl shard1.jsonl …` | Fold the N shard"
    " journals into the canonical report, byte-identical to the unsharded"
    " run; duplicate/missing/overlapping shards, foreign fingerprints, torn"
    " tails, and unsettled items are refused with precise errors. |",
    "| `repro sweep … --progress` | Live single-line stderr ticker while"
    " the sweep runs: done/total, per-status counts, throughput, ETA. |",
    "| `repro sweep … --prom OUT.prom` | Also write the merged snapshot in"
    " Prometheus exposition format (works for runs and `sweep merge`). |",
    "| `repro sweep status JOURNAL.jsonl [--json]` | Progress of a"
    " journaled sweep from the durable file alone — settled/remaining"
    " counts, retries, torn tails, throughput, ETA; exit 0 iff complete. |",
    "| `repro <any subcommand> --trace OUT.jsonl` | Stream every span,"
    " counter, gauge, and event of the run to a JSONL trace file. |",
    "",
]


def generate() -> str:
    lines = [
        "# API — public surface index",
        "",
        "Generated by `python tools/gen_api_docs.py`; one line per public "
        "name, grouped by subpackage.  See module docstrings for details.",
        "",
    ]
    for package_name in PACKAGES:
        module = importlib.import_module(package_name)
        lines.append(f"## `{package_name}`")
        lines.append("")
        pkg_doc = _summary(module)
        if pkg_doc:
            lines.append(pkg_doc)
            lines.append("")
        lines.append("| Name | Kind | Summary |")
        lines.append("|---|---|---|")
        for name, obj in sorted(_public_members(module)):
            if inspect.isclass(obj):
                kind = "class"
            elif callable(obj):
                kind = "function"
            else:
                kind = "constant"
            summary = _summary(obj) if kind != "constant" else ""
            summary = summary.replace("|", "\\|")
            lines.append(f"| `{name}` | {kind} | {summary} |")
        lines.append("")
    lines.extend(CLI_SECTION)
    return "\n".join(lines)


def main() -> None:
    out = ROOT / "docs" / "API.md"
    out.write_text(generate(), encoding="utf-8")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
