"""Tests for bootstrap statistics."""

import numpy as np
import pytest

from repro.analysis.stats import bootstrap_ci, max_ci, mean_ci


class TestBootstrap:
    def test_point_estimate(self):
        point, lo, hi = mean_ci([1.0, 2.0, 3.0], seed=1)
        assert point == pytest.approx(2.0)
        assert lo <= point <= hi

    def test_single_sample_degenerate(self):
        assert mean_ci([5.0]) == (5.0, 5.0, 5.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])

    def test_max_statistic(self):
        point, lo, hi = max_ci([1.0, 4.0, 2.0], seed=2)
        assert point == 4.0
        assert hi <= 4.0 + 1e-12

    def test_ci_narrows_with_more_data(self):
        rng = np.random.default_rng(3)
        small = rng.normal(0, 1, 10)
        large = rng.normal(0, 1, 1000)
        _, lo_s, hi_s = mean_ci(small, seed=4)
        _, lo_l, hi_l = mean_ci(large, seed=4)
        assert (hi_l - lo_l) < (hi_s - lo_s)

    def test_deterministic_by_seed(self):
        data = [1.0, 2.0, 5.0, 3.0]
        assert mean_ci(data, seed=7) == mean_ci(data, seed=7)

    def test_confidence_widens(self):
        data = list(np.random.default_rng(5).normal(0, 1, 50))
        _, lo90, hi90 = mean_ci(data, confidence=0.90, seed=6)
        _, lo99, hi99 = mean_ci(data, confidence=0.99, seed=6)
        assert (hi99 - lo99) >= (hi90 - lo90)
