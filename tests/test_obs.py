"""Tests for the observability layer (`repro.obs`).

Covers the contract pinned by ISSUE 3:

* span nesting and exception safety (paths compose, errors propagate and
  are recorded, the contextvar stack always unwinds),
* the no-sink fast path (shared no-op span, counters untouched, later
  captures start clean) and counter atomicity under threads,
* JSONL sink round-trip (every record is valid JSON and re-aggregates to
  the registry's numbers),
* exact Dinic/search/cache counter values on two corpus instances, so an
  algorithmic regression in the feasibility core shows up as a counter
  diff even when verdicts stay correct,
* CacheStats surfaced on certificates and certified optima (satellite).
"""

import contextvars
import json
import threading
from fractions import Fraction

import pytest

from repro import obs
from repro.model import Instance, Job
from repro.model.io import load
from repro.obs import core as obs_core
from repro.offline.feascache import CacheStats, cache_for
from repro.offline.optimum import migratory_optimum
from repro.verify import certificate_from_dict, certified_optimum, certify

CORPUS = "tests/data/corpus"


@pytest.fixture(autouse=True)
def _no_leftover_sinks():
    """Every test starts and ends with observability disabled."""
    assert not obs.enabled()
    yield
    assert not obs.enabled()


class TestSpans:
    def test_nesting_builds_hierarchical_paths(self):
        with obs.capture() as reg:
            with obs.span("outer"):
                with obs.span("inner"):
                    assert obs.span_path() == ("outer", "inner")
                with obs.span("inner"):
                    pass
        snap = reg.snapshot()
        assert set(snap["spans"]) == {"outer", "outer/inner"}
        assert snap["spans"]["outer/inner"]["count"] == 2
        # A parent's wall time includes its children's.
        assert (snap["spans"]["outer"]["total_ns"]
                >= snap["spans"]["outer/inner"]["total_ns"])

    def test_exception_propagates_and_is_recorded(self):
        with obs.capture() as reg:
            with pytest.raises(ValueError):
                with obs.span("will_fail"):
                    raise ValueError("boom")
            # The stack unwound: new spans are top-level again.
            assert obs.span_path() == ()
            with obs.span("after"):
                pass
        snap = reg.snapshot()
        assert snap["spans"]["will_fail"]["errors"] == 1
        assert "after" in snap["spans"]  # not "will_fail/after"

    def test_span_attrs_reach_sinks(self):
        events = []

        class Probe(obs.Sink):
            def on_span(self, path, duration_ns, attrs, error):
                events.append((path, attrs, error))

        sink = obs.attach(Probe())
        try:
            with obs.span("s", m=3, speed="1/2"):
                pass
        finally:
            obs.detach(sink)
        assert events == [("s", {"m": 3, "speed": "1/2"}, None)]


class TestNoSinkFastPath:
    def test_disabled_by_default_and_span_is_shared_noop(self):
        assert not obs.enabled()
        a, b = obs.span("x", key=1), obs.span("y")
        assert a is b is obs_core._NOOP_SPAN

    def test_unobserved_increments_are_dropped(self):
        obs.incr("lost.counter", 41)
        obs.gauge("lost.gauge", 1)
        obs.event("lost.event")
        with obs.capture() as reg:
            obs.incr("kept.counter")
        snap = reg.snapshot()
        assert snap["counters"] == {"kept.counter": 1}
        assert snap["gauges"] == {} and snap["events"] == {}

    def test_counter_atomicity_under_threads(self):
        # Captures are context-local, and a fresh Thread starts with an
        # empty context — a thread that should report into an enclosing
        # capture must carry the opener's context across explicitly.
        with obs.capture() as reg:
            ctx = contextvars.copy_context()

            def worker():
                for _ in range(10_000):
                    obs.incr("threads.counter")

            threads = [
                threading.Thread(target=ctx.copy().run, args=(worker,))
                for _ in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert reg.counters["threads.counter"] == 80_000

    def test_captures_are_context_local_across_threads(self):
        # Two threads capturing concurrently must not see each other's
        # emissions — the serve daemon leans on this to run request
        # captures and a sweep executor in one process.
        registries = {}
        barrier = threading.Barrier(2)

        def worker(name):
            with obs.capture() as reg:
                barrier.wait()  # both captures provably open at once
                obs.incr(f"{name}.counter")
                obs.event(f"{name}.event")
                barrier.wait()
            registries[name] = reg.snapshot()

        threads = [
            threading.Thread(target=worker, args=(n,)) for n in ("a", "b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registries["a"]["counters"] == {"a.counter": 1}
        assert registries["b"]["counters"] == {"b.counter": 1}
        assert registries["a"]["events"] == {"a.event": 1}
        assert registries["b"]["events"] == {"b.event": 1}

    def test_global_attach_sees_every_thread(self):
        # attach() stays global: a --trace sink or the serve daemon's
        # service registry aggregates across all request threads.
        from repro.obs.sinks import Registry

        sink = obs.attach(Registry())
        try:
            threads = [
                threading.Thread(target=obs.incr, args=("global.counter",))
                for _ in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            obs.detach(sink)
        assert sink.counters["global.counter"] == 4


class TestJsonlSink:
    def test_round_trip_matches_registry(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with obs.capture(obs.JsonlSink(str(path))) as reg:
            with obs.span("top", speed=Fraction(1, 2)):
                obs.incr("a.counter", 2)
                obs.incr("a.counter", 3)
                obs.gauge("a.gauge", Fraction(7, 3))
                obs.event("a.event", detail="x")
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records, "trace file must not be empty"
        by_type = {}
        for rec in records:
            by_type.setdefault(rec["type"], []).append(rec)
        counted = sum(r["value"] for r in by_type["counter"]
                      if r["name"] == "a.counter")
        assert counted == reg.counters["a.counter"] == 5
        (gauge_rec,) = by_type["gauge"]
        assert gauge_rec["value"] == "7/3"  # Fractions survive as strings
        (span_rec,) = by_type["span"]
        assert span_rec["path"] == "top" and span_rec["ns"] >= 0
        assert span_rec["attrs"] == {"speed": "1/2"}
        (event_rec,) = by_type["event"]
        assert event_rec["span"] == "top" and event_rec["attrs"] == {"detail": "x"}
        assert all("t" in r for r in records)

    def test_error_spans_marked(self, tmp_path):
        path = tmp_path / "err.jsonl"
        sink = obs.attach(obs.JsonlSink(str(path)))
        try:
            with pytest.raises(RuntimeError):
                with obs.span("bad"):
                    raise RuntimeError
        finally:
            obs.detach(sink)
            sink.close()
        (rec,) = [json.loads(l) for l in path.read_text().splitlines()]
        assert rec["error"] == "RuntimeError"


class TestCounterRegression:
    """Exact counters on corpus instances: algorithmic drift = counter diff."""

    def optimum_counters(self, name):
        inst = load(f"{CORPUS}/{name}.json")
        with obs.capture() as reg:
            m = migratory_optimum(inst)
        return m, reg.snapshot()

    def test_mcnaughton3(self):
        # The EDF greedy blocking pass routes the whole demand at both
        # probes (the m = 2 probe drains from 3 and re-places in one pass),
        # so no dinic.* phase counters appear: Dinic never runs.
        m, snap = self.optimum_counters("mcnaughton3")
        assert m == 2
        assert snap["counters"] == {
            "cache.network_builds": 1,
            "cache.probes": 2,
            "dinic.greedy_pushed": 6,
            "network.edges": 7,
            "network.intervals_dropped": 0,
            "network.intervals_merged": 0,
            "network.nodes": 6,
            "search.probes": 2,
        }
        assert snap["gauges"] == {
            "network.intervals_elementary": 1,
            "network.intervals_kept": 1,
            "search.lower_bound_start": 2,
            "search.optimum": 2,
            "search.upper_bound_start": 3,
        }

    def test_overload_six(self):
        m, snap = self.optimum_counters("overload_six")
        assert m == 6
        assert snap["counters"] == {
            "cache.network_builds": 1,
            "cache.probes": 1,
            "dinic.greedy_pushed": 13,
            "network.edges": 16,
            "network.intervals_dropped": 0,
            "network.intervals_merged": 0,
            "network.nodes": 11,
            "search.probes": 1,
        }
        assert snap["gauges"]["search.lower_bound_start"] == 6

    def test_layers_covered_by_certified_optimum(self):
        """≥ 10 distinct counters spanning dinic, cache, search, verify."""
        inst = load(f"{CORPUS}/uniform_seed3.json")
        with obs.capture() as reg:
            certified_optimum(inst)
        names = set(reg.counters)
        assert len(names) >= 10
        for layer in ("dinic.", "cache.", "search.", "verify."):
            assert any(n.startswith(layer) for n in names), layer


class TestCacheStatsSurfaced:
    """Satellite: certify/certified_optimum carry the CacheStats snapshot."""

    def test_certify_carries_snapshot(self, mcnaughton_instance):
        cert = certify(mcnaughton_instance, 2)
        stats = cert.cache_stats
        assert isinstance(stats, CacheStats)
        assert stats.probes >= 1 and stats.network_builds == 1
        # It is a snapshot, not the live object: later probes don't mutate it.
        live = cache_for(mcnaughton_instance).stats
        assert stats is not live
        before = stats.probes
        certify(mcnaughton_instance, 3)
        assert stats.probes == before

    def test_certified_optimum_totals(self, mcnaughton_instance):
        co = certified_optimum(mcnaughton_instance)
        assert co.machines == 2
        assert isinstance(co.cache_stats, CacheStats)
        # The carried totals equal the live cache's counters at return time.
        assert co.cache_stats == cache_for(mcnaughton_instance).stats
        assert co.feasible.cache_stats is not None
        assert co.infeasible.cache_stats is not None

    def test_networkx_backend_has_no_cache_stats(self, mcnaughton_instance):
        cert = certify(mcnaughton_instance, 2, backend="networkx")
        assert cert.cache_stats is None

    def test_round_trip_preserves_stats(self, mcnaughton_instance):
        cert = certify(mcnaughton_instance, 2)
        clone = certificate_from_dict(json.loads(json.dumps(cert.to_dict())))
        assert clone.cache_stats == cert.cache_stats

    def test_infeasible_cert_carries_snapshot(self):
        inst = Instance([Job(0, 2, 2, id=i) for i in range(3)])
        cert = certify(inst, 2)
        assert cert.kind == "infeasible"
        assert cert.cache_stats is not None
        assert cert.cache_stats.probes >= 1
