"""Robustness of the Lemma 2 adversary across arbitrary policies.

Theorem 3 quantifies over *every* deterministic non-migratory algorithm.
We cannot test all of them, but we can probe far beyond the greedy family:
seeded-random commitment policies are deterministic once seeded, and the
adversary must force k machines (or an outright miss) out of each one.
"""

import pytest

from repro.core.adversary.migration_gap import (
    AdversaryOutcome,
    MigrationGapAdversary,
)
from repro.online.nonmigratory import SeededRandomFit


class TestRandomPolicies:
    @pytest.mark.parametrize("seed", range(10))
    def test_forces_k_machines_or_miss(self, seed):
        k = 5
        adv = MigrationGapAdversary(SeededRandomFit(seed), machines=k + 3)
        try:
            res = adv.run(k)
        except AdversaryOutcome:
            return  # the policy missed a deadline: the adversary wins outright
        assert res.machines_forced == k

    @pytest.mark.parametrize("seed", range(5))
    def test_witness_still_three_machines(self, seed):
        adv = MigrationGapAdversary(SeededRandomFit(seed), machines=8)
        try:
            res = adv.run(4)
        except AdversaryOutcome:
            return
        rep = res.offline_witness().verify(res.instance)
        assert rep.feasible and rep.machines_used <= 3

    def test_random_policy_is_deterministic_per_seed(self):
        runs = []
        for _ in range(2):
            adv = MigrationGapAdversary(SeededRandomFit(7), machines=8)
            res = adv.run(4)
            runs.append((res.n_jobs, res.critical_machines))
        assert runs[0] == runs[1]

    @pytest.mark.parametrize("seed", range(3))
    def test_deeper_recursion(self, seed):
        k = 7
        adv = MigrationGapAdversary(SeededRandomFit(seed), machines=k + 4)
        try:
            res = adv.run(k)
        except AdversaryOutcome:
            return
        assert res.machines_forced == k
        assert res.n_jobs <= 2**k * 4


class TestDeferredCommitment:
    """The paper's a_j argument: even a policy that binds jobs only at
    their latest start time cannot escape the adversary."""

    def test_deferred_policy_schedules_normal_instances(self):
        from repro.generators import uniform_random_instance
        from repro.online.engine import min_machines, simulate
        from repro.online.nonmigratory import DeferredEDF

        inst = uniform_random_instance(20, seed=1)
        k = min_machines(lambda n: DeferredEDF(), inst)
        eng = simulate(DeferredEDF(), inst, machines=k)
        rep = eng.schedule().verify(inst)
        assert rep.feasible and rep.is_non_migratory

    @pytest.mark.parametrize("k", [2, 3, 4, 5])
    def test_adversary_beats_deferred_policy(self, k):
        from repro.online.nonmigratory import DeferredEDF

        adv = MigrationGapAdversary(DeferredEDF(), machines=k + 3)
        try:
            res = adv.run(k)
        except AdversaryOutcome:
            return  # outright failure: the adversary wins even harder
        assert res.machines_forced == k
        assert res.offline_witness().verify(res.instance).feasible

    def test_poll_selection_binds_without_advancing(self):
        from fractions import Fraction

        from repro.model import Instance, Job
        from repro.online.engine import OnlineEngine
        from repro.online.nonmigratory import DeferredEDF

        eng = OnlineEngine(DeferredEDF(), machines=2)
        eng.release([Job(0, 1, 2, id=0)])  # a_j = 1
        eng.run_until(1)
        before = eng.time
        eng.poll_selection()
        assert eng.time == before
        assert eng.committed_machine(0) is not None


class TestDoublingWrapperTarget:
    """Theorem 3 applies even to policies that open machines adaptively:
    the guess-and-double wrapper is still forced to k distinct machines."""

    @pytest.mark.parametrize("k", [3, 4, 5, 6])
    def test_adversary_beats_doubling(self, k):
        from repro.online.doubling import DoublingPolicy

        adv = MigrationGapAdversary(DoublingPolicy(), machines=1)
        res = adv.run(k)
        assert res.machines_forced == k
        assert res.offline_witness().verify(res.instance).feasible

    def test_doubling_opens_few_machines_on_adversary(self):
        """The wrapper's phase total stays geometric even under attack."""
        from repro.online.doubling import DoublingPolicy

        adv = MigrationGapAdversary(DoublingPolicy(), machines=1)
        res = adv.run(6)
        assert adv.policy.total_machines_opened <= 2 ** 6
