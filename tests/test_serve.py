"""Tests for the serve layer (ISSUE 10) — in-process, socketless.

Everything here drives :class:`~repro.serve.app.ServeApp` through the
:class:`~repro.serve.testclient.TestClient`, so bodies are byte-identical
to what the HTTP daemon would send, without sockets or timing flakiness.
The subprocess/SIGKILL side lives in ``test_serve_chaos.py``.

Covers:

* routing: the full route table, 404/405 + ``Allow``, path captures,
* hardening: invalid JSON, wrong shapes, malformed instances, oversized
  bodies — each a typed 4xx, nothing half-processed,
* certify/optimum correctness against the library (sandwich certificates,
  ``Unsatisfiable`` → a 200 with the infeasibility witness),
* cold-vs-warm byte-identity (no ``cache_stats`` ever leaks),
* per-request deadlines → fast 503 + ``Retry-After``,
* backpressure: bounded queue → 429, ``/readyz`` flips while ``/healthz``
  stays 200, draining → 503,
* durable sweep endpoints: 202/200 idempotency, journal-backed progress,
  finished reports canonically equal to an offline ``run_sweep``,
* concurrent-client determinism (satellite 3): N threads, per-request
  bodies identical to serial, metrics counters exactly the expected sums,
* the tenant cache pool's LRU/isolation bounds,
* the journal's directory-fsync durability upgrade (satellite 2),
* the drain state machine (SERVING → DRAINING → STOPPED, never backwards).
"""

import json
import os
import stat
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.model import Instance, Job
from repro.model.io import instance_to_dict
from repro.obs.sinks import Registry, jsonable
from repro.runner import Journal, canonical_report_view, run_sweep
from repro.serve import (
    BadRequest,
    ServeApp,
    ServiceUnavailable,
    SweepQueue,
    TenantCachePool,
    TestClient,
    TooManyRequests,
    normalize_spec,
    plan_from_spec,
)
from repro.serve.app import ROUTES
from repro.serve.queue import DRAINING, SERVING, STOPPED

#: 3 jobs, p=2, window [0,3): migratory OPT 2 — feasible at m=2, not m=1.
MCNAUGHTON = Instance([Job(0, 2, 3, id=i) for i in range(3)])

#: A tiny 2-item ratio sweep; the id is a pure function of the spec.
RATIO_SPEC = {
    "kind": "ratio",
    "policies": ["edf"],
    "families": ["uniform"],
    "n": 4,
    "seeds": 2,
}


def payload_for(instance, **extra):
    body = {"instance": instance_to_dict(instance)}
    body.update(extra)
    return body


def make_app(tmp_path=None, *, start=False, **kwargs):
    """App (+ optional durable queue) for one test; queue unstarted unless asked."""
    queue = None
    if tmp_path is not None:
        queue = SweepQueue(
            str(tmp_path / "serve-journal"),
            max_queue=kwargs.pop("max_queue", 8),
        )
        if start:
            queue.start()
    return ServeApp(queue, **kwargs)


def poll_done(client, sweep_id, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = client.get(f"/v1/sweeps/{sweep_id}").json()
        if status["state"] in ("done", "failed", "stalled"):
            return status
        time.sleep(0.02)
    raise AssertionError(f"sweep {sweep_id} did not settle in {timeout}s")


def offline_canonical(spec):
    """The canonical view of a clean offline run of ``spec``.

    Round-trips through JSON because the daemon's reports live on disk as
    ``jsonable`` snapshots — the comparison must not be confused by
    Fraction-vs-string representation differences.
    """
    report = run_sweep(plan_from_spec(normalize_spec(spec)))
    return canonical_report_view(json.loads(json.dumps(jsonable(report.snapshot()))))


class TestRouting:
    """Route resolution — the mutation-smoke kill-set for dispatch/_match."""

    def test_every_route_resolves(self):
        app = make_app()
        for method, pattern, name in ROUTES:
            path = pattern.replace("{id}", "abc123")
            resolved, params = app.dispatch(method, path)
            assert resolved == name
            if "{id}" in pattern:
                assert params == {"id": "abc123"}
            else:
                assert params == {}

    def test_unknown_path_is_404(self):
        client = TestClient(make_app())
        for path in ("/", "/v2/certify", "/v1/sweeps/a/b", "/healthz/x"):
            resp = client.get(path)
            assert resp.status == 404
            assert resp.json()["error"]["code"] == "not_found"

    def test_trailing_slash_not_forgiven(self):
        client = TestClient(make_app())
        assert client.post("/v1/certify/", json={}).status == 404
        # "/v1/sweeps/" would need an empty {id} capture — refused.
        assert client.get("/v1/sweeps/").status == 404

    def test_wrong_method_is_405_with_allow(self):
        client = TestClient(make_app())
        resp = client.post("/healthz")
        assert resp.status == 405
        assert resp.headers["Allow"] == "GET"
        assert resp.json()["error"]["code"] == "method_not_allowed"
        resp = client.get("/v1/certify")
        assert resp.status == 405
        assert resp.headers["Allow"] == "POST"

    def test_sweep_id_capture_routes_by_method(self):
        client = TestClient(make_app())
        # GET on a captured id resolves (404 only because the id is unknown
        # and there is no queue — not a routing 404 on the path).
        resp = client.request("DELETE", "/v1/sweeps/deadbeef")
        assert resp.status == 405
        assert resp.headers["Allow"] == "GET"


class TestHardening:
    def test_invalid_json_body_is_400(self):
        client = TestClient(make_app())
        for raw in (b"{", b"\xff\xfe", b"[1, 2]", b'"text"', b""):
            resp = client.post("/v1/certify", data=raw)
            assert resp.status == 400, raw
            assert resp.json()["error"]["code"] == "bad_request"

    def test_malformed_instance_is_typed_400(self):
        client = TestClient(make_app())
        resp = client.post("/v1/certify", json={"instance": {"jobs": [{}]}, "m": 1})
        assert resp.status == 400
        # The InstanceFormatError message names where the defect is.
        assert "request.instance" in resp.json()["error"]["message"]

    @pytest.mark.parametrize(
        "mutation",
        [
            {"m": None},
            {"m": "2"},
            {"m": True},
            {"m": -1},
            {"m": 10**6 + 1},
            {"tenant": ""},
            {"tenant": "a" * 65},
            {"tenant": "no spaces"},
            {"tenant": 7},
            {"speed": "0"},
            {"speed": "-1/2"},
            {"speed": "fast"},
            {"speed": "1/0"},
            {"backend": "simplex"},
            {"instance": None},
            {"instance": []},
        ],
    )
    def test_bad_field_is_400(self, mutation):
        client = TestClient(make_app())
        body = payload_for(MCNAUGHTON, m=2)
        body.update(mutation)
        resp = client.post("/v1/certify", json=body)
        assert resp.status == 400
        assert resp.json()["error"]["code"] == "bad_request"

    def test_oversized_body_is_413(self):
        client = TestClient(make_app(max_body=256))
        resp = client.post("/v1/certify", data=b"x" * 257)
        assert resp.status == 413
        assert resp.json()["error"]["code"] == "payload_too_large"

    def test_handler_crash_is_500_without_traceback(self):
        app = make_app()
        app._do_healthz = lambda: 1 / 0
        resp = TestClient(app).get("/healthz")
        assert resp.status == 500
        error = resp.json()["error"]
        assert error["code"] == "internal"
        assert "Traceback" not in resp.text


class TestComputeEndpoints:
    def test_certify_feasible_and_infeasible(self):
        client = TestClient(make_app())
        feasible = client.post("/v1/certify", json=payload_for(MCNAUGHTON, m=2))
        assert feasible.status == 200
        assert feasible.json()["kind"] == "feasible"
        infeasible = client.post("/v1/certify", json=payload_for(MCNAUGHTON, m=1))
        assert infeasible.status == 200
        assert infeasible.json()["kind"] == "infeasible"

    def test_certify_speed_and_backend_accepted(self):
        client = TestClient(make_app())
        resp = client.post(
            "/v1/certify",
            json=payload_for(MCNAUGHTON, m=1, speed="2", backend="dinic"),
        )
        assert resp.status == 200
        assert resp.json()["kind"] == "feasible"

    def test_optimum_sandwich(self):
        client = TestClient(make_app())
        resp = client.post("/v1/optimum", json=payload_for(MCNAUGHTON))
        assert resp.status == 200
        body = resp.json()
        assert body["satisfiable"] is True
        assert body["optimum"] == 2
        assert body["feasible"]["kind"] == "feasible"
        assert body["infeasible"]["kind"] == "infeasible"

    def test_optimum_unsatisfiable_is_200_with_witness(self):
        # p=2 at speed 1/2 needs 4 time units in a [0,3) window: no machine
        # count helps, so the honest answer is a 200 saying "unsatisfiable"
        # with the single-job witness — not an error.
        client = TestClient(make_app())
        resp = client.post("/v1/optimum", json=payload_for(MCNAUGHTON, speed="1/2"))
        assert resp.status == 200
        body = resp.json()
        assert body["satisfiable"] is False
        assert body["infeasible"]["kind"] == "infeasible"

    def test_cold_and_warm_responses_are_byte_identical(self):
        client = TestClient(make_app())
        body = payload_for(MCNAUGHTON, m=2)
        first = client.post("/v1/certify", json=body)
        second = client.post("/v1/certify", json=body)
        assert first.body == second.body
        assert "cache_stats" not in first.json()
        opt1 = client.post("/v1/optimum", json=payload_for(MCNAUGHTON))
        opt2 = client.post("/v1/optimum", json=payload_for(MCNAUGHTON))
        assert opt1.body == opt2.body
        for cert in ("feasible", "infeasible"):
            assert "cache_stats" not in opt1.json()[cert]


class TestDeadline:
    def test_slow_compute_gets_fast_503(self):
        app = make_app(request_timeout=0.05)

        def slow(body):  # replaces the certify handler for this app only
            time.sleep(0.75)

        app._do_certify = slow
        start = time.monotonic()
        resp = TestClient(app).post("/v1/certify", json={})
        elapsed = time.monotonic() - start
        assert resp.status == 503
        assert resp.json()["error"]["code"] == "deadline_exceeded"
        assert int(resp.headers["Retry-After"]) >= 1
        # The 503 must arrive within the deadline (plus slack), not after
        # the stuck computation: that is the whole point.
        assert elapsed < 0.5
        assert app.registry.counters["serve.deadline_exceeded.certify"] == 1
        app.close()

    def test_fast_compute_unaffected_by_deadline(self):
        app = make_app(request_timeout=5.0)
        resp = TestClient(app).post("/v1/certify", json=payload_for(MCNAUGHTON, m=2))
        assert resp.status == 200
        app.close()


class TestBackpressure:
    def test_full_queue_is_429_and_readyz_flips(self, tmp_path):
        # Queue deliberately NOT started: submissions pile up durably.
        app = make_app(tmp_path, max_queue=2)
        client = TestClient(app)
        assert client.get("/readyz").status == 200
        spec = dict(RATIO_SPEC)
        assert client.post("/v1/sweeps", json=spec).status == 202
        spec2 = dict(RATIO_SPEC, root_seed=1)
        assert client.post("/v1/sweeps", json=spec2).status == 202

        ready = client.get("/readyz")
        assert ready.status == 503
        assert ready.json() == {
            "ready": False, "draining": False,
            "queue_depth": 2, "queue_capacity": 2,
        }
        assert client.get("/healthz").status == 200  # alive, just loaded

        spec3 = dict(RATIO_SPEC, root_seed=2)
        resp = client.post("/v1/sweeps", json=spec3)
        assert resp.status == 429
        assert resp.json()["error"]["code"] == "too_many_requests"
        assert int(resp.headers["Retry-After"]) >= 1
        # The refused spec was never acknowledged — nothing durable exists
        # beyond the two accepted ones.
        specs = [
            f for f in os.listdir(app.queue.journal_dir)
            if f.endswith(".spec.json")
        ]
        assert len(specs) == 2

    def test_resubmitting_known_spec_bypasses_backpressure(self, tmp_path):
        app = make_app(tmp_path, max_queue=1)
        client = TestClient(app)
        assert client.post("/v1/sweeps", json=dict(RATIO_SPEC)).status == 202
        # Same spec again: idempotent 200, even though the queue is full.
        resp = client.post("/v1/sweeps", json=dict(RATIO_SPEC))
        assert resp.status == 200
        assert resp.json()["state"] == "accepted"

    def test_app_drain_refuses_submits_and_readyz(self, tmp_path):
        app = make_app(tmp_path)
        client = TestClient(app)
        app.begin_drain()
        resp = client.post("/v1/sweeps", json=dict(RATIO_SPEC))
        assert resp.status == 503
        assert resp.json()["error"]["code"] == "unavailable"
        assert int(resp.headers["Retry-After"]) >= 1
        ready = client.get("/readyz")
        assert ready.status == 503
        assert ready.json()["draining"] is True
        assert client.get("/healthz").status == 200  # liveness survives drain

    def test_queue_drain_refuses_submits_too(self, tmp_path):
        # Even if the app somehow kept routing, the queue itself refuses.
        app = make_app(tmp_path)
        app.queue.begin_drain()
        resp = TestClient(app).post("/v1/sweeps", json=dict(RATIO_SPEC))
        assert resp.status == 503

    def test_no_queue_deployment_is_503(self):
        client = TestClient(make_app())
        assert client.post("/v1/sweeps", json=dict(RATIO_SPEC)).status == 503
        assert client.get("/v1/sweeps/deadbeef").status == 503


class TestSweepEndpoints:
    def test_submit_run_poll_report(self, tmp_path):
        app = make_app(tmp_path, start=True)
        client = TestClient(app)
        resp = client.post("/v1/sweeps", json=dict(RATIO_SPEC))
        assert resp.status == 202
        body = resp.json()
        assert body["state"] == "accepted"
        sweep_id = body["id"]

        status = poll_done(client, sweep_id)
        assert status["state"] == "done"
        view = canonical_report_view(status["report"])
        assert view == offline_canonical(RATIO_SPEC)

        # Idempotent resubmission of finished work: 200 "done", no re-run.
        again = client.post("/v1/sweeps", json=dict(RATIO_SPEC))
        assert again.status == 200
        assert again.json() == {"id": sweep_id, "state": "done"}
        app.queue.drain(10)
        app.close()

    def test_sweep_id_is_deterministic(self, tmp_path):
        app = make_app(tmp_path)
        client = TestClient(app)
        first = client.post("/v1/sweeps", json=dict(RATIO_SPEC)).json()["id"]
        # Defaulted fields change nothing: same normalized spec, same id.
        explicit = dict(RATIO_SPEC, workers=1, chunksize=1, retries=0)
        second = client.post("/v1/sweeps", json=explicit).json()["id"]
        assert first == second

    def test_status_unknown_and_hostile_ids_are_404(self, tmp_path):
        client = TestClient(make_app(tmp_path))
        assert client.get("/v1/sweeps/feedface00000000").status == 404
        # Traversal-shaped ids must not touch the filesystem.
        assert client.get("/v1/sweeps/..%2Fescape").status == 404
        assert client.get("/v1/sweeps/spec.json").status == 404

    @pytest.mark.parametrize(
        "spec",
        [
            {},
            {"kind": "marathon"},
            {"kind": "ratio"},  # missing policies/families
            dict(RATIO_SPEC, policies=["nonsense"]),
            dict(RATIO_SPEC, families=["klein-bottle"]),
            dict(RATIO_SPEC, n=0),
            dict(RATIO_SPEC, n=10**9),
            dict(RATIO_SPEC, seeds="3"),
            dict(RATIO_SPEC, workers=99),
            dict(RATIO_SPEC, retries=-1),
            dict(RATIO_SPEC, item_timeout=0),
            dict(RATIO_SPEC, item_timeout=1e9),
            dict(RATIO_SPEC, chaos="tsunami:0@1"),
            dict(RATIO_SPEC, surprise=1),
            {"kind": "differential", "families": ["uniform"], "speeds": ["0"]},
            {"kind": "corpus"},
            {"kind": "corpus", "dir": "/nonexistent"},
        ],
    )
    def test_invalid_specs_are_400_and_never_acknowledged(self, tmp_path, spec):
        app = make_app(tmp_path)
        resp = TestClient(app).post("/v1/sweeps", json=spec)
        assert resp.status == 400
        assert not os.listdir(app.queue.journal_dir)

    def test_progress_appears_in_status(self, tmp_path):
        app = make_app(tmp_path, start=True)
        client = TestClient(app)
        sweep_id = client.post("/v1/sweeps", json=dict(RATIO_SPEC)).json()["id"]
        status = poll_done(client, sweep_id)
        assert status["state"] == "done"
        # The journal outlives the run: a fresh (unstarted) queue over the
        # same directory serves the same durable answer.
        cold = SweepQueue(app.queue.journal_dir)
        again = cold.status(sweep_id)
        assert again["state"] == "done"
        assert canonical_report_view(again["report"]) == canonical_report_view(
            status["report"]
        )
        app.queue.drain(10)
        app.close()


class TestConcurrentDeterminism:
    """Satellite 3: N threads see byte-identical responses to a serial run."""

    N_THREADS = 8

    def _requests(self):
        instances = [
            Instance([Job(0, 2, 3, id=i) for i in range(3)]),
            Instance([Job(0, 1, 1, id=i) for i in range(3)]),
            Instance([Job(0, 2, 4, id=0), Job(0, 2, 4, id=1), Job(1, 2, 3, id=2)]),
        ]
        requests = []
        for instance in instances:
            for m in (1, 2, 3):
                # One tenant per request: a warm cache may legitimately
                # warm-start a probe from the tenant's *previous* request
                # (a different, equally valid schedule), so order-free
                # byte-identity needs each request in its own namespace.
                requests.append(
                    ("POST", "/v1/certify",
                     payload_for(instance, m=m, tenant=f"r{len(requests)}"))
                )
            requests.append(
                ("POST", "/v1/optimum",
                 payload_for(instance, tenant=f"r{len(requests)}"))
            )
        # Identical requests on one shared tenant ARE order-free (a cache
        # hit replays the stored verdict byte-for-byte) — these three race
        # for the same entry lock in the threaded run.
        for _ in range(3):
            requests.append(
                ("POST", "/v1/certify",
                 payload_for(instances[0], m=2, tenant="shared"))
            )
        # Distinct specs only: duplicate submits would race 202-vs-200.
        for seed in range(4):
            requests.append(
                ("POST", "/v1/sweeps", dict(RATIO_SPEC, root_seed=seed))
            )
        requests.append(("GET", "/healthz", None))
        requests.append(("GET", "/v1/sweeps/feedface00000000", None))
        return requests

    def _run(self, tmp_path, name, pool):
        app = make_app(tmp_path / name, max_queue=16)
        client = TestClient(app)
        requests = self._requests()

        def one(req):
            method, path, body = req
            resp = client.request(method, path, json=body)
            return resp.status, resp.body

        if pool is None:
            results = [one(r) for r in requests]
        else:
            results = list(pool.map(one, requests))
        return app, requests, results

    def test_threads_match_serial_and_metrics_add_up(self, tmp_path):
        _, requests, serial = self._run(tmp_path, "serial", None)
        with ThreadPoolExecutor(max_workers=self.N_THREADS) as pool:
            app, _, threaded = self._run(tmp_path, "threaded", pool)
        assert threaded == serial

        counters = app.registry.counters
        assert counters["serve.requests"] == len(requests)
        expected = {}
        for (method, path, _), (status, _) in zip(requests, serial):
            route, _params = app.dispatch(method, path)
            key = f"serve.requests.{route}.{status}"
            expected[key] = expected.get(key, 0) + 1
        for key, count in expected.items():
            assert counters[key] == count, key
        assert sum(expected.values()) == len(requests)
        # And the exposition page serves exactly those counts.
        metrics = TestClient(app).get("/metrics")
        assert metrics.status == 200
        # The exposition is rendered before the /metrics request itself is
        # counted, so the total is exactly the fixed request list's length.
        assert f"repro_serve_requests_total {len(requests)}" in metrics.text
        app.close()


class TestTenantCachePool:
    def test_hit_returns_same_object(self):
        pool = TenantCachePool()
        a1, lock1 = pool.get("a", Instance([Job(0, 2, 3, id=0)]))
        a2, lock2 = pool.get("a", Instance([Job(0, 2, 3, id=0)]))
        assert a1 is a2 and lock1 is lock2
        assert (pool.hits, pool.misses) == (1, 1)

    def test_tenants_are_isolated(self):
        pool = TenantCachePool(per_tenant=2)
        keep, _ = pool.get("b", Instance([Job(0, 2, 3, id=0)]))
        # Tenant a floods its own namespace...
        for r in range(5):
            pool.get("a", Instance([Job(r, 2, r + 3, id=0)]))
        assert pool.evictions == 3
        # ...but tenant b's warm entry survives.
        again, _ = pool.get("b", Instance([Job(0, 2, 3, id=0)]))
        assert again is keep

    def test_tenant_count_is_bounded(self):
        pool = TenantCachePool(per_tenant=4, max_tenants=2)
        pool.get("a", Instance([Job(0, 2, 3, id=0)]))
        pool.get("b", Instance([Job(0, 2, 3, id=0)]))
        pool.get("c", Instance([Job(0, 2, 3, id=0)]))
        assert pool.stats()["tenants"] == 2
        assert pool.evictions == 1

    def test_rejects_degenerate_bounds(self):
        with pytest.raises(ValueError):
            TenantCachePool(per_tenant=0)


class TestJournalDirFsync:
    """Satellite 2: the directory entry is made durable, not just the file."""

    def _spy(self, monkeypatch):
        import repro.runner.journal as journal_mod

        fsynced_dirs = []
        real_fsync = os.fsync

        def spy(fd):
            if stat.S_ISDIR(os.fstat(fd).st_mode):
                fsynced_dirs.append(fd)
            return real_fsync(fd)

        monkeypatch.setattr(journal_mod.os, "fsync", spy)
        return fsynced_dirs

    def test_create_fsyncs_parent_directory(self, tmp_path, monkeypatch):
        fsynced = self._spy(monkeypatch)
        journal = Journal.create(str(tmp_path / "j.jsonl"), "fp", 1)
        journal.close()
        assert fsynced, "Journal.create never fsynced the parent directory"

    def test_append_to_fsyncs_after_tail_trim(self, tmp_path, monkeypatch):
        path = str(tmp_path / "j.jsonl")
        journal = Journal.create(path, "fp", 2)
        journal.append_item(0, "t", "ok", 1, None, 1, {})
        journal.append_item(1, "t", "ok", 1, None, 1, {}, corrupt=True)
        journal.close()
        fsynced = self._spy(monkeypatch)
        resumed = Journal.append_to(path, "fp")
        resumed.close()
        assert fsynced, "append_to trimmed a torn tail without a dir fsync"


class TestDrainStateMachine:
    """SERVING → DRAINING → STOPPED, never backwards; also a kill-set target."""

    def test_transitions_and_idempotence(self, tmp_path):
        queue = SweepQueue(str(tmp_path))
        assert queue.lifecycle == SERVING
        queue.begin_drain()
        assert queue.lifecycle == DRAINING
        queue.begin_drain()  # idempotent
        assert queue.lifecycle == DRAINING
        assert queue.drain(5) is True
        assert queue.lifecycle == STOPPED
        queue.begin_drain()  # must not resurrect a stopped queue
        assert queue.lifecycle == STOPPED

    def test_submit_refused_while_not_serving(self, tmp_path):
        queue = SweepQueue(str(tmp_path))
        queue.begin_drain()
        with pytest.raises(ServiceUnavailable):
            queue.submit(dict(RATIO_SPEC))
        assert not os.listdir(str(tmp_path))  # refusal leaves no droppings

    def test_backpressure_is_exception_typed(self, tmp_path):
        queue = SweepQueue(str(tmp_path), max_queue=1)
        queue.submit(dict(RATIO_SPEC))
        with pytest.raises(TooManyRequests):
            queue.submit(dict(RATIO_SPEC, root_seed=1))

    def test_invalid_spec_is_bad_request(self, tmp_path):
        queue = SweepQueue(str(tmp_path))
        with pytest.raises(BadRequest):
            queue.submit({"kind": "ratio"})

    def test_started_queue_drains_to_stopped(self, tmp_path):
        queue = SweepQueue(str(tmp_path)).start()
        sweep_id, state, created = queue.submit(dict(RATIO_SPEC))
        assert (state, created) == ("accepted", True)
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if queue.status(sweep_id)["state"] == "done":
                break
            time.sleep(0.02)
        assert queue.status(sweep_id)["state"] == "done"
        assert queue.completed == 1
        assert queue.drain(10) is True
        assert queue.lifecycle == STOPPED
        with pytest.raises(ServiceUnavailable):
            queue.submit(dict(RATIO_SPEC, root_seed=7))

    def test_stalled_sweep_does_not_wedge_the_executor(self, tmp_path):
        # transient fault at attempt 1, no retries: the item quarantines as
        # "failed", the ladder is exhausted, the sweep parks as "stalled" —
        # and the executor moves on to the next sweep instead of hot-looping.
        queue = SweepQueue(str(tmp_path)).start()
        stalling = dict(RATIO_SPEC, chaos="transient:0@1")
        stalled_id, _, _ = queue.submit(stalling)
        healthy_id, _, _ = queue.submit(dict(RATIO_SPEC, root_seed=3))
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            states = (
                queue.status(stalled_id)["state"],
                queue.status(healthy_id)["state"],
            )
            if states == ("stalled", "done"):
                break
            time.sleep(0.02)
        assert states == ("stalled", "done")
        progress = queue.status(stalled_id)["progress"]
        assert progress["by_status"]["failed"] == 1
        assert progress["dropped"] == 0
        assert queue.drain(10) is True


def test_serial_and_threaded_apps_share_no_state(tmp_path):
    """Two apps over two directories never cross-talk through globals."""
    app_a = make_app(tmp_path / "a")
    app_b = make_app(tmp_path / "b")
    TestClient(app_a).post("/v1/sweeps", json=dict(RATIO_SPEC))
    assert os.listdir(app_a.queue.journal_dir)
    assert not os.listdir(app_b.queue.journal_dir)
    assert "serve.requests" not in app_b.registry.counters
