"""Tests for the parallel sweep runner (`repro.runner`).

Covers the contract pinned by ISSUE 4:

* seed splitting and grouping are process-stable (SHA-256, never the
  salted builtin ``hash``),
* chunking is group-preserving and a pure function of (plan, chunksize),
* ``run_sweep`` is bit-identical across worker counts — results, merged
  counters, and events — including a hypothesis sweep over random plans
  and ``n_jobs`` ∈ {1, 2, 4},
* failures are contained: task exceptions become ``"error"`` records, a
  SIGKILL-poisoned worker yields exactly one ``"crashed"`` record while
  its chunk-mates recover, and nothing is ever silently dropped,
* result streaming (ordered and as-completed) emits each item exactly once,
* the ``repro sweep`` CLI drives all three plan kinds.
"""

import json
import os
import signal

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.cli import main
from repro.model import Instance, Job
from repro.runner import (
    FAMILIES,
    InstanceSpec,
    SweepPlan,
    WorkItem,
    instance_key,
    register_task,
    run_sweep,
    split_seed,
)

CORPUS = "tests/data/corpus"


# ---------------------------------------------------------------------------
# plan construction


class TestSeedSplitting:
    def test_deterministic_and_distinct(self):
        seeds = [split_seed(0, i) for i in range(64)]
        assert seeds == [split_seed(0, i) for i in range(64)]
        assert len(set(seeds)) == 64
        assert all(0 <= s < 2**63 for s in seeds)

    def test_root_independence(self):
        assert split_seed(0, 0) != split_seed(1, 0)

    def test_known_value_is_platform_stable(self):
        # Pinned: a change here silently reshuffles every seeded sweep.
        assert split_seed(0, 0) == 6012404539614383444

    def test_instance_key_content_derived(self):
        a = Instance([Job(0, 1, 2, id=0)])
        b = Instance([Job(0, 1, 2, id=0)])
        c = Instance([Job(0, 1, 3, id=0)])
        assert instance_key(a) == instance_key(b) != instance_key(c)


class TestPlanModel:
    def test_spec_builds_family(self):
        spec = InstanceSpec("uniform", 5, split_seed(0, 0))
        inst = spec.build()
        assert len(inst) == 5
        assert inst == spec.build()  # rebuilding is deterministic

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown family"):
            InstanceSpec("nope", 5, 0)

    def test_item_needs_exactly_one_target(self):
        spec = InstanceSpec("uniform", 3, 0)
        inst = Instance([Job(0, 1, 2, id=0)])
        with pytest.raises(ValueError):
            WorkItem(0, "ratio_sample")
        with pytest.raises(ValueError):
            WorkItem(0, "ratio_sample", spec=spec, instance=inst)

    def test_plan_rejects_sparse_indexing(self):
        spec = InstanceSpec("uniform", 3, 0)
        items = (WorkItem(1, "min_machines", spec=spec, params=(("policy", "edf"),)),)
        with pytest.raises(ValueError, match="densely indexed"):
            SweepPlan(items)

    def test_competitive_groups_by_instance(self):
        plan = SweepPlan.competitive(["edf", "firstfit"], ["uniform"], n=5, seeds=3)
        assert len(plan) == 6
        groups = [item.group for item in plan]
        # policies of one (family, seed) sit adjacent, sharing a group
        assert groups[0] == groups[1] != groups[2]
        assert len(set(groups)) == 3

    def test_corpus_plan_covers_expectations(self):
        plan = SweepPlan.corpus(CORPUS)
        with open(os.path.join(CORPUS, "expectations.json")) as fh:
            expected = len(json.load(fh)["cases"])
        assert len(plan) == expected
        assert all(item.task == "corpus_case" for item in plan)


class TestChunking:
    def test_groups_never_split(self):
        plan = SweepPlan.competitive(
            ["edf", "llf", "firstfit"], ["uniform", "loose"], n=5, seeds=4
        )
        for chunksize in (1, 2, 3, 5, 100):
            seen = {}
            for ci, chunk in enumerate(plan.chunks(chunksize)):
                for item in chunk:
                    assert seen.setdefault(item.group, ci) == ci

    def test_chunks_partition_plan_in_order(self):
        plan = SweepPlan.competitive(["edf"], ["uniform"], n=5, seeds=7)
        for chunksize in (1, 2, 3, 100):
            flat = [i.index for chunk in plan.chunks(chunksize) for i in chunk]
            assert flat == list(range(len(plan)))

    def test_chunksize_validated(self):
        plan = SweepPlan.competitive(["edf"], ["uniform"], n=5, seeds=1)
        with pytest.raises(ValueError):
            plan.chunks(0)


# ---------------------------------------------------------------------------
# sharding


def _ratio_plan(seeds=5, root=0):
    return SweepPlan.competitive(
        ["edf", "firstfit"], ["uniform"], n=5, seeds=seeds, root_seed=root
    )


class TestSharding:
    def test_shard_arguments_validated(self):
        plan = _ratio_plan()
        with pytest.raises(ValueError, match=">= 1"):
            plan.shard(0, 0)
        with pytest.raises(ValueError, match="0 <= k < n"):
            plan.shard(3, 3)
        with pytest.raises(ValueError, match="0 <= k < n"):
            plan.shard(-1, 2)

    def test_single_shard_is_the_whole_plan(self):
        plan = _ratio_plan()
        shard = plan.shard(0, 1)
        assert [i.index for i in shard] == [i.index for i in plan]
        assert shard.shard_id == (0, 1)
        assert shard.plan_items == len(plan)

    def test_known_partition_is_pinned(self):
        # 5 groups of 2 items (2 policies x 5 seeds); groups round-robin
        # over shards in first-appearance order.  Pinned: a change here
        # silently repartitions every multi-host sweep.
        plan = _ratio_plan()
        got = [[i.index for i in plan.shard(k, 3)] for k in range(3)]
        assert got == [[0, 1, 6, 7], [2, 3, 8, 9], [4, 5]]

    def test_shard_keeps_parent_identity(self):
        plan = _ratio_plan()
        shard = plan.shard(1, 3)
        assert shard.shard_id == (1, 3)
        assert shard.fingerprint() == plan.fingerprint()
        assert shard.plan_items == len(plan)
        # items keep their parent-plan indices (fault specs, journals, and
        # merge all speak parent-global indices)
        assert [i.index for i in shard] == [2, 3, 8, 9]

    @settings(max_examples=20, deadline=None)
    @given(
        policies=st.lists(
            st.sampled_from(["edf", "llf", "firstfit", "bestfit"]),
            min_size=1, max_size=2, unique=True,
        ),
        family=st.sampled_from(sorted(FAMILIES)),
        seeds=st.integers(1, 6),
        root=st.integers(0, 2**32),
        n_shards=st.integers(1, 5),
    )
    def test_property_shards_partition_the_plan(
        self, policies, family, seeds, root, n_shards
    ):
        plan = SweepPlan.competitive(
            policies, [family], n=4, seeds=seeds, root_seed=root
        )
        shards = [plan.shard(k, n_shards) for k in range(n_shards)]
        # pairwise disjoint, union to the full plan
        indices = [i.index for s in shards for i in s]
        assert len(indices) == len(set(indices))
        assert sorted(indices) == [item.index for item in plan]
        # each shard lists its items in canonical (plan) order
        for shard in shards:
            idx = [i.index for i in shard]
            assert idx == sorted(idx)
        # no group is ever split across shards
        owner = {}
        for k, shard in enumerate(shards):
            for item in shard:
                assert owner.setdefault(item.group, k) == k
        # pure function of the plan: an independently rebuilt plan agrees
        rebuilt = SweepPlan.competitive(
            policies, [family], n=4, seeds=seeds, root_seed=root
        )
        for k in range(n_shards):
            assert rebuilt.shard(k, n_shards).items == shards[k].items

    def test_partition_stable_across_processes(self):
        # The partition must not depend on the salted builtin hash: a fresh
        # interpreter under PYTHONHASHSEED=random computes the same shards.
        import subprocess
        import sys

        code = (
            "import json; from repro.runner import SweepPlan; "
            "p = SweepPlan.competitive(['edf', 'firstfit'], ['uniform'], "
            "n=5, seeds=5, root_seed=0); "
            "print(json.dumps("
            "[[i.index for i in p.shard(k, 3)] for k in range(3)]))"
        )
        env = dict(os.environ, PYTHONHASHSEED="random")
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", env.get("PYTHONPATH")])
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, check=True,
        )
        assert json.loads(out.stdout) == [[0, 1, 6, 7], [2, 3, 8, 9], [4, 5]]

    def test_sharded_runs_cover_the_full_sweep(self):
        plan = _ratio_plan(seeds=3)
        clean = run_sweep(plan, n_jobs=1, chunksize=2)
        values = {}
        for k in range(2):
            report = run_sweep(plan.shard(k, 2), n_jobs=1, chunksize=2)
            assert report.ok and report.shard == (k, 2)
            values.update({r.index: r.value for r in report.results})
        assert values == {r.index: r.value for r in clean.results}


# ---------------------------------------------------------------------------
# execution: determinism across worker counts


def _strip_volatile(snapshot):
    """Counters + event counts only: span wall times are real, not replayed."""
    return snapshot["counters"], snapshot.get("events", {})


class TestDeterminism:
    @pytest.mark.parametrize("n_jobs", [2, 3])
    def test_parallel_matches_serial(self, n_jobs):
        plan = SweepPlan.competitive(
            ["edf", "firstfit"], ["uniform", "tight"], n=8, seeds=3
        )
        with obs.capture() as reg1:
            serial = run_sweep(plan, n_jobs=1, chunksize=2)
        with obs.capture() as reg2:
            parallel = run_sweep(plan, n_jobs=n_jobs, chunksize=2)
        assert [r.value for r in serial.results] == [
            r.value for r in parallel.results
        ]
        assert [r.status for r in serial.results] == [
            r.status for r in parallel.results
        ]
        # merged registries agree exactly (counters and event counts)
        assert _strip_volatile(serial.registry.snapshot()) == _strip_volatile(
            parallel.registry.snapshot()
        )
        # ...and so do the ambient captures around each call
        assert _strip_volatile(reg1.snapshot()) == _strip_volatile(reg2.snapshot())

    def test_histograms_bit_identical_across_worker_counts(self):
        """Merged value histograms are byte-equal for n_jobs 1, 2, and 4.

        Timing histograms (`*_ns`) hold genuine wall time, so only their
        observation *counts* must agree; every other histogram carries
        deterministic algorithmic values and must match bit for bit.
        """
        plan = SweepPlan.competitive(
            ["edf", "firstfit"], ["uniform", "tight"], n=8, seeds=3
        )
        base = None
        for n_jobs in (1, 2, 4):
            hists = run_sweep(
                plan, n_jobs=n_jobs, chunksize=2
            ).registry.snapshot()["hists"]
            values = json.dumps(
                {k: v for k, v in hists.items() if not k.endswith("_ns")},
                sort_keys=True,
            )
            ns_counts = {
                k: v["count"] for k, v in hists.items() if k.endswith("_ns")
            }
            if base is None:
                base = (values, ns_counts)
                assert ns_counts  # span auto-feed produced latency hists
                assert json.loads(values)  # and at least one value histogram
            else:
                assert (values, ns_counts) == base

    def test_chunksize_does_not_change_results(self):
        plan = SweepPlan.competitive(["edf"], ["uniform"], n=6, seeds=4)
        baseline = run_sweep(plan, n_jobs=1, chunksize=1)
        for chunksize in (2, 3, 100):
            other = run_sweep(plan, n_jobs=2, chunksize=chunksize)
            assert [r.value for r in other.results] == [
                r.value for r in baseline.results
            ]

    def test_serial_spawns_no_pool(self, monkeypatch):
        import concurrent.futures

        def boom(*a, **k):  # pragma: no cover - would fail the test
            raise AssertionError("n_jobs=1 must not spawn a process pool")

        monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor", boom)
        plan = SweepPlan.competitive(["edf"], ["uniform"], n=5, seeds=2)
        report = run_sweep(plan, n_jobs=1)
        assert report.ok and report.n_jobs == 1

    @settings(max_examples=5, deadline=None)
    @given(
        policies=st.lists(
            st.sampled_from(["edf", "llf", "firstfit", "bestfit"]),
            min_size=1, max_size=2, unique=True,
        ),
        family=st.sampled_from(sorted(FAMILIES)),
        seeds=st.integers(1, 3),
        root=st.integers(0, 2**32),
        chunksize=st.integers(1, 4),
    )
    def test_property_bit_identical_across_worker_counts(
        self, policies, family, seeds, root, chunksize
    ):
        plan = SweepPlan.competitive(
            policies, [family], n=6, seeds=seeds, root_seed=root
        )
        reports = {
            k: run_sweep(plan, n_jobs=k, chunksize=chunksize) for k in (1, 2, 4)
        }
        base = reports[1]
        assert base.ok
        for k in (2, 4):
            assert [r.value for r in reports[k].results] == [
                r.value for r in base.results
            ]
            assert _strip_volatile(reports[k].registry.snapshot()) == (
                _strip_volatile(base.registry.snapshot())
            )


# ---------------------------------------------------------------------------
# failure containment


def _fragile_task(instance, *, explode: bool = False):
    if explode:
        raise ValueError("boom on purpose")
    return len(instance)


def _poison_task(instance, *, die: bool = False):
    if die:
        os.kill(os.getpid(), signal.SIGKILL)  # simulate the OOM killer
    return len(instance)


register_task("fragile", _fragile_task)
register_task("poison", _poison_task)


def _poison_plan(die_index: int, total: int = 6) -> SweepPlan:
    jobs = [Instance([Job(0, 1, 2, id=i)]) for i in range(total)]
    return SweepPlan.build(
        ("poison", jobs[i], {"die": i == die_index}) for i in range(total)
    )


class TestFailureContainment:
    def test_task_error_recorded_not_raised(self):
        inst = Instance([Job(0, 1, 2, id=0)])
        plan = SweepPlan.build(
            ("fragile", inst, {"explode": i == 1}) for i in range(3)
        )
        report = run_sweep(plan, n_jobs=1)
        assert [r.status for r in report.results] == ["ok", "error", "ok"]
        assert "boom on purpose" in report.errors[0].error
        assert report.registry.snapshot()["counters"]["runner.task_errors"] == 1
        assert report.registry.snapshot()["counters"]["runner.errors"] == 1

    @pytest.mark.skipif(
        "fork" not in __import__("multiprocessing").get_all_start_methods(),
        reason="poison task is registered at runtime; needs fork inheritance",
    )
    def test_sigkilled_worker_blamed_chunkmates_recover(self):
        # item 2 SIGKILLs its worker mid-chunk; with chunksize=3 its chunk
        # also holds items 0,1 (and 3..5 ride in the second chunk).
        report = run_sweep(_poison_plan(die_index=2), n_jobs=2, chunksize=3)
        statuses = [r.status for r in report.results]
        assert statuses == ["ok", "ok", "crashed", "ok", "ok", "ok"]
        crash = report.crashes[0]
        assert crash.index == 2
        assert "WorkerCrash" in crash.error and "item 2" in crash.error
        # chunk-mates recovered their real values through the isolated retry
        assert [r.value for r in report.results if r.ok] == [1, 1, 1, 1, 1]
        counters = report.registry.snapshot()["counters"]
        assert counters["runner.crashes"] == 1
        assert counters["runner.items"] == 6
        # every item is accounted for: nothing silently dropped
        assert sorted(r.index for r in report.results) == list(range(6))

    @pytest.mark.skipif(
        "fork" not in __import__("multiprocessing").get_all_start_methods(),
        reason="poison task is registered at runtime; needs fork inheritance",
    )
    def test_crash_report_is_deterministic(self):
        a = run_sweep(_poison_plan(die_index=1), n_jobs=2, chunksize=2)
        b = run_sweep(_poison_plan(die_index=1), n_jobs=3, chunksize=2)
        assert [(r.status, r.value) for r in a.results] == [
            (r.status, r.value) for r in b.results
        ]


# ---------------------------------------------------------------------------
# streaming


class TestStreaming:
    def _plan(self):
        return SweepPlan.competitive(["edf"], ["uniform"], n=5, seeds=6)

    def test_ordered_streams_in_plan_order(self):
        seen = []
        plan = self._plan()
        run_sweep(plan, n_jobs=2, chunksize=2, on_result=seen.append, ordered=True)
        assert [r.index for r in seen] == list(range(len(plan)))

    def test_as_completed_streams_each_item_once(self):
        seen = []
        plan = self._plan()
        report = run_sweep(
            plan, n_jobs=2, chunksize=2, on_result=seen.append, ordered=False
        )
        assert sorted(r.index for r in seen) == list(range(len(plan)))
        # streamed objects are the same results the report carries
        assert {r.index: r.value for r in seen} == {
            r.index: r.value for r in report.results
        }


# ---------------------------------------------------------------------------
# consumers


class TestConsumers:
    def test_competitive_matrix_parallel_equals_serial(self):
        from repro.analysis.competitive import profile_matrix
        from repro.generators import uniform_random_instance

        policies = {"EDF": "edf", "FirstFit": "firstfit"}
        families = {"uniform": lambda s: uniform_random_instance(8, seed=s)}
        seeds = [split_seed(7, i) for i in range(3)]
        serial = profile_matrix(policies, families, seeds)
        parallel = profile_matrix(policies, families, seeds, n_jobs=2)
        assert serial == parallel

    def test_competitive_rejects_unpicklable_factory(self):
        from repro.analysis.competitive import profile_matrix
        from repro.generators import uniform_random_instance
        from repro.online.edf import EDF

        with pytest.raises(ValueError, match="registry policy names"):
            profile_matrix(
                {"EDF": lambda: EDF()},
                {"uniform": lambda s: uniform_random_instance(5, seed=s)},
                [1], n_jobs=2,
            )

    def test_differential_sweep_parallel_equals_serial(self):
        from repro.generators import uniform_random_instance
        from repro.verify.differential import differential_sweep

        instances = [uniform_random_instance(6, seed=s) for s in (1, 2)]
        serial = differential_sweep(instances, speeds=(1, "3/2"))
        parallel = differential_sweep(
            instances, speeds=(1, "3/2"), n_jobs=2, chunksize=2
        )
        assert serial.ok and parallel.ok
        assert len(serial.records) == len(parallel.records)
        for a, b in zip(serial.records, parallel.records):
            assert (a.m, a.speed, a.verdicts, a.failures) == (
                b.m, b.speed, b.verdicts, b.failures
            )


# ---------------------------------------------------------------------------
# CLI


class TestSweepCLI:
    def test_ratio_table(self, capsys):
        assert main([
            "sweep", "ratio", "--policies", "edf,firstfit",
            "--families", "uniform", "-n", "6", "--seeds", "2", "--workers", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "edf" in out and "firstfit" in out

    def test_differential_json(self, capsys):
        assert main([
            "sweep", "differential", "--families", "uniform", "-n", "5",
            "--seeds", "2", "--no-lp", "--workers", "2", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_jobs"] == 2
        assert all(r["status"] == "ok" for r in payload["results"])
        assert payload["counters"]["runner.items"] == len(payload["results"])

    def test_corpus_snapshot_artifact(self, tmp_path, capsys):
        snap = tmp_path / "sweep.json"
        assert main([
            "sweep", "corpus", "--dir", CORPUS,
            "--workers", "2", "--chunksize", "4", "--snapshot", str(snap),
        ]) == 0
        payload = json.loads(snap.read_text())
        assert payload["counters"]["runner.items"] == len(payload["results"])
        assert all(r["status"] == "ok" for r in payload["results"])

    def test_unknown_policy_is_an_error(self):
        with pytest.raises(SystemExit, match="unknown policy"):
            main(["sweep", "ratio", "--policies", "zzz"])
