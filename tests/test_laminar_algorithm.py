"""Tests for the Theorem 9 laminar budget-assignment algorithm."""

import math
from fractions import Fraction

import pytest

from repro.core.laminar import (
    LaminarAlgorithm,
    LaminarAssignmentError,
    LaminarBudgetPolicy,
    _chain_key,
    _min_by_domination,
)
from repro.generators import laminar_chain, laminar_instance, laminar_random
from repro.model import Instance, Job
from repro.offline.optimum import migratory_optimum
from repro.online.engine import simulate


class TestChainOrder:
    def test_smaller_window_is_minimal(self):
        big = Job(0, 1, 10, id=0)
        small = Job(2, 1, 5, id=1)
        assert _min_by_domination([big, small]) is small

    def test_equal_windows_later_index_minimal(self):
        a = Job(0, 1, 5, id=0)
        b = Job(0, 1, 5, id=1)
        assert _min_by_domination([a, b]) is b

    def test_chain_key_orders_nested(self):
        jobs = [Job(i, 1, 20 - i, id=i) for i in range(5)]
        ordered = sorted(jobs, key=_chain_key)
        assert [j.id for j in ordered] == [4, 3, 2, 1, 0]


class TestBudgetPolicy:
    def test_empty_machine_taken_first(self):
        inst = Instance([Job(0, 2, 4, id=0), Job(5, 2, 9, id=1)])
        eng = simulate(LaminarBudgetPolicy(), inst, machines=3)
        # disjoint windows: both jobs can share machine 0? No — assignment
        # checks *intersecting* jobs only, so job 1 reuses machine 0.
        assert eng.committed_machine(1) == 0

    def test_assignment_failure_raises(self):
        # nested zero-budget chain on one machine must fail quickly
        inst = laminar_chain(6, density=Fraction(9, 10))
        with pytest.raises(LaminarAssignmentError):
            eng = simulate(LaminarBudgetPolicy(), inst, machines=1, on_miss="raise")

    def test_succeeds_with_enough_machines(self):
        inst = laminar_chain(6, density=Fraction(9, 10))
        algo = LaminarAlgorithm()
        m_prime = algo.min_tight_machines(inst)
        sched = algo.run_tight_with_budget(inst, m_prime)
        assert sched is not None
        rep = sched.verify(inst)
        assert rep.feasible and rep.is_non_migratory

    def test_machine_local_edf(self):
        # two nested jobs forced on one machine: inner (earlier deadline) first
        outer = Job(0, 2, 10, id=0)
        inner = Job(1, 2, 5, id=1)
        inst = Instance([outer, inner])
        eng = simulate(LaminarBudgetPolicy(), inst, machines=2)
        assert not eng.missed_jobs


class TestLaminarAlgorithm:
    def test_rejects_non_laminar(self):
        inst = Instance([Job(0, 1, 5, id=0), Job(3, 1, 8, id=1)])
        with pytest.raises(ValueError):
            LaminarAlgorithm().run(inst)

    def test_alpha_domain(self):
        with pytest.raises(ValueError):
            LaminarAlgorithm(2)

    @pytest.mark.parametrize("seed", range(3))
    def test_feasible_nonmigratory_on_random_laminar(self, seed):
        inst = laminar_random(30, seed=seed)
        result = LaminarAlgorithm().run(inst)
        rep = result.schedule.verify(inst)
        assert rep.feasible
        assert rep.is_non_migratory

    def test_tree_instances(self):
        inst = laminar_instance(depth=3, fanout=2, jobs_per_node=2, seed=1)
        result = LaminarAlgorithm().run(inst)
        assert result.schedule.verify(inst).feasible

    @pytest.mark.parametrize("depth", [2, 3])
    def test_theorem9_bound(self, depth):
        """Theorem 9: O(m log m) machines; assert c·m·(log₂ m + 1) + O(m)."""
        inst = laminar_instance(depth=depth, fanout=2, jobs_per_node=2, seed=2)
        m = migratory_optimum(inst)
        result = LaminarAlgorithm().run(inst)
        bound = 8 * m * (math.log2(m) + 1) + 8
        assert result.machines <= bound

    def test_empty_instance(self):
        result = LaminarAlgorithm().run(Instance([]))
        assert result.machines == 0

    def test_pure_tight_instance_no_loose_pool(self):
        inst = laminar_chain(5, density=Fraction(4, 5))
        result = LaminarAlgorithm(alpha=Fraction(1, 2)).run(inst)
        assert result.loose_machines == 0
        assert result.tight_machines >= 1

    def test_chain_budget_scaling(self):
        """Deeper chains should not blow up machine counts (the budget
        scheme charges each level's |I| to a distinct candidate budget)."""
        shallow = laminar_chain(4, density=Fraction(2, 3))
        deep = laminar_chain(10, density=Fraction(2, 3))
        algo = LaminarAlgorithm()
        m_shallow = algo.min_tight_machines(shallow)
        m_deep = algo.min_tight_machines(deep)
        assert m_deep <= m_shallow + 6


class TestLemma5Properties:
    """Lemma 5(ii): on each machine, no two *unfinished* assigned jobs ever
    share a deadline (given the assignment succeeded)."""

    @pytest.mark.parametrize("seed", range(3))
    def test_unique_unfinished_deadlines_per_machine(self, seed):
        from repro.generators import laminar_random
        from repro.online.engine import OnlineEngine

        inst = laminar_random(30, density_range=(0.6, 0.9), seed=seed)
        algo = LaminarAlgorithm()
        m_prime = algo.min_tight_machines(inst)
        engine = OnlineEngine(LaminarBudgetPolicy(), machines=m_prime)
        engine.release(inst)
        events = sorted({j.release for j in inst} | {j.deadline for j in inst})
        for t in events:
            engine.run_until(t)
            for machine in range(m_prime):
                deadlines = [
                    s.job.deadline for s in engine.machine_active_jobs(machine)
                ]
                assert len(deadlines) == len(set(deadlines)), (
                    f"duplicate unfinished deadlines on machine {machine} at {t}"
                )
        engine.run_to_completion()
        assert not engine.missed_jobs
