"""Tests for the event-driven online engine."""

from fractions import Fraction
from typing import Dict

import pytest
from hypothesis import given, settings

from repro.model import Instance, Job
from repro.online.base import EngineError, InfeasibleOnline, Policy
from repro.online.edf import EDF
from repro.online.engine import OnlineEngine, min_machines, simulate, succeeds

from tests.strategies import instances_st


class IdlePolicy(Policy):
    """Never runs anything (for miss-detection tests)."""

    migratory = True

    def select(self, engine):
        return {}


class GreedyFirst(Policy):
    """Runs the lowest-id active job on machine 0."""

    migratory = True

    def select(self, engine):
        active = sorted(engine.active_jobs(), key=lambda s: s.job.id)
        return {0: active[0].job.id} if active else {}


class TestMechanics:
    def test_single_job_completes(self):
        eng = simulate(GreedyFirst(), Instance([Job(0, 2, 4, id=0)]), machines=1)
        state = eng.state_of(0)
        assert state.finished_at == 2
        assert eng.schedule().verify(Instance([Job(0, 2, 4, id=0)])).feasible

    def test_release_gap_jumps(self):
        inst = Instance([Job(0, 1, 2, id=0), Job(10, 1, 12, id=1)])
        eng = simulate(GreedyFirst(), inst, machines=1)
        assert eng.state_of(1).started_at == 10

    def test_negative_release_allowed_before_start(self):
        eng = OnlineEngine(GreedyFirst(), machines=1)
        eng.release([Job(-5, 1, 0, id=0)])
        eng.run_to_completion()
        assert eng.state_of(0).finished

    def test_double_release_rejected(self):
        eng = OnlineEngine(GreedyFirst(), machines=1)
        eng.release([Job(0, 1, 2, id=0)])
        with pytest.raises(EngineError):
            eng.release([Job(0, 1, 2, id=0)])

    def test_past_release_rejected(self):
        eng = OnlineEngine(GreedyFirst(), machines=1)
        eng.release([Job(0, 1, 5, id=0)])
        eng.run_until(3)
        with pytest.raises(EngineError):
            eng.release([Job(1, 1, 5, id=1)])

    def test_run_until_exact_time(self):
        eng = OnlineEngine(GreedyFirst(), machines=1)
        eng.release([Job(0, 4, 8, id=0)])
        eng.run_until(Fraction(5, 2))
        assert eng.time == Fraction(5, 2)
        assert eng.remaining(0) == Fraction(3, 2)

    def test_run_backwards_rejected(self):
        eng = OnlineEngine(GreedyFirst(), machines=1)
        eng.release([Job(0, 1, 2, id=0)])
        eng.run_until(1)
        with pytest.raises(EngineError):
            eng.run_until(Fraction(1, 2))

    def test_settle_admits_at_horizon(self):
        eng = OnlineEngine(GreedyFirst(), machines=1)
        eng.release([Job(2, 1, 4, id=0)])
        eng.run_until(2)
        # the release at exactly t=2 must be admitted by the settle step
        assert eng.active_jobs()


class TestMisses:
    def test_idle_policy_misses(self):
        inst = Instance([Job(0, 1, 1, id=0)])
        eng = simulate(IdlePolicy(), inst, machines=1)
        assert eng.missed_jobs == [0]
        assert eng.state_of(0).missed

    def test_on_miss_raise(self):
        inst = Instance([Job(0, 1, 1, id=0)])
        with pytest.raises(InfeasibleOnline):
            simulate(IdlePolicy(), inst, machines=1, on_miss="raise")

    def test_miss_detected_at_exact_deadline(self):
        inst = Instance([Job(0, 2, 2, id=0), Job(0, 2, 2, id=1)])
        eng = simulate(GreedyFirst(), inst, machines=1)
        missed = eng.state_of(1)
        assert missed.missed
        # remaining work at the deadline is the full 2 (never ran)
        assert missed.remaining == 2

    def test_invalid_on_miss_value(self):
        with pytest.raises(ValueError):
            OnlineEngine(GreedyFirst(), machines=1, on_miss="explode")


class TestValidation:
    def test_selecting_unknown_job(self):
        class Bad(Policy):
            def select(self, engine):
                return {0: 999}

        eng = OnlineEngine(Bad(), machines=1)
        eng.release([Job(0, 1, 2, id=0)])
        with pytest.raises(EngineError):
            eng.run_to_completion()

    def test_selecting_same_job_twice(self):
        class Bad(Policy):
            def select(self, engine):
                active = engine.active_jobs()
                return {0: active[0].job.id, 1: active[0].job.id} if active else {}

        eng = OnlineEngine(Bad(), machines=2)
        eng.release([Job(0, 1, 2, id=0)])
        with pytest.raises(EngineError):
            eng.run_to_completion()

    def test_machine_out_of_range(self):
        class Bad(Policy):
            def select(self, engine):
                active = engine.active_jobs()
                return {5: active[0].job.id} if active else {}

        eng = OnlineEngine(Bad(), machines=1)
        eng.release([Job(0, 1, 2, id=0)])
        with pytest.raises(EngineError):
            eng.run_to_completion()

    def test_nonmigratory_binding_enforced(self):
        class Migrator(Policy):
            migratory = False

            def __init__(self):
                self.flip = 0

            def select(self, engine):
                active = engine.active_jobs()
                if not active:
                    return {}
                self.flip = 1 - self.flip
                return {self.flip: active[0].job.id}

            def next_wakeup(self, engine):
                return engine.time + Fraction(1, 4)

        eng = OnlineEngine(Migrator(), machines=2)
        eng.release([Job(0, 2, 4, id=0)])
        with pytest.raises(EngineError):
            eng.run_to_completion()

    def test_commit_conflict_rejected(self):
        eng = OnlineEngine(GreedyFirst(), machines=2)
        eng.release([Job(0, 1, 2, id=0)])
        eng.commit(0, 1)
        with pytest.raises(EngineError):
            eng.commit(0, 0)

    def test_commit_out_of_range(self):
        eng = OnlineEngine(GreedyFirst(), machines=1)
        eng.release([Job(0, 1, 2, id=0)])
        with pytest.raises(EngineError):
            eng.commit(0, 3)


class TestSpeed:
    def test_fast_machines_finish_early(self):
        eng = OnlineEngine(GreedyFirst(), machines=1, speed=2)
        eng.release([Job(0, 4, 4, id=0)])
        eng.run_to_completion()
        assert eng.state_of(0).finished_at == 2

    def test_work_accounting_with_speed(self):
        eng = OnlineEngine(GreedyFirst(), machines=1, speed=Fraction(3, 2))
        eng.release([Job(0, 3, 4, id=0)])
        eng.run_until(1)
        assert eng.remaining(0) == Fraction(3, 2)


class TestHelpers:
    def test_succeeds_wrapper(self, parallel_units):
        assert succeeds(EDF(), parallel_units, 3)
        assert not succeeds(EDF(), parallel_units, 2)

    def test_min_machines(self, parallel_units):
        assert min_machines(lambda k: EDF(), parallel_units) == 3

    def test_min_machines_empty(self):
        assert min_machines(lambda k: EDF(), Instance([])) == 0

    def test_add_machines(self):
        eng = OnlineEngine(GreedyFirst(), machines=1)
        assert eng.add_machines(2) == 3

    def test_used_machines_tracking(self):
        eng = simulate(GreedyFirst(), Instance([Job(0, 1, 2, id=0)]), machines=3)
        assert eng.used_machines == {0}

    @given(instances_st(max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_schedule_consistent_with_engine(self, inst):
        eng = simulate(EDF(), inst, machines=len(inst))
        # with one machine per job EDF never misses
        assert not eng.missed_jobs
        rep = eng.schedule().verify(inst)
        assert rep.feasible


class TestTrace:
    def test_disabled_by_default(self):
        eng = simulate(GreedyFirst(), Instance([Job(0, 1, 2, id=0)]), machines=1)
        assert eng.trace is None

    def test_records_lifecycle(self):
        inst = Instance([Job(0, 1, 2, id=0), Job(3, 1, 4, id=1)])
        eng = OnlineEngine(GreedyFirst(), machines=1, trace=True)
        eng.release(inst)
        eng.run_to_completion()
        admitted = [j for ev in eng.trace for j in ev.admitted]
        completed = [j for ev in eng.trace for j in ev.completed]
        assert sorted(admitted) == [0, 1] or sorted(completed) == [0, 1]
        assert sorted(completed) == [0, 1]
        times = [ev.time for ev in eng.trace]
        assert times == sorted(times)

    def test_records_misses(self):
        inst = Instance([Job(0, 1, 1, id=0)])
        eng = OnlineEngine(IdlePolicy(), machines=1, trace=True)
        eng.release(inst)
        eng.run_to_completion()
        missed = [j for ev in eng.trace for j in ev.missed]
        assert missed == [0]

    def test_running_snapshots(self):
        inst = Instance([Job(0, 2, 4, id=0)])
        eng = OnlineEngine(GreedyFirst(), machines=1, trace=True)
        eng.release(inst)
        eng.run_to_completion()
        assert any(ev.running == {0: 0} for ev in eng.trace)
