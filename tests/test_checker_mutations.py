"""Failure injection: the checker must catch every corruption of a valid
schedule.

These tests take verified-feasible schedules and apply systematic mutations
(shift a segment outside the window, duplicate it onto another machine,
shrink it, move it over a neighbour, drop it) and assert the independent
checker flags each one.  This is the trust anchor for every experiment:
"the benchmark asserts the checker passed" is only meaningful if the checker
catches corruption.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators import uniform_random_instance
from repro.model import Instance, Job, Schedule, Segment
from repro.offline.optimum import optimal_migratory_schedule

from tests.strategies import instances_st


def _valid_pair(seed: int):
    inst = uniform_random_instance(10, seed=seed)
    m, sched = optimal_migratory_schedule(inst)
    assert sched.verify(inst).feasible
    return inst, sched


class TestSegmentMutations:
    @pytest.mark.parametrize("seed", range(4))
    def test_drop_segment_detected(self, seed):
        inst, sched = _valid_pair(seed)
        mutated = Schedule(list(sched)[1:])
        assert not mutated.verify(inst).feasible

    @pytest.mark.parametrize("seed", range(4))
    def test_shift_past_deadline_detected(self, seed):
        inst, sched = _valid_pair(seed)
        segs = list(sched)
        victim = max(segs, key=lambda s: s.end)
        job = inst.job(victim.job_id)
        shift = (job.deadline - victim.end) + 1
        segs[segs.index(victim)] = Segment(
            victim.job_id, victim.machine, victim.start + shift, victim.end + shift
        )
        assert not Schedule(segs).verify(inst).feasible

    @pytest.mark.parametrize("seed", range(4))
    def test_duplicate_on_other_machine_detected(self, seed):
        inst, sched = _valid_pair(seed)
        segs = list(sched)
        victim = segs[0]
        free_machine = max(s.machine for s in segs) + 1
        segs.append(Segment(victim.job_id, free_machine, victim.start, victim.end))
        rep = Schedule(segs).verify(inst)
        assert not rep.feasible  # intra-job parallelism and/or overwork

    @pytest.mark.parametrize("seed", range(4))
    def test_shrink_detected(self, seed):
        inst, sched = _valid_pair(seed)
        segs = list(sched)
        victim = max(segs, key=lambda s: s.length)
        half = Segment(victim.job_id, victim.machine, victim.start,
                       victim.start + victim.length / 2)
        segs[segs.index(victim)] = half
        rep = Schedule(segs).verify(inst)
        assert not rep.feasible
        assert victim.job_id in rep.unfinished

    @pytest.mark.parametrize("seed", range(4))
    def test_relabel_job_detected(self, seed):
        inst, sched = _valid_pair(seed)
        segs = list(sched)
        a = segs[0]
        other = next(j for j in inst if j.id != a.job_id)
        segs[0] = Segment(other.id, a.machine, a.start, a.end)
        assert not Schedule(segs).verify(inst).feasible

    @pytest.mark.parametrize("seed", range(4))
    def test_overlay_two_jobs_detected(self, seed):
        inst, sched = _valid_pair(seed)
        segs = list(sched)
        by_machine = {}
        for s in segs:
            by_machine.setdefault(s.machine, []).append(s)
        machine, msegs = next(
            ((m, s) for m, s in by_machine.items() if len(s) >= 2), (None, None)
        )
        if machine is None:
            pytest.skip("single-segment machines only")
        msegs.sort(key=lambda s: s.start)
        a, b = msegs[0], msegs[1]
        # slide b backwards onto a
        overlap_start = a.end - min(a.length, b.length) / 2
        moved = Segment(b.job_id, b.machine, overlap_start,
                        overlap_start + b.length)
        segs[segs.index(b)] = moved
        assert not Schedule(segs).verify(inst).feasible


class TestSpeedMutations:
    def test_wrong_speed_detected(self):
        inst = Instance([Job(0, 3, 4, id=0)])
        sched = Schedule([Segment(0, 0, 0, 2)])
        assert sched.verify(inst, speed=Fraction(3, 2)).feasible
        assert not sched.verify(inst, speed=1).feasible
        assert not sched.verify(inst, speed=2).feasible  # overwork


class TestRandomizedMutations:
    @given(instances_st(min_size=2, max_size=6), st.integers(0, 3),
           st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_random_shift_never_passes_silently(self, inst, idx, shift_num):
        """Shifting any segment right by a positive amount either remains
        feasible (landed in a legal gap) or is flagged — but work totals
        must always reconcile."""
        m, sched = optimal_migratory_schedule(inst)
        segs = list(sched)
        victim = segs[idx % len(segs)]
        shift = Fraction(shift_num, 4)
        segs[segs.index(victim)] = Segment(
            victim.job_id, victim.machine, victim.start + shift,
            victim.end + shift,
        )
        mutated = Schedule(segs)
        rep = mutated.verify(inst)
        # work is preserved by a shift, so any infeasibility must come from
        # structure, never from the work-totals check
        assert mutated.work_of(victim.job_id) == sched.work_of(victim.job_id)
        if rep.feasible:
            # accepted ⇒ genuinely still a valid schedule: re-verify stands
            assert not rep.violations
