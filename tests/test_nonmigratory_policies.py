"""Tests for non-migratory commit-at-release policies and their oracle."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import Instance, Job
from repro.offline.nonmigratory import single_machine_feasible
from repro.online.engine import min_machines, simulate, succeeds
from repro.online.nonmigratory import (
    BestFitEDF,
    EmptiestFitEDF,
    FirstFitEDF,
    local_edf_feasible,
)

from tests.strategies import instances_st

POLICIES = [FirstFitEDF, BestFitEDF, EmptiestFitEDF]


class TestLocalOracle:
    def test_empty_feasible(self):
        assert local_edf_feasible(Fraction(0), [], Fraction(1))

    def test_single_deadline(self):
        assert local_edf_feasible(Fraction(0), [(Fraction(2), Fraction(2))], Fraction(1))
        assert not local_edf_feasible(Fraction(0), [(Fraction(2), Fraction(3))], Fraction(1))

    def test_cumulative_constraint(self):
        workload = [(Fraction(1), Fraction(1)), (Fraction(2), Fraction(1)),
                    (Fraction(3), Fraction(2))]
        assert not local_edf_feasible(Fraction(0), workload, Fraction(1))

    def test_speed_scales_capacity(self):
        workload = [(Fraction(2), Fraction(3))]
        assert local_edf_feasible(Fraction(0), workload, Fraction(2))

    @given(st.lists(st.tuples(st.integers(1, 10), st.integers(1, 5)), max_size=6))
    @settings(max_examples=60)
    def test_oracle_matches_edf_simulation(self, raw):
        """For released jobs the oracle must agree with an actual EDF run."""
        jobs = []
        workload = []
        for i, (d, p) in enumerate(raw):
            deadline = Fraction(max(d, p))
            jobs.append(Job(0, p, deadline, id=i))
            workload.append((deadline, Fraction(p)))
        assert local_edf_feasible(Fraction(0), workload, Fraction(1)) == (
            single_machine_feasible(jobs)
        )


@pytest.mark.parametrize("policy_cls", POLICIES)
class TestCommitPolicies:
    def test_produces_nonmigratory_schedule(self, policy_cls):
        inst = Instance([Job(0, 2, 4, id=0), Job(0, 2, 4, id=1), Job(1, 1, 3, id=2)])
        k = min_machines(lambda k: policy_cls(), inst)
        eng = simulate(policy_cls(), inst, machines=k)
        rep = eng.schedule().verify(inst)
        assert rep.feasible
        assert rep.is_non_migratory

    def test_commits_at_release(self, policy_cls):
        inst = Instance([Job(0, 2, 8, id=0)])
        eng = simulate(policy_cls(), inst, machines=2)
        assert eng.committed_machine(0) is not None

    def test_mcnaughton_needs_three(self, policy_cls, mcnaughton_instance):
        assert min_machines(lambda k: policy_cls(), mcnaughton_instance) == 3

    @given(inst=instances_st(max_size=6))
    @settings(max_examples=20, deadline=None)
    def test_enough_machines_always_succeed(self, policy_cls, inst):
        assert succeeds(policy_cls(), inst, len(inst))

    @given(inst=instances_st(max_size=6))
    @settings(max_examples=15, deadline=None)
    def test_schedule_verifies_at_min_machines(self, policy_cls, inst):
        k = min_machines(lambda k: policy_cls(), inst)
        eng = simulate(policy_cls(), inst, machines=k)
        rep = eng.schedule().verify(inst)
        assert rep.feasible and rep.is_non_migratory


class TestPolicyDifferences:
    def test_first_fit_packs_left(self):
        inst = Instance([Job(0, 1, 4, id=0), Job(0, 1, 4, id=1)])
        eng = simulate(FirstFitEDF(), inst, machines=3)
        assert eng.committed_machine(0) == 0
        assert eng.committed_machine(1) == 0

    def test_emptiest_fit_spreads(self):
        inst = Instance([Job(0, 1, 4, id=0), Job(0, 1, 4, id=1)])
        eng = simulate(EmptiestFitEDF(), inst, machines=3)
        assert eng.committed_machine(0) != eng.committed_machine(1)

    def test_best_fit_prefers_loaded_machine(self):
        # first two jobs land on machine 0 (first-fit order inside the batch);
        # the third (released later) must choose the fullest feasible machine
        inst = Instance(
            [Job(0, 2, 10, id=0), Job(1, 1, 20, id=1)]
        )
        eng = simulate(BestFitEDF(), inst, machines=2)
        assert eng.committed_machine(1) == eng.committed_machine(0)

    def test_fallback_when_no_machine_admits(self):
        # two zero-laxity jobs, one machine: second commitment must fall back
        inst = Instance([Job(0, 2, 2, id=0), Job(0, 2, 2, id=1)])
        eng = simulate(FirstFitEDF(), inst, machines=1)
        assert eng.committed_machine(1) == 0
        assert eng.missed_jobs  # and the miss is recorded honestly

    def test_speed_parameter_respected(self):
        # 2 zero-laxity jobs on one speed-2 machine is feasible
        inst = Instance([Job(0, 1, 1, id=0), Job(0, 1, 1, id=1)])
        assert not succeeds(FirstFitEDF(), inst, 1)
        assert succeeds(FirstFitEDF(), inst, 1, speed=2)
