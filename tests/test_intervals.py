"""Unit and property tests for exact interval-union arithmetic."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.intervals import Interval, IntervalUnion, event_points, to_fraction


# -- strategies ---------------------------------------------------------------

def _union_st(max_components: int = 5, span: int = 40):
    @st.composite
    def build(draw):
        k = draw(st.integers(0, max_components))
        pairs = []
        for _ in range(k):
            a = draw(st.integers(0, span - 1))
            b = draw(st.integers(a + 1, span))
            pairs.append((Fraction(a, 2), Fraction(b, 2)))
        return IntervalUnion.from_pairs(pairs)

    return build()


# -- to_fraction ---------------------------------------------------------------

class TestToFraction:
    def test_int(self):
        assert to_fraction(3) == Fraction(3)

    def test_fraction_passthrough(self):
        f = Fraction(7, 3)
        assert to_fraction(f) is f

    def test_float(self):
        assert to_fraction(0.5) == Fraction(1, 2)

    def test_string(self):
        assert to_fraction("3/4") == Fraction(3, 4)


# -- Interval -------------------------------------------------------------------

class TestInterval:
    def test_length(self):
        assert Interval(1, 4).length == 3

    def test_invalid_order_raises(self):
        with pytest.raises(ValueError):
            Interval(2, 1)

    def test_empty(self):
        assert Interval(2, 2).is_empty()
        assert not Interval(2, 3).is_empty()

    def test_contains_half_open(self):
        iv = Interval(1, 3)
        assert iv.contains(1)
        assert iv.contains(Fraction(5, 2))
        assert not iv.contains(3)
        assert not iv.contains(0)

    def test_intersects(self):
        assert Interval(0, 2).intersects(Interval(1, 3))
        assert not Interval(0, 2).intersects(Interval(2, 3))  # touching is empty

    def test_intersection(self):
        assert Interval(0, 4).intersection(Interval(2, 6)) == Interval(2, 4)

    def test_disjoint_intersection_empty(self):
        assert Interval(0, 1).intersection(Interval(3, 4)).is_empty()

    def test_contains_interval(self):
        assert Interval(0, 10).contains_interval(Interval(2, 5))
        assert not Interval(0, 10).contains_interval(Interval(5, 11))
        assert Interval(0, 1).contains_interval(Interval(5, 5))  # empty ⊆ all

    def test_equality_and_hash(self):
        assert Interval(1, 2) == Interval(Fraction(1), Fraction(2))
        assert hash(Interval(1, 2)) == hash(Interval(1, 2))


# -- normalization -----------------------------------------------------------------

class TestNormalization:
    def test_merges_overlap(self):
        u = IntervalUnion.from_pairs([(0, 2), (1, 3)])
        assert u.components == (Interval(0, 3),)

    def test_merges_touching(self):
        u = IntervalUnion.from_pairs([(0, 1), (1, 2)])
        assert u.components == (Interval(0, 2),)

    def test_keeps_gap(self):
        u = IntervalUnion.from_pairs([(0, 1), (2, 3)])
        assert len(u) == 2

    def test_drops_empty(self):
        u = IntervalUnion([Interval(1, 1), Interval(2, 3)])
        assert u.components == (Interval(2, 3),)

    def test_sorts(self):
        u = IntervalUnion.from_pairs([(5, 6), (0, 1)])
        assert u.components == (Interval(0, 1), Interval(5, 6))

    @given(_union_st())
    def test_idempotent(self, u):
        assert IntervalUnion(u.components) == u

    @given(_union_st())
    def test_components_disjoint_sorted(self, u):
        for a, b in zip(u.components, u.components[1:]):
            assert a.end < b.start


# -- measurements ---------------------------------------------------------------

class TestMeasure:
    def test_length_sum(self):
        u = IntervalUnion.from_pairs([(0, 1), (2, 4)])
        assert u.length == 3

    def test_empty_length(self):
        assert IntervalUnion.empty().length == 0

    def test_inf_sup(self):
        u = IntervalUnion.from_pairs([(1, 2), (5, 9)])
        assert u.infimum == 1
        assert u.supremum == 9

    def test_inf_of_empty_raises(self):
        with pytest.raises(ValueError):
            IntervalUnion.empty().infimum

    def test_contains(self):
        u = IntervalUnion.from_pairs([(0, 1), (2, 3)])
        assert u.contains(0) and u.contains(2)
        assert not u.contains(1) and not u.contains(3)


# -- set algebra -----------------------------------------------------------------

class TestSetAlgebra:
    def test_union(self):
        a = IntervalUnion.single(0, 2)
        b = IntervalUnion.single(1, 3)
        assert a.union(b) == IntervalUnion.single(0, 3)

    def test_intersection(self):
        a = IntervalUnion.from_pairs([(0, 2), (4, 6)])
        b = IntervalUnion.from_pairs([(1, 5)])
        assert a.intersection(b) == IntervalUnion.from_pairs([(1, 2), (4, 5)])

    def test_difference(self):
        a = IntervalUnion.single(0, 10)
        b = IntervalUnion.from_pairs([(2, 3), (5, 7)])
        assert a.difference(b) == IntervalUnion.from_pairs([(0, 2), (3, 5), (7, 10)])

    def test_difference_total(self):
        a = IntervalUnion.single(0, 5)
        assert a.difference(IntervalUnion.single(0, 5)).is_empty()

    def test_contains_union(self):
        big = IntervalUnion.single(0, 10)
        small = IntervalUnion.from_pairs([(1, 2), (8, 9)])
        assert big.contains_union(small)
        assert not small.contains_union(big)

    @given(_union_st(), _union_st())
    @settings(max_examples=60)
    def test_union_commutative(self, a, b):
        assert a.union(b) == b.union(a)

    @given(_union_st(), _union_st())
    @settings(max_examples=60)
    def test_intersection_commutative(self, a, b):
        assert a.intersection(b) == b.intersection(a)

    @given(_union_st(), _union_st())
    @settings(max_examples=60)
    def test_inclusion_exclusion_length(self, a, b):
        assert a.union(b).length == a.length + b.length - a.intersection(b).length

    @given(_union_st(), _union_st())
    @settings(max_examples=60)
    def test_difference_partitions(self, a, b):
        # |a| = |a\b| + |a∩b|
        assert a.length == a.difference(b).length + a.intersection(b).length

    @given(_union_st(), _union_st())
    @settings(max_examples=60)
    def test_difference_disjoint_from_subtrahend(self, a, b):
        assert a.difference(b).intersection(b).is_empty()


# -- transforms -------------------------------------------------------------------

class TestTransforms:
    def test_scale_shift(self):
        u = IntervalUnion.single(1, 3).scale_shift(2, 5)
        assert u == IntervalUnion.single(7, 11)

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            IntervalUnion.single(0, 1).scale_shift(0, 0)

    def test_expand_left_single(self):
        u = IntervalUnion.single(4, 6).expand_left(Fraction(1, 2))
        # length doubles to the left: [2, 6)
        assert u == IntervalUnion.single(2, 6)

    def test_expand_left_carries_overflow(self):
        u = IntervalUnion.from_pairs([(0, 1), (Fraction(3, 2), Fraction(5, 2))])
        ex = u.expand_left(Fraction(1, 2))
        # total must be |I|/(1-γ) = 4 and the right expansion is blocked at 1
        assert ex.length == 4
        assert ex.contains_union(u)

    @given(_union_st(max_components=4), st.integers(1, 9))
    @settings(max_examples=80)
    def test_expand_left_measure_exact(self, u, g):
        gamma = Fraction(g, 10)
        if u.is_empty():
            assert u.expand_left(gamma).is_empty()
        else:
            ex = u.expand_left(gamma)
            assert ex.length == u.length / (1 - gamma)
            assert ex.contains_union(u)

    def test_expand_left_gamma_validation(self):
        with pytest.raises(ValueError):
            IntervalUnion.single(0, 1).expand_left(0)
        with pytest.raises(ValueError):
            IntervalUnion.single(0, 1).expand_left(1)


# -- misc -----------------------------------------------------------------------

class TestMisc:
    def test_event_points(self):
        pts = event_points([Interval(0, 3), Interval(1, 3)])
        assert pts == (0, 1, 3)

    def test_immutability(self):
        u = IntervalUnion.single(0, 1)
        with pytest.raises(AttributeError):
            u.components = ()

    def test_repr_roundtrip_smoke(self):
        assert "IntervalUnion" in repr(IntervalUnion.single(0, 1))
