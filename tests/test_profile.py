"""Tests for the vectorized workload profiling helpers."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.analysis.profile import approx_lower_bound, load_profile, window_density_grid
from repro.generators import uniform_random_instance
from repro.model import Instance, Job
from repro.offline.optimum import migratory_optimum
from repro.offline.workload import single_interval_lower_bound

from tests.strategies import instances_st


class TestLoadProfile:
    def test_empty(self):
        times, dens = load_profile(Instance([]))
        assert times.size == 0 and dens.size == 0

    def test_shape(self):
        inst = uniform_random_instance(20, seed=1)
        times, dens = load_profile(inst, samples=128)
        assert times.shape == dens.shape == (128,)
        assert (dens >= 0).all()

    def test_zero_laxity_block_shows_full_density(self):
        inst = Instance([Job(0, 10, 10, id=0), Job(0, 10, 10, id=1)])
        _, dens = load_profile(inst, samples=10)
        assert dens.max() == pytest.approx(2.0)

    def test_idle_region_zero(self):
        inst = Instance([Job(0, 1, 1, id=0), Job(100, 1, 101, id=1)])
        times, dens = load_profile(inst, samples=100)
        mid = (times > 10) & (times < 90)
        assert dens[mid].max() == pytest.approx(0.0)


class TestDensityGrid:
    def test_shapes(self):
        inst = uniform_random_instance(15, seed=2)
        a, w, d = window_density_grid(inst, starts=16, widths=8)
        assert d.shape == (16, 8)
        assert (d >= 0).all()

    def test_matches_bruteforce_cell(self):
        inst = Instance([Job(0, 4, 4, id=0)])
        a, w, d = window_density_grid(inst, starts=4, widths=4)
        # full-span window [0,4): density = 4/4 = 1
        assert d[0, -1] == pytest.approx(1.0)


class TestApproxBound:
    def test_empty(self):
        assert approx_lower_bound(Instance([])) == 0

    @given(instances_st(max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_sound_lower_bound(self, inst):
        assert approx_lower_bound(inst) <= migratory_optimum(inst)

    @given(instances_st(max_size=6))
    @settings(max_examples=20, deadline=None)
    def test_at_most_exact_single_interval(self, inst):
        # the grid samples a subset of windows, so it cannot beat the exact
        # single-interval search
        assert approx_lower_bound(inst, starts=96, widths=48) <= max(
            single_interval_lower_bound(inst), 0
        ) + 1  # +1: grid windows are not restricted to candidate endpoints

    def test_finds_obvious_peak(self, parallel_units):
        assert approx_lower_bound(parallel_units, starts=64, widths=64) == 3

    def test_scales_to_thousands(self):
        inst = uniform_random_instance(2000, horizon=2000, seed=3)
        bound = approx_lower_bound(inst)
        assert bound >= 1
