"""Targeted tests for corners not exercised elsewhere."""

from fractions import Fraction

import pytest

from repro.core.adversary.nonpreemptive import ClassBasedNonPreemptive
from repro.core.speed_fit import run_speed_fit
from repro.model import Instance, Job
from repro.model.intervals import Interval, IntervalUnion
from repro.online.base import EngineError
from repro.online.edf import stable_machine_assignment
from repro.online.engine import OnlineEngine, simulate
from repro.online.nonmigratory import FirstFitEDF


class TestModelCorners:
    def test_max_deadline(self):
        inst = Instance([Job(0, 1, 5, id=0), Job(1, 1, 9, id=1)])
        assert inst.max_deadline == 9

    def test_max_deadline_empty_raises(self):
        with pytest.raises(ValueError):
            Instance([]).max_deadline

    def test_intersect_interval(self):
        u = IntervalUnion.from_pairs([(0, 2), (4, 6)])
        assert u.intersect_interval(Interval(1, 5)).length == 2

    def test_delta_ratio_empty(self):
        assert Instance([]).delta_ratio == 1


class TestEngineCorners:
    def test_machine_jobs_includes_finished(self):
        inst = Instance([Job(0, 1, 2, id=0), Job(3, 1, 5, id=1)])
        eng = simulate(FirstFitEDF(), inst, machines=1)
        assert len(eng.machine_jobs(0)) == 2  # both, including finished

    def test_event_budget_exhaustion(self):
        from repro.online.base import Policy

        class Thrasher(Policy):
            migratory = True

            def select(self, engine):
                return {}

            def next_wakeup(self, engine):
                # pathological: wake up in vanishing increments forever
                return engine.time + Fraction(1, 10**6)

        eng = OnlineEngine(Thrasher(), machines=1)
        eng.release([Job(0, 1, 10**9, id=0)])
        with pytest.raises(EngineError, match="budget"):
            eng.run_to_completion()

    def test_used_machines_with_migration(self):
        from repro.online.llf import LLF

        inst = Instance([Job(0, 2, 3, id=i) for i in range(3)])
        eng = simulate(LLF(), inst, machines=2)
        assert eng.used_machines == {0, 1}

    def test_stable_assignment_keeps_running_job(self):
        inst = Instance([Job(0, 4, 10, id=0), Job(1, 1, 3, id=1)])
        from repro.online.edf import EDF

        eng = simulate(EDF(), inst, machines=2)
        # job 0 ran from t=0; it must never have hopped machines
        assert len({s.machine for s in eng.schedule().job_segments(0)}) == 1

    def test_run_speed_fit_wrapper(self, parallel_units):
        engine = run_speed_fit(parallel_units, machines=1, speed=3)
        assert not engine.missed_jobs


class TestClassBaselineCorners:
    def test_job_class_boundaries(self):
        assert ClassBasedNonPreemptive.job_class(Job(0, 1, 9)) == 0
        assert ClassBasedNonPreemptive.job_class(Job(0, 2, 9)) == 1
        assert ClassBasedNonPreemptive.job_class(Job(0, 3, 9)) == 1
        assert ClassBasedNonPreemptive.job_class(Job(0, 4, 9)) == 2

    def test_fractional_processing_class(self):
        assert ClassBasedNonPreemptive.job_class(Job(0, Fraction(1, 2), 9)) == -1


class TestFallbackPaths:
    def test_commit_fallback_least_loaded(self):
        # both machines infeasible for the newcomer: least-loaded wins
        inst = Instance(
            [Job(0, 4, 4, id=0), Job(0, 2, 2, id=1), Job(0, 4, 4, id=2)]
        )
        eng = simulate(FirstFitEDF(), inst, machines=2)
        # batch order is (deadline, id): job 1 → machine 0, job 0 → machine 1;
        # job 2 fits nowhere and falls back to the least-loaded machine,
        # which is machine 0 (remaining work 2 vs 4)
        assert eng.committed_machine(2) == 0
        assert eng.missed_jobs  # the overload is recorded honestly
