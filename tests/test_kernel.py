"""The compiled Dinic kernel: build cache, fallback ladder, bit-identity.

Four angles on ``repro.offline.kernel``:

* **Build cache** — the shared object is compiled once per source content
  into ``REPRO_KERNEL_CACHE``; a second load is a pure ``dlopen`` (cache
  hit, no compiler), and a warm cache keeps working after the compiler
  disappears.
* **Fallback ladder** — with no compiler and a cold cache (or with
  ``REPRO_DINIC_C=off``) the kernel reports unavailable, ``best_kernel``
  steps down to the interpreted kernels, ``auto`` resolves past
  ``dinic_c``, and the solver stack keeps answering; only an *explicit*
  ``backend="dinic_c"`` request surfaces :class:`KernelUnavailable`.
* **Bit-identity** — the C kernel is the same algorithm as the python
  kernel on the same buffers, so its residual capacity array (not just the
  flow value) must match byte for byte, on random CSR graphs and through
  the full certificate pipeline over the golden corpus.
* **Kill set** (``TestKillSet``) — small deterministic py-vs-c equality
  checks wired into ``tools/mutation_smoke.py``; with ``auto`` resolving
  to ``dinic_c`` everywhere else, these are what keep mutants of the
  python kernel and of the C dispatch dead.
"""

from __future__ import annotations

import json
import os
import random
from array import array
from fractions import Fraction

import pytest

from repro.model import Instance, Job
from repro.model.io import load
from repro.offline import kernel
from repro.offline.dinic import Dinic, FeasibilityNetwork
from repro.offline.feascache import cache_for
from repro.offline.flow import (
    available_backends,
    migratory_feasible,
    resolve_backend,
)
from repro.offline.kernel import KernelUnavailable
from repro.offline.kernel.codegen import ABI_VERSION, source_hash
from repro.verify import Unsatisfiable, certified_optimum

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "data", "corpus")

with open(os.path.join(CORPUS_DIR, "expectations.json"), "r", encoding="utf-8") as fh:
    CORPUS_CASES = json.load(fh)["cases"]

HAVE_COMPILER = kernel.find_compiler() is not None

needs_compiler = pytest.mark.skipif(
    not HAVE_COMPILER, reason="no C compiler on this host"
)


@pytest.fixture(autouse=True)
def _neutral_disable_knob(monkeypatch):
    """Shield this module from an ambient ``REPRO_DINIC_C=off``.

    The no-kernel CI leg disables the compiled kernel for the *product*
    code, but this file tests the kernel machinery itself and sets the
    knob explicitly where the disabled path is under test
    (``test_disable_env_wins_even_with_compiler``).  Without this, the
    build-cache and bit-identity tests would fail on that leg instead of
    exercising the real build.
    """
    if os.environ.get(kernel.DISABLE_ENV):
        monkeypatch.delenv(kernel.DISABLE_ENV)
        kernel.reset()
        yield
        kernel.reset()
    else:
        yield


@pytest.fixture
def kernel_memo():
    """Reset the process-wide kernel memo around a test that flips env knobs.

    The memo is reset again at teardown so later tests re-resolve against
    the real environment (their first load is a cache hit on the real
    cache, no compiler needed).
    """
    kernel.reset()
    yield
    kernel.reset()


def random_csr(rng: random.Random, n: int, arcs: int):
    """A random small flow network in the Dinic builder's CSR form."""
    d = Dinic(n)
    for _ in range(arcs):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            d.add_edge(u, v, rng.randrange(0, 9))
    d.finalize()
    return d


def clone(d: Dinic) -> Dinic:
    """A solver over the same (shared) topology with a private cap copy."""
    return Dinic.from_csr(d.n, d.to, array("q", d.cap), d._head, d._elist)


def cert_dict(cert) -> dict:
    """A certificate's payload without the solver-effort bookkeeping.

    ``cache_stats`` counts probes against the *shared* per-instance cache,
    so the second backend to run sees larger totals; the witness itself —
    schedule or overloaded set — is what must be identical.
    """
    payload = cert.to_dict()
    payload.pop("cache_stats", None)
    return payload


class TestBuildCache:
    @needs_compiler
    def test_cold_build_then_cache_hit(self, kernel_memo, monkeypatch, tmp_path):
        monkeypatch.setenv(kernel.CACHE_ENV, str(tmp_path))
        kernel.reset()
        kernel.load()
        first = kernel.build_info()
        assert first["available"] is True
        assert first["cache_hit"] is False
        assert first["compiler"]
        assert first["path"].startswith(str(tmp_path))
        assert first["key"] == source_hash()

        kernel.reset()
        kernel.load()
        second = kernel.build_info()
        assert second["cache_hit"] is True
        assert second["compiler"] is None
        assert second["path"] == first["path"]

    @needs_compiler
    def test_warm_cache_needs_no_compiler(self, kernel_memo, monkeypatch, tmp_path):
        monkeypatch.setenv(kernel.CACHE_ENV, str(tmp_path))
        kernel.reset()
        kernel.load()  # compile into the fresh cache

        # The compiler vanishes; the cached object must still dlopen.
        monkeypatch.setenv(kernel.CC_ENV, str(tmp_path / "no-such-cc"))
        kernel.reset()
        assert kernel.find_compiler() is None
        kernel.load()
        assert kernel.build_info()["cache_hit"] is True

    @needs_compiler
    def test_cache_key_is_content_addressed(self, kernel_memo, monkeypatch, tmp_path):
        monkeypatch.setenv(kernel.CACHE_ENV, str(tmp_path))
        kernel.reset()
        kernel.load()
        info = kernel.build_info()
        # The object lives under a prefix of the source hash, so editing
        # the generated C (or bumping ABI_VERSION) can never collide with
        # this directory.
        assert ABI_VERSION == 1
        assert os.path.dirname(info["path"]).endswith(info["key"][:24])


class TestFallbackLadder:
    def test_no_compiler_cold_cache_unavailable(self, kernel_memo, monkeypatch, tmp_path):
        monkeypatch.setenv(kernel.CACHE_ENV, str(tmp_path / "empty"))
        monkeypatch.setenv(kernel.CC_ENV, str(tmp_path / "no-such-cc"))
        kernel.reset()
        with pytest.raises(KernelUnavailable):
            kernel.load()
        assert not kernel.available()
        assert kernel.best_kernel() in ("np", "py")  # numpy-dependent
        assert resolve_backend("auto") in ("dinic_np", "dinic")
        assert "dinic_c" not in available_backends()
        assert "error" in kernel.build_info()

    def test_disable_env_wins_even_with_compiler(self, kernel_memo, monkeypatch):
        monkeypatch.setenv(kernel.DISABLE_ENV, "off")
        kernel.reset()
        assert kernel.disabled()
        assert not kernel.available()
        assert resolve_backend("auto") != "dinic_c"
        assert kernel.build_info()["disabled"] is True

    def test_auto_still_solves_without_kernel(self, kernel_memo, monkeypatch, tmp_path):
        monkeypatch.setenv(kernel.CACHE_ENV, str(tmp_path / "empty"))
        monkeypatch.setenv(kernel.CC_ENV, str(tmp_path / "no-such-cc"))
        kernel.reset()
        inst = Instance([Job(0, 2, 3, id=i) for i in range(3)])
        assert migratory_feasible(inst, 2, backend="auto")
        assert not migratory_feasible(inst, 1, backend="auto")

    def test_explicit_dinic_c_request_surfaces_error(
        self, kernel_memo, monkeypatch, tmp_path
    ):
        monkeypatch.setenv(kernel.CACHE_ENV, str(tmp_path / "empty"))
        monkeypatch.setenv(kernel.CC_ENV, str(tmp_path / "no-such-cc"))
        kernel.reset()
        inst = Instance([Job(0, 2, 3, id=i) for i in range(3)])
        with pytest.raises(KernelUnavailable):
            migratory_feasible(inst, 2, backend="dinic_c")


@needs_compiler
class TestBitIdentical:
    """C kernel vs python kernel: same residual caps, byte for byte."""

    def test_random_graphs_full_and_limited(self):
        rng = random.Random(9)
        for trial in range(120):
            n = rng.randrange(2, 12)
            d_py = random_csr(rng, n, rng.randrange(1, 4 * n))
            d_c = clone(d_py)
            s, t = rng.sample(range(n), 2)
            limit = rng.choice([None, None, rng.randrange(0, 12)])
            f_py = d_py.max_flow(s, t, limit=limit, kernel="py")
            f_c = d_c.max_flow(s, t, limit=limit, kernel="c")
            assert f_py == f_c, f"trial {trial}: flow {f_py} != {f_c}"
            assert d_py.cap.tobytes() == d_c.cap.tobytes(), f"trial {trial}"

    def test_drain_and_regrow_match(self):
        """Warm-start sequence (grow, drain, restore) sees the same bytes."""
        rng = random.Random(23)
        jobs = []
        for i in range(25):
            release = rng.randrange(0, 20)
            processing = rng.randrange(1, 6)
            deadline = release + processing + rng.randrange(0, 8)
            jobs.append(Job(release, processing, deadline, id=i))
        cache = cache_for(Instance(jobs))
        for m in (3, 1, 5, 2, 4, 2):
            net_py = cache.solved_network(m, 1, "py")
            state_py = (net_py.feasible, net_py.snapshot())
            net_c = cache.solved_network(m, 1, "c")
            state_c = (net_c.feasible, net_c.snapshot())
            assert state_py == state_c, f"diverged at m={m}"

    @pytest.mark.parametrize(
        "case",
        CORPUS_CASES,
        ids=lambda c: f"{c['file']}@s={c['speed']}",
    )
    def test_corpus_certificates_identical(self, case):
        instance = load(os.path.join(CORPUS_DIR, case["file"]))
        speed = Fraction(case["speed"])
        if case.get("unsat"):
            for backend in ("dinic", "dinic_c"):
                with pytest.raises(Unsatisfiable):
                    certified_optimum(instance, speed, backend=backend)
            return
        co_py = certified_optimum(instance, speed, backend="dinic")
        co_c = certified_optimum(instance, speed, backend="dinic_c")
        assert co_py.machines == co_c.machines
        assert cert_dict(co_py.feasible) == cert_dict(co_c.feasible)
        if co_py.infeasible is None:
            assert co_c.infeasible is None
        else:
            assert cert_dict(co_py.infeasible) == cert_dict(co_c.infeasible)


@needs_compiler
class TestKillSet:
    """Fast deterministic py-vs-c checks for the mutation smoke gate."""

    def test_fixed_graph_caps_identical(self):
        rng = random.Random(4)
        d_py = random_csr(rng, 8, 24)
        d_c = clone(d_py)
        assert d_py.max_flow(0, 7, kernel="py") == d_c.max_flow(0, 7, kernel="c")
        assert d_py.cap.tobytes() == d_c.cap.tobytes()

    @pytest.mark.parametrize("name", ["overload_six.json", "nested_tight.json",
                                      "fractional_thirds.json"])
    def test_corpus_pair_certificates(self, name):
        instance = load(os.path.join(CORPUS_DIR, name))
        co_py = certified_optimum(instance, backend="dinic")
        co_c = certified_optimum(instance, backend="dinic_c")
        assert co_py.machines == co_c.machines
        assert cert_dict(co_py.feasible) == cert_dict(co_c.feasible)

    def test_standalone_build_matches_tables_build(self):
        """The no-tables constructor builds the *same network*, byte for byte.

        Production always goes through the cache's integer tables; the
        standalone path is the reference construction, so any drift between
        the two (topology, capacities, or post-solve residual) is a bug in
        one of them — for the python and the compiled build alike.
        """
        inst = Instance(
            [Job(0, 3, 5, id=0), Job(1, 2, 4, id=1), Job(2, 4, 9, id=2),
             Job(0, 1, 2, id=3), Job(3, 2, 6, id=4)]
        )
        cache = cache_for(inst)
        tables = cache.tables
        scale = cache.scale_for(Fraction(1))
        for kern in ("py", "c"):
            standalone = FeasibilityNetwork(
                inst, Fraction(1), tables.intervals, scale, kernel=kern
            )
            cached = FeasibilityNetwork(
                inst, Fraction(1), tables.intervals, scale, kernel=kern,
                tables=tables,
            )
            assert list(standalone.dinic.to) == list(cached.dinic.to), kern
            assert standalone.dinic.cap.tobytes() == cached.dinic.cap.tobytes()
            for m in (1, 2, 3):
                standalone.set_machines(m)
                cached.set_machines(m)
                standalone.solve()
                cached.solve()
                assert standalone.feasible == cached.feasible, (kern, m)
                assert standalone.dinic.cap.tobytes() == (
                    cached.dinic.cap.tobytes()
                ), (kern, m)

    def test_greedy_and_grow_paths_match(self):
        inst = Instance(
            [Job(0, 3, 5, id=0), Job(1, 2, 4, id=1), Job(2, 4, 9, id=2),
             Job(0, 1, 2, id=3)]
        )
        cache = cache_for(inst)
        scale = cache.scale_for(Fraction(1))
        for m in (1, 2, 3):
            net_py = cache.solved_network(m, 1, "py")
            feas_py, snap_py = net_py.feasible, net_py.snapshot()
            work_py = net_py.work_by_job(Fraction(1), scale) if feas_py else None
            net_c = cache.solved_network(m, 1, "c")
            assert net_c.feasible == feas_py
            assert net_c.snapshot() == snap_py
            if feas_py:
                assert net_c.work_by_job(Fraction(1), scale) == work_py


class TestResolution:
    def test_auto_resolves_to_best(self):
        resolved = resolve_backend("auto")
        assert resolved in ("dinic_c", "dinic_np", "dinic")
        if kernel.available():
            assert resolved == "dinic_c"

    def test_available_backends_subset(self):
        got = available_backends()
        assert "dinic" in got and "networkx" in got
        assert ("dinic_c" in got) == kernel.available()

    def test_concrete_backends_pass_through(self):
        assert resolve_backend("dinic") == "dinic"
        assert resolve_backend("networkx") == "networkx"
        with pytest.raises(ValueError):
            resolve_backend("no-such-backend")
