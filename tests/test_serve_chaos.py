"""Kill-resume chaos tests for the serve layer (ISSUE 10).

The headline contract: **kill the daemon at any point — gracefully or with
SIGKILL — restart it over the same journal directory, and every
acknowledged sweep resumes to a report byte-identical
(``canonical_report_view``) to an uninterrupted offline run.**

Mechanically this works because a graceful drain checkpoints through the
same code path a crash exercises: the journal prefix on disk after
``begin_drain`` is indistinguishable from a SIGKILL at that record
boundary.  So the hypothesis property below drives *drain-after-k-items*
as a deterministic stand-in for "SIGKILL after k items", and the
subprocess tests pin the real-signal ends of the spectrum:

* in-process: drain at every journal prefix (hypothesis), resume → equal,
* in-process: a torn journal tail injected between generations is trimmed
  and the resume still converges,
* subprocess: SIGKILL the real daemon mid-sweep, restart, poll to done,
* subprocess: SIGTERM under load → exit 0, no torn tail, restart resumes,
* subprocess (satellite 1): ``repro sweep`` SIGTERM ≡ Ctrl-C — exit 130,
  flushed journal, ``--resume`` completes to the clean-run report.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.sinks import jsonable
from repro.runner import canonical_report_view, read_journal, run_sweep
from repro.serve.queue import SweepQueue, normalize_spec, plan_from_spec

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: 4-item sweep for the in-process prefix property (milliseconds each).
SMALL_SPEC = {
    "kind": "ratio", "policies": ["edf"], "families": ["uniform"],
    "n": 5, "seeds": 4, "root_seed": 7,
}
#: 48-item sweep (~50 ms/item) — wide enough to land a signal mid-run.
BIG_SPEC = {
    "kind": "ratio", "policies": ["edf"], "families": ["uniform"],
    "n": 120, "seeds": 48,
}

_baselines = {}


def baseline(spec):
    """Canonical view of the clean offline run; computed once per spec."""
    key = json.dumps(spec, sort_keys=True)
    if key not in _baselines:
        report = run_sweep(plan_from_spec(normalize_spec(spec)))
        _baselines[key] = canonical_report_view(
            json.loads(json.dumps(jsonable(report.snapshot())))
        )
    return _baselines[key]


def wait_for(predicate, timeout, what):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError(f"timed out after {timeout}s waiting for {what}")


def run_to_done(journal_dir, sweep_id, timeout=60.0):
    """Fresh queue generation over ``journal_dir``; returns the done status."""
    queue = SweepQueue(journal_dir).start()
    try:
        wait_for(
            lambda: queue.status(sweep_id)["state"] == "done",
            timeout, f"sweep {sweep_id} to finish",
        )
        return queue.status(sweep_id)
    finally:
        assert queue.drain(10) is True


class TestKillPointConformance:
    """Drain after every journal prefix ≡ SIGKILL there; resume converges."""

    @settings(max_examples=10, deadline=None)
    @given(k=st.integers(min_value=0, max_value=4))
    def test_drain_at_any_prefix_resumes_byte_identical(self, k):
        with tempfile.TemporaryDirectory() as journal_dir:
            gen1 = SweepQueue(journal_dir)
            sweep_id, _, _ = gen1.submit(dict(SMALL_SPEC))
            seen = [0]

            def hook(sid, result):
                seen[0] += 1
                if seen[0] == k:
                    gen1.begin_drain()

            if k == 0:
                gen1.begin_drain()  # the prefix-0 kill: before any item
                gen1.start()
            else:
                gen1.on_item = hook
                gen1.start()
                wait_for(
                    lambda: gen1.checkpointed or gen1.completed,
                    30, "generation 1 to checkpoint or finish",
                )
            assert gen1.drain(30) is True

            journal = os.path.join(journal_dir, f"{sweep_id}.journal.jsonl")
            _, records, dropped = read_journal(journal)
            assert dropped == 0  # a drain is polite: no torn tail
            # tick k fires the drain, item k+1 journals then interrupts —
            # unless the sweep ran out of items first.
            assert len(records) == (0 if k == 0 else min(k + 1, 4))

            status = run_to_done(journal_dir, sweep_id)
            assert canonical_report_view(status["report"]) == baseline(SMALL_SPEC)

    def test_torn_tail_between_generations_is_trimmed(self):
        with tempfile.TemporaryDirectory() as journal_dir:
            gen1 = SweepQueue(journal_dir)
            sweep_id, _, _ = gen1.submit(dict(SMALL_SPEC))
            seen = [0]

            def hook(sid, result):
                seen[0] += 1
                if seen[0] == 2:
                    gen1.begin_drain()

            gen1.on_item = hook
            gen1.start()
            wait_for(lambda: gen1.checkpointed, 30, "a checkpoint")
            assert gen1.drain(30) is True

            # A SIGKILL mid-append leaves a half-written record: fake one.
            journal = os.path.join(journal_dir, f"{sweep_id}.journal.jsonl")
            with open(journal, "a", encoding="utf-8") as fh:
                fh.write('{"kind":"item","index":3,"torn')
            assert read_journal(journal)[2] == 1  # the tail is invisible

            status = run_to_done(journal_dir, sweep_id)
            assert canonical_report_view(status["report"]) == baseline(SMALL_SPEC)
            # The resume trimmed the torn line before appending fresh
            # outcomes; the finished journal is fully valid again.
            assert read_journal(journal)[2] == 0


def start_daemon(journal_dir, timeout=20.0):
    """Launch ``repro serve`` on an ephemeral port; returns (proc, base_url)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["PYTHONUNBUFFERED"] = "1"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--port", "0", "--journal-dir", journal_dir],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env, cwd=REPO,
    )
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        if "listening on" in line:
            return proc, line.strip().rsplit(" ", 1)[-1]
    proc.kill()
    raise AssertionError("daemon never printed its listening banner")


def http_json(method, url, payload=None, timeout=10.0):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def settled(url, sweep_id):
    _, body = http_json("GET", f"{url}/v1/sweeps/{sweep_id}")
    if body.get("state") == "done":
        return 48
    return body.get("progress", {}).get("settled", 0)


@pytest.mark.slow
class TestDaemonSignals:
    """The real daemon under real signals — the CI scenario, in miniature."""

    def test_sigkill_mid_sweep_then_restart_resumes(self, tmp_path):
        journal_dir = str(tmp_path / "serve-journal")
        proc, url = start_daemon(journal_dir)
        try:
            status, body = http_json("POST", f"{url}/v1/sweeps", BIG_SPEC)
            assert status == 202
            sweep_id = body["id"]
            # Let some items land, then die without ceremony.
            wait_for(lambda: settled(url, sweep_id) >= 2, 30, "2 settled items")
        finally:
            proc.kill()
            proc.wait(timeout=30)

        proc2, url2 = start_daemon(journal_dir)
        try:
            # The restarted daemon owns the sweep without being asked.
            wait_for(
                lambda: http_json(
                    "GET", f"{url2}/v1/sweeps/{sweep_id}"
                )[1]["state"] == "done",
                120, "the resumed sweep to finish",
            )
            _, done = http_json("GET", f"{url2}/v1/sweeps/{sweep_id}")
            assert canonical_report_view(done["report"]) == baseline(BIG_SPEC)
        finally:
            proc2.send_signal(signal.SIGTERM)
            out, _ = proc2.communicate(timeout=60)
        assert proc2.returncode == 0
        assert "drained, exiting" in out

    def test_sigterm_under_load_drains_and_restart_completes(self, tmp_path):
        journal_dir = str(tmp_path / "serve-journal")
        proc, url = start_daemon(journal_dir)
        sweep_id = None
        try:
            status, body = http_json("POST", f"{url}/v1/sweeps", BIG_SPEC)
            assert status == 202
            sweep_id = body["id"]
            wait_for(lambda: settled(url, sweep_id) >= 2, 30, "2 settled items")
            # /metrics is alive under load (the CI job scrapes it).
            metrics = urllib.request.urlopen(f"{url}/metrics", timeout=10)
            assert metrics.status == 200
            assert b"repro_serve_requests_total" in metrics.read()
        finally:
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
        assert proc.returncode == 0
        assert "drained, exiting" in out

        # A polite death never tears the journal.
        journal = os.path.join(journal_dir, f"{sweep_id}.journal.jsonl")
        _, records, dropped = read_journal(journal)
        assert dropped == 0
        assert len(records) >= 2

        status = run_to_done(journal_dir, sweep_id, timeout=120)
        assert canonical_report_view(status["report"]) == baseline(BIG_SPEC)


@pytest.mark.slow
class TestSweepSigterm:
    """Satellite 1: SIGTERM on ``repro sweep`` ≡ Ctrl-C, resume completes."""

    def _sweep_cmd(self, journal, extra=()):
        return [
            sys.executable, "-m", "repro.cli", "sweep", "ratio",
            "--policies", "edf", "--families", "uniform",
            "-n", str(BIG_SPEC["n"]), "--seeds", str(BIG_SPEC["seeds"]),
            "--journal", journal, *extra,
        ]

    def test_sigterm_flushes_journal_and_resume_completes(self, tmp_path):
        journal = str(tmp_path / "sweep.journal.jsonl")
        snapshot = str(tmp_path / "resumed.json")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO, "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.Popen(
            self._sweep_cmd(journal),
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env, cwd=REPO,
        )
        try:
            def has_progress():
                if not os.path.exists(journal):
                    return False
                with open(journal, encoding="utf-8") as fh:
                    return sum(1 for _ in fh) >= 3  # header + 2 items
            wait_for(has_progress, 30, "2 journaled items")
        finally:
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)

        # Two legitimate shapes, depending on where the signal landed:
        # mid-item → run_sweep catches the interrupt and returns a partial
        # report (cancelled items, exit 1); between chunks → the interrupt
        # escapes and the CLI reports the cancellation itself (exit 130).
        # Either way: a report, a resume hint, and never a traceback.
        assert proc.returncode in (1, 130), out
        if proc.returncode == 130:
            assert "sweep interrupted; journal flushed" in out
        else:
            assert "cancelled" in out
        assert "--resume" in out  # the hint names the way forward
        assert "Traceback" not in out

        header, records, dropped = read_journal(journal)
        assert header is not None
        assert dropped == 0  # flushed, fsynced, no torn tail
        assert len(records) >= 2

        done = subprocess.run(
            self._sweep_cmd(journal, ("--resume", "--snapshot", snapshot)),
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env, cwd=REPO, timeout=120,
        )
        assert done.returncode == 0, done.stdout
        with open(snapshot, encoding="utf-8") as fh:
            resumed = json.load(fh)
        assert canonical_report_view(resumed) == baseline(BIG_SPEC)
