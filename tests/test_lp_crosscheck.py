"""Differential testing: flow solver vs independent LP formulation."""

from fractions import Fraction

import pytest
from hypothesis import given, settings

from repro.model import Instance, Job
from repro.offline.flow import migratory_feasible
from repro.offline.lp import lp_feasible
from repro.offline.optimum import migratory_optimum

from tests.strategies import instances_st


class TestAgreement:
    def test_known_cases(self, parallel_units, mcnaughton_instance):
        for inst, m, expected in [
            (parallel_units, 2, False),
            (parallel_units, 3, True),
            (mcnaughton_instance, 1, False),
            (mcnaughton_instance, 2, True),
        ]:
            assert lp_feasible(inst, m) is expected
            assert migratory_feasible(inst, m) is expected

    def test_empty(self):
        assert lp_feasible(Instance([]), 0) is True

    def test_zero_machines(self):
        assert lp_feasible(Instance([Job(0, 1, 1, id=0)]), 0) is False

    @given(instances_st(max_size=7))
    @settings(max_examples=40, deadline=None)
    def test_differential_at_optimum(self, inst):
        """Both oracles must agree exactly at m = OPT and m = OPT − 1.

        The boundary is where float LP could disagree; random integer-grid
        instances keep the LP comfortably away from degenerate ties."""
        m = migratory_optimum(inst)
        assert lp_feasible(inst, m) is True
        if m > 1:
            assert lp_feasible(inst, m - 1) is False

    @given(instances_st(max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_differential_with_speed(self, inst):
        m = migratory_optimum(inst, speed=2)
        assert lp_feasible(inst, m, speed=2) is True

    def test_fractional_instance(self):
        inst = Instance(
            [Job(Fraction(1, 3), Fraction(5, 7), Fraction(13, 6), id=0),
             Job(Fraction(1, 2), Fraction(5, 7), Fraction(13, 6), id=1)]
        )
        for m in (1, 2):
            assert lp_feasible(inst, m) == migratory_feasible(inst, m)
