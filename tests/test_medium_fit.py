"""Tests for MediumFit (Lemma 8) and its packing/ablation machinery."""

from fractions import Fraction

import pytest
from hypothesis import given, settings

from repro.core.medium_fit import (
    MediumFit,
    fixed_slot,
    lemma8_bound,
    pack_fixed_intervals,
)
from repro.generators import agreeable_tight_instance
from repro.model import Instance, Job
from repro.model.intervals import Interval
from repro.offline.optimum import migratory_optimum

from tests.strategies import instances_st, jobs_st


class TestFixedSlot:
    def test_middle_anchor_centered(self):
        j = Job(0, 2, 6)  # laxity 4
        slot = fixed_slot(j)
        assert slot == Interval(2, 4)
        assert slot.length == j.processing

    def test_left_anchor(self):
        j = Job(0, 2, 6)
        assert fixed_slot(j, "left") == Interval(0, 2)

    def test_right_anchor(self):
        j = Job(0, 2, 6)
        assert fixed_slot(j, "right") == Interval(4, 6)

    def test_unknown_anchor(self):
        with pytest.raises(ValueError):
            fixed_slot(Job(0, 1, 2), "diagonal")

    @given(jobs_st())
    @settings(max_examples=60)
    def test_slot_length_is_processing(self, j):
        for anchor in ("middle", "left", "right"):
            slot = fixed_slot(j, anchor)
            assert slot.length == j.processing
            assert j.release <= slot.start and slot.end <= j.deadline


class TestPacking:
    def test_disjoint_one_machine(self):
        slots = [(0, Interval(0, 1)), (1, Interval(1, 2)), (2, Interval(3, 4))]
        assignment = pack_fixed_intervals(slots)
        assert set(assignment.values()) == {0}

    def test_overlap_needs_more(self):
        slots = [(0, Interval(0, 2)), (1, Interval(1, 3)), (2, Interval(1, 2))]
        assignment = pack_fixed_intervals(slots)
        assert len(set(assignment.values())) == 3

    def test_packing_equals_max_overlap(self):
        inst = agreeable_tight_instance(40, Fraction(1, 2), seed=11)
        mf = MediumFit()
        sched = mf.schedule(inst)
        assert sched.machines_used == mf.machines_needed(inst)

    def test_empty(self):
        assert pack_fixed_intervals([]) == {}


class TestMediumFit:
    def test_schedule_feasible_nonpreemptive(self):
        inst = agreeable_tight_instance(30, Fraction(1, 2), seed=12)
        sched = MediumFit().schedule(inst)
        rep = sched.verify(inst)
        assert rep.feasible
        assert rep.preemptions == 0
        assert rep.is_non_migratory

    @given(instances_st(max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_always_feasible_any_instance(self, inst):
        """MediumFit is trivially feasible: each job runs in its own slot."""
        rep = MediumFit().schedule(inst).verify(inst)
        assert rep.feasible

    @pytest.mark.parametrize("alpha", [Fraction(1, 2), Fraction(7, 10)])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_lemma8_bound_holds(self, alpha, seed):
        """Lemma 8: MediumFit ≤ 16m/α on α-tight agreeable instances."""
        inst = agreeable_tight_instance(40, alpha, seed=seed)
        m = migratory_optimum(inst)
        used = MediumFit().machines_needed(inst)
        assert used <= lemma8_bound(m, alpha)

    def test_ablation_anchors_can_be_worse(self):
        """The paper notes left/right anchoring does not give O(m); the
        centering is load-bearing.  Construct a nested-release family where
        left-anchoring collides releases (this is the qualitative effect;
        the asymptotic gap is exercised in the ablation benchmark)."""
        jobs = [Job(0, 2, 20 - i, id=i) for i in range(8)]
        inst = Instance(jobs)
        left = MediumFit("left").machines_needed(inst)
        middle = MediumFit("middle").machines_needed(inst)
        assert left >= middle

    def test_zero_laxity_jobs_run_whole_window(self):
        inst = Instance([Job(0, 3, 3, id=0)])
        sched = MediumFit().schedule(inst)
        seg = sched.job_segments(0)[0]
        assert seg.start == 0 and seg.end == 3
