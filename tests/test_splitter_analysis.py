"""Tests for the dispatcher, metrics, reporting, and Gantt rendering."""

from fractions import Fraction

import pytest

from repro.analysis.gantt import render_gantt, render_witness
from repro.analysis.metrics import (
    ScheduleStats,
    evaluate_schedule,
    theorem2_bound,
    theorem13_bound,
)
from repro.analysis.report import format_table, print_table
from repro.core.adversary.migration_gap import MigrationGapAdversary
from repro.core.adversary.nonpreemptive import ClassBasedNonPreemptive
from repro.core.splitter import classify, dispatch
from repro.generators import (
    agreeable_instance,
    laminar_random,
    loose_instance,
    uniform_random_instance,
)
from repro.model import Instance, Job, Schedule, Segment
from repro.online.nonmigratory import FirstFitEDF


class TestClassify:
    def test_empty(self):
        assert classify(Instance([])) == "empty"

    def test_loose(self):
        assert classify(loose_instance(15, Fraction(1, 4), seed=0)) == "loose"

    def test_agreeable(self):
        inst = agreeable_instance(20, max_slack=2, seed=1)
        if inst.max_density > Fraction(2, 5):
            assert classify(inst) == "agreeable"

    def test_laminar(self):
        inst = laminar_random(20, density_range=(0.6, 0.9), seed=2)
        assert classify(inst) == "laminar"

    def test_general(self):
        # proper overlap, tight, not agreeable
        inst = Instance([Job(0, 4, 5, id=0), Job(1, 2, 9, id=1), Job(3, 4, 8, id=2)])
        assert classify(inst) == "general"


class TestDispatch:
    @pytest.mark.parametrize(
        "maker,expected",
        [
            (lambda: loose_instance(12, Fraction(1, 4), seed=3), "loose"),
            (lambda: laminar_random(15, density_range=(0.6, 0.9), seed=4), "laminar"),
            (lambda: Instance([]), "empty"),
        ],
    )
    def test_routes_and_schedules(self, maker, expected):
        inst = maker()
        result = dispatch(inst)
        assert result.instance_class == expected
        if len(inst):
            assert result.schedule.verify(inst).feasible

    def test_general_fallback(self):
        inst = Instance([Job(0, 4, 5, id=0), Job(1, 2, 9, id=1), Job(3, 4, 8, id=2)])
        result = dispatch(inst)
        assert result.instance_class == "general"
        assert "Theorem 3" in result.guarantee
        assert result.schedule.verify(inst).feasible

    def test_agreeable_route(self):
        inst = agreeable_instance(25, max_slack=1, seed=5)
        result = dispatch(inst)
        assert result.instance_class in ("agreeable", "loose")
        assert result.schedule.verify(inst).feasible


class TestMetrics:
    def test_evaluate_basic(self, mcnaughton_instance):
        sched = Schedule(
            [Segment(0, 0, 0, 2), Segment(1, 1, 0, 2), Segment(2, 0, 2, 3),
             Segment(2, 1, 2, 3)]
        )
        # deliberately infeasible (job 2 double-booked in parallel with itself)
        stats = evaluate_schedule(mcnaughton_instance, sched)
        assert not stats.feasible

    def test_ratio_properties(self, parallel_units):
        from repro.online.engine import simulate
        from repro.online.edf import EDF

        eng = simulate(EDF(), parallel_units, machines=3)
        stats = evaluate_schedule(parallel_units, eng.schedule(), with_nonmigratory_opt=True)
        assert stats.feasible
        assert stats.machines_over_opt == 1
        assert stats.competitive_ratio_upper == 1

    def test_theorem_bounds(self):
        assert theorem2_bound(3) == 13
        assert theorem2_bound(0) == 0
        assert theorem13_bound(2, Fraction(1, 2)) == 8


class TestRendering:
    def test_gantt_smoke(self):
        sched = Schedule([Segment(0, 0, 0, 2), Segment(1, 1, 1, 3)])
        art = render_gantt(sched, width=20)
        assert "M0" in art and "M1" in art

    def test_gantt_empty(self):
        assert "empty" in render_gantt(Schedule([]))

    def test_gantt_labels(self):
        sched = Schedule([Segment(7, 0, 0, 1)])
        art = render_gantt(sched, width=10, labels={7: "X"})
        assert "X" in art

    def test_render_witness_figure1(self):
        adv = MigrationGapAdversary(FirstFitEDF(), machines=7)
        res = adv.run(4)
        art = render_witness(res.node, width=80)
        assert "critical time" in art
        assert "L" in art  # the long job appears

    def test_format_table(self):
        text = format_table("T", ["a", "bb"], [[1, Fraction(1, 2)], [22, 3.14159]])
        assert "== T ==" in text
        assert "0.500" in text
        assert "3.142" in text

    def test_print_table_smoke(self, capsys):
        print_table("X", ["c"], [[True]])
        out = capsys.readouterr().out
        assert "yes" in out


class TestClassBaseline:
    def test_schedule_feasible_nonpreemptive(self):
        inst = uniform_random_instance(20, max_slack=30, seed=6)
        scheduler = ClassBasedNonPreemptive()
        sched, per_class = scheduler.schedule(inst)
        rep = sched.verify(inst)
        assert rep.feasible
        assert rep.preemptions == 0
        assert rep.is_non_migratory

    def test_class_count_tracks_delta(self):
        inst = Instance([Job(0, 1, 40, id=0), Job(0, 9, 40, id=1), Job(0, 33, 40, id=2)])
        assert ClassBasedNonPreemptive.class_count(inst) == 3

    def test_machines_compact(self):
        inst = uniform_random_instance(15, max_slack=40, seed=7)
        scheduler = ClassBasedNonPreemptive()
        sched, _ = scheduler.schedule(inst)
        assert sched.machines() == tuple(range(sched.machines_used))


class TestCompetitiveProfiler:
    def test_ratio_profile_basic(self):
        from fractions import Fraction as F

        from repro.analysis.competitive import ratio_profile
        from repro.generators import loose_instance
        from repro.online.llf import LLF

        profile = ratio_profile(
            "LLF", lambda: LLF(), "loose",
            lambda seed: loose_instance(12, F(1, 3), seed=seed), range(3),
        )
        assert profile.samples == 3
        assert profile.worst >= profile.med >= 1.0 or profile.worst >= 1.0
        assert profile.row()[0] == "LLF"

    def test_profile_matrix_shape(self):
        from fractions import Fraction as F

        from repro.analysis.competitive import profile_matrix
        from repro.generators import loose_instance
        from repro.online.edf import EDF
        from repro.online.llf import LLF

        rows = profile_matrix(
            {"EDF": lambda: EDF(), "LLF": lambda: LLF()},
            {"loose": lambda seed: loose_instance(10, F(1, 3), seed=seed)},
            range(2),
        )
        assert len(rows) == 2

    def test_empty_samples_rejected(self):
        from repro.analysis.competitive import ratio_profile
        from repro.model import Instance
        from repro.online.edf import EDF

        with pytest.raises(ValueError):
            ratio_profile("EDF", lambda: EDF(), "empty",
                          lambda seed: Instance([]), range(2))


class TestCsvOutput:
    def test_format_csv(self):
        from fractions import Fraction as F

        from repro.analysis.report import format_csv

        text = format_csv(["a", "b"], [[1, F(1, 2)], ["x,y", True]])
        lines = text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,0.500"
        assert '"x,y"' in lines[2]

    def test_save_csv(self, tmp_path):
        from repro.analysis.report import save_csv

        path = tmp_path / "out.csv"
        save_csv(str(path), ["h"], [[1], [2]])
        assert path.read_text().startswith("h")
