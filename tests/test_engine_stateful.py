"""Stateful hypothesis testing of the online engine.

A state machine drives the engine the way an adaptive adversary would —
interleaving releases, horizon advances, and inspections — and checks the
global invariants after every action:

* the clock never runs backwards,
* work is conserved (segments + remaining == processing for every job),
* active jobs are exactly the released-unfinished-unmissed ones,
* commitments are stable,
* at the end, the executed schedule verifies against the released jobs
  minus the missed ones.
"""

from fractions import Fraction

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.model import Instance, Job, Schedule
from repro.online.engine import OnlineEngine
from repro.online.nonmigratory import FirstFitEDF


class EngineMachine(RuleBasedStateMachine):
    @initialize(machines=st.integers(1, 4))
    def setup(self, machines):
        self.engine = OnlineEngine(FirstFitEDF(), machines=machines)
        self.released = {}
        self.next_id = 0
        self.commitments = {}

    @rule(
        delay=st.integers(0, 5),
        processing=st.integers(1, 4),
        slack=st.integers(0, 6),
    )
    def release_job(self, delay, processing, slack):
        r = self.engine.time + delay
        job = Job(r, processing, r + processing + slack, id=self.next_id)
        self.next_id += 1
        self.released[job.id] = job
        self.engine.release([job])

    @rule(advance=st.integers(1, 8))
    def run_forward(self, advance):
        self.engine.run_until(self.engine.time + Fraction(advance, 2))

    @rule()
    def record_commitments(self):
        for job_id in self.released:
            machine = self.engine.committed_machine(job_id)
            if machine is not None:
                previous = self.commitments.setdefault(job_id, machine)
                assert previous == machine, "commitment changed"

    @invariant()
    def work_conserved(self):
        if not hasattr(self, "engine"):
            return
        schedule = self.engine.schedule()
        for job_id, job in self.released.items():
            state = self.engine.state_of(job_id)
            done = schedule.work_of(job_id)
            assert done + state.remaining == job.processing

    @invariant()
    def active_set_consistent(self):
        if not hasattr(self, "engine"):
            return
        active_ids = {s.job.id for s in self.engine.active_jobs()}
        for job_id, job in self.released.items():
            state = self.engine.state_of(job_id)
            should_be_active = (
                job.release <= self.engine.time
                and not state.finished
                and not state.missed
            )
            assert (job_id in active_ids) == should_be_active

    @invariant()
    def no_unreported_misses(self):
        if not hasattr(self, "engine"):
            return
        for job_id, job in self.released.items():
            state = self.engine.state_of(job_id)
            if job.deadline < self.engine.time and state.remaining > 0:
                assert state.missed

    def teardown(self):
        if not hasattr(self, "engine"):
            return
        self.engine.run_to_completion()
        survivors = [
            job
            for job_id, job in self.released.items()
            if not self.engine.state_of(job_id).missed
        ]
        if survivors:
            schedule = self.engine.schedule().restricted_to_jobs(
                j.id for j in survivors
            )
            report = schedule.verify(Instance(survivors))
            assert report.feasible, report.violations[:3]
            assert report.is_non_migratory


EngineMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
TestEngineStateful = EngineMachine.TestCase
