"""Differential tests: event-interval sparsification on vs. off.

Sparsification (``repro.offline.feascache``) drops zero-demand elementary
intervals before the feasibility network is built.  The claim is not just
"same verdicts": dropped intervals carry no arc a maximum flow could use,
the greedy blocking order is invariant under the (monotone) reindexing, and
residual-reachability min cuts are the unique minimal source side — so the
*certificates* (schedules and Theorem-1 witnesses, as serialized dicts) must
be identical with sparsification on and off, for every backend, on the whole
golden corpus and on random instances.
"""

from __future__ import annotations

import json
import os
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import Instance, Job
from repro.model.io import load
from repro.obs import core as obs
from repro.offline.feascache import cache_for
from repro.offline.flow import available_backends, max_flow_assignment
from repro.offline.optimum import migratory_optimum
from repro.verify import Unsatisfiable, certified_optimum, certify

from tests.strategies import instances_st

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "data", "corpus")

with open(os.path.join(CORPUS_DIR, "expectations.json"), "r", encoding="utf-8") as fh:
    CASES = json.load(fh)["cases"]


def _case_id(case) -> str:
    return f"{case['file']}@s={case['speed']}"


def _strip_stats(cert_dict):
    """Certificates modulo solver statistics (probe counts may differ when a
    shared per-instance cache already holds verdicts from an earlier call)."""
    return {k: v for k, v in cert_dict.items() if k != "cache_stats"}


def _certified_pair(instance, speed, backend, sparsify):
    try:
        co = certified_optimum(instance, speed, backend=backend,
                               sparsify=sparsify)
    except Unsatisfiable as exc:
        return ("unsat", _strip_stats(exc.certificate.to_dict()))
    return (
        co.machines,
        _strip_stats(co.feasible.to_dict()),
        _strip_stats(co.infeasible.to_dict()) if co.infeasible else None,
    )


class TestGoldenCorpus:
    """Byte-identical serialized certificates across sparsify on/off."""

    @pytest.mark.parametrize("case", CASES, ids=_case_id)
    @pytest.mark.parametrize("backend", sorted(available_backends()))
    def test_certificates_identical(self, case, backend):
        instance = load(os.path.join(CORPUS_DIR, case["file"]))
        speed = Fraction(case["speed"])
        sparse = _certified_pair(instance, speed, backend, True)
        full = _certified_pair(instance, speed, backend, False)
        assert json.dumps(sparse, sort_keys=True) == json.dumps(
            full, sort_keys=True
        )

    @pytest.mark.parametrize("case", CASES, ids=_case_id)
    def test_kernels_identical(self, case):
        """dinic vs dinic_np: the numpy BFS yields bit-identical flows."""
        pytest.importorskip("numpy")
        instance = load(os.path.join(CORPUS_DIR, case["file"]))
        speed = Fraction(case["speed"])
        py = _certified_pair(instance, speed, "dinic", True)
        np_ = _certified_pair(instance, speed, "dinic_np", True)
        assert json.dumps(py, sort_keys=True) == json.dumps(np_, sort_keys=True)


class TestSparsificationEngages:
    """The reduction is real (not vacuously tested) and observable."""

    def test_two_bursts_drops_the_gap(self):
        instance = load(os.path.join(CORPUS_DIR, "two_bursts.json"))
        tables = cache_for(instance).tables
        assert tables.dropped >= 1  # the idle gap between the bursts
        assert len(tables.intervals) == tables.elementary_count - tables.dropped
        full = cache_for(instance, sparsify=False).tables
        assert full.dropped == 0
        assert len(full.intervals) == full.elementary_count

    def test_interval_lengths_are_preserved(self):
        instance = load(os.path.join(CORPUS_DIR, "two_bursts.json"))
        tables = cache_for(instance).tables
        for (a, b), lb in zip(tables.intervals, tables.len_base):
            assert (b - a) * tables.base_scale == lb

    def test_counters_surface_the_reduction(self):
        instance = load(os.path.join(CORPUS_DIR, "two_bursts.json"))
        with obs.capture() as reg:
            migratory_optimum(Instance(list(instance)))
        counters = reg.snapshot()["counters"]
        assert counters["network.intervals_dropped"] >= 1
        assert "network.nodes" in counters
        assert "network.edges" in counters

    def test_window_concurrency_matches_instance(self):
        for case in CASES:
            instance = load(os.path.join(CORPUS_DIR, case["file"]))
            cache = cache_for(instance)
            assert (
                cache.zero_laxity_concurrency
                == instance.zero_laxity_concurrency()
            )
            assert cache.total_work == instance.total_work


@st.composite
def gapped_instances_st(draw, max_jobs: int = 6):
    """Instances with far-apart bursts so sparsification actually fires."""
    n = draw(st.integers(1, max_jobs))
    jobs = []
    for i in range(n):
        burst = draw(st.integers(0, 3)) * 1000  # bursts separated by dead time
        release = Fraction(burst + draw(st.integers(0, 10)))
        processing = Fraction(draw(st.integers(1, 6)))
        slack = Fraction(draw(st.integers(0, 8)))
        jobs.append(Job(release, processing, release + processing + slack, id=i))
    return Instance(jobs)


class TestRandomInstances:
    @given(instance=instances_st(), m=st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_verdict_and_work_identical(self, instance, m):
        fs, ws, _ = max_flow_assignment(instance, m, sparsify=True)
        ff, wf, _ = max_flow_assignment(instance, m, sparsify=False)
        assert fs == ff
        # Same per-job totals; the interval *indices* differ (sparse list),
        # but the total machine time routed per job must match exactly.
        for job_id in ws:
            assert sum(ws[job_id].values(), Fraction(0)) == sum(
                wf[job_id].values(), Fraction(0)
            )

    @given(instance=gapped_instances_st())
    @settings(max_examples=30, deadline=None)
    def test_certificates_identical_on_gapped(self, instance):
        sparse = _certified_pair(instance, Fraction(1), "dinic", True)
        full = _certified_pair(instance, Fraction(1), "dinic", False)
        assert json.dumps(sparse, sort_keys=True) == json.dumps(
            full, sort_keys=True
        )

    @given(instance=gapped_instances_st())
    @settings(max_examples=20, deadline=None)
    def test_dropped_intervals_are_flow_invisible(self, instance):
        cache = cache_for(instance)
        tables = cache.tables
        m = migratory_optimum(instance)
        network = cache.solved_network(m, Fraction(1))
        assert network.feasible
        # Every kept interval matches its elementary length; total length
        # dropped is exactly the elementary span minus the kept span.
        kept_len = sum(b - a for a, b in tables.intervals)
        full_len = sum(b - a for a, b in cache.intervals)
        assert kept_len <= full_len
        if tables.dropped:
            assert kept_len < full_len
