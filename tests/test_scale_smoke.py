"""Scale smoke test: one feasibility probe at n = 100,000 under a deadline.

The flat-buffer kernel's contract is that a single warm probe stays linear
in the network size — no quadratic interval indexing, no per-edge Python
object graphs.  This test is the canary: it builds a 100k-job instance,
answers one feasibility question at the window-concurrency upper bound, and
must finish inside a hard wall-clock budget enforced by
:func:`repro.runner.faults.time_limit` (SIGALRM where available).  A
regression to quadratic behaviour blows the budget by an order of
magnitude rather than shaving a margin.
"""

from __future__ import annotations

import pytest

from repro.generators import uniform_random_instance
from repro.model import Instance
from repro.offline.feascache import cache_for
from repro.offline.flow import migratory_feasible, resolve_backend
from repro.runner.faults import ItemTimeout, time_limit

#: Wall-clock budget (seconds) for build + tables + one probe on the
#: fastest available backend (``auto``: dinic_c → dinic_np → dinic).  The
#: observed time on a development machine is ~4 s with the compiled kernel
#: (the probe itself is ~60 ms; the rest is instance + table construction);
#: the budget leaves ~10× headroom for slow compiler-less CI boxes while
#: still catching superlinear blowups (the pre-flat-buffer implementation
#: would need several minutes).
SMOKE_BUDGET_S = 45


@pytest.mark.slow
def test_100k_probe_within_budget():
    backend = resolve_backend()  # the fastest backend this host can run
    jobs = list(uniform_random_instance(100_000, horizon=200_000, seed=42))
    try:
        with time_limit(SMOKE_BUDGET_S, label="n=100k probe"):
            instance = Instance(jobs)
            cache = cache_for(instance)
            hi = cache.window_concurrency
            assert hi > 0
            assert migratory_feasible(instance, hi, backend=backend)
    except ItemTimeout:  # pragma: no cover - the failure mode under test
        pytest.fail(
            f"n=100,000 feasibility probe exceeded {SMOKE_BUDGET_S}s budget "
            f"on backend {backend}"
        )
    # The probe really ran at scale through the sparsified network.
    tables = cache.tables
    assert tables.n_edges >= 100_000  # ≥ one source arc per job
    assert cache.stats.probes == 1
