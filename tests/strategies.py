"""Shared hypothesis strategies for the test suite."""

from __future__ import annotations

from fractions import Fraction

from hypothesis import strategies as st

from repro.model import Instance, Job


def fractions_st(min_value: int = 0, max_value: int = 60, denominator: int = 4):
    """Exact rationals on a small grid (keeps flow/engine tests fast)."""
    return st.integers(min_value * denominator, max_value * denominator).map(
        lambda k: Fraction(k, denominator)
    )


@st.composite
def jobs_st(draw, max_release: int = 30, max_processing: int = 8, max_slack: int = 10):
    release = draw(st.integers(0, max_release))
    processing = draw(st.integers(1, max_processing))
    slack = draw(st.integers(0, max_slack))
    return Job(release, processing, release + processing + slack)


@st.composite
def instances_st(draw, min_size: int = 1, max_size: int = 8):
    n = draw(st.integers(min_size, max_size))
    jobs = []
    for i in range(n):
        release = draw(st.integers(0, 20))
        processing = draw(st.integers(1, 6))
        slack = draw(st.integers(0, 8))
        jobs.append(Job(release, processing, release + processing + slack, id=i))
    return Instance(jobs)


@st.composite
def interval_pairs_st(draw, span: int = 40):
    a = draw(st.integers(0, span - 1))
    b = draw(st.integers(a + 1, span))
    return (Fraction(a), Fraction(b))
